#!/usr/bin/env python
"""Visualize collective schedules as per-rank ASCII timelines.

Traces three algorithms on an 8-rank two-socket node and renders their
Gantt charts, making the structural differences visible at a glance:

* **MA reduce-scatter** — the diagonal copy wavefront and the dense
  reduce chain (one copy per slice group: Theorem 3.1's minimum);
* **DPML** — the copy-everything phase, the barrier wall, the parallel
  partition reduction;
* **pipelined broadcast** — the root's copy-ins overlapping every other
  rank's copy-outs.

Run:  python examples/schedule_timeline.py
"""

from repro.collectives.bcast import PIPELINED_BCAST
from repro.collectives.common import (
    run_bcast_collective,
    run_reduce_collective,
)
from repro.collectives.dpml import DPML_REDUCE_SCATTER
from repro.collectives.ma import MA_REDUCE_SCATTER
from repro.machine.spec import NODE_A
from repro.sim import render_timeline, critical_rank
from repro.sim.engine import Engine
from repro.sim.timeline import phase_summary

KB = 1024


def show(title, run):
    eng = Engine(8, machine=NODE_A, functional=False, trace=True)
    run(eng)
    print(f"== {title}")
    print(render_timeline(eng.trace, width=68))
    print(f"critical rank: {critical_rank(eng.trace)}")
    quartiles = phase_summary(eng.trace, buckets=4)
    moved = ["%dKB" % ((c + r) >> 10) for _, _, c, r in quartiles]
    print(f"bytes touched per time quartile: {', '.join(moved)}\n")


def main() -> None:
    s = 64 * KB
    show(
        "MA reduce-scatter (one copy per group, then the reduce chain)",
        lambda eng: run_reduce_collective(MA_REDUCE_SCATTER, eng, s,
                                          imax=2 * KB),
    )
    show(
        "DPML reduce-scatter (copy-all phase, barrier, parallel reduce)",
        lambda eng: run_reduce_collective(DPML_REDUCE_SCATTER, eng, s),
    )
    show(
        "pipelined broadcast (root copy-in vs reader copy-out overlap)",
        lambda eng: run_bcast_collective(PIPELINED_BCAST, eng, s,
                                         imax=4 * KB),
    )


if __name__ == "__main__":
    main()
