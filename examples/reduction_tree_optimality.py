#!/usr/bin/env python
"""The Section 3 theory, executable: sliced reduction trees, Equation 1
volumes, Theorem 3.1, and brute-force optimality.

* formalizes DPML's and the movement-avoiding (MA) reduction trees and
  prints their per-tree copy volumes;
* exhaustively enumerates every valid reduction tree for p=3 to show
  the 2*I lower bound is tight and reached by the MA construction;
* cross-checks the formalism against the executable collectives: the
  simulated MA reduce-scatter's measured copy volume equals the bound.

Run:  python examples/reduction_tree_optimality.py
"""

from collections import Counter

from repro import Communicator, NODE_A
from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_REDUCE_SCATTER
from repro.collectives.reduction_tree import (
    dpml_tree,
    enumerate_trees,
    ma_tree,
    theorem_3_1_holds,
)

KB = 1024


def formal_constructions() -> None:
    print("1. Formal reduction trees (slice size I = 1)")
    for p in (3, 4, 8, 64):
        ma_v = ma_tree(p, 0).copy_volume(1)
        dpml_v = dpml_tree(p, 0).copy_volume(1)
        print(f"   p={p:>2}: V(MA tree) = {ma_v}   "
              f"V(DPML tree, Eq.1) = {dpml_v}   (lower bound = 2)")
    print()


def exhaustive_p3() -> None:
    print("2. Exhaustive search over every valid tree for p=3")
    volumes = Counter()
    n = 0
    for tree in enumerate_trees(3):
        assert theorem_3_1_holds(tree)
        volumes[tree.copy_volume(1)] += 1
        n += 1
    print(f"   {n} valid trees; copy-volume histogram: "
          f"{dict(sorted(volumes.items()))}")
    print(f"   minimum = {min(volumes)} = 2*I — achieved by "
          f"{volumes[min(volumes)]} trees, the MA construction among "
          f"them\n")


def simulator_agrees() -> None:
    print("3. The executable MA reduce-scatter achieves the bound")
    s = 64 * KB
    comm = Communicator(64, machine=NODE_A, trace=True)
    comm.engine.trace.records.clear()
    run_reduce_collective(MA_REDUCE_SCATTER, comm.engine, s, imax=256 * KB)
    copied = comm.engine.trace.copy_bytes()
    print(f"   message s = {s >> 10} KB on 64 ranks: bytes copied into "
          f"shared memory = {copied >> 10} KB")
    print(f"   = exactly s (one slice per group -> copy DAV 2s, "
          f"Theorem 3.1's minimum)")


if __name__ == "__main__":
    formal_constructions()
    exhaustive_p3()
    simulator_agrees()
