#!/usr/bin/env python
"""MiniAMR weak scaling: Figure 17's application experiment.

Runs the adaptive-mesh-refinement mini-app (real stencil sweeps and
refinement logic on numpy blocks, simulated communication through the
collective library) across 1-64 NodeA-class nodes under YHCCL vs the
Open MPI baseline, printing total time and the communication fraction.

Run:  python examples/miniamr_weak_scaling.py [--quick]
"""

import sys

from repro import Communicator, NODE_A
from repro.apps.miniamr import MiniAMR, MiniAMRConfig


def main() -> None:
    quick = "--quick" in sys.argv
    cfg = MiniAMRConfig(num_refine=4000 if quick else 40000,
                        num_tsteps=20)
    nodes = [1, 4, 16] if quick else [1, 2, 4, 8, 16, 32, 64]

    print(f"MiniAMR: --num_refine {cfg.num_refine} --num_tsteps "
          f"{cfg.num_tsteps} --refine_freq {cfg.refine_freq}, "
          f"64 procs/node on {NODE_A.name}\n")
    print(f"{'nodes':>6}{'Open MPI':>12}{'YHCCL':>12}{'speedup':>10}"
          f"{'YHCCL comm%':>13}")
    for n in nodes:
        results = {}
        for impl in ("Open MPI", "YHCCL"):
            comm = Communicator(64, machine=NODE_A)
            app = MiniAMR(comm, cfg, implementation=impl, nnodes=n)
            results[impl] = app.run()
        o, y = results["Open MPI"], results["YHCCL"]
        print(f"{n:>6}{o.total_time:>11.1f}s{y.total_time:>11.1f}s"
              f"{o.total_time / y.total_time:>10.2f}"
              f"{100 * y.comm_fraction:>12.1f}%")
    print("\npaper: 37.7-480.8s (Open MPI) vs 22.5-380.6s (YHCCL), "
          "1.26-1.67x over 1-64 nodes")


if __name__ == "__main__":
    main()
