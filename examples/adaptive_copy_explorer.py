#!/usr/bin/env python
"""Explore the adaptive non-temporal store heuristic (Section 4).

Three views of the same mechanism:

1. the sliced STREAM copy (Table 4): why nt-copy beats t-copy by ~1.5x
   on streaming data, in memory-traffic terms;
2. the Algorithm 1 decision surface: for each collective, the message
   size where ``W > C`` flips the copy-outs to NT stores — including
   the paper's published 2176 KB (NodeA) / 1152 KB (NodeB) all-reduce
   switch points;
3. the payoff: socket-aware MA all-reduce under each fixed policy vs
   the adaptive copy, bracketing the switch.

Run:  python examples/adaptive_copy_explorer.py
"""

from repro import Communicator, NODE_A, NODE_B
from repro.collectives.common import run_reduce_collective
from repro.collectives.socket_aware import SOCKET_MA_ALLREDUCE
from repro.copyengine.stream import SlicedCopyBenchmark
from repro.models.nt_model import nt_switch_message_size

KB, MB, GB = 1024, 1 << 20, 1 << 30


def stream_view() -> None:
    print("1. Sliced STREAM copy on NodeA (16 GB array, 64 ranks)")
    bench = SlicedCopyBenchmark(NODE_A, nranks=64, total_bytes=16 * GB)
    print(f"   {'slice':>8}{'memmove':>12}{'t-copy':>12}{'nt-copy':>12}")
    for s in (512 * KB, 1 * MB, 2 * MB):
        row = [
            bench.run_policy(kind, s).bandwidth / 1e9
            for kind in ("memmove", "t", "nt")
        ]
        print(f"   {s >> 10:>6}KB" + "".join(f"{b:>10.0f}GB" for b in row))
    print("   -> nt-copy moves 2 bytes per byte copied; t-copy moves 3"
          " (RFO + write-back)\n")


def switch_points() -> None:
    print("2. Algorithm 1 switch points (message size where W > C)")
    for machine, p, imax in ((NODE_A, 64, 256 * KB), (NODE_B, 48, 128 * KB)):
        print(f"   {machine.name} (p={p}, Imax={imax >> 10}KB):")
        for kind in ("allreduce", "reduce_scatter", "bcast", "allgather"):
            s = nt_switch_message_size(kind, machine, p, imax=imax)
            print(f"     {kind:<15} NT from {s / KB:>10.0f} KB")
    print("   (paper, all-reduce: 2176 KB on NodeA, 1152 KB on NodeB)\n")


def payoff() -> None:
    print("3. Socket-aware MA all-reduce on NodeA around the switch")
    print(f"   {'size':>8}{'t-copy':>12}{'nt-copy':>12}{'adaptive':>12}")
    for s in (1 * MB, 2 * MB, 4 * MB, 16 * MB):
        row = []
        for policy in ("t", "nt", "adaptive"):
            comm = Communicator(64, machine=NODE_A)
            res = run_reduce_collective(
                SOCKET_MA_ALLREDUCE, comm.engine, s, copy_policy=policy,
                imax=256 * KB, iterations=2,
            )
            row.append(res.time * 1e6)
        best = min(row)
        marks = ["*" if t == best else " " for t in row]
        print(f"   {s >> 20:>6}MB" + "".join(
            f"{t:>11.0f}{m}" for t, m in zip(row, marks)
        ))
    print("   -> the adaptive copy tracks the winner on both sides of"
          " the switch")


if __name__ == "__main__":
    stream_view()
    switch_points()
    payoff()
