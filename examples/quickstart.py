#!/usr/bin/env python
"""Quickstart: run YHCCL collectives on a simulated NodeA.

Builds a 64-rank communicator on the paper's NodeA testbed model
(2x 32-core EPYC 7452), runs each collective through the YHCCL library,
and prints time, data-access volume, achieved DAV bandwidth and the
algorithm the Section 5.1 switching logic selected — then compares the
16 MB all-reduce against every vendor baseline.

Run:  python examples/quickstart.py
"""

from repro import Communicator, MPILibrary, YHCCL, NODE_A
from repro.library.mpi import implementations

KB, MB = 1024, 1024 * 1024


def main() -> None:
    comm = Communicator(nranks=64, machine=NODE_A)
    lib = YHCCL(comm)

    print(f"node: {NODE_A.name} — {NODE_A.total_cores} cores, "
          f"{NODE_A.sockets} sockets, "
          f"{NODE_A.socket.l3.size >> 20} MB L3/socket\n")

    print("YHCCL collectives across message sizes:")
    print(f"{'collective':<16}{'size':>8}{'time':>12}{'DAV':>10}"
          f"{'DAB':>12}  algorithm")
    for kind in ("allreduce", "reduce", "reduce_scatter", "bcast",
                 "allgather"):
        for size in (64 * KB, 2 * MB, 16 * MB):
            r = getattr(lib, kind)(size, iterations=2)
            print(
                f"{kind:<16}{size >> 10:>6}KB{r.time_us:>10.1f}us"
                f"{r.dav >> 20:>8}MB{r.dab / 1e9:>10.1f}GB/s"
                f"  {r.algorithm} ({r.copy_policy})"
            )
        print()

    print("16 MB all-reduce, YHCCL vs the vendor baselines:")
    base = lib.allreduce(16 * MB, iterations=2)
    print(f"{'YHCCL':<12}{base.time_us:>10.1f}us   1.00x")
    for vendor in implementations():
        vcomm = Communicator(nranks=64, machine=NODE_A)
        r = MPILibrary(vcomm, vendor).allreduce(16 * MB, iterations=2)
        print(f"{vendor:<12}{r.time_us:>10.1f}us "
              f"{r.time / base.time:>6.2f}x")


if __name__ == "__main__":
    main()
