#!/usr/bin/env python
"""Data-parallel CNN training: Figure 18's application experiment.

Trains ResNet-50 and VGG-16 (layer tables with real parameter counts)
data-parallel on Cluster C nodes: the YHCCL path fuses gradient tensors
and overlaps the exchange with back-propagation, the baseline serializes
a per-tensor blocking Horovod path.  Also verifies — with real numpy
gradients through the simulated library — that data-parallel averaging
is numerically exact.

Run:  python examples/cnn_training.py
"""

from repro import Communicator, CLUSTER_C
from repro.apps.cnn import CNNTrainer, resnet50, vgg16


def main() -> None:
    print("verifying gradient averaging through the simulated "
          "MA all-reduce ...", end=" ")
    CNNTrainer.verify_gradient_averaging(nranks=8, params=4096)
    print("exact.\n")

    for model_fn in (resnet50, vgg16):
        model = model_fn()
        print(f"{model.name}: {model.params / 1e6:.1f}M parameters, "
              f"{model.gradient_bytes >> 20} MB gradients, "
              f"{sum(l.tensors for l in model.layers)} tensors")
        print(f"{'nodes':>6}{'Open MPI':>12}{'YHCCL':>12}{'speedup':>10}"
              f"   (img/s, 24 procs/node)")
        for n in (1, 4, 16, 64, 256):
            rows = {}
            for impl in ("Open MPI", "YHCCL"):
                comm = Communicator(24, machine=CLUSTER_C)
                tr = CNNTrainer(comm, model, implementation=impl,
                                nnodes=n, batch_per_rank=1)
                rows[impl] = tr.iteration()
            o = rows["Open MPI"].images_per_second
            y = rows["YHCCL"].images_per_second
            print(f"{n:>6}{o:>12.1f}{y:>12.1f}{y / o:>10.2f}")
        print()
    print("paper: 1.94x (ResNet-50) / 1.80x (VGG-16) at 256 nodes; "
          "1.62x single-node (artifact)")


if __name__ == "__main__":
    main()
