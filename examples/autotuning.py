#!/usr/bin/env python
"""Auto-tune the collective library on a simulated machine.

Sweeps the candidate algorithms and MA slice caps on NodeA, prints the
measured decision table, and compares a YHCCL instance configured from
it against the paper's hand-tuned defaults — the measurement-driven
version of Section 5.1's tuning.

Run:  python examples/autotuning.py
"""

from repro import Communicator, NODE_A, YHCCL
from repro.collectives.switching import YHCCLConfig
from repro.library.tuner import Tuner

KB, MB = 1024, 1 << 20


def main() -> None:
    comm = Communicator(64, machine=NODE_A)
    print("measuring the allreduce decision table on NodeA (p=64)...\n")
    table = Tuner(comm).tune("allreduce")
    print(table.render())
    switch = table.switch_size()
    print(f"\nempirical small-message switch: {switch} "
          f"(paper hand tuning: 262144)")
    print(f"empirical Imax: {table.imax >> 10} KB (paper: 256 KB)\n")

    tuned = table.to_config()
    paper = YHCCLConfig(imax=256 * KB)
    print(f"{'size':>8}{'paper cfg':>12}{'tuned cfg':>12}")
    for s in (16 * KB, 256 * KB, 4 * MB, 64 * MB):
        row = []
        for cfg in (paper, tuned):
            c = Communicator(64, machine=NODE_A)
            row.append(YHCCL(c, config=cfg).allreduce(
                s, iterations=2).time_us)
        print(f"{s >> 10:>6}KB{row[0]:>10.1f}us{row[1]:>10.1f}us")


if __name__ == "__main__":
    main()
