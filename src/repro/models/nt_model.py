"""The adaptive non-temporal store switch-point model (Sections 4.2, 5.4).

Algorithm 1 selects an NT store when the stored data is non-temporal
(``t == 1``) and the collective's work data size exceeds the available
cache (``W > C``).  Solving ``W > C`` for the message size gives the
switch points the paper verifies in Figure 12:

For the socket-aware MA allreduce, ``W = 2 s p + m p Imax``, so

    ``s > (C - m * p * Imax) / (2 p)``

On NodeA (C = 256 MB + 64 * 512 KB = 288 MB, Imax = 256 KB, m = 2,
p = 64): 2176 KB.  On NodeB (C = 66 MB + 48 * 1 MB = 114 MB, Imax =
128 KB, m = 2, p = 48): 1152 KB.  The benchmarks check that the
simulated YHCCL curve starts beating pure t-copy at these sizes.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.spec import MachineSpec, available_cache_capacity


def work_set_size(kind: str, s: int, p: int, *, m: int = 2,
                  imax: int = 256 * 1024) -> int:
    """Work data size ``W`` of a YHCCL collective.

    Section 4.3.1's socket-aware text includes an ``m`` factor on the
    auxiliary term, but Section 5.4's numeric switch points (2176 KB /
    1152 KB, validated by Figure 12) are evaluated with ``p * Imax``;
    we implement the evaluated form (``m`` is accepted and ignored for
    the reduction kinds to keep the signature uniform).
    """
    if kind == "allreduce":
        return 2 * s * p + p * imax
    if kind in ("reduce", "reduce_scatter"):
        return s * p + s + p * imax
    if kind == "bcast":
        return s + s * (p - 1) + 2 * imax
    if kind == "allgather":
        return s * p + s * p * p + 2 * p * imax
    raise ValueError(f"unknown collective kind {kind!r}")


def uses_nt_store(kind: str, s: int, machine: MachineSpec, p: int, *,
                  imax: int = 256 * 1024, t_flag: bool = True) -> bool:
    """Would Algorithm 1 pick an NT store for this copy?"""
    if not t_flag:
        return False
    c = available_cache_capacity(machine, p)
    m = machine.sockets
    return work_set_size(kind, s, p, m=m, imax=imax) > c


def decision_guards(kind: str, s: int, p: int, machine: MachineSpec, *,
                    imax: int, policy: str = "adaptive",
                    small_threshold: Optional[int] = None) -> dict:
    """The *decision guards* of one ``(kind, s, p, machine, imax,
    policy)`` cell: every size-dependent adaptive decision the library
    stack takes, evaluated as a flat JSON-safe dict.

    Two message sizes whose guards evaluate identically sit in the
    same **decision region**: the collective executes the same
    algorithm regime, the same slice structure, the same NT-store
    switch and the same cache-streaming regime, so one captured
    compiled schedule can be *model re-timed* for the other size
    (:meth:`repro.sim.compiled.CompiledSchedule.model_durations` with
    scaled byte footprints) instead of recapturing.  A guard mismatch
    keys a different schedule-cache entry, which is exactly the
    automatic-recapture path.

    Guard atoms:

    * ``regime`` — small-message vs large-message algorithm routing
      (:data:`repro.collectives.switching.SMALL_THRESHOLD`);
    * ``nt`` — Algorithm 1's non-temporal store switch
      (:func:`uses_nt_store`); ``None`` when the copy policy pins the
      store path or the kind has no work-set formula;
    * ``slices`` — per-rank block slice count under the ``imax`` cap,
      plus divisibility flags (``tail_p``, ``tail_slice``): uneven
      blocks change the schedule shape, not just its byte counts;
    * ``blocks8k`` — the fixed 8 KB reduction-block count driving the
      small-regime (DPML) op structure;
    * ``streams`` — whether a per-rank block streams through the
      retained per-socket cache
      (:func:`repro.machine.cache.streams_through`).
    """
    from repro.collectives.switching import SMALL_THRESHOLD
    from repro.machine.cache import streams_through
    from repro.machine.memory import MemorySystem

    if imax <= 0:
        raise ValueError(f"imax must be positive, got {imax}")
    thr = SMALL_THRESHOLD if small_threshold is None else small_threshold
    block = -(-s // p) if s > 0 else 0  # ceil: one rank's share
    slices = -(-block // imax) if block else 0
    nt: Optional[bool] = None
    if policy == "adaptive":
        try:
            nt = uses_nt_store(kind, s, machine, p, imax=imax)
        except ValueError:
            nt = None  # no work-set formula for this kind
    small = s <= thr
    retained = int(MemorySystem.CACHE_RETENTION
                   * machine.socket.effective_cache_capacity)
    return {
        "kind": kind,
        "p": p,
        "policy": policy,
        "imax": imax,
        "regime": "small" if small else "large",
        "nt": nt,
        "slices": slices,
        "tail_p": bool(s % p),
        "tail_slice": bool(block % slices) if slices else False,
        "blocks8k": -(-block // 8192) if small and block else 0,
        "streams": streams_through(block, retained),
    }


def nt_switch_message_size(kind: str, machine: MachineSpec, p: int, *,
                           imax: int = 256 * 1024) -> float:
    """Smallest message size at which NT stores engage (bytes).

    Derived by solving ``W(s) > C`` for ``s``; 0 when NT is always on.
    """
    c = available_cache_capacity(machine, p)
    if kind == "allreduce":
        s = (c - p * imax) / (2 * p)
    elif kind in ("reduce", "reduce_scatter"):
        s = (c - p * imax) / (p + 1)
    elif kind == "bcast":
        s = (c - 2 * imax) / p
    elif kind == "allgather":
        s = (c - 2 * p * imax) / (p + p * p)
    else:
        raise ValueError(f"unknown collective kind {kind!r}")
    return max(0.0, s)
