"""The adaptive non-temporal store switch-point model (Sections 4.2, 5.4).

Algorithm 1 selects an NT store when the stored data is non-temporal
(``t == 1``) and the collective's work data size exceeds the available
cache (``W > C``).  Solving ``W > C`` for the message size gives the
switch points the paper verifies in Figure 12:

For the socket-aware MA allreduce, ``W = 2 s p + m p Imax``, so

    ``s > (C - m * p * Imax) / (2 p)``

On NodeA (C = 256 MB + 64 * 512 KB = 288 MB, Imax = 256 KB, m = 2,
p = 64): 2176 KB.  On NodeB (C = 66 MB + 48 * 1 MB = 114 MB, Imax =
128 KB, m = 2, p = 48): 1152 KB.  The benchmarks check that the
simulated YHCCL curve starts beating pure t-copy at these sizes.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.spec import MachineSpec, available_cache_capacity

#: every collective kind the decision models cover; anything else is a
#: caller bug and raises ``KeyError`` naming this list (mirroring the
#: timing model's ``_SYNC_STEPS`` discipline)
KNOWN_KINDS = ("allgather", "allreduce", "bcast", "reduce",
               "reduce_scatter")


def work_set_size(kind: str, s: int, p: int, *, m: int = 2,
                  imax: int = 256 * 1024) -> int:
    """Work data size ``W`` of a YHCCL collective.

    Section 4.3.1's socket-aware text includes an ``m`` factor on the
    auxiliary term, but Section 5.4's numeric switch points (2176 KB /
    1152 KB, validated by Figure 12) are evaluated with ``p * Imax``;
    we implement the evaluated form (``m`` is accepted and ignored for
    the reduction kinds to keep the signature uniform).
    """
    if kind == "allreduce":
        return 2 * s * p + p * imax
    if kind in ("reduce", "reduce_scatter"):
        return s * p + s + p * imax
    if kind == "bcast":
        return s + s * (p - 1) + 2 * imax
    if kind == "allgather":
        return s * p + s * p * p + 2 * p * imax
    raise ValueError(f"unknown collective kind {kind!r}")


def uses_nt_store(kind: str, s: int, machine: MachineSpec, p: int, *,
                  imax: int = 256 * 1024, t_flag: bool = True) -> bool:
    """Would Algorithm 1 pick an NT store for this copy?"""
    if not t_flag:
        return False
    c = available_cache_capacity(machine, p)
    m = machine.sockets
    return work_set_size(kind, s, p, m=m, imax=imax) > c


def _socket_group_sizes(p: int, machine: MachineSpec) -> list:
    """Distinct non-empty per-socket rank-group sizes at rank count
    ``p`` — the group sizes the socket-aware level-1 pipelines run
    over (:func:`repro.collectives.socket_aware.socket_groups`)."""
    return sorted({
        len(machine.ranks_on_socket(p, sock))
        for sock in range(machine.sockets)
        if machine.ranks_on_socket(p, sock)
    })


def shape_atoms(kind: str, s: int, p: int, machine: MachineSpec, *,
                imax: int, small_threshold: Optional[int] = None) -> dict:
    """Exact schedule-*shape* drivers of one cell, as a JSON-safe dict.

    The scalar guard atoms (``slices``, ``blocks8k``) approximate the
    library's slicing with the global rank count, but the algorithms
    slice at several granularities — the socket-aware level-1 pipeline
    chops each socket's partition with ``compute_slice_size(s,
    p_socket)``, the pipelined bcast/allgather stage over
    ``min(imax, s)`` slices, and DPML blocks each phase's lengths at
    8 KB (clamped to ``MAX_BLOCKS``).  Two sizes whose *counts* differ
    at any granularity execute differently-shaped DAGs even when every
    scalar atom agrees, which is exactly the unsoundness the symbolic
    certifier (:mod:`repro.analysis.static.symbolic`) would flag as a
    shape-unification failure.  These atoms pin every such count, so a
    decision region really is shape-invariant.
    """
    from repro.collectives.common import (
        IMIN_DEFAULT,
        compute_slice_size,
        partition,
        subslices,
    )
    from repro.collectives.dpml import MAX_BLOCKS, REDUCE_BLOCK
    from repro.collectives.switching import SMALL_THRESHOLD

    thr = SMALL_THRESHOLD if small_threshold is None else small_threshold
    atoms: dict = {}
    if s <= 0:
        return atoms
    if kind in ("bcast", "allgather"):
        # pipelined algorithms: double-buffered stages over
        # align8(min(imax, s)) slices of the whole message
        i = -(-min(imax, max(s, 8)) // 8) * 8
        atoms["stages"] = len(subslices(0, s, i))
        return atoms

    def rounds(g: int) -> list:
        i = compute_slice_size(s, g, imax, IMIN_DEFAULT)
        return sorted({len(subslices(off, ln, i))
                       for off, ln in partition(s, g)})

    def dpml_blocks(length: int) -> int:
        block = max(REDUCE_BLOCK, -(-length // MAX_BLOCKS))
        return len(subslices(0, length, -(-block // 8) * 8))

    if s <= thr:
        # DPML regime: 8 KB reduction blocks over the phase lengths —
        # the whole message (copy-in), the global partitions (phase 2 /
        # level 2) and the per-socket partitions (two-level level 1b)
        lengths = {s} | {ln for _, ln in partition(s, p)}
        for g in _socket_group_sizes(p, machine):
            lengths |= {ln for _, ln in partition(s, g)}
        atoms["blocks"] = sorted({dpml_blocks(ln) for ln in lengths if ln})
    else:
        # MA regime: per-part sub-slice counts at every pipeline
        # granularity — global (plain MA, level 2, copy-out) and
        # per-socket (socket-aware level 1)
        for g in sorted({p} | set(_socket_group_sizes(p, machine))):
            atoms[f"rounds{g}"] = rounds(g)
    return atoms


def region_modulus(p: int, machine: MachineSpec) -> int:
    """The size step that preserves footprint affinity inside a
    decision region.

    Partition offsets and lengths are piecewise-affine in ``s`` with
    breakpoints at every residue change of ``s`` modulo the 8-byte
    partition alignment times the group size, and DPML's proportional
    block regime (``ceil(length / MAX_BLOCKS)`` re-aligned to 8) adds
    a factor-16 grain on each length.  ``128 * lcm(p, socket group
    sizes)`` clears all of them: two guard-equal sizes congruent
    modulo this value have footprints that are *exactly* affine in
    ``s`` — the invariant symbolic certification builds on.
    """
    from math import gcd

    m = p
    for g in _socket_group_sizes(p, machine):
        m = m * g // gcd(m, g)
    return 128 * m


def decision_guards(kind: str, s: int, p: int, machine: MachineSpec, *,
                    imax: int, policy: str = "adaptive",
                    small_threshold: Optional[int] = None) -> dict:
    """The *decision guards* of one ``(kind, s, p, machine, imax,
    policy)`` cell: every size-dependent adaptive decision the library
    stack takes, evaluated as a flat JSON-safe dict.

    Two message sizes whose guards evaluate identically sit in the
    same **decision region**: the collective executes the same
    algorithm regime, the same slice structure, the same NT-store
    switch and the same cache-streaming regime, so one captured
    compiled schedule can be *model re-timed* for the other size
    (:meth:`repro.sim.compiled.CompiledSchedule.model_durations` with
    scaled byte footprints) instead of recapturing.  A guard mismatch
    keys a different schedule-cache entry, which is exactly the
    automatic-recapture path.

    Guard atoms:

    * ``regime`` — small-message vs large-message algorithm routing
      (:data:`repro.collectives.switching.SMALL_THRESHOLD`);
    * ``nt`` — Algorithm 1's non-temporal store switch
      (:func:`uses_nt_store`); ``None`` when the copy policy pins the
      store path or the kind has no work-set formula;
    * ``slices`` — per-rank block slice count under the ``imax`` cap,
      plus divisibility flags (``tail_p``, ``tail_slice``): uneven
      blocks change the schedule shape, not just its byte counts;
    * ``blocks8k`` — the fixed 8 KB reduction-block count driving the
      small-regime (DPML) op structure;
    * ``streams`` — whether a per-rank block streams through the
      retained per-socket cache
      (:func:`repro.machine.cache.streams_through`);
    * ``shape`` — the exact slicing structure at every granularity the
      algorithms pipeline over (:func:`shape_atoms`): per-socket and
      global sub-slice counts, pipelined stage counts, DPML block
      counts.  These close the gap between "same scalar guards" and
      "same DAG shape" that symbolic region certification proves.

    Unknown ``kind`` values raise ``KeyError`` naming
    :data:`KNOWN_KINDS` — a guard dict for an unmodeled collective
    would silently merge distinct schedules into one region.
    """
    from repro.collectives.switching import SMALL_THRESHOLD
    from repro.machine.cache import streams_through
    from repro.machine.memory import MemorySystem

    if kind not in KNOWN_KINDS:
        raise KeyError(
            f"unknown collective kind {kind!r}; decision guards cover: "
            f"{', '.join(KNOWN_KINDS)}"
        )
    if imax <= 0:
        raise ValueError(f"imax must be positive, got {imax}")
    thr = SMALL_THRESHOLD if small_threshold is None else small_threshold
    block = -(-s // p) if s > 0 else 0  # ceil: one rank's share
    slices = -(-block // imax) if block else 0
    nt: Optional[bool] = None
    if policy == "adaptive":
        nt = uses_nt_store(kind, s, machine, p, imax=imax)
    small = s <= thr
    retained = int(MemorySystem.CACHE_RETENTION
                   * machine.socket.effective_cache_capacity)
    return {
        "kind": kind,
        "p": p,
        "policy": policy,
        "imax": imax,
        "regime": "small" if small else "large",
        "nt": nt,
        "slices": slices,
        "tail_p": bool(s % p),
        "tail_slice": bool(block % slices) if slices else False,
        "blocks8k": -(-block // 8192) if small and block else 0,
        "streams": streams_through(block, retained),
        "shape": shape_atoms(kind, s, p, machine, imax=imax,
                             small_threshold=thr),
    }


def nt_switch_message_size(kind: str, machine: MachineSpec, p: int, *,
                           imax: int = 256 * 1024) -> float:
    """Smallest message size at which NT stores engage (bytes).

    Derived by solving ``W(s) > C`` for ``s``; 0 when NT is always on.
    """
    c = available_cache_capacity(machine, p)
    if kind == "allreduce":
        s = (c - p * imax) / (2 * p)
    elif kind in ("reduce", "reduce_scatter"):
        s = (c - p * imax) / (p + 1)
    elif kind == "bcast":
        s = (c - 2 * imax) / p
    elif kind == "allgather":
        s = (c - 2 * p * imax) / (p + p * p)
    else:
        raise ValueError(f"unknown collective kind {kind!r}")
    return max(0.0, s)
