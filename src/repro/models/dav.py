"""Closed-form data-access-volume formulas (Tables 1, 2 and 3).

Two families of formulas live here:

* ``*_paper`` — the table rows exactly as printed in the paper;
* ``*_impl`` — what this package's implementations actually move,
  which the simulator's traffic counters must match **exactly**
  (integration tests enforce equality).

For most rows the two agree; the documented exceptions are constant
``O(s)`` terms where the paper's arithmetic is internally inconsistent
(re-derivable from its own Section 3 accounting):

===============  ======================  ==========================
algorithm        paper                   implementation
===============  ======================  ==========================
DPML allreduce   ``s(7p - 1)``           ``s(7p - 3)``
DPML reduce      ``s(5p + 1)``           ``s(5p - 1)``
Ring allreduce   ``7s(p - 1)``           ``7s(p-1) + 2s`` (own-chunk
                                         copy-out)
Rabenseifner     ``5sp * sum`` / ``7sp   ``+ 2s``/``+ 4s`` block- and
                 * sum``                 result-delivery constants
===============  ======================  ==========================

All formulas take the per-rank message size ``s`` in bytes and return
bytes per node.
"""

from __future__ import annotations

import math


def _harmonic_halving(p: int) -> float:
    """``1/2 + 1/4 + ... + 1/p`` for power-of-two ``p`` (= 1 - 1/p);
    generalized via the power-of-two below ``p`` otherwise."""
    total = 0.0
    k = 2
    while k <= p:
        total += 1.0 / k
        k *= 2
    return total


def _rg_levels(p: int, k: int):
    """Survivor counts per level of a (k+1)-ary reduction tree."""
    counts = []
    n = p
    while n > 1:
        groups = math.ceil(n / (k + 1))
        counts.append((n, groups))
        n = groups
    return counts


# ---------------------------------------------------------------------------
# Table 1: reduce-scatter
# ---------------------------------------------------------------------------


def dav_reduce_scatter(algorithm: str, s: int, p: int, *, m: int = 2,
                       k: int = 2, paper: bool = True) -> float:
    """DAV of a reduce-scatter algorithm (Table 1)."""
    if algorithm == "ring":
        return 5.0 * s * (p - 1)
    if algorithm == "rabenseifner":
        base = 5.0 * s * p * _harmonic_halving(p)
        return base if paper else base + 2.0 * s
    if algorithm == "dpml":
        return s * (5.0 * p - 1.0)
    if algorithm == "ma":
        return s * (3.0 * p - 1.0)
    if algorithm == "socket-ma":
        return s * (3.0 * p + 2.0 * m - 3.0)
    raise ValueError(f"unknown reduce-scatter algorithm {algorithm!r}")


# ---------------------------------------------------------------------------
# Table 2: allreduce
# ---------------------------------------------------------------------------


def dav_allreduce(algorithm: str, s: int, p: int, *, m: int = 2, k: int = 2,
                  paper: bool = True) -> float:
    """DAV of an allreduce algorithm (Table 2)."""
    if algorithm == "ring":
        base = 7.0 * s * (p - 1)
        return base if paper else base + 2.0 * s
    if algorithm == "rabenseifner":
        base = 7.0 * s * p * _harmonic_halving(p)
        return base if paper else base + 4.0 * s
    if algorithm == "dpml":
        return s * (7.0 * p - 1.0) if paper else s * (7.0 * p - 3.0)
    if algorithm == "dpml2":
        # two-level socket-aware DPML (YHCCL's small-message switch):
        # full copy-in/out like DPML, a partitioned reduction inside
        # each socket, and an (m-1)-way cross-socket combine.  Ranks
        # follow the compact binding's ceil split of p over m sockets;
        # a singleton socket copies its full buffer instead of
        # reducing, so the count only coincides with the flat dpml
        # row (7p - 3) when every socket holds at least two ranks.
        per = -(-p // m)
        sizes = [min(per, p - i * per) for i in range(m) if p - i * per > 0]
        level1 = sum(3.0 * s * (g - 1) if g > 1 else 2.0 * s
                     for g in sizes)
        level2 = 3.0 * s * (len(sizes) - 1) if len(sizes) > 1 else 2.0 * s
        return 2.0 * s * p + level1 + level2 + 2.0 * s * p
    if algorithm == "rg":
        total = _rg_tree_dav(s, p, k, paper)
        return total + 2.0 * s * p
    if algorithm == "ma":
        return s * (5.0 * p - 1.0)
    if algorithm == "socket-ma":
        return s * (5.0 * p + 2.0 * m - 3.0)
    if algorithm == "xpmem":
        return 5.0 * s * (p - 1)
    raise ValueError(f"unknown allreduce algorithm {algorithm!r}")


def _rg_tree_dav(s: int, p: int, k: int, paper: bool) -> float:
    """Tree-phase DAV of the RG design: leaf level pays copy-in plus
    reduce (5s per child), inner levels reduce in place (3s per child).
    The implementation additionally copies a level-0 singleton parent's
    slice into its slot (2s) when ``p mod (k+1) == 1``."""
    total = 0.0
    for level, (n, groups) in enumerate(_rg_levels(p, k)):
        children = n - groups
        total += (5.0 if level == 0 else 3.0) * s * children
    if not paper and p > 1 and p % (k + 1) == 1:
        total += 2.0 * s
    return total


# ---------------------------------------------------------------------------
# Table 3: reduce
# ---------------------------------------------------------------------------


def dav_reduce(algorithm: str, s: int, p: int, *, m: int = 2, k: int = 2,
               paper: bool = True) -> float:
    """DAV of a rooted reduce algorithm (Table 3)."""
    if algorithm == "dpml":
        return s * (5.0 * p + 1.0) if paper else s * (5.0 * p - 1.0)
    if algorithm == "rg":
        return _rg_tree_dav(s, p, k, paper)
    if algorithm == "ma":
        return s * (3.0 * p + 1.0)
    if algorithm == "socket-ma":
        return s * (3.0 * p + 2.0 * m - 1.0)
    raise ValueError(f"unknown reduce algorithm {algorithm!r}")


#: (kind, algorithm) -> formula, for table-driven tests and benches
DAV_FORMULAS = {
    "reduce_scatter": dav_reduce_scatter,
    "allreduce": dav_allreduce,
    "reduce": dav_reduce,
}


def implementation_dav(kind: str, algorithm: str, s: int, p: int, *,
                       m: int = 2, k: int = 2) -> float:
    """DAV this package's implementation is expected to count."""
    return DAV_FORMULAS[kind](algorithm, s, p, m=m, k=k, paper=False)
