"""Algebraic timing model: time = traffic / bandwidth + synchronization.

A deliberately coarse first-order model — no cache simulation — used to
(a) sanity-check the event simulator (tests assert agreement within a
factor) and (b) give users a quick back-of-envelope API:

    time ≈ memory_traffic / node_stream_bandwidth
           + sync_steps * sync_latency
           + ops * op_overhead

``memory_traffic`` is estimated from the DAV formula and a store-path
multiplier: temporal stores triple the store traffic (RFO + write-back)
once the working set exceeds the cache, NT stores don't.
"""

from __future__ import annotations

from repro.machine.spec import MachineSpec, available_cache_capacity
from repro.models.dav import DAV_FORMULAS
from repro.models.nt_model import work_set_size

#: sync steps on the critical path, per algorithm (rounds as
#: f(size, ranks, slice cap, sockets)).  ``m`` is the machine's socket
#: count: socket-aware MA synchronizes within each of the ``m``
#: per-socket groups of ``p // m`` ranks, then once per extra socket at
#: the cross-socket combine — with ``m = 1`` it degenerates to flat MA,
#: and ``m = 2`` reproduces the two-socket form the model originally
#: hard-coded.
_SYNC_STEPS = {
    "ma": lambda s, p, imax, m: (p - 1) * max(1, s // (p * imax)),
    "socket-ma": lambda s, p, imax, m: (
        (max(1, p // max(1, m)) - 1) * max(1, s // (p * imax))
        + (max(1, m) - 1)
    ),
    "ring": lambda s, p, imax, m: p - 1,
    "rabenseifner": lambda s, p, imax, m: max(1, p.bit_length() - 1),
    "dpml": lambda s, p, imax, m: 2,
    "rg": lambda s, p, imax, m: max(1, p.bit_length() - 1) + s // imax,
}


def op_touch_factor(kind: str) -> int:
    """Theorem 3.1 byte multiplier of one engine operation: a copy
    touches ``2n`` bytes (load + store), a reduce ``3n`` (two loads +
    store), a touch ``n``; synchronization and compute move nothing.
    The compiled evaluator vectorizes this table over its int8 op-kind
    codes (:data:`repro.sim.compiled.KIND_CODES`)."""
    if kind == "copy":
        return 2
    if kind.startswith("reduce"):
        return 3
    if kind == "touch":
        return 1
    return 0


def op_touched_bytes(kind: str, nbytes: int) -> int:
    """Theorem 3.1 accounting for one engine operation —
    :func:`op_touch_factor` times the byte count."""
    return op_touch_factor(kind) * nbytes


def static_op_time(kind: str, nbytes: int, *, cache_bandwidth_core: float,
                   op_overhead: float, sync_latency: float = 0.0,
                   duration: float = 0.0) -> float:
    """Optimistic cost of one operation, for static critical-path
    weighting (:mod:`repro.analysis.static`).

    Every term is a *lower bound* on what the event simulator charges:
    data ops run entirely cache-resident at the per-core cache
    bandwidth plus the fixed per-call overhead; waits/barriers pay
    ``sync_latency`` (the caller passes the intra-socket barrier tree
    latency for barriers — the cheapest the engine ever charges — and
    ``0`` for waits, whose release latency rides the post→wait sync
    edge instead: a wait whose posts landed long ago is free); posts
    are free; compute regions use their program-declared ``duration``.
    Summed along the longest dependency path this yields a
    completion-time bound no schedule of the same DAG can beat on the
    same machine.
    """
    if kind == "compute":
        return duration
    if kind == "post":
        return 0.0
    if kind in ("wait", "barrier"):
        return sync_latency
    touched = op_touched_bytes(kind, nbytes)
    if touched == 0:
        return 0.0
    return touched / cache_bandwidth_core + op_overhead


def predict_time(kind: str, algorithm: str, s: int, p: int,
                 machine: MachineSpec, *, imax: int = 256 * 1024,
                 nt_stores: bool = False) -> float:
    """First-order completion-time estimate for one collective (seconds)."""
    dav = DAV_FORMULAS[kind](algorithm, s, p, m=machine.sockets, paper=False)
    cache = available_cache_capacity(machine, p)
    w = work_set_size(
        kind if kind in ("allreduce", "reduce", "reduce_scatter") else "allreduce",
        s, p, m=machine.sockets, imax=imax,
    )
    # store-path multiplier: roughly 1/3 of DAV bytes are stores; when
    # streaming past the cache each temporal store costs 3x its bytes.
    if w > cache:
        store_factor = 1.0 if nt_stores else 5.0 / 3.0
        traffic = dav * store_factor
    else:
        traffic = dav / 4.0  # mostly cache-resident
    bw = machine.mem_bandwidth_node
    try:
        sync_fn = _SYNC_STEPS[algorithm]
    except KeyError:
        # no silent fallback: a wrong-but-plausible sync count is worse
        # than an error (the DAV formulas accept some algorithms, e.g.
        # "xpmem", that this model has no sync-step form for)
        raise KeyError(
            f"no sync-step model for algorithm {algorithm!r}; known: "
            f"{', '.join(sorted(_SYNC_STEPS))}"
        ) from None
    syncs = sync_fn(s, p, imax, machine.sockets)
    t_sync = syncs * machine.sync_latency_intra * 2
    return traffic / bw + t_sync
