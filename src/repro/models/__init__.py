"""Analytical models: closed-form DAV (Tables 1–3), the adaptive
non-temporal store switch-point model (Section 4.2/5.4), and an
algebraic timing model cross-checked against the simulator.
"""

from repro.models.dav import (
    DAV_FORMULAS,
    dav_allreduce,
    dav_reduce,
    dav_reduce_scatter,
    implementation_dav,
)
from repro.models.nt_model import nt_switch_message_size, uses_nt_store
from repro.models.timing import predict_time

__all__ = [
    "DAV_FORMULAS",
    "dav_allreduce",
    "dav_reduce",
    "dav_reduce_scatter",
    "implementation_dav",
    "nt_switch_message_size",
    "uses_nt_store",
    "predict_time",
]
