"""Pipelined shared-memory broadcast (Algorithm 3; Graham & Shipman [28]).

The message is chunked into slices; the root copies slice ``t`` into a
double-buffered shared slot while every other rank copies slice
``t - 1`` out of the other slot, with a node barrier per step.  The
shared slot is *temporal* data (written by the root, read by ``p - 1``
ranks within two steps) and the receiving buffers are *non-temporal*
(written once, used only after the broadcast) — which is exactly the
access pattern the adaptive copy of Section 4 exploits:

* copy-in: ``t_flag = 0`` — always temporal, the slot is reused;
* copy-out: ``t_flag = 1`` — non-temporal iff the work data size
  ``W = s + s(p-1) + 2I`` exceeds the available cache.

A ``memmove``-based implementation instead thresholds on the *slice*
size, so for a 256 MB message moved in 1 MB slices it never engages NT
stores — the gap YHCCL closes in Figure 13.
"""

from __future__ import annotations

from repro.collectives.common import CollectiveEnv, subslices

DEFAULT_SLICE = 1024 * 1024


class PipelinedBcast:
    """Algorithm 3: double-buffered pipelined broadcast.

    ``imax`` from the environment caps the slice size (the paper uses
    ``Imax = 1 MB`` for broadcast in Figure 13).
    """

    name = "pipelined-bcast"
    kind = "bcast"

    def work_set(self, env: CollectiveEnv) -> int:
        # Algorithm 3 line 2: W = s + s*(p-1) + 2*I.
        return env.s + env.s * (env.p - 1) + 2 * self._slice(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return 2 * self._slice(env)

    def _slice(self, env: CollectiveEnv) -> int:
        return -(-min(env.imax, max(env.s, 8)) // 8) * 8

    def program(self, ctx, env: CollectiveEnv):
        p, r, s = env.p, ctx.rank, env.s
        root = env.root
        if p == 1:
            return
        i_size = self._slice(env)
        slices = subslices(0, s, i_size)
        send = env.sendbufs[root]
        recv = env.recvbufs[r]

        def slot(t: int, n: int):
            return env.shm.view((t % 2) * i_size, n)

        for t, (off, n) in enumerate(slices):
            if r == root:
                env.copy(ctx, slot(t, n), send.view(off, n), t_flag=False)
            elif t >= 1:
                poff, pn = slices[t - 1]
                env.copy_out(ctx, recv.view(poff, pn), slot(t - 1, pn))
            yield ctx.barrier()
        # epilogue: non-roots drain the final slice
        if r != root:
            off, n = slices[-1]
            env.copy_out(ctx, recv.view(off, n), slot(len(slices) - 1, n))


PIPELINED_BCAST = PipelinedBcast()
