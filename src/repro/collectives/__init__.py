"""Collective algorithms: the paper's movement-avoiding designs, the
published baselines they are compared against, and vendor-MPI models.

Every algorithm is expressed as a *rank program* (a generator over a
:class:`~repro.sim.engine.RankCtx`) so that one implementation serves
both functional verification (real numpy data) and timing simulation
(virtual buffers on a machine model).
"""

from repro.collectives.common import (
    CollectiveEnv,
    compute_slice_size,
    partition,
    run_reduce_collective,
    run_bcast_collective,
    run_allgather_collective,
    IMIN_DEFAULT,
)
__all__ = [
    "CollectiveEnv",
    "compute_slice_size",
    "partition",
    "run_reduce_collective",
    "run_bcast_collective",
    "run_allgather_collective",
    "IMIN_DEFAULT",
]
