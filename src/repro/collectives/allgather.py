"""Pipelined shared-memory all-gather (Algorithm 4; refs [28, 43]).

Every rank owns a double-buffered pair of slice slots in shared memory.
Per step, each rank copies its next slice *in* (temporal — the slot is
read by all ranks one step later) and copies the previous slice of
*every* rank out to its receiving buffer (non-temporal candidates),
with a node barrier per step.

Work data size (Algorithm 4 line 2): ``W = s p + s p^2 + 2 p I`` —
the receiving buffers alone are ``p`` times the aggregate message, so
the NT switch engages much earlier than for broadcast.

DAV per node: ``2 s p`` copy-in plus ``2 s p^2`` copy-out.
"""

from __future__ import annotations

from repro.collectives.common import CollectiveEnv, subslices

DEFAULT_SLICE = 1024 * 1024


class PipelinedAllgather:
    """Algorithm 4: double-buffered pipelined all-gather.

    Receiving buffers hold the concatenation of all ranks' ``s``-byte
    contributions in rank order; rank ``a``'s contribution occupies
    ``[a*s, (a+1)*s)``.
    """

    name = "pipelined-allgather"
    kind = "allgather"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s * env.p * env.p + 2 * env.p * self._slice(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return 2 * env.p * self._slice(env)

    def _slice(self, env: CollectiveEnv) -> int:
        return -(-min(env.imax, max(env.s, 8)) // 8) * 8

    def program(self, ctx, env: CollectiveEnv):
        p, r, s = env.p, ctx.rank, env.s
        send = env.sendbufs[r]
        recv = env.recvbufs[r]
        if p == 1:
            ctx.copy(recv.view(0, s), send.view(0, s))
            return
        i_size = self._slice(env)
        slices = subslices(0, s, i_size)

        def slot(rank: int, t: int, n: int):
            return env.shm.view((2 * rank + t % 2) * i_size, n)

        for t, (off, n) in enumerate(slices):
            env.copy(ctx, slot(r, t, n), send.view(off, n), t_flag=False)
            if t >= 1:
                poff, pn = slices[t - 1]
                for a in range(p):
                    env.copy_out(ctx, recv.view(a * s + poff, pn),
                                 slot(a, t - 1, pn))
            yield ctx.barrier()
        off, n = slices[-1]
        t_last = len(slices) - 1
        for a in range(p):
            env.copy_out(ctx, recv.view(a * s + off, n), slot(a, t_last, n))


PIPELINED_ALLGATHER = PipelinedAllgather()
