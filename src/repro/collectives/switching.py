"""YHCCL algorithm switching (Section 5.1 and Figure 4).

YHCCL composes the paper's two optimizations and switches algorithms by
message size:

* **small messages** (``s <= small_threshold``, default 256 KB): the MA
  pipeline's per-round synchronization dominates, so YHCCL switches to
  the *two-level parallel reduction* — the DPML structure (one barrier
  per phase) upgraded with socket awareness and the cache hierarchy.
* **large messages**: socket-aware movement-avoiding reduction with the
  adaptive non-temporal copy (``copy_policy="adaptive"``).

Broadcast and all-gather always use the pipelined shared-memory
algorithms with adaptive copies; their slice size is the platform-tuned
``Imax``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.allgather import PIPELINED_ALLGATHER
from repro.collectives.bcast import PIPELINED_BCAST
from repro.collectives.dpml import DPML2_ALLREDUCE, DPML_REDUCE, DPML_REDUCE_SCATTER
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE, MA_REDUCE_SCATTER
from repro.collectives.ops import is_commutative
from repro.collectives.ordered import (
    ORDERED_ALLREDUCE,
    ORDERED_REDUCE,
    ORDERED_REDUCE_SCATTER,
)
from repro.collectives.socket_aware import (
    SOCKET_MA_ALLREDUCE,
    SOCKET_MA_REDUCE,
    SOCKET_MA_REDUCE_SCATTER,
)

KB = 1024

#: "the message is too small (e.g., s <= 256 KB) to benefit from MA
#: reduction at the algorithm level" — Section 5.1
SMALL_THRESHOLD = 256 * KB


@dataclass(frozen=True)
class Selection:
    """One routing decision: algorithm + copy policy."""

    algorithm: object
    copy_policy: str
    reason: str


@dataclass
class YHCCLConfig:
    """Tuning knobs mirroring the paper's per-platform settings."""

    imax: int = 256 * KB  # MA slice cap: 256 KB NodeA, 128 KB NodeB
    small_threshold: int = SMALL_THRESHOLD
    socket_aware: bool = True
    adaptive_copy: bool = True

    @property
    def policy(self) -> str:
        return "adaptive" if self.adaptive_copy else "t"


def select(kind: str, s: int, config: YHCCLConfig | None = None, *,
           op: str = "sum") -> Selection:
    """Route one collective call to the algorithm YHCCL would use."""
    cfg = config or YHCCLConfig()
    policy = cfg.policy
    if kind == "bcast":
        return Selection(PIPELINED_BCAST, policy, "pipelined + adaptive copy")
    if kind == "allgather":
        return Selection(PIPELINED_ALLGATHER, policy,
                         "pipelined + adaptive copy")
    if kind not in ("allreduce", "reduce", "reduce_scatter"):
        raise ValueError(f"unknown collective kind {kind!r}")
    if not is_commutative(op):
        # reordering algorithms (MA/DPML) would evaluate the operator
        # out of rank order; fall back to the order-preserving chain
        alg = {
            "allreduce": ORDERED_ALLREDUCE,
            "reduce": ORDERED_REDUCE,
            "reduce_scatter": ORDERED_REDUCE_SCATTER,
        }[kind]
        return Selection(alg, policy,
                         "non-commutative operator: ordered left fold")
    if s <= cfg.small_threshold:
        if kind == "allreduce":
            return Selection(DPML2_ALLREDUCE, policy,
                             "small message: two-level parallel reduction")
        alg = {
            "reduce": DPML_REDUCE,
            "reduce_scatter": DPML_REDUCE_SCATTER,
        }[kind]
        return Selection(alg, policy, "small message: parallel reduction")
    if cfg.socket_aware:
        alg = {
            "allreduce": SOCKET_MA_ALLREDUCE,
            "reduce": SOCKET_MA_REDUCE,
            "reduce_scatter": SOCKET_MA_REDUCE_SCATTER,
        }[kind]
        return Selection(alg, policy, "large message: socket-aware MA")
    alg = {
        "allreduce": MA_ALLREDUCE,
        "reduce": MA_REDUCE,
        "reduce_scatter": MA_REDUCE_SCATTER,
    }[kind]
    return Selection(alg, policy, "large message: MA reduction")
