"""The sliced-reduction formalism of Section 3.1.

With ``p`` processes, each sending buffer is chunked into ``p`` slices;
``s(i, j)`` is slice ``j`` of process ``i``'s buffer and the group
``G_i = {s(1,i), ..., s(p,i)}`` collects the i-th slice of every buffer.
Any shared-memory reduction of ``G_i`` is a binary *reduction tree*
``T_i = [T_i1, ..., T_i(p-1)]`` whose node ``T_ij = [r, a, b]`` says
process ``r`` reduces operands ``a`` and ``b`` (each either a send-buffer
slice or the result of an earlier node) into shared memory.

This module implements:

* operand/node data types and the constraint set ``C`` (Equation 2);
* the copy data-access volume ``V(T_ij)`` (Equation 1) and tree/algorithm
  totals (Equation 3's objective);
* formal constructions of the DPML tree and the paper's
  movement-avoiding tree ``A'`` (Figure 5);
* a brute-force optimal search for small ``p`` plus a checker for
  Theorem 3.1 (every valid tree has copy volume >= 2*I) — the property
  tests drive both.

Ranks and slices are 0-indexed here (the paper is 1-indexed).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence


@dataclass(frozen=True)
class SliceRef:
    """Operand ``s(rank, group)``: a slice in ``rank``'s send buffer."""

    rank: int

    def __repr__(self) -> str:
        return f"s[{self.rank}]"


@dataclass(frozen=True)
class NodeRef:
    """Operand referencing the result of node ``index`` (1-based like the
    paper: valid values are ``1 .. j-1`` for node ``j``)."""

    index: int

    def __repr__(self) -> str:
        return f"T[{self.index}]"


Operand = object  # SliceRef | NodeRef


@dataclass(frozen=True)
class RNode:
    """One reduction ``T_ij = [r, a, b]``."""

    r: int
    a: Operand
    b: Operand

    def operands(self) -> tuple:
        return (self.a, self.b)


class ReductionTree:
    """A candidate reduction tree for one slice group ``G_i``."""

    def __init__(self, nodes: Sequence[RNode], p: int, group: int = 0):
        self.nodes = list(nodes)
        self.p = p
        self.group = group

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[RNode]:
        return iter(self.nodes)

    # ---- constraints (Equation 2) -------------------------------------------

    def violations(self) -> list[str]:
        """All constraint violations (empty list == valid tree)."""
        errs: list[str] = []
        p = self.p
        if len(self.nodes) != p - 1:
            errs.append(f"tree must have p-1={p - 1} nodes, has {len(self.nodes)}")
        seen: list[Operand] = []
        for j, node in enumerate(self.nodes, start=1):
            if not 0 <= node.r < p:
                errs.append(f"node {j}: executor {node.r} out of range")
            if node.a == node.b:
                errs.append(f"node {j}: identical operands {node.a!r}")
            for opnd in node.operands():
                if isinstance(opnd, NodeRef):
                    if not 1 <= opnd.index < j:
                        errs.append(
                            f"node {j}: forward/self reference {opnd!r}"
                        )
                elif isinstance(opnd, SliceRef):
                    if not 0 <= opnd.rank < p:
                        errs.append(f"node {j}: slice rank {opnd.rank} invalid")
                else:
                    errs.append(f"node {j}: bad operand {opnd!r}")
                if opnd in seen:
                    errs.append(f"node {j}: operand {opnd!r} reused")
                seen.append(opnd)
        # A valid binary tree over p leaves consumes every slice exactly
        # once and every intermediate except the root exactly once; with
        # the reuse check above, it suffices that all p slices appear.
        slices_used = {o.rank for o in seen if isinstance(o, SliceRef)}
        if not errs and slices_used != set(range(self.p)):
            missing = set(range(self.p)) - slices_used
            errs.append(f"slices never reduced: {sorted(missing)}")
        return errs

    def is_valid(self) -> bool:
        return not self.violations()

    # ---- Equation 1 -----------------------------------------------------------

    def node_copy_volume(self, j: int, slice_size: int = 1) -> int:
        """``V(T_ij)``: copy DAV charged to node ``j`` (1-based).

        An operand costs ``2*I`` when it is a send-buffer slice of a
        process *other than the executor* (it must be copied into shared
        memory first: one load + one store).  Operands already in shared
        memory (earlier node results) or in the executor's own buffer
        are free.
        """
        node = self.nodes[j - 1]
        vol = 0
        for opnd in node.operands():
            if isinstance(opnd, SliceRef) and opnd.rank != node.r:
                vol += 2 * slice_size
        return vol

    def copy_volume(self, slice_size: int = 1) -> int:
        """Total copy DAV of the tree: ``sum_j V(T_ij)``."""
        return sum(
            self.node_copy_volume(j, slice_size)
            for j in range(1, len(self.nodes) + 1)
        )

    def reduce_volume(self, slice_size: int = 1) -> int:
        """Arithmetic DAV: every node loads two operands, stores one."""
        return 3 * slice_size * len(self.nodes)

    def total_volume(self, slice_size: int = 1) -> int:
        return self.copy_volume(slice_size) + self.reduce_volume(slice_size)


class SlicedReductionAlgorithm:
    """An algorithm ``X = [T_1, ..., T_p]`` (one tree per slice group)."""

    def __init__(self, trees: Sequence[ReductionTree]):
        self.trees = list(trees)

    @property
    def p(self) -> int:
        return self.trees[0].p

    def is_valid(self) -> bool:
        return len(self.trees) == self.p and all(t.is_valid() for t in self.trees)

    def copy_volume(self, slice_size: int = 1) -> int:
        return sum(t.copy_volume(slice_size) for t in self.trees)

    def total_volume(self, slice_size: int = 1) -> int:
        return sum(t.total_volume(slice_size) for t in self.trees)


# ---------------------------------------------------------------------------
# Formal constructions
# ---------------------------------------------------------------------------


def dpml_tree(p: int, group: int) -> ReductionTree:
    """DPML's tree: process ``group`` reduces its whole group serially.

    ``T_i = [[i, s(0,i), s(1,i)], [i, T1, s(2,i)], ..., [i, T(p-2), s(p-1,i)]]``
    — every *foreign* slice is copied in: ``V = 2*I*(p-1)`` per tree
    under Equation 1 (the executor's own slice is free).  The deployed
    DPML implementation copies whole buffers, ``2*s*p`` per node, which
    is what Table 1 charges; Figure 2a draws those p arrows.
    """
    _check_p_group(p, group)
    nodes = [RNode(group, SliceRef(0), SliceRef(1))]
    for j in range(2, p):
        nodes.append(RNode(group, NodeRef(j - 1), SliceRef(j)))
    return ReductionTree(nodes, p, group)


def ma_tree(p: int, group: int) -> ReductionTree:
    """The movement-avoiding tree ``A'`` of Figure 5 / Figure 6.

    For slice group ``i``: rank ``(i-1) mod p`` copies its slice in,
    rank ``(i-2) mod p`` reduces it with its own local slice, and every
    later step's executor contributes its *local* slice, ending at rank
    ``i``.  Exactly one operand in the whole tree is a foreign slice, so
    ``V = 2*I`` — the Theorem 3.1 lower bound.
    """
    _check_p_group(p, group)
    i = group
    copier = (i - 1) % p
    first = (i - 2) % p
    nodes = [RNode(first, SliceRef(first), SliceRef(copier))]
    for j in range(2, p):
        r = (i - 1 - j) % p
        nodes.append(RNode(r, NodeRef(j - 1), SliceRef(r)))
    return ReductionTree(nodes, p, group)


def dpml_algorithm(p: int) -> SlicedReductionAlgorithm:
    return SlicedReductionAlgorithm([dpml_tree(p, i) for i in range(p)])


def ma_algorithm(p: int) -> SlicedReductionAlgorithm:
    return SlicedReductionAlgorithm([ma_tree(p, i) for i in range(p)])


def _check_p_group(p: int, group: int) -> None:
    if p < 2:
        raise ValueError("need at least two processes")
    if not 0 <= group < p:
        raise ValueError(f"group {group} out of range for p={p}")


# ---------------------------------------------------------------------------
# Theorem 3.1 and optimal search
# ---------------------------------------------------------------------------


def theorem_3_1_holds(tree: ReductionTree, slice_size: int = 1) -> bool:
    """Check ``sum_j V(T_ij) >= 2*I`` for a *valid* tree.

    Proof sketch (paper): the first node's operands cannot both be free
    — shared memory is empty before node 1, so a zero-cost node 1 needs
    both operands to be the executor's own slice, violating operand
    distinctness.
    """
    if not tree.is_valid():
        raise ValueError("theorem applies to valid trees only: "
                         + "; ".join(tree.violations()))
    return tree.copy_volume(slice_size) >= 2 * slice_size


def enumerate_trees(p: int, group: int = 0,
                    executors: Optional[Sequence[int]] = None
                    ) -> Iterator[ReductionTree]:
    """Exhaustively enumerate valid reduction trees for one group.

    Exponential in ``p`` — intended for ``p <= 4`` in tests.  ``executors``
    restricts candidate executor ranks per node (defaults to all ranks).
    """
    _check_p_group(p, group)
    execs = list(range(p)) if executors is None else list(executors)

    def operand_pool(j: int, used: set) -> list:
        pool: list = [SliceRef(x) for x in range(p) if SliceRef(x) not in used]
        pool += [NodeRef(k) for k in range(1, j) if NodeRef(k) not in used]
        return pool

    def rec(j: int, nodes: list, used: set) -> Iterator[ReductionTree]:
        if j == p:
            tree = ReductionTree(list(nodes), p, group)
            if tree.is_valid():
                yield tree
            return
        pool = operand_pool(j, used)
        for a, b in itertools.combinations(pool, 2):
            for r in execs:
                nodes.append(RNode(r, a, b))
                used.add(a)
                used.add(b)
                yield from rec(j + 1, nodes, used)
                used.discard(a)
                used.discard(b)
                nodes.pop()

    yield from rec(1, [], set())


def min_copy_volume_bruteforce(p: int, slice_size: int = 1) -> int:
    """Minimum ``V`` over all valid trees (exhaustive; small ``p`` only)."""
    return min(t.copy_volume(slice_size) for t in enumerate_trees(p))
