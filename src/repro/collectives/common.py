"""Shared infrastructure for collective implementations.

Defines message partitioning, the paper's slice-size rule, the
environment bundle handed to rank programs, and runner helpers that
allocate buffers, execute a collective on an
:class:`~repro.sim.engine.Engine` and (in functional mode) verify the
result against a numpy oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.machine.spec import CACHE_LINE, KB, available_cache_capacity
from repro.sim.buffers import BufView, SharedBuffer
from repro.sim.engine import Engine, RunResult

#: Minimum slice size: one cache line, to avoid false sharing (Sec. 5.1).
IMIN_DEFAULT = CACHE_LINE
#: Default maximum slice size (the paper tunes 128 KB–1 MB per platform).
IMAX_DEFAULT = 256 * KB

ALIGN = 8  # element alignment for float64 payloads


def partition(total: int, parts: int, align: int = ALIGN) -> list[tuple[int, int]]:
    """Split ``total`` bytes into ``parts`` aligned (offset, length) pieces.

    Lengths are multiples of ``align`` except possibly the last; earlier
    parts absorb the remainder, mirroring MPI's reduce-scatter block
    conventions.  Zero-length parts are allowed when ``total`` is small.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    units = total // align
    tail = total - units * align
    base, extra = divmod(units, parts)
    out = []
    off = 0
    for i in range(parts):
        length = (base + (1 if i < extra else 0)) * align
        if i == parts - 1:
            length += tail
        out.append((off, length))
        off += length
    assert off == total
    return out


def compute_slice_size(s: int, p: int, imax: int = IMAX_DEFAULT,
                       imin: int = IMIN_DEFAULT) -> int:
    """The paper's slice-size rule ``I = max(min(s/p, Imax), Imin)``.

    Rounded up to ``ALIGN`` so slices hold whole elements.
    """
    if s <= 0 or p <= 0:
        raise ValueError("message size and p must be positive")
    i = max(min(s // p, imax), imin)
    return -(-i // ALIGN) * ALIGN


def subslices(off: int, length: int, i_size: int) -> list[tuple[int, int]]:
    """Chop ``[off, off+length)`` into pieces of at most ``i_size`` bytes."""
    if i_size <= 0:
        raise ValueError("slice size must be positive")
    out = []
    end = off + length
    while off < end:
        n = min(i_size, end - off)
        out.append((off, n))
        off += n
    return out


@dataclass
class CollectiveEnv:
    """Everything a collective rank program needs.

    ``sendbufs[r]`` / ``recvbufs[r]`` are per-rank private buffers of
    ``s`` bytes each (``recv_factor * s`` for allgather-style results);
    ``shm`` is the node's shared segment; ``op`` the reduction operator.
    ``copy_policy`` selects the store path for data-movement copies:
    ``"t"``, ``"nt"``, ``"memmove"`` or ``"adaptive"`` (Algorithm 1,
    using ``work_set`` and the machine's available cache capacity).
    """

    engine: Engine
    sendbufs: list
    recvbufs: list
    shm: SharedBuffer
    s: int
    p: int
    op: str = "sum"
    copy_policy: str = "t"
    imax: int = IMAX_DEFAULT
    imin: int = IMIN_DEFAULT
    root: int = 0
    work_set: int = 0
    cache_capacity: int = 0
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.collectives.ops import get_op

        get_op(self.op)  # raises for unknown operators
        if self.engine.machine is not None and not self.cache_capacity:
            self.cache_capacity = available_cache_capacity(
                self.engine.machine, self.p
            )

    # ---- adaptive-copy plumbing (Algorithm 1) -----------------------------

    def use_nt(self, nbytes: int, t_flag: bool) -> bool:
        """Resolve the store path for one copy of ``nbytes``.

        ``t_flag`` is True when the *stored* data is non-temporal (will
        not be reused soon) — e.g. copy-outs to receiving buffers.
        """
        policy = self.copy_policy
        if policy == "t":
            return False
        if policy == "nt":
            return True
        if policy == "memmove":
            thr = (
                self.engine.machine.memmove_nt_threshold
                if self.engine.machine
                else 1 << 62
            )
            return nbytes >= thr
        if policy == "adaptive":
            return bool(t_flag) and self.work_set > self.cache_capacity
        raise ValueError(f"unknown copy policy {policy!r}")

    def copy(self, ctx, dst: BufView, src: BufView, *, t_flag: bool,
             concurrency=None, load_concurrency=None) -> None:
        extra = 0.0
        cell = self.params.get("cell_overhead")
        if cell is not None:
            # (cost_per_cell, cell_bytes): eager-cell pipelining overhead
            # of double-copy send/recv implementations (MPICH model).
            cost, size = cell
            extra = cost * (-(-dst.nbytes // size))
        ctx.copy(dst, src, nt=self.use_nt(dst.nbytes, t_flag),
                 policy=self.copy_policy, concurrency=concurrency,
                 load_concurrency=load_concurrency, extra_time=extra)

    def copy_out(self, ctx, dst: BufView, src: BufView, *,
                 concurrency=None) -> None:
        """A fan-out copy-out: many ranks read the *same* shared result,
        so the load side is cooperative (each byte crosses the memory
        system once) while the stores contend normally."""
        self.copy(ctx, dst, src, t_flag=True, concurrency=concurrency,
                  load_concurrency=2)

    def slice_size(self) -> int:
        return compute_slice_size(self.s, self.p, self.imax, self.imin)


# ---------------------------------------------------------------------------
# Runner helpers with functional verification
# ---------------------------------------------------------------------------


def _oracle_reduce(env: CollectiveEnv) -> np.ndarray:
    """Left fold in rank order — the semantics MPI defines for
    non-commutative operators (and equal to any order for commutative
    ones, up to floating-point rounding)."""
    from repro.collectives.ops import get_op

    ufunc = get_op(env.op).ufunc
    acc = env.sendbufs[0].array().copy()
    for r in range(1, env.p):
        ufunc(acc, env.sendbufs[r].array(), out=acc)
    return acc


def make_env(
    algorithm,
    *,
    engine: Engine,
    s: int,
    op: str = "sum",
    copy_policy: str = "t",
    imax: int = IMAX_DEFAULT,
    imin: int = IMIN_DEFAULT,
    root: int = 0,
    recv_factor: int = 1,
    params: Optional[dict] = None,
) -> CollectiveEnv:
    """Allocate buffers for a collective and build its environment.

    ``algorithm`` must provide ``name`` and ``shm_bytes(env)``; the shm
    segment is sized after the env exists (it may depend on the slice
    size), so a placeholder 1-byte segment is replaced once known.
    """
    p = engine.nranks
    sendbufs = [
        engine.alloc(r, s, random=True, name=f"send[{r}]") for r in range(p)
    ]
    recvbufs = [
        engine.alloc(r, s * recv_factor, fill=0.0, name=f"recv[{r}]")
        for r in range(p)
    ]
    env = CollectiveEnv(
        engine=engine,
        sendbufs=sendbufs,
        recvbufs=recvbufs,
        shm=None,  # type: ignore[arg-type]
        s=s,
        p=p,
        op=op,
        copy_policy=copy_policy,
        imax=imax,
        imin=imin,
        root=root,
        params=dict(params or {}),
    )
    env.work_set = algorithm.work_set(env)
    env.shm = engine.alloc_shared(max(1 * ALIGN, algorithm.shm_bytes(env)),
                                  name=f"shm.{algorithm.name}")
    return env


def run_reduce_collective(algorithm, engine: Engine, s: int, *,
                          op: str = "sum", copy_policy: str = "t",
                          imax: int = IMAX_DEFAULT, imin: int = IMIN_DEFAULT,
                          root: int = 0, verify: Optional[bool] = None,
                          params: Optional[dict] = None,
                          iterations: int = 1) -> RunResult:
    """Run a reduction-family collective and verify functionally.

    ``algorithm.kind`` must be one of ``"reduce_scatter"``, ``"reduce"``,
    ``"allreduce"``.  Verification compares receiving buffers with the
    numpy oracle; it is on by default in functional mode.

    ``iterations > 1`` re-runs the collective on the same buffers and
    reports the *last* run — the steady-state (warm-cache) measurement
    the OSU-style loops of the paper's evaluation produce.
    """
    env = make_env(algorithm, engine=engine, s=s, op=op,
                   copy_policy=copy_policy, imax=imax, imin=imin, root=root,
                   params=params)
    result = _run_iterated(engine, algorithm, env, iterations)
    if verify is None:
        verify = engine.functional
    if verify:
        verify_reduce_result(algorithm.kind, env)
    return result


def verify_reduce_result(kind: str, env: CollectiveEnv,
                         rtol: Optional[float] = None) -> None:
    if rtol is None:
        # summation order differs between algorithms and the oracle, so
        # the tolerance follows the payload precision
        dt = env.engine.dtype
        rtol = 1e-10 if dt.itemsize >= 8 else 1e-4
        if dt.kind in "iu":
            rtol = 0.0
    expected = _oracle_reduce(env)
    parts = partition(env.s, env.p)
    isz = env.engine.dtype.itemsize
    if kind == "allreduce":
        for r in range(env.p):
            np.testing.assert_allclose(
                env.recvbufs[r].array(), expected, rtol=rtol,
                err_msg=f"allreduce result wrong on rank {r}",
            )
    elif kind == "reduce":
        np.testing.assert_allclose(
            env.recvbufs[env.root].array(), expected, rtol=rtol,
            err_msg="reduce result wrong at root",
        )
    elif kind == "reduce_scatter":
        for r, (off, length) in enumerate(parts):
            got = env.recvbufs[r].array()[: length // isz]
            np.testing.assert_allclose(
                got, expected[off // isz : (off + length) // isz], rtol=rtol,
                err_msg=f"reduce_scatter block wrong on rank {r}",
            )
    else:
        raise ValueError(f"unknown reduction kind {kind!r}")


def run_bcast_collective(algorithm, engine: Engine, s: int, *,
                         copy_policy: str = "t", imax: int = IMAX_DEFAULT,
                         imin: int = IMIN_DEFAULT, root: int = 0,
                         verify: Optional[bool] = None,
                         params: Optional[dict] = None,
                         iterations: int = 1) -> RunResult:
    """Run a broadcast and check every rank received the root's data."""
    env = make_env(algorithm, engine=engine, s=s, copy_policy=copy_policy,
                   imax=imax, imin=imin, root=root, params=params)
    result = _run_iterated(engine, algorithm, env, iterations)
    if verify is None:
        verify = engine.functional
    if verify:
        expected = env.sendbufs[root].array()
        for r in range(env.p):
            if r == root:
                continue
            np.testing.assert_array_equal(
                env.recvbufs[r].array(), expected,
                err_msg=f"bcast result wrong on rank {r}",
            )
    return result


def run_allgather_collective(algorithm, engine: Engine, s: int, *,
                             copy_policy: str = "t", imax: int = IMAX_DEFAULT,
                             imin: int = IMIN_DEFAULT,
                             verify: Optional[bool] = None,
                             params: Optional[dict] = None,
                             iterations: int = 1) -> RunResult:
    """Run an all-gather (per-rank contribution ``s``; result ``p*s``)."""
    env = make_env(algorithm, engine=engine, s=s, copy_policy=copy_policy,
                   imax=imax, imin=imin, recv_factor=engine.nranks,
                   params=params)
    result = _run_iterated(engine, algorithm, env, iterations)
    if verify is None:
        verify = engine.functional
    if verify:
        expected = np.concatenate([env.sendbufs[r].array() for r in range(env.p)])
        for r in range(env.p):
            np.testing.assert_array_equal(
                env.recvbufs[r].array(), expected,
                err_msg=f"allgather result wrong on rank {r}",
            )
    return result


def _run_iterated(engine: Engine, algorithm, env: CollectiveEnv,
                  iterations: int) -> RunResult:
    """Run ``iterations`` times on the same buffers, return the last.

    Models the paper's OSU-style measurement loop: buffers are reused
    (and refreshed) across iterations, so small working sets are
    cache-resident in the reported steady state.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    result = None
    for _ in range(iterations):
        result = engine.run(lambda ctx: algorithm.program(ctx, env))
    return result
