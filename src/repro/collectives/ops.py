"""Reduction operator registry.

MPI reduction operators carry a commutativity contract: the predefined
ones (``MPI_SUM`` etc.) are commutative, but user-defined operators may
be declared non-commutative, in which case the library **must** combine
contributions in rank order with consistent parenthesization.  The
movement-avoiding and DPML designs freely reorder the reduction (that is
where their parallelism comes from), so YHCCL's routing — like every
production MPI — has to fall back to an order-preserving algorithm for
non-commutative operators (see :mod:`repro.collectives.ordered` and the
``switching`` layer).

Operators are looked up by name; :func:`register_op` adds user-defined
ones.  ``sub`` ships as the canonical non-commutative example (used by
tests to prove both that the ordered path is correct and that the
reordering algorithms would get it wrong).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """One reduction operator.

    ``ufunc(a, b, out=...)`` combines elementwise; ``commutative``
    declares whether the library may reorder contributions.
    """

    name: str
    ufunc: Callable
    commutative: bool = True

    def __call__(self, a, b, out=None):
        return self.ufunc(a, b, out=out)


_REGISTRY: dict[str, ReduceOp] = {}


def register_op(name: str, ufunc: Callable, *,
                commutative: bool = True,
                replace: bool = False) -> ReduceOp:
    """Register an operator; returns the :class:`ReduceOp`."""
    if name in _REGISTRY and not replace:
        raise ValueError(f"operator {name!r} already registered")
    op = ReduceOp(name=name, ufunc=ufunc, commutative=commutative)
    _REGISTRY[name] = op
    return op


def get_op(name: str) -> ReduceOp:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown reduction op {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def op_names() -> list:
    return sorted(_REGISTRY)


def is_commutative(name: str) -> bool:
    return get_op(name).commutative


# ---- predefined operators --------------------------------------------------

register_op("sum", np.add)
register_op("prod", np.multiply)
register_op("max", np.maximum)
register_op("min", np.minimum)
#: the canonical non-commutative example: a left fold of `-` depends on
#: rank order, so it exercises the ordered code path end to end
register_op("sub", np.subtract, commutative=False)
