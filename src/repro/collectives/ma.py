"""Movement-avoiding (MA) reduction collectives (Sections 3.2–3.5).

The MA pipeline realizes the optimal reduction tree ``A'`` (Figure 5):
for each slice group exactly *one* slice is copied into shared memory
(by the rank "behind" the group's owner), and every subsequent step's
executor contributes the slice already sitting in its private send
buffer — so the copy DAV per group meets the Theorem 3.1 lower bound of
``2*I``.

Concretely (Figure 6, Algorithm 2): at step ``j`` rank ``r`` works on
partition ``(j + r + 1) mod p``; step 0 copies, steps ``1..p-2``
accumulate ``A += B`` in the shared slot, and the final step is executed
by the partition's owner — writing straight into the owner's receiving
buffer for reduce-scatter, or accumulating in shared memory when a
copy-out phase follows (allreduce/reduce).

Messages larger than ``p * I`` are processed in rounds that reuse a
``p * I``-byte shared-memory window so the working set stays
cache-resident.  Synchronization between neighbouring steps of one slice
is flag-based (the paper's atomic flags): ``p - 1`` waits per rank per
round.  Reduce-scatter needs no barriers at all — window-slot reuse is
ordered by per-slice ``consumed`` flags; the allreduce/reduce copy-out
phase is bracketed by node barriers as in Algorithm 2.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.collectives.common import (
    CollectiveEnv,
    compute_slice_size,
    partition,
    subslices,
)


def member_partitions(env: CollectiveEnv, members: Sequence[int]):
    """Partitioning, sub-slice table, round count and slice size for an
    MA instance over ``members``.

    ``env.params["partition"]`` overrides the uniform split when it
    matches the member count — the hook the v-variant collectives use
    for arbitrary per-rank block sizes.
    """
    p_local = len(members)
    i_size = compute_slice_size(env.s, p_local, env.imax, env.imin)
    override = env.params.get("partition")
    if override is not None and len(override) == p_local:
        parts = [tuple(x) for x in override]
    else:
        parts = partition(env.s, p_local)
    subs = [subslices(off, length, i_size) for off, length in parts]
    rounds = max((len(x) for x in subs), default=0)
    return parts, subs, rounds, i_size


def ma_pipeline(ctx, env: CollectiveEnv, members: Sequence[int], *,
                shm_off: int = 0, layout: str = "window",
                final: str = "scatter", tag: object = ("ma",),
                dests=None,
                round_consumer: Optional[Callable] = None) -> object:
    """The MA reduction pipeline for one rank (a generator).

    Parameters
    ----------
    members:
        Participating ranks in pipeline order.  Plain MA passes all
        ranks; the socket-aware variant passes one socket's ranks.
    shm_off:
        Byte offset of this instance's area within ``env.shm``.
    layout:
        ``"window"`` — a reused ``p_local * I`` window (plain MA);
        ``"full"`` — partition slices at their natural message offsets
        in a persistent ``s``-byte segment (socket-aware level 1).
    final:
        ``"scatter"`` — last step writes ``C = A + B`` to the owner's
        destination; window reuse is ordered by ``consumed`` flags.
        ``"shm"`` — last step accumulates into shared memory; with
        ``layout="window"`` a ``round_consumer(t, round_slices)``
        callback then runs between two member barriers (Algorithm 2's
        copy-out phase); ``round_slices`` is ``[(i, off, n, slot_view)]``.
    dests:
        For ``final="scatter"``: per-local-index ``(buffer, base)``
        destinations; defaults to each member's recvbuf at offset 0
        (MPI reduce-scatter block semantics).
    """
    if layout not in ("window", "full"):
        raise ValueError(f"bad layout {layout!r}")
    if final not in ("scatter", "shm"):
        raise ValueError(f"bad final mode {final!r}")
    if final == "shm" and layout == "window" and round_consumer is None:
        # window slots are recycled every round; without the consumer's
        # barriers nothing orders the recycling and data would corrupt
        raise ValueError(
            "windowed shm-mode pipeline requires a round_consumer"
        )
    members = list(members)
    p_local = len(members)
    q = members.index(ctx.rank)
    parts, subs, rounds, i_size = member_partitions(env, members)
    send = env.sendbufs[ctx.rank]
    barrier_rounds = final == "shm" and (layout == "window") and \
        round_consumer is not None

    def slot_view(i: int, off: int, n: int):
        if layout == "window":
            return env.shm.view(shm_off + i * i_size, n)
        return env.shm.view(shm_off + off, n)

    if p_local == 1:
        yield from _single_member(ctx, env, members, subs, parts, final,
                                  slot_view, dests, round_consumer)
        return

    for t in range(rounds):
        with ctx.span("reduce-wavefront"):
            for j in range(p_local):
                i = (j + q + 1) % p_local
                if t >= len(subs[i]):
                    continue
                off, n = subs[i][t]
                slot = slot_view(i, off, n)
                if j == 0:
                    if layout == "window" and t > 0 and not barrier_rounds:
                        # Recycled slot: wait until round t-1 was consumed.
                        yield ctx.wait((tag, "consumed", i, t - 1))
                    env.copy(ctx, slot, send.view(off, n), t_flag=False)
                else:
                    yield ctx.wait((tag, "chain", i, t, j - 1))
                    if j == p_local - 1 and final == "scatter":
                        assert i == q, "final step must land on the owner"
                        buf, base = _dest_for(env, members, q, dests)
                        dst = buf.view(base + (off - parts[q][0]), n)
                        ctx.reduce_out(dst, slot, send.view(off, n),
                                       op=env.op)
                        ctx.post((tag, "consumed", i, t))
                    else:
                        ctx.reduce_acc(slot, send.view(off, n), op=env.op)
                ctx.post((tag, "chain", i, t, j))
        if barrier_rounds:
            # All of round t's sums are final after the barrier; the
            # consumer (copy-out) runs, and the closing barrier makes
            # slot recycling in round t+1 safe.
            yield ctx.barrier(members)
            round_slices = [
                (i, *subs[i][t], slot_view(i, *subs[i][t]))
                for i in range(p_local)
                if t < len(subs[i])
            ]
            with ctx.span("copy-out"):
                round_consumer(t, round_slices)
            yield ctx.barrier(members)


def _single_member(ctx, env, members, subs, parts, final, slot_view, dests,
                   round_consumer):
    """Degenerate one-participant pipeline (p_local == 1)."""
    send = env.sendbufs[ctx.rank]
    for t in range(len(subs[0])):
        off, n = subs[0][t]
        if final == "scatter":
            buf, base = _dest_for(env, members, 0, dests)
            ctx.copy(buf.view(base + (off - parts[0][0]), n),
                     send.view(off, n), nt=False)
        else:
            slot = slot_view(0, off, n)
            env.copy(ctx, slot, send.view(off, n), t_flag=False)
            if round_consumer is not None:
                round_consumer(t, [(0, off, n, slot)])
    return
    yield  # pragma: no cover - marks this as a generator


def _dest_for(env: CollectiveEnv, members, q: int, dests):
    if dests is not None:
        return dests[q]
    return env.recvbufs[members[q]], 0


class MAReduceScatter:
    """Movement-avoiding reduce-scatter (Section 3.3, Figure 6).

    DAV per node: ``s * (3p - 1)`` — Table 1's YHCCL row.
    """

    name = "ma-reduce-scatter"
    kind = "reduce_scatter"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + env.p * env.slice_size()

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.p * env.slice_size()

    def program(self, ctx, env: CollectiveEnv):
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s), env.sendbufs[0].view(0, env.s))
            return
        yield from ma_pipeline(
            ctx, env, range(env.p), shm_off=0, layout="window",
            final="scatter", tag=("ma-rs",),
        )


class MAAllreduce:
    """Movement-avoiding all-reduce (Section 3.4, Algorithm 2).

    Windowed MA reduction into shared memory; after each round's
    barrier every rank copies the window to its receiving buffer with
    the copy-out flagged non-temporal.  DAV per node: ``s * (5p - 1)``
    — Table 2's YHCCL row.
    """

    name = "ma-allreduce"
    kind = "allreduce"

    def work_set(self, env: CollectiveEnv) -> int:
        # Algorithm 2 line 2: W = s*p + s*p + p*I.
        return 2 * env.s * env.p + env.p * env.slice_size()

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.p * env.slice_size()

    def program(self, ctx, env: CollectiveEnv):
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s), env.sendbufs[0].view(0, env.s))
            return
        recv = env.recvbufs[ctx.rank]

        def consumer(t, round_slices):
            for _, off, n, slot in round_slices:
                env.copy_out(ctx, recv.view(off, n), slot)

        yield from ma_pipeline(
            ctx, env, range(env.p), shm_off=0, layout="window",
            final="shm", tag=("ma-ar",), round_consumer=consumer,
        )


class MAReduce:
    """Movement-avoiding rooted reduce (Section 3.5).

    Windowed MA reduction into shared memory; the root copies each
    round's window into its receiving buffer.  DAV per node:
    ``s * (3p + 1)`` — Table 3's YHCCL row.
    """

    name = "ma-reduce"
    kind = "reduce"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + env.p * env.slice_size()

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.p * env.slice_size()

    def program(self, ctx, env: CollectiveEnv):
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s), env.sendbufs[0].view(0, env.s))
            return
        recv = env.recvbufs[env.root]

        def consumer(t, round_slices):
            if ctx.rank != env.root:
                return
            for _, off, n, slot in round_slices:
                # The root drains the window alone; its peers idle at
                # the closing barrier, so it sees the full socket bw.
                env.copy(ctx, recv.view(off, n), slot, t_flag=True,
                         concurrency=1)

        yield from ma_pipeline(
            ctx, env, range(env.p), shm_off=0, layout="window",
            final="shm", tag=("ma-r",), round_consumer=consumer,
        )


MA_REDUCE_SCATTER = MAReduceScatter()
MA_ALLREDUCE = MAAllreduce()
MA_REDUCE = MAReduce()
