"""Rabenseifner's reduction algorithms (Thakur, Rabenseifner & Gropp [50]).

Recursive *halving* reduce-scatter followed (for allreduce) by recursive
*doubling* allgather: logarithmic step count with halving message
volume, the classic choice for medium messages.  On shared memory every
exchange is still a send/recv through a bounce buffer: the sender copies
its half into shared memory (2 bytes/byte DAV) and the receiver reduces
it (3 bytes/byte), giving Table 1's ``5 s p (1/2 + 1/4 + ... + 1/p)``
per node — asymptotically the same as ring, but with ``log p`` sync
steps instead of ``p - 1``, which is why it wins on small messages
(Section 5.3).

Non-power-of-two rank counts use the standard MPICH preamble: the first
``2 * (p - 2^k)`` ranks form pairs, the odd member folds its full vector
into the even member and sits out the halving phase; a post phase
delivers the folded ranks' result blocks.
"""

from __future__ import annotations

from repro.collectives.common import CollectiveEnv, partition

_ALIGN = 8


def _pow2_below(p: int) -> int:
    r = 1
    while r * 2 <= p:
        r *= 2
    return r


def _front_half(n: int) -> int:
    """Aligned size of the lower half of an ``n``-byte range."""
    return (n // 2 // _ALIGN) * _ALIGN


class Plan:
    """Rank remapping for the non-power-of-two preamble."""

    def __init__(self, p: int):
        self.p = p
        self.pof2 = _pow2_below(p)
        self.rem = p - self.pof2
        self.newrank = {}
        for r in range(p):
            if r < 2 * self.rem:
                self.newrank[r] = r // 2 if r % 2 == 0 else -1
            else:
                self.newrank[r] = r - self.rem

    def oldrank(self, newrank: int) -> int:
        if newrank < self.rem:
            return 2 * newrank
        return newrank + self.rem


def participant_range(plan: Plan, nr: int, s: int) -> tuple[int, int]:
    """Byte range participant ``nr`` owns after full recursive halving.

    At split distance ``d`` the participant keeps the upper half when
    bit ``d`` of its id is set, else the lower half.
    """
    lo, hi = 0, s
    d = plan.pof2 // 2
    while d >= 1:
        mid = lo + _front_half(hi - lo)
        if nr & d:
            lo = mid
        else:
            hi = mid
        d //= 2
    return lo, hi


def _halving_phase(ctx, env: CollectiveEnv, *, tag):
    """Preamble + recursive halving.  On return, participant ``nr`` holds
    its fully reduced ``participant_range`` in a private ``work`` buffer
    (stored in ``env.params['_rab_work'][rank]``); folded ranks hold
    nothing.  Yields sync events."""
    p, r = env.p, ctx.rank
    plan = Plan(p)
    s = env.s
    send = env.sendbufs[r]
    work = env.engine.alloc(r, s, name=f"rabwork[{r}]")
    env.params.setdefault("_rab_work", {})[r] = work
    area = s

    def stage(rank: int, off: int, n: int):
        return env.shm.view(rank * area + off, n)

    nr = plan.newrank[r]
    # first_contrib: my contribution still lives in the send buffer (no
    # initial full copy — this keeps the DAV at the Table 1 formula).
    first_contrib = True
    if plan.rem and r < 2 * plan.rem:
        if r % 2 == 1:
            env.copy(ctx, stage(r, 0, s), send.view(0, s), t_flag=False)
            ctx.post((tag, "folded", r))
            return
        yield ctx.wait((tag, "folded", r + 1))
        ctx.reduce_out(work.view(0, s), stage(r + 1, 0, s), send.view(0, s),
                       op=env.op)
        first_contrib = False

    d = plan.pof2 // 2
    step = 0
    lo, hi = 0, s
    while d >= 1:
        partner = plan.oldrank(nr ^ d)
        mid = lo + _front_half(hi - lo)
        if nr & d:
            keep_lo, keep_hi = mid, hi
            send_lo, send_hi = lo, mid
        else:
            keep_lo, keep_hi = lo, mid
            send_lo, send_hi = mid, hi
        n_send = send_hi - send_lo
        n_keep = keep_hi - keep_lo
        src = send if first_contrib else work
        if n_send:
            env.copy(ctx, stage(r, send_lo, n_send),
                     src.view(send_lo, n_send), t_flag=False)
        ctx.post((tag, "staged", r, step))
        yield ctx.wait((tag, "staged", partner, step))
        if n_keep:
            if first_contrib:
                ctx.reduce_out(work.view(keep_lo, n_keep),
                               stage(partner, keep_lo, n_keep),
                               send.view(keep_lo, n_keep), op=env.op)
            else:
                ctx.reduce_acc(work.view(keep_lo, n_keep),
                               stage(partner, keep_lo, n_keep), op=env.op)
        first_contrib = False
        lo, hi = keep_lo, keep_hi
        d //= 2
        step += 1


class RabenseifnerReduceScatter:
    """Recursive-halving reduce-scatter.

    DAV per node: ``5 s p (1/2 + ... + 1/p)`` (Table 1; equals
    ``5 s (p - 1)`` for power-of-two ``p``), plus block delivery for the
    folded ranks when ``p`` is not a power of two.
    """

    name = "rabenseifner-reduce-scatter"
    kind = "reduce_scatter"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.s * env.p

    def program(self, ctx, env: CollectiveEnv):
        p, r = env.p, ctx.rank
        if p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s), env.sendbufs[0].view(0, env.s))
            return
        tag = ("rab-rs",)
        yield from _halving_phase(ctx, env, tag=tag)
        plan = Plan(p)
        s = env.s
        nr = plan.newrank[r]
        parts = partition(s, p)
        area = s

        def stage(rank: int, off: int, n: int):
            return env.shm.view(rank * area + off, n)

        # publish the pieces of other ranks' blocks that I own
        if nr >= 0:
            work = env.params["_rab_work"][r]
            lo, hi = participant_range(plan, nr, s)
            for dest in range(p):
                off, n = parts[dest]
                o1, o2 = max(off, lo), min(off + n, hi)
                if o1 >= o2:
                    continue
                if dest == r:
                    ctx.copy(env.recvbufs[r].view(o1 - off, o2 - o1),
                             work.view(o1, o2 - o1), nt=False)
                else:
                    env.copy(ctx, stage(r, o1, o2 - o1),
                             work.view(o1, o2 - o1), t_flag=False)
                    ctx.post((tag, "block", dest, o1))
        # collect my block from the participants that own pieces of it
        off, n = parts[r]
        for o1, o2, owner in _block_sources(plan, parts[r], s):
            if owner == r:
                continue
            yield ctx.wait((tag, "block", r, o1))
            env.copy(ctx, env.recvbufs[r].view(o1 - off, o2 - o1),
                     stage(owner, o1, o2 - o1), t_flag=True)


def _block_sources(plan: Plan, block, s: int):
    """Which participant owns each piece of ``block = (off, n)``."""
    off, n = block
    out = []
    for nr in range(plan.pof2):
        lo, hi = participant_range(plan, nr, s)
        o1, o2 = max(off, lo), min(off + n, hi)
        if o1 < o2:
            out.append((o1, o2, plan.oldrank(nr)))
    return out


class RabenseifnerAllreduce:
    """Recursive-halving reduce-scatter + shared-memory allgather.

    After the halving phase each participant publishes its reduced range
    into a shared result vector (``2 s`` DAV total) and every rank
    copies the full vector out (``2 s p``).  DAV per node matches
    Table 2's ``7 s p (1/2 + ... + 1/p)`` up to ``O(s)`` (the table's
    printed final term ``1/log p`` is read as the intended ``1/p``).
    """

    name = "rabenseifner-allreduce"
    kind = "allreduce"

    def work_set(self, env: CollectiveEnv) -> int:
        return 2 * env.s * env.p + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        # p staging areas + one shared result vector
        return env.s * (env.p + 1)

    def program(self, ctx, env: CollectiveEnv):
        p, r = env.p, ctx.rank
        if p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s), env.sendbufs[0].view(0, env.s))
            return
        tag = ("rab-ar",)
        yield from _halving_phase(ctx, env, tag=tag)
        plan = Plan(p)
        s = env.s
        nr = plan.newrank[r]
        result_base = p * s
        recv = env.recvbufs[r]

        if nr >= 0:
            work = env.params["_rab_work"][r]
            lo, hi = participant_range(plan, nr, s)
            if hi > lo:
                env.copy(ctx, env.shm.view(result_base + lo, hi - lo),
                         work.view(lo, hi - lo), t_flag=False)
        yield ctx.barrier()
        env.copy_out(ctx, recv.view(0, s), env.shm.view(result_base, s))


RABENSEIFNER_REDUCE_SCATTER = RabenseifnerReduceScatter()
RABENSEIFNER_ALLREDUCE = RabenseifnerAllreduce()
