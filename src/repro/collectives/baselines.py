"""Models of the vendor MPI implementations the paper compares against.

Figure 15/16 pit YHCCL against Intel MPI 2021, MVAPICH2 2.3.7, MPICH
4.1, Open MPI 4.1 (CMA-configured) and Hashmi's XPMEM collectives.  We
cannot run those binaries, so each is modelled as the algorithm/copy
mechanism combination its documentation and the paper describe, built
from this package's primitives:

* **Hashmi XPMEM** [30, 31] — direct shared-address-space access: the
  consumer loads the producer's *private* buffer with no copy at all.
  Strength: single-copy, no shared-memory staging.  Weaknesses the
  paper calls out: cross-socket loads hit remote NUMA memory, and the
  stores go through ``memmove`` whose NT threshold sees only the
  ``s/p`` chunk size — so NT stores only engage once ``s/p`` crosses
  2 MB (the Figure 15d/e crossover at 128 MB).
* **Open MPI (CMA)** — kernel-assisted single-copy point-to-point
  (``process_vm_readv``): ring-based reduction collectives, direct-read
  broadcast/allgather.  Page-granular kernel copies never use NT stores
  (Table 5) and one-to-all patterns contend on the source pages' locks.
* **Intel MPI** — same CMA mechanisms with tighter tuning; modelled as
  Open MPI with reduced kernel per-page overhead.
* **MVAPICH2** — socket-aware shared-memory collectives: two-level
  DPML-style reduction, shared-memory pipelined bcast/allgather with
  temporal copies.
* **MPICH** — classic double-copy shared-memory send/recv (nemesis)
  with small eager cells; modelled as the send/recv algorithms with a
  per-cell pipelining overhead, never using NT stores.
"""

from __future__ import annotations

from repro.collectives.allgather import PipelinedAllgather
from repro.collectives.bcast import PipelinedBcast
from repro.collectives.common import CollectiveEnv, partition, subslices
from repro.collectives.dpml import DPMLReduceScatter, DPMLReduce, TwoLevelDPMLAllreduce
from repro.collectives.rabenseifner import (
    RabenseifnerAllreduce,
    RabenseifnerReduceScatter,
)
from repro.collectives.rg import RGReduce

KB = 1024
MB = 1024 * KB

#: MPICH nemesis-style eager cell: each copy pays per-cell pipelining.
MPICH_CELL = 32 * KB
MPICH_CELL_COST = 2.5e-6


# ---------------------------------------------------------------------------
# XPMEM (Hashmi) — direct load/store into remote address spaces
# ---------------------------------------------------------------------------


class XPMEMReduceScatter:
    """Rank ``i`` reduces partition ``i`` straight out of every rank's
    private send buffer.  DAV ``3 s (p-1) + 2s``-ish — lowest of all —
    but the loads of remote ranks' buffers cross the NUMA boundary."""

    name = "xpmem-reduce-scatter"
    kind = "reduce_scatter"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return 8

    def program(self, ctx, env: CollectiveEnv):
        yield from _xpmem_rs(ctx, env, tag=("xp-rs",))


def _xpmem_attach(ctx, env: CollectiveEnv, n_remote: int) -> None:
    """Charge the per-remote-segment attach/translation cost."""
    m = env.engine.machine
    if m is not None and n_remote > 0:
        ctx.compute(n_remote * m.xpmem_attach_overhead)


def _xpmem_rs(ctx, env: CollectiveEnv, *, tag, base_zero: bool = True):
    """Direct-access reduce of this rank's partition.

    ``base_zero`` places the result at offset 0 of the receiving buffer
    (MPI reduce-scatter block semantics); the allreduce variant keeps
    the partition at its natural message offset instead.
    """
    p, r, s = env.p, ctx.rank, env.s
    if p == 1:
        ctx.copy(env.recvbufs[0].view(0, s), env.sendbufs[0].view(0, s))
        return
    yield ctx.barrier()  # attach/registration rendezvous
    _xpmem_attach(ctx, env, p - 1)
    off0, length = partition(s, p)[r]
    recv = env.recvbufs[r]
    if length:
        dst = recv.view(0 if base_zero else off0, length)
        ctx.reduce_out(dst, env.sendbufs[0].view(off0, length),
                       env.sendbufs[1].view(off0, length), op=env.op)
        for a in range(2, p):
            ctx.reduce_acc(dst, env.sendbufs[a].view(off0, length), op=env.op)
    ctx.post((tag, "done", r))


class XPMEMAllreduce:
    """XPMEM reduce-scatter followed by direct allgather of the
    partitions out of the owners' receiving buffers (stores through
    ``memmove``: NT only when ``s/p`` crosses the library threshold)."""

    name = "xpmem-allreduce"
    kind = "allreduce"

    def work_set(self, env: CollectiveEnv) -> int:
        return 2 * env.s * env.p

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return 8

    def program(self, ctx, env: CollectiveEnv):
        p, r, s = env.p, ctx.rank, env.s
        tag = ("xp-ar",)
        yield from _xpmem_rs(ctx, env, tag=tag, base_zero=False)
        if p == 1:
            return
        parts = partition(s, p)
        recv = env.recvbufs[r]
        thr = (
            env.engine.machine.memmove_nt_threshold
            if env.engine.machine
            else 1 << 62
        )
        for owner in range(p):
            off, n = parts[owner]
            if not n or owner == r:
                continue
            yield ctx.wait((tag, "done", owner))
            # direct single-copy from the owner's recvbuf; memmove picks
            # the store path from the chunk size alone.  All ranks read
            # the same owner block: cooperative load.
            ctx.copy(recv.view(off, n), env.recvbufs[owner].view(off, n),
                     nt=n >= thr, policy="memmove", load_concurrency=2)


class XPMEMReduce:
    """Hierarchical direct reduce: each rank reduces its partition from
    all send buffers into shared scratch; the root assembles."""

    name = "xpmem-reduce"
    kind = "reduce"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.s

    def program(self, ctx, env: CollectiveEnv):
        p, r, s = env.p, ctx.rank, env.s
        if p == 1:
            ctx.copy(env.recvbufs[0].view(0, s), env.sendbufs[0].view(0, s))
            return
        tag = ("xp-r",)
        yield ctx.barrier()
        _xpmem_attach(ctx, env, p - 1)
        off0, length = partition(s, p)[r]
        if length:
            dst = env.shm.view(off0, length)
            ctx.reduce_out(dst, env.sendbufs[0].view(off0, length),
                           env.sendbufs[1].view(off0, length), op=env.op)
            for a in range(2, p):
                ctx.reduce_acc(dst, env.sendbufs[a].view(off0, length),
                               op=env.op)
        ctx.post((tag, "part", r))
        if r == env.root:
            thr = (
                env.engine.machine.memmove_nt_threshold
                if env.engine.machine
                else 1 << 62
            )
            for owner in range(p):
                off, n = partition(s, p)[owner]
                if not n:
                    continue
                yield ctx.wait((tag, "part", owner))
                ctx.copy(env.recvbufs[r].view(off, n), env.shm.view(off, n),
                         nt=n >= thr, policy="memmove", concurrency=1)


class XPMEMBcast:
    """Every rank copies the root's buffer directly, in ``s/p`` chunks
    through ``memmove`` — single-copy, but cross-socket readers stream
    over the NUMA link and NT only engages for huge messages."""

    name = "xpmem-bcast"
    kind = "bcast"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return 8

    def program(self, ctx, env: CollectiveEnv):
        p, r, s = env.p, ctx.rank, env.s
        if p == 1 or r == env.root:
            if r == env.root:
                yield ctx.barrier()
            return
        yield ctx.barrier()
        _xpmem_attach(ctx, env, 1)
        thr = (
            env.engine.machine.memmove_nt_threshold
            if env.engine.machine
            else 1 << 62
        )
        chunk = max(8, -(-(s // p) // 8) * 8)
        src = env.sendbufs[env.root]
        for off, n in subslices(0, s, chunk):
            # all non-roots stream the *same* source: each byte crosses
            # the memory system once, cooperatively (load_concurrency)
            ctx.copy(env.recvbufs[r].view(off, n), src.view(off, n),
                     nt=n >= thr, policy="memmove", load_concurrency=2)


class XPMEMAllgather:
    """Each rank copies every peer's send buffer directly (memmove)."""

    name = "xpmem-allgather"
    kind = "allgather"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s * env.p * env.p

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return 8

    def program(self, ctx, env: CollectiveEnv):
        p, r, s = env.p, ctx.rank, env.s
        recv = env.recvbufs[r]
        if p == 1:
            ctx.copy(recv.view(0, s), env.sendbufs[0].view(0, s))
            return
        yield ctx.barrier()
        _xpmem_attach(ctx, env, p - 1)
        thr = (
            env.engine.machine.memmove_nt_threshold
            if env.engine.machine
            else 1 << 62
        )
        chunk = max(8, -(-(s // p) // 8) * 8)
        for a in range(p):
            src = env.sendbufs[a]
            for off, n in subslices(0, s, chunk):
                ctx.copy(recv.view(a * s + off, n), src.view(off, n),
                         nt=n >= thr, policy="memmove", load_concurrency=2)


# ---------------------------------------------------------------------------
# CMA (kernel-assisted) — Open MPI / Intel MPI
# ---------------------------------------------------------------------------


class CMARingReduceScatter:
    """Ring reduce-scatter with kernel-assisted single-copy receives:
    the receiver ``process_vm_readv``-copies the sender's accumulated
    chunk into private scratch (page-walk overhead, temporal stores
    only), then reduces locally."""

    name = "cma-ring-reduce-scatter"
    kind = "reduce_scatter"

    def __init__(self, name: str = "cma-ring-reduce-scatter",
                 kernel_factor: float = 1.0):
        self.name = name
        self.kernel_factor = kernel_factor

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return 8

    def program(self, ctx, env: CollectiveEnv):
        yield from _cma_ring_rs(ctx, env, tag=("cma-rs", self.name),
                                final_in_shm=False,
                                kernel_factor=self.kernel_factor)


def _kernel_extra(env: CollectiveEnv, nbytes: int, factor: float,
                  contention: int = 1) -> float:
    m = env.engine.machine
    if m is None:
        return 0.0
    pages = -(-nbytes // m.kernel_page_size)
    return factor * (
        m.kernel_syscall_overhead + pages * m.kernel_page_overhead * contention
    )


def _cma_ring_rs(ctx, env: CollectiveEnv, *, tag, final_in_shm: bool,
                 kernel_factor: float):
    p, r, s = env.p, ctx.rank, env.s
    if p == 1:
        ctx.copy(env.recvbufs[0].view(0, s), env.sendbufs[0].view(0, s))
        return
    parts = partition(s, p)
    maxc = max(n for _, n in parts)
    send = env.sendbufs[r]
    left = (r - 1) % p
    # Private scratch: one landing buffer for the kernel copy, two
    # alternating accumulators the right neighbour reads directly.
    incoming = env.engine.alloc(r, max(maxc, 8), name=f"cmain[{r}]")
    accbuf = [
        env.engine.alloc(r, max(maxc, 8), name=f"cmaacc[{r}].{i}")
        for i in range(2)
    ]
    # Publish before any step so the neighbour can resolve my buffers
    # (plain assignment: re-runs on the same env must repoint to the
    # current iteration's scratch).
    env.params[("cma_acc", r)] = accbuf

    for k in range(p - 1):
        recv_chunk = (r - k - 2) % p
        r_off, r_len = parts[recv_chunk]
        # Expose my current chunk (zero-copy: the accumulator written in
        # step k-1, or my send buffer at step 0) and fetch the left
        # neighbour's with one kernel-assisted copy.
        ctx.post((tag, "exposed", r, k))
        yield ctx.wait((tag, "exposed", left, k))
        if r_len:
            src = (
                env.sendbufs[left].view(r_off, r_len)
                if k == 0
                else env.params[("cma_acc", left)][(k - 1) % 2].view(0, r_len)
            )
            ctx.copy(incoming.view(0, r_len), src, nt=False, policy="kernel",
                     extra_time=_kernel_extra(env, r_len, kernel_factor))
        ctx.post((tag, "copied", left, k))
        last = k == p - 2
        if last:
            dst = (
                env.shm.view(r_off, r_len)
                if final_in_shm
                else env.recvbufs[r].view(0, r_len)
            )
        else:
            # accbuf[k % 2] was read by the right neighbour at step k-1;
            # wait for that read before overwriting.
            if k >= 2:
                yield ctx.wait((tag, "copied", r, k - 1))
            dst = accbuf[k % 2].view(0, r_len)
        if r_len:
            ctx.reduce_out(dst, incoming.view(0, r_len),
                           send.view(r_off, r_len), op=env.op)
        if last:
            ctx.post((tag, "result", recv_chunk))


class CMARingAllreduce:
    """CMA ring reduce-scatter into shm + direct copy-out (no NT)."""

    name = "cma-ring-allreduce"
    kind = "allreduce"

    def __init__(self, name: str = "cma-ring-allreduce",
                 kernel_factor: float = 1.0):
        self.name = name
        self.kernel_factor = kernel_factor

    def work_set(self, env: CollectiveEnv) -> int:
        return 2 * env.s * env.p

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.s

    def program(self, ctx, env: CollectiveEnv):
        p, r, s = env.p, ctx.rank, env.s
        tag = ("cma-ar", self.name)
        yield from _cma_ring_rs(ctx, env, tag=tag, final_in_shm=True,
                                kernel_factor=self.kernel_factor)
        if p == 1:
            return
        parts = partition(s, p)
        recv = env.recvbufs[r]
        for chunk in range(p):
            off, n = parts[chunk]
            if not n:
                continue
            if chunk != r:
                yield ctx.wait((tag, "result", chunk))
            ctx.copy(recv.view(off, n), env.shm.view(off, n), nt=False,
                     policy="t")


class CMABcast:
    """One-to-all direct read through CMA: every rank kernel-copies the
    root's buffer; the kernel serializes the page-lock walks (Table 5's
    one-to-all contention)."""

    name = "cma-bcast"
    kind = "bcast"

    def __init__(self, name: str = "cma-bcast", kernel_factor: float = 1.0):
        self.name = name
        self.kernel_factor = kernel_factor

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return 8

    def program(self, ctx, env: CollectiveEnv):
        p, r, s = env.p, ctx.rank, env.s
        yield ctx.barrier()
        if p == 1 or r == env.root:
            return
        chunk = max(8, min(2 * MB, -(-(s // max(1, p // 4)) // 8) * 8))
        src = env.sendbufs[env.root]
        for off, n in subslices(0, s, chunk):
            ctx.copy(env.recvbufs[r].view(off, n), src.view(off, n),
                     nt=False, policy="kernel", load_concurrency=2,
                     extra_time=_kernel_extra(env, n, self.kernel_factor,
                                              contention=max(1, p - 1)))


class CMAAllgather:
    """All-to-all direct CMA reads of the peers' send buffers."""

    name = "cma-allgather"
    kind = "allgather"

    def __init__(self, name: str = "cma-allgather", kernel_factor: float = 1.0):
        self.name = name
        self.kernel_factor = kernel_factor

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s * env.p * env.p

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return 8

    def program(self, ctx, env: CollectiveEnv):
        p, r, s = env.p, ctx.rank, env.s
        recv = env.recvbufs[r]
        if p == 1:
            ctx.copy(recv.view(0, s), env.sendbufs[0].view(0, s))
            return
        yield ctx.barrier()
        for i in range(1, p + 1):
            a = (r + i) % p  # staggered to spread page-lock contention
            src = env.sendbufs[a]
            ctx.copy(recv.view(a * s + 0, s), src.view(0, s), nt=False,
                     policy="kernel",
                     extra_time=_kernel_extra(env, s, self.kernel_factor,
                                              contention=2))


# ---------------------------------------------------------------------------
# MPICH — double-copy shm send/recv with eager cells
# ---------------------------------------------------------------------------


class _CellOverheadMixin:
    """Adds MPICH's per-cell pipelining cost to an env before running."""

    cell_cost = MPICH_CELL_COST

    def _with_cells(self, env: CollectiveEnv) -> None:
        env.params["cell_overhead"] = (self.cell_cost, MPICH_CELL)


class MPICHAllreduce(_CellOverheadMixin, RabenseifnerAllreduce):
    name = "mpich-allreduce"

    def program(self, ctx, env):
        self._with_cells(env)
        return super().program(ctx, env)


class MPICHReduceScatter(_CellOverheadMixin, RabenseifnerReduceScatter):
    name = "mpich-reduce-scatter"

    def program(self, ctx, env):
        self._with_cells(env)
        return super().program(ctx, env)


def _bounded_slice(s: int) -> int:
    """Simulation granularity: at most ~64 pipeline slices per message.

    MPICH really pipelines in 32 KB cells; the per-cell cost is charged
    by the ``cell_overhead`` hook, so coarsening the *simulated* slice
    count changes neither traffic nor the cell overhead totals.
    """
    return max(MPICH_CELL, -(-s // 64 // 8) * 8)


class MPICHReduce(_CellOverheadMixin, RGReduce):
    """Binomial (k=1) shm tree reduce with eager-cell overheads."""

    name = "mpich-reduce"
    kind = "reduce"

    def __init__(self):
        super().__init__(branch=1, slice_size=MPICH_CELL)

    def shm_bytes(self, env):
        # slots sized for the bounded simulation slice used in program()
        i_size = -(-min(_bounded_slice(env.s), max(env.s, 8)) // 8) * 8
        return 2 * env.p * i_size

    def program(self, ctx, env):
        self._with_cells(env)
        inner = RGReduce(branch=1, slice_size=_bounded_slice(env.s))
        return inner.program(ctx, env)


class MPICHBcast(_CellOverheadMixin, PipelinedBcast):
    name = "mpich-bcast"

    def program(self, ctx, env):
        self._with_cells(env)
        env.imax = min(env.imax, _bounded_slice(env.s))
        return super().program(ctx, env)


class MPICHAllgather(_CellOverheadMixin, PipelinedAllgather):
    name = "mpich-allgather"

    def program(self, ctx, env):
        self._with_cells(env)
        env.imax = min(env.imax, _bounded_slice(env.s))
        return super().program(ctx, env)


# ---------------------------------------------------------------------------
# Vendor registry
# ---------------------------------------------------------------------------


def make_vendor_suites():
    """Per-vendor collective algorithm suites (copy policy in 2nd slot).

    Returns ``{vendor: {collective_kind: (algorithm, copy_policy)}}``.
    """
    return {
        "Open MPI": {
            "reduce_scatter": (CMARingReduceScatter("ompi-rs"), "t"),
            "allreduce": (CMARingAllreduce("ompi-ar"), "t"),
            "reduce": (RGReduce(branch=3), "t"),
            "bcast": (CMABcast("ompi-bc"), "t"),
            "allgather": (CMAAllgather("ompi-ag"), "t"),
        },
        "Intel MPI": {
            "reduce_scatter": (
                CMARingReduceScatter("impi-rs", kernel_factor=0.5), "t"),
            "allreduce": (CMARingAllreduce("impi-ar", kernel_factor=0.5), "t"),
            "reduce": (RGReduce(branch=4), "memmove"),
            "bcast": (PipelinedBcast(), "memmove"),
            "allgather": (CMAAllgather("impi-ag", kernel_factor=0.5), "t"),
        },
        "MVAPICH2": {
            "reduce_scatter": (DPMLReduceScatter(), "t"),
            "allreduce": (TwoLevelDPMLAllreduce(), "t"),
            "reduce": (DPMLReduce(), "t"),
            "bcast": (PipelinedBcast(), "t"),
            "allgather": (PipelinedAllgather(), "t"),
        },
        "MPICH": {
            "reduce_scatter": (MPICHReduceScatter(), "t"),
            "allreduce": (MPICHAllreduce(), "t"),
            "reduce": (MPICHReduce(), "t"),
            "bcast": (MPICHBcast(), "t"),
            "allgather": (MPICHAllgather(), "t"),
        },
        "XPMEM": {
            "reduce_scatter": (XPMEMReduceScatter(), "t"),
            "allreduce": (XPMEMAllreduce(), "t"),
            "reduce": (XPMEMReduce(), "t"),
            "bcast": (XPMEMBcast(), "t"),
            "allgather": (XPMEMAllgather(), "t"),
        },
    }
