"""DPML: data-partitioning-based multi-leader reduction (Bayatpour et al. [13]).

The DPML design is maximally parallel and minimally synchronized: every
rank copies its *entire* send buffer into shared memory (one barrier),
then each rank serially reduces one partition across all ``p`` copies
(one barrier), then results are copied out.  The price is the full
copy-in — ``2 s p`` DAV — which is exactly the redundancy the paper's
movement-avoiding design eliminates (Figure 2a vs 2c):

* reduce-scatter:  ``2sp + 3s(p-1) + 2s  = s(5p - 1)``   (Table 1)
* allreduce:       ``2sp + 3s(p-1) + 2sp = s(7p - 3)``   (Table 2 prints
  ``s(7p - 1)``; the 2s discrepancy is in the paper's arithmetic — we
  count what the algorithm moves)
* reduce:          ``2sp + 3s(p-1) + 2s  = s(5p - 1)``   (Table 3 prints
  ``s(5p + 1)``)

The reduction is blocked (the paper tunes an 8 KB reduction block for
DPML) to keep operands cache-resident; the simulation caps the number
of blocks per partition so the op count stays tractable for
quarter-gigabyte messages — traffic totals are unaffected.

The two-level (socket-aware) DPML variant used by YHCCL's small-message
switch (Section 5.1) reduces within sockets first, halving the shared
traffic that crosses the NUMA boundary.  Its count (the ``dpml2`` row
in ``models.dav``) collapses to the flat ``s(7p - 3)`` when every
socket holds at least two ranks, but diverges for singleton sockets,
which copy their full buffer instead of reducing — e.g. ``15s`` at
``p = 2`` spread over two sockets.
"""

from __future__ import annotations

from repro.collectives.common import CollectiveEnv, partition, subslices
from repro.collectives.socket_aware import socket_groups

#: the paper's tuned reduction block for DPML on NodeA
REDUCE_BLOCK = 8 * 1024
#: cap on simulated blocks per partition (simulation granularity only)
MAX_BLOCKS = 16


def _blocks(off: int, length: int) -> list[tuple[int, int]]:
    if length <= 0:
        return []
    block = max(REDUCE_BLOCK, -(-length // MAX_BLOCKS))
    block = -(-block // 8) * 8
    return subslices(off, length, block)


class DPMLReduceScatter:
    """DPML reduce-scatter: copy-all-in, parallel partition reduction."""

    name = "dpml-reduce-scatter"
    kind = "reduce_scatter"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.s * (env.p + 1)

    def program(self, ctx, env: CollectiveEnv):
        yield from _dpml_core(ctx, env, tag=("dpml-rs",), out="scatter")


class DPMLAllreduce:
    """DPML allreduce: results reduced into shm, then copied out by all."""

    name = "dpml-allreduce"
    kind = "allreduce"

    def work_set(self, env: CollectiveEnv) -> int:
        return 2 * env.s * env.p + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.s * (env.p + 1)

    def program(self, ctx, env: CollectiveEnv):
        yield from _dpml_core(ctx, env, tag=("dpml-ar",), out="all")


class DPMLReduce:
    """DPML rooted reduce: results into shm, root copies out."""

    name = "dpml-reduce"
    kind = "reduce"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.s * (env.p + 1)

    def program(self, ctx, env: CollectiveEnv):
        yield from _dpml_core(ctx, env, tag=("dpml-r",), out="root")


def _dpml_core(ctx, env: CollectiveEnv, *, tag, out: str):
    p, r = env.p, ctx.rank
    s = env.s
    if p == 1:
        ctx.copy(env.recvbufs[0].view(0, s), env.sendbufs[0].view(0, s))
        return
    send = env.sendbufs[r]
    result_base = p * s  # result vector after the p copy-in areas

    # Phase 1: copy the whole send buffer into my shm area.
    for off, n in _blocks(0, s):
        env.copy(ctx, env.shm.view(r * s + off, n), send.view(off, n),
                 t_flag=False)
    yield ctx.barrier()

    # Phase 2: serially reduce my partition across all p copies.  The
    # result lands in shared memory (the DPML design point), then the
    # copy-out phase distributes it — 2s extra DAV for reduce-scatter,
    # matching Table 1's s(5p - 1).
    parts = partition(s, p)
    off0, length = parts[r]
    for off, n in _blocks(off0, length):
        dst = env.shm.view(result_base + off, n)
        ctx.reduce_out(dst, env.shm.view(0 * s + off, n),
                       env.shm.view(1 * s + off, n), op=env.op)
        for src_rank in range(2, p):
            ctx.reduce_acc(dst, env.shm.view(src_rank * s + off, n),
                           op=env.op)
    if out == "scatter":
        for off, n in _blocks(off0, length):
            env.copy(ctx, env.recvbufs[r].view(off - off0, n),
                     env.shm.view(result_base + off, n), t_flag=True)
        return
    yield ctx.barrier()

    # Phase 3: copy-out.
    if out == "all":
        for off, n in _blocks(0, s):
            env.copy_out(ctx, env.recvbufs[r].view(off, n),
                         env.shm.view(result_base + off, n))
    elif out == "root" and r == env.root:
        for off, n in _blocks(0, s):
            env.copy(ctx, env.recvbufs[r].view(off, n),
                     env.shm.view(result_base + off, n), t_flag=True,
                     concurrency=1)


class TwoLevelDPMLAllreduce:
    """Socket-aware two-level DPML (YHCCL's small-message path, Sec. 5.1).

    Level 1: within each socket, members copy their buffers into the
    socket's shm area and per-socket leaders-partitioned reduction runs
    exactly like DPML.  Level 2: partitions are combined across the
    ``m`` socket results and copied out.  One barrier per phase — the
    low-synchronization structure DPML is prized for — while keeping
    NUMA traffic to the ``m - 1`` cross-socket combine reads.
    """

    name = "dpml2-allreduce"
    kind = "allreduce"

    def work_set(self, env: CollectiveEnv) -> int:
        return 2 * env.s * env.p + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        m = len(socket_groups(env))
        return env.s * (env.p + m + 1)

    def program(self, ctx, env: CollectiveEnv):
        p, r = env.p, ctx.rank
        s = env.s
        if p == 1:
            ctx.copy(env.recvbufs[0].view(0, s), env.sendbufs[0].view(0, s))
            return
        groups = socket_groups(env)
        m = len(groups)
        my_sock = next(k for k, g in enumerate(groups) if r in g)
        members = groups[my_sock]
        q = members.index(r)
        sock_result = (p + my_sock) * s  # per-socket partial result
        final_base = (p + m) * s

        # Level 1a: copy-in within the socket.
        send = env.sendbufs[r]
        for off, n in _blocks(0, s):
            env.copy(ctx, env.shm.view(r * s + off, n), send.view(off, n),
                     t_flag=False)
        yield ctx.barrier(members)

        # Level 1b: partition reduction across the socket's copies.
        parts = partition(s, len(members))
        off0, length = parts[q]
        for off, n in _blocks(off0, length):
            dst = env.shm.view(sock_result + off, n)
            if len(members) == 1:
                env.copy(ctx, dst, env.shm.view(members[0] * s + off, n),
                         t_flag=False)
                continue
            ctx.reduce_out(dst, env.shm.view(members[0] * s + off, n),
                           env.shm.view(members[1] * s + off, n), op=env.op)
            for mr in members[2:]:
                ctx.reduce_acc(dst, env.shm.view(mr * s + off, n), op=env.op)
        yield ctx.barrier()

        # Level 2: combine socket results on global partitions.
        gparts = partition(s, p)
        goff, glen = gparts[r]
        for off, n in _blocks(goff, glen):
            dst = env.shm.view(final_base + off, n)
            if m == 1:
                env.copy(ctx, dst, env.shm.view((p + 0) * s + off, n),
                         t_flag=False)
                continue
            ctx.reduce_out(dst, env.shm.view((p + 0) * s + off, n),
                           env.shm.view((p + 1) * s + off, n), op=env.op)
            for k in range(2, m):
                ctx.reduce_acc(dst, env.shm.view((p + k) * s + off, n),
                               op=env.op)
        yield ctx.barrier()
        for off, n in _blocks(0, s):
            env.copy_out(ctx, env.recvbufs[r].view(off, n),
                         env.shm.view(final_base + off, n))


DPML_REDUCE_SCATTER = DPMLReduceScatter()
DPML_ALLREDUCE = DPMLAllreduce()
DPML_REDUCE = DPMLReduce()
DPML2_ALLREDUCE = TwoLevelDPMLAllreduce()
