"""Ring reduce-scatter / allreduce (Patarasuk & Yuan [45]) on shared memory.

The ring algorithms are bandwidth-optimal in the send/recv cost model,
but on a shared-memory node every ``MPI_Send``/``MPI_Recv`` pair moves
data through a bounce buffer: the sender copies its chunk into shared
memory (2 bytes DAV per byte) and the receiver reduces it from there
(3 bytes DAV per byte) — ``5 s (p-1)`` per node for reduce-scatter
(Table 1), which the movement-avoiding design beats by construction.

Chunk schedule: at step ``k`` rank ``r`` sends chunk ``(r - k - 1) mod p``
and receives chunk ``(r - k - 2) mod p`` from its left neighbour, ending
with its own chunk ``r`` fully reduced (standard ring reduce-scatter,
rotated so rank ``r`` owns partition ``r``).

For the allreduce, the reduce-scatter's final chunks are placed in
shared memory and every rank then copies the remaining ``p - 1`` chunks
out directly (single-copy allgather through the shared segment),
matching Table 2's ``7 s (p-1)``.

Shared-memory slots are double-buffered per rank; a sender reusing its
slot waits for the consumer's flag from two steps earlier.
"""

from __future__ import annotations

from repro.collectives.common import CollectiveEnv, partition


def _chunk(parts, idx):
    return parts[idx]


def _max_chunk(parts) -> int:
    return max((length for _, length in parts), default=0)


def ring_reduce_scatter_pipeline(ctx, env: CollectiveEnv, *,
                                 final_in_shm: bool, tag=("ring",)):
    """Ring reduce-scatter for one rank.

    With ``final_in_shm`` the fully reduced chunk ``r`` is written to
    rank ``r``'s *result slot* in shared memory (at offset
    ``p * 2 * slot + r's result area``) for a following allgather;
    otherwise it lands in the rank's receiving buffer.
    """
    p, r = env.p, ctx.rank
    parts = partition(env.s, p)
    slot = _max_chunk(parts)
    send = env.sendbufs[r]
    left = (r - 1) % p

    def slot_view(rank: int, k: int, n: int):
        return env.shm.view((rank * 2 + k % 2) * slot, n)

    def result_view(chunk: int, n: int):
        return env.shm.view((p * 2 + chunk) * slot, n)

    acc = None  # BufView of the running accumulation (private temp)
    tmp = env.engine.alloc(r, max(slot, 8), name=f"ringtmp[{r}]")

    for k in range(p - 1):
        send_chunk = (r - k - 1) % p
        recv_chunk = (r - k - 2) % p
        s_off, s_len = parts[send_chunk]
        # "MPI_Send": copy the outgoing chunk into my bounce slot.
        if k >= 2:
            yield ctx.wait((tag, "slotfree", r, k - 2))
        src = send.view(s_off, s_len) if k == 0 else acc
        if s_len:
            env.copy(ctx, slot_view(r, k, s_len), src, t_flag=False)
        ctx.post((tag, "sent", r, k))
        # "MPI_Recv" + reduce: combine the left neighbour's chunk with my
        # own contribution to the same chunk.
        yield ctx.wait((tag, "sent", left, k))
        r_off, r_len = parts[recv_chunk]
        incoming = slot_view(left, k, r_len)
        mine = send.view(r_off, r_len)
        last = k == p - 2
        if last:
            dst = (
                result_view(recv_chunk, r_len)
                if final_in_shm
                else env.recvbufs[r].view(0, r_len)
            )
        else:
            dst = tmp.view(0, r_len)
        if r_len:
            ctx.reduce_out(dst, incoming, mine, op=env.op)
        acc = dst
        ctx.post((tag, "slotfree", left, k))
        if last:
            ctx.post((tag, "result", recv_chunk))


class RingReduceScatter:
    """Ring reduce-scatter: DAV ``5 s (p - 1)`` (Table 1)."""

    name = "ring-reduce-scatter"
    kind = "reduce_scatter"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        parts = partition(env.s, env.p)
        return 2 * env.p * _max_chunk(parts)

    def program(self, ctx, env: CollectiveEnv):
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s), env.sendbufs[0].view(0, env.s))
            return
        yield from ring_reduce_scatter_pipeline(ctx, env, final_in_shm=False)


class RingAllreduce:
    """Ring allreduce: ring RS into shm + direct shm allgather.

    DAV ``7 s (p - 1)`` (Table 2): ``5 s (p-1)`` for the reduce-scatter
    plus one copy-out per foreign chunk (``2 s (p-1)``); the own chunk is
    written once more to the receiving buffer (``O(s)``).
    """

    name = "ring-allreduce"
    kind = "allreduce"

    def work_set(self, env: CollectiveEnv) -> int:
        return 2 * env.s * env.p + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        parts = partition(env.s, env.p)
        return (2 * env.p + env.p) * _max_chunk(parts)

    def program(self, ctx, env: CollectiveEnv):
        p, r = env.p, ctx.rank
        if p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s), env.sendbufs[0].view(0, env.s))
            return
        yield from ring_reduce_scatter_pipeline(
            ctx, env, final_in_shm=True, tag=("ring-ar",)
        )
        parts = partition(env.s, p)
        slot = _max_chunk(parts)
        recv = env.recvbufs[r]
        for chunk in range(p):
            off, n = parts[chunk]
            if not n:
                continue
            if chunk != r:
                yield ctx.wait((("ring-ar",), "result", chunk))
            env.copy_out(
                ctx,
                recv.view(off, n),
                env.shm.view((2 * p + chunk) * slot, n),
            )


RING_REDUCE_SCATTER = RingReduceScatter()
RING_ALLREDUCE = RingAllreduce()
