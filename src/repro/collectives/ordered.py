"""Order-preserving reduction collectives for non-commutative operators.

When the operator may not be reordered, the reduction must evaluate

    ((((s_0 op s_1) op s_2) op ... ) op s_{p-1})

— a left fold in rank order.  The chain is inherently serial across
ranks, but *pipelining over slices* recovers most of the parallelism:
while rank 2 folds slice t, rank 1 folds slice t+1 — the classic
systolic pipeline, with fill time ``p * t_slice`` and steady-state
throughput one slice per stage.

DAV per node: rank 0 copies in (``2s``), ranks 1..p-1 fold in place
(``3s`` each) → ``s(3p - 1)``; the allreduce adds the ``2sp`` copy-out.
Identical leading terms to the MA designs — ordered evaluation costs
order, not bytes.
"""

from __future__ import annotations

from repro.collectives.common import (
    CollectiveEnv,
    compute_slice_size,
    partition,
    subslices,
)


def _chain(ctx, env: CollectiveEnv, *, tag) -> object:
    """The slice-pipelined left fold into shared memory (generator).

    Shared memory holds the running partial at natural offsets; rank
    ``r`` folds its contribution into slice ``t`` after rank ``r-1``
    finished that slice.  Rank ``p-1``'s flag marks the slice final.
    """
    p, r, s = env.p, ctx.rank, env.s
    i_size = compute_slice_size(s, p, env.imax, env.imin)
    send = env.sendbufs[r]
    for t, (off, n) in enumerate(subslices(0, s, i_size)):
        slot = env.shm.view(off, n)
        if r == 0:
            env.copy(ctx, slot, send.view(off, n), t_flag=False)
        else:
            yield ctx.wait((tag, "chain", t, r - 1))
            # ordered: partial (op) my contribution — operand order
            # matters, the partial is the left operand
            ctx.reduce_out(slot, slot, send.view(off, n), op=env.op)
        ctx.post((tag, "chain", t, r))


class OrderedReduce:
    """Left-fold rooted reduce (non-commutative-safe)."""

    name = "ordered-reduce"
    kind = "reduce"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.s

    def program(self, ctx, env: CollectiveEnv):
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s),
                     env.sendbufs[0].view(0, env.s))
            return
        tag = ("ord-r",)
        yield from _chain(ctx, env, tag=tag)
        if ctx.rank == env.root:
            p, s = env.p, env.s
            i_size = compute_slice_size(s, p, env.imax, env.imin)
            for t, (off, n) in enumerate(subslices(0, s, i_size)):
                yield ctx.wait((tag, "chain", t, p - 1))
                env.copy(ctx, env.recvbufs[env.root].view(off, n),
                         env.shm.view(off, n), t_flag=True, concurrency=1)


class OrderedAllreduce:
    """Left-fold allreduce: chain + all-rank copy-out."""

    name = "ordered-allreduce"
    kind = "allreduce"

    def work_set(self, env: CollectiveEnv) -> int:
        return 2 * env.s * env.p + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.s

    def program(self, ctx, env: CollectiveEnv):
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s),
                     env.sendbufs[0].view(0, env.s))
            return
        tag = ("ord-ar",)
        yield from _chain(ctx, env, tag=tag)
        p, s = env.p, env.s
        recv = env.recvbufs[ctx.rank]
        i_size = compute_slice_size(s, p, env.imax, env.imin)
        for t, (off, n) in enumerate(subslices(0, s, i_size)):
            yield ctx.wait((tag, "chain", t, p - 1))
            env.copy_out(ctx, recv.view(off, n), env.shm.view(off, n))


class OrderedReduceScatter:
    """Left-fold reduce-scatter: chain + per-rank block copy-out."""

    name = "ordered-reduce-scatter"
    kind = "reduce_scatter"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.s

    def program(self, ctx, env: CollectiveEnv):
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s),
                     env.sendbufs[0].view(0, env.s))
            return
        tag = ("ord-rs",)
        yield from _chain(ctx, env, tag=tag)
        p, s = env.p, env.s
        i_size = compute_slice_size(s, p, env.imax, env.imin)
        off0, length = partition(s, p)[ctx.rank]
        slices = subslices(0, s, i_size)
        for off, n in subslices(off0, length, i_size):
            # a block piece may straddle two chain slices; the chain
            # finishes slices in ascending order, so waiting on the one
            # containing the piece's last byte covers all of it
            end = off + n - 1
            t = next(i for i, (so, sn) in enumerate(slices)
                     if so <= end < so + sn)
            yield ctx.wait((tag, "chain", t, p - 1))
            env.copy(ctx, env.recvbufs[ctx.rank].view(off - off0, n),
                     env.shm.view(off, n), t_flag=True)


ORDERED_REDUCE = OrderedReduce()
ORDERED_ALLREDUCE = OrderedAllreduce()
ORDERED_REDUCE_SCATTER = OrderedReduceScatter()
