"""Vector collectives: ``MPI_Reduce_scatter`` (general counts) and
``MPI_Allgatherv``.

The paper's reduce-scatter is the uniform-block special case; real MPI
exposes per-rank counts.  The movement-avoiding pipeline generalizes
directly — its partitioning is a parameter, not an assumption — so the
v-variants inherit the ``2s`` copy-in floor: the Theorem 3.1 argument
never used uniformity.

* :class:`MAReduceScatterV` — full-vector input on every rank (MPI
  semantics), rank ``r`` receives its ``counts[r]``-byte block reduced.
* :class:`PipelinedAllgatherV` — rank ``r`` contributes ``counts[r]``
  bytes; every rank receives the concatenation, via the double-buffered
  Algorithm 4 pipeline with per-rank slice counts.

Both come with dedicated runners (buffer shapes differ per rank) that
verify against numpy oracles in functional mode.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.collectives.common import (
    ALIGN,
    CollectiveEnv,
    IMAX_DEFAULT,
    subslices,
)
from repro.collectives.ma import ma_pipeline
from repro.sim.engine import Engine, RunResult


def _check_counts(counts: Sequence[int], p: int) -> list:
    counts = [int(c) for c in counts]
    if len(counts) != p:
        raise ValueError(f"need {p} counts, got {len(counts)}")
    if any(c < 0 for c in counts):
        raise ValueError("counts must be non-negative")
    if any(c % ALIGN for c in counts):
        raise ValueError(f"counts must be multiples of {ALIGN}")
    if sum(counts) <= 0:
        raise ValueError("at least one count must be positive")
    return counts


def counts_to_partition(counts: Sequence[int]) -> list:
    """(offset, length) blocks for the given per-rank counts."""
    out = []
    off = 0
    for c in counts:
        out.append((off, c))
        off += c
    return out


class MAReduceScatterV:
    """Movement-avoiding reduce-scatter with per-rank block counts."""

    kind = "reduce_scatter_v"

    def __init__(self, counts: Sequence[int]):
        self.counts = list(counts)
        self.name = "ma-reduce-scatter-v"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return env.p * env.slice_size()

    def program(self, ctx, env: CollectiveEnv):
        counts = _check_counts(self.counts, env.p)
        env.params["partition"] = counts_to_partition(counts)
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s),
                     env.sendbufs[0].view(0, env.s))
            return
        yield from ma_pipeline(
            ctx, env, range(env.p), shm_off=0, layout="window",
            final="scatter", tag=("ma-rsv",),
        )


class PipelinedAllgatherV:
    """Algorithm 4 with per-rank contribution sizes."""

    kind = "allgather_v"

    def __init__(self, counts: Sequence[int]):
        self.counts = list(counts)
        self.name = "pipelined-allgather-v"

    def _slice(self, env: CollectiveEnv) -> int:
        biggest = max(self.counts) if self.counts else 8
        return -(-min(env.imax, max(biggest, 8)) // 8) * 8

    def work_set(self, env: CollectiveEnv) -> int:
        total = sum(self.counts)
        return total + total * env.p + 2 * env.p * self._slice(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return 2 * env.p * self._slice(env)

    def program(self, ctx, env: CollectiveEnv):
        counts = _check_counts(self.counts, env.p)
        p, r = env.p, ctx.rank
        parts = counts_to_partition(counts)
        send = env.sendbufs[r]
        recv = env.recvbufs[r]
        i_size = self._slice(env)
        per_rank_slices = [subslices(0, c, i_size) for c in counts]
        steps = max(len(s) for s in per_rank_slices)

        def slot(rank: int, t: int, n: int):
            return env.shm.view((2 * rank + t % 2) * i_size, n)

        def drain(t: int) -> None:
            for a in range(p):
                if t < len(per_rank_slices[a]):
                    off, n = per_rank_slices[a][t]
                    env.copy_out(ctx, recv.view(parts[a][0] + off, n),
                                 slot(a, t, n))

        for t in range(steps):
            if t < len(per_rank_slices[r]):
                off, n = per_rank_slices[r][t]
                env.copy(ctx, slot(r, t, n), send.view(off, n),
                         t_flag=False)
            if t >= 1:
                drain(t - 1)
            yield ctx.barrier()
        drain(steps - 1)


# ---------------------------------------------------------------------------
# Runners (buffer shapes differ per rank, so make_env does not apply)
# ---------------------------------------------------------------------------


def run_reduce_scatter_v(engine: Engine, counts: Sequence[int], *,
                         op: str = "sum", copy_policy: str = "t",
                         imax: int = IMAX_DEFAULT,
                         verify: Optional[bool] = None) -> RunResult:
    """MPI_Reduce_scatter: full-vector inputs, per-rank reduced blocks."""
    counts = _check_counts(counts, engine.nranks)
    total = sum(counts)
    alg = MAReduceScatterV(counts)
    sendbufs = [engine.alloc(r, total, random=True, name=f"send[{r}]")
                for r in range(engine.nranks)]
    recvbufs = [engine.alloc(r, max(c, ALIGN), fill=0.0, name=f"recv[{r}]")
                for r, c in enumerate(counts)]
    env = CollectiveEnv(
        engine=engine, sendbufs=sendbufs, recvbufs=recvbufs, shm=None,
        s=total, p=engine.nranks, op=op, copy_policy=copy_policy, imax=imax,
    )
    env.work_set = alg.work_set(env)
    env.shm = engine.alloc_shared(max(ALIGN, alg.shm_bytes(env)),
                                  name="shm.rsv")
    result = engine.run(lambda ctx: alg.program(ctx, env))
    if verify is None:
        verify = engine.functional
    if verify:
        _verify_rsv(env, counts)
    return result


def _verify_rsv(env: CollectiveEnv, counts) -> None:
    from repro.collectives.ops import get_op

    ufunc = get_op(env.op).ufunc
    acc = env.sendbufs[0].array().copy()
    for r in range(1, env.p):
        ufunc(acc, env.sendbufs[r].array(), out=acc)
    isz = env.engine.dtype.itemsize
    for r, (off, n) in enumerate(counts_to_partition(counts)):
        got = env.recvbufs[r].array()[: n // isz]
        np.testing.assert_allclose(
            got, acc[off // isz : (off + n) // isz], rtol=1e-10,
            err_msg=f"reduce_scatter_v block wrong on rank {r}",
        )


def run_allgather_v(engine: Engine, counts: Sequence[int], *,
                    copy_policy: str = "t", imax: int = IMAX_DEFAULT,
                    verify: Optional[bool] = None) -> RunResult:
    """MPI_Allgatherv: ragged contributions, concatenated everywhere."""
    counts = _check_counts(counts, engine.nranks)
    total = sum(counts)
    alg = PipelinedAllgatherV(counts)
    sendbufs = [engine.alloc(r, max(c, ALIGN), random=True,
                             name=f"send[{r}]")
                for r, c in enumerate(counts)]
    recvbufs = [engine.alloc(r, total, fill=0.0, name=f"recv[{r}]")
                for r in range(engine.nranks)]
    env = CollectiveEnv(
        engine=engine, sendbufs=sendbufs, recvbufs=recvbufs, shm=None,
        s=total, p=engine.nranks, copy_policy=copy_policy, imax=imax,
    )
    env.work_set = alg.work_set(env)
    env.shm = engine.alloc_shared(max(ALIGN, alg.shm_bytes(env)),
                                  name="shm.agv")
    result = engine.run(lambda ctx: alg.program(ctx, env))
    if verify is None:
        verify = engine.functional
    if verify:
        isz = engine.dtype.itemsize
        expected = np.concatenate([
            env.sendbufs[r].array()[: counts[r] // isz]
            for r in range(env.p)
        ])
        for r in range(env.p):
            np.testing.assert_array_equal(
                env.recvbufs[r].array(), expected,
                err_msg=f"allgatherv result wrong on rank {r}",
            )
    return result
