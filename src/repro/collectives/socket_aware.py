"""Socket-aware two-level movement-avoiding reduction (Section 3.3, Fig. 7).

The plain MA pipeline synchronizes ``p - 1`` times per round, which
grows painful at scale.  The socket-aware variant trades a little DAV
for far fewer synchronizations:

* **Level 1** — each socket runs an *intra-socket* MA reduction of the
  whole message over its ``p/m`` local ranks, accumulating into a
  per-socket shared-memory segment (``p/m - 1`` neighbour syncs).  All
  traffic stays inside the socket: local send buffers, local slices of
  shared memory — no inter-NUMA DRAM accesses.
* **Level 2** — after one node barrier, the ranks partition the message
  globally; each rank combines the ``m`` socket segments for its
  partition (``3 * s * (m-1)`` DAV) and places the final result.

DAV per node (Tables 1–3): reduce-scatter ``s(3p + 2m - 3)``, allreduce
``s(5p + 2m - 3)``, reduce ``s(3p + 2m - 1)``.

The per-socket segments are ``s`` bytes each, so for large messages the
level-1 results spill out of cache — the paper observes exactly this
("when the socket-aware MA buffer cannot be fitted into a smaller
cache, it may perform worse than MA reduction due to cache misses").
"""

from __future__ import annotations

from repro.collectives.common import (
    CollectiveEnv,
    compute_slice_size,
    partition,
    subslices,
)
from repro.collectives.ma import ma_pipeline


def socket_groups(env: CollectiveEnv) -> list[list[int]]:
    """Rank groups per socket.

    With a machine model, the real socket mapping is used; in pure
    functional runs the ranks are split into ``env.params["sockets"]``
    equal groups (default 2) so the algorithm is still exercised.
    """
    machine = env.engine.machine
    if machine is not None:
        groups = [
            machine.ranks_on_socket(env.p, sock)
            for sock in range(machine.sockets)
        ]
        return [g for g in groups if g]
    m = int(env.params.get("sockets", 2))
    m = max(1, min(m, env.p))
    per = -(-env.p // m)
    groups = [list(range(k * per, min((k + 1) * per, env.p))) for k in range(m)]
    return [g for g in groups if g]


def _level1(ctx, env: CollectiveEnv, groups) -> object:
    """Intra-socket MA reductions into per-socket segments."""
    for k, members in enumerate(groups):
        if ctx.rank in members:
            yield from ma_pipeline(
                ctx, env, members, shm_off=k * env.s, layout="full",
                final="shm", tag=("sa", k),
            )
            return
    raise AssertionError(f"rank {ctx.rank} belongs to no socket group")


def _combine(ctx, env: CollectiveEnv, groups, dst_view, seg_views,
             *, nt: bool = False, concurrency=None) -> None:
    """``dst = seg_0 + seg_1 + ... + seg_{m-1}`` for one sub-slice."""
    m = len(groups)
    if m == 1:
        ctx.copy(dst_view, seg_views[0], nt=nt, concurrency=concurrency)
        return
    ctx.reduce_out(dst_view, seg_views[0], seg_views[1], op=env.op,
                   nt=nt, concurrency=concurrency)
    for k in range(2, m):
        ctx.reduce_acc(dst_view, seg_views[k], op=env.op, nt=nt,
                       concurrency=concurrency)


def _level2_slices(env: CollectiveEnv, rank: int):
    """This rank's level-2 share: sub-slices of its global partition."""
    parts = partition(env.s, env.p)
    i_size = compute_slice_size(env.s, env.p, env.imax, env.imin)
    off, length = parts[rank]
    return off, subslices(off, length, i_size)


class SocketAwareReduceScatter:
    """Two-level MA reduce-scatter: DAV ``s * (3p + 2m - 3)``."""

    name = "socket-ma-reduce-scatter"
    kind = "reduce_scatter"
    #: placement contract: level 1 stays inside each socket's shm
    #: segment; the static NUMA lint holds the schedule to this
    locality = "socket"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + env.p * env.imax

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return len(socket_groups(env)) * env.s

    def program(self, ctx, env: CollectiveEnv):
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s), env.sendbufs[0].view(0, env.s))
            return
        groups = socket_groups(env)
        yield from _level1(ctx, env, groups)
        yield ctx.barrier()
        base, slices = _level2_slices(env, ctx.rank)
        recv = env.recvbufs[ctx.rank]
        for off, n in slices:
            segs = [env.shm.view(k * env.s + off, n) for k in range(len(groups))]
            _combine(ctx, env, groups, recv.view(off - base, n), segs)


class SocketAwareAllreduce:
    """Two-level MA allreduce: DAV ``s * (5p + 2m - 3)``.

    Level 2 accumulates into segment 0; after a barrier every rank
    copies the full result out (non-temporal flagged).
    """

    name = "socket-ma-allreduce"
    kind = "allreduce"
    locality = "socket"

    def work_set(self, env: CollectiveEnv) -> int:
        # Section 4.3.1 prints W = 2sp + m*p*I, but Section 5.4's numeric
        # switch points (2176 KB NodeA / 1152 KB NodeB, validated by
        # Figure 12) are computed with W = 2sp + p*Imax; we follow the
        # evaluated form.
        return 2 * env.s * env.p + env.p * env.imax

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return len(socket_groups(env)) * env.s

    def program(self, ctx, env: CollectiveEnv):
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s), env.sendbufs[0].view(0, env.s))
            return
        groups = socket_groups(env)
        yield from _level1(ctx, env, groups)
        yield ctx.barrier()
        if len(groups) > 1:
            base, slices = _level2_slices(env, ctx.rank)
            for off, n in slices:
                segs = [
                    env.shm.view(k * env.s + off, n) for k in range(len(groups))
                ]
                _combine(ctx, env, groups, segs[0], segs)
            yield ctx.barrier()
        recv = env.recvbufs[ctx.rank]
        i_size = compute_slice_size(env.s, env.p, env.imax, env.imin)
        for off, n in subslices(0, env.s, i_size):
            env.copy_out(ctx, recv.view(off, n), env.shm.view(off, n))


class SocketAwareReduce:
    """Two-level MA rooted reduce: DAV ``s * (3p + 2m - 1)``."""

    name = "socket-ma-reduce"
    kind = "reduce"
    locality = "socket"

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + env.p * env.imax

    def shm_bytes(self, env: CollectiveEnv) -> int:
        return len(socket_groups(env)) * env.s

    def program(self, ctx, env: CollectiveEnv):
        if env.p == 1:
            ctx.copy(env.recvbufs[0].view(0, env.s), env.sendbufs[0].view(0, env.s))
            return
        groups = socket_groups(env)
        yield from _level1(ctx, env, groups)
        yield ctx.barrier()
        if len(groups) > 1:
            base, slices = _level2_slices(env, ctx.rank)
            for off, n in slices:
                segs = [
                    env.shm.view(k * env.s + off, n) for k in range(len(groups))
                ]
                _combine(ctx, env, groups, segs[0], segs)
            yield ctx.barrier()
        if ctx.rank == env.root:
            recv = env.recvbufs[env.root]
            i_size = compute_slice_size(env.s, env.p, env.imax, env.imin)
            for off, n in subslices(0, env.s, i_size):
                env.copy(ctx, recv.view(off, n), env.shm.view(off, n),
                         t_flag=True, concurrency=1)


SOCKET_MA_REDUCE_SCATTER = SocketAwareReduceScatter()
SOCKET_MA_ALLREDUCE = SocketAwareAllreduce()
SOCKET_MA_REDUCE = SocketAwareReduce()
