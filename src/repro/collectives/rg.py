"""RG: pipelined k-ary tree reduction on shared memory (Jain et al. [34]).

The RG framework chunks the message into slices and drives each slice
through a reduction tree of branching degree ``k``: leaf children copy
their slice into per-rank shared-memory slots, their parent reduces the
``k`` slots together with its own (private) slice, and higher-level
parents reduce the already-shared partial sums — no further copies.
Slices flow through the tree in a pipeline, so the tree latency is paid
once and every level works on a different slice concurrently.

DAV per node (Table 2, allreduce):
``(2sk + 3sk) * p/(k+1) + 3sk * (p/(k+1)^2 + ... ) + 2sp`` — the first
term is the leaf level (copy + reduce), inner levels only reduce, and
the final term is the all-rank copy-out.  The rooted reduce variant
writes the top-level reduction straight into the root's receiving
buffer and therefore has no copy-out term (Table 3).

Slots are double-buffered: slice ``t`` uses buffer ``t mod 2``.  A rank
reuses its slot two slices later, gated on the flag of whoever consumes
it — its parent's ``freed`` flag, or (for the root's slot in the
allreduce) the ``copied`` flags of all ranks.

Synchronization invariants the implementation maintains:

* a rank posts ``ready`` for slice ``t`` exactly **once**, after its
  *last* contribution to that slice (leaf copy-in, or its highest
  parenting level) — a parent waiting on a child therefore always sees
  the child's complete subtree sum;
* every parent at level 0 folds its own send-buffer slice in (including
  the degenerate single-member group, which simply copies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.common import CollectiveEnv, subslices

DEFAULT_BRANCH = 2
DEFAULT_SLICE = 128 * 1024


@dataclass(frozen=True)
class _Group:
    level: int
    parent: int
    children: tuple


def build_tree(p: int, k: int) -> list[list[_Group]]:
    """Group ranks into a (k+1)-ary reduction hierarchy.

    Level 0 groups ``k+1`` consecutive ranks (parent = lowest rank —
    with compact core binding consecutive ranks share a socket, giving
    the intra-socket grouping the paper configures).  Parents survive to
    the next level until a single root remains.
    """
    if p < 1:
        raise ValueError("p must be positive")
    if k < 1:
        raise ValueError("branching degree must be >= 1")
    levels: list[list[_Group]] = []
    survivors = list(range(p))
    level = 0
    while len(survivors) > 1:
        groups = []
        nxt = []
        for g in range(0, len(survivors), k + 1):
            members = survivors[g : g + k + 1]
            groups.append(
                _Group(level=level, parent=members[0], children=tuple(members[1:]))
            )
            nxt.append(members[0])
        levels.append(groups)
        survivors = nxt
        level += 1
    return levels


def _my_roles(levels, rank):
    """(child_group, parent_groups) for this rank."""
    child_of = None
    parent_of = []
    for lvl in levels:
        for grp in lvl:
            if rank in grp.children:
                child_of = grp
            elif rank == grp.parent:
                parent_of.append(grp)
    return child_of, parent_of


def _rg_core(ctx, env: CollectiveEnv, branch: int, slice_size: int, *,
             out_mode: str, tag):
    p, r = env.p, ctx.rank
    s = env.s
    if p == 1:
        ctx.copy(env.recvbufs[0].view(0, s), env.sendbufs[0].view(0, s))
        return
    # Rooted reduces rotate the rank order so env.root is the tree root.
    order = (
        [(env.root + i) % p for i in range(p)]
        if out_mode == "root"
        else list(range(p))
    )
    pos = {rank: i for i, rank in enumerate(order)}
    levels = [
        [
            _Group(g.level, order[g.parent], tuple(order[c] for c in g.children))
            for g in lvl
        ]
        for lvl in build_tree(p, branch)
    ]
    root = levels[-1][0].parent
    n_levels = len(levels)
    i_size = -(-min(slice_size, max(s, 8)) // 8) * 8
    slices = subslices(0, s, i_size)
    send = env.sendbufs[r]
    child_of, parent_of = _my_roles(levels, r)
    last_parent_level = parent_of[-1].level if parent_of else -1
    is_leaf_child = child_of is not None and child_of.level == 0

    def slot(rank: int, t: int, n: int):
        return env.shm.view((2 * pos[rank] + t % 2) * i_size, n)

    def reuse_gate(t: int):
        """Event to wait on before overwriting my slot for slice ``t``."""
        if t < 2:
            return None
        if r != root:
            return ctx.wait((tag, "freed", r, t - 2))
        if out_mode == "all":
            return ctx.wait((tag, "copied", t - 2), count=p)
        return None  # rooted reduce: only the root itself reads its slot

    for t, (off, n) in enumerate(slices):
        if is_leaf_child:
            gate = reuse_gate(t)
            if gate is not None:
                yield gate
            env.copy(ctx, slot(r, t, n), send.view(off, n), t_flag=False)
            ctx.post((tag, "ready", r, t))
        gated = False
        for grp in parent_of:
            active = max(1, len(levels[grp.level]))
            top_root = grp.level == n_levels - 1 and out_mode == "root"
            dst = (
                env.recvbufs[root].view(off, n)
                if top_root
                else slot(r, t, n)
            )
            if not top_root and not gated:
                gate = reuse_gate(t)
                if gate is not None:
                    yield gate
                gated = True
            if grp.level == 0 and not grp.children:
                # degenerate single-member group: fold my slice in
                env.copy(ctx, dst, send.view(off, n), t_flag=False)
            for idx, c in enumerate(grp.children):
                yield ctx.wait((tag, "ready", c, t))
                if grp.level == 0 and idx == 0:
                    # first fold also incorporates my private slice
                    ctx.reduce_out(dst, send.view(off, n), slot(c, t, n),
                                   op=env.op, concurrency=active)
                elif top_root and idx == 0:
                    ctx.reduce_out(dst, slot(r, t, n), slot(c, t, n),
                                   op=env.op, concurrency=active)
                else:
                    ctx.reduce_acc(dst, slot(c, t, n), op=env.op,
                                   concurrency=active)
                ctx.post((tag, "freed", c, t))
            if grp.level == last_parent_level and not top_root:
                ctx.post((tag, "ready", r, t))
        if out_mode == "all":
            yield ctx.wait((tag, "ready", root, t))
            env.copy_out(ctx, env.recvbufs[r].view(off, n),
                         slot(root, t, n))
            ctx.post((tag, "copied", t))


class RGReduce:
    """Pipelined tree reduce: DAV ``s p (5k/(k+1) + 3k/(k+1)^2 + ...)``
    (Table 3's RG row)."""

    name = "rg-reduce"
    kind = "reduce"
    out_mode = "root"

    def __init__(self, branch: int = DEFAULT_BRANCH,
                 slice_size: int = DEFAULT_SLICE):
        self.branch = branch
        self.slice_size = slice_size

    def work_set(self, env: CollectiveEnv) -> int:
        return env.s * env.p + env.s + self.shm_bytes(env)

    def shm_bytes(self, env: CollectiveEnv) -> int:
        i_size = -(-min(self.slice_size, max(env.s, 8)) // 8) * 8
        return 2 * env.p * i_size

    def program(self, ctx, env: CollectiveEnv):
        yield from _rg_core(ctx, env, self.branch, self.slice_size,
                            out_mode=self.out_mode,
                            tag=("rg", self.out_mode))


class RGAllreduce(RGReduce):
    """Pipelined tree reduce + all-rank copy-out (Table 2's RG row)."""

    name = "rg-allreduce"
    kind = "allreduce"
    out_mode = "all"


RG_REDUCE = RGReduce()
RG_ALLREDUCE = RGAllreduce()
