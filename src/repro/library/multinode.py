"""Multi-node hierarchical collectives (Section 5.5, Figure 16b).

YHCCL's multi-node allreduce composes three phases:

1. intra-node **movement-avoiding reduce-scatter** (the paper's design),
2. inter-node **ring allreduce** of the scattered partitions, with every
   on-node process driving its own share of the message so the NIC is
   saturated ("multi-lane" — Traeff & Hunold [52]),
3. intra-node **all-gather** of the result.

Vendor implementations are modelled as leader-based hierarchies: one
process per node reduces the node's contribution (intra-node reduce),
exchanges across nodes through a single lane (tree for small messages,
ring for large), and broadcasts back — the structure OMPI-hcoll,
Intel MPI and MVAPICH2 use on InfiniBand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.library.communicator import Communicator
from repro.library.mpi import MPILibrary
from repro.library.yhccl import YHCCL
from repro.machine.network import INFINIBAND_EDR, Network, NetworkSpec


@dataclass
class MultiNodeResult:
    """Timing breakdown of one multi-node collective.

    ``time`` accounts for pipelining when enabled; ``intra_time`` and
    ``inter_time`` are the un-overlapped phase totals.
    """

    time: float
    intra_time: float
    inter_time: float
    nbytes: int
    nnodes: int
    pipelined: bool = False

    @property
    def time_us(self) -> float:
        return self.time * 1e6

    @property
    def overlap_saving(self) -> float:
        """Fraction of the serial phase sum hidden by pipelining."""
        serial = self.intra_time + self.inter_time
        return 1.0 - self.time / serial if serial > 0 else 0.0


class MultiNodeAllreduce:
    """Hierarchical allreduce across ``nnodes`` identical nodes.

    ``implementation`` is ``"YHCCL"`` or a vendor name accepted by
    :class:`~repro.library.mpi.MPILibrary` (``"OMPI-hcoll"`` maps to the
    Open MPI node model with a tree-optimized network phase).
    """

    #: pipeline chunk count for the segmented hierarchical allreduce
    PIPELINE_CHUNKS = 4

    def __init__(self, comm: Communicator, nnodes: int, *,
                 implementation: str = "YHCCL",
                 network: Optional[NetworkSpec] = None,
                 pipelined: bool = True):
        if nnodes < 1:
            raise ValueError("need at least one node")
        self.comm = comm
        self.nnodes = nnodes
        self.implementation = implementation
        self.network = Network(network or INFINIBAND_EDR)
        self.pipelined = pipelined
        vendor = "Open MPI" if implementation == "OMPI-hcoll" else implementation
        self._lib = (
            YHCCL(comm) if implementation == "YHCCL" else MPILibrary(comm, vendor)
        )

    def allreduce(self, nbytes: int) -> MultiNodeResult:
        p = self.comm.nranks
        if self.implementation == "YHCCL":
            rs = self._lib.reduce_scatter(nbytes)
            ag = self._lib.allgather(nbytes // p if nbytes >= p else nbytes)
            intra = rs.time + ag.time
            # every rank ships its partition: p concurrent lanes
            inter = self.network.ring_allreduce_time(
                nbytes, self.nnodes, concurrent_procs=p
            )
            # chunking a latency-bound message multiplies its latency
            # terms; only pipeline when the message is bandwidth-bound
            big_enough = nbytes >= self.PIPELINE_CHUNKS * (1 << 20)
            if not (self.pipelined and self.nnodes > 1 and big_enough):
                return MultiNodeResult(
                    time=intra + inter, intra_time=intra, inter_time=inter,
                    nbytes=nbytes, nnodes=self.nnodes,
                )
            # Section 5.5's segmented pipeline: the message is chunked;
            # chunk k's inter-node ring overlaps chunk k+1's intra-node
            # reduce-scatter (and the trailing allgathers overlap the
            # preceding chunks' exchanges).  Three-stage pipeline over C
            # chunks: T = sum(stages)/C + (C-1)/C * max(stage).
            c = self.PIPELINE_CHUNKS
            stages = [rs.time, inter, ag.time]
            time = sum(stages) / c + (c - 1) / c * max(stages)
            return MultiNodeResult(
                time=time, intra_time=intra, inter_time=inter,
                nbytes=nbytes, nnodes=self.nnodes, pipelined=True,
            )
        # Leader-based vendor hierarchy: node reduce + 1-lane exchange +
        # node bcast.  Tree-based network collectives win on latency for
        # small messages; bandwidth-bound rings win for large — vendors
        # switch, and so does the model.
        red = self._lib.reduce(nbytes)
        bc = self._lib.bcast(nbytes)
        intra = red.time + bc.time
        tree = self.network.tree_allreduce_time(nbytes, self.nnodes)
        ring = self.network.ring_allreduce_time(
            nbytes, self.nnodes, concurrent_procs=1
        )
        hcoll = self.implementation == "OMPI-hcoll"
        inter = min(tree, ring) if hcoll else (
            tree if nbytes <= 256 * 1024 else ring
        )
        return MultiNodeResult(
            time=intra + inter, intra_time=intra, inter_time=inter,
            nbytes=nbytes, nnodes=self.nnodes,
        )
