"""Multi-node hierarchical collectives (Section 5.5, Figure 16b).

YHCCL's multi-node allreduce composes three phases:

1. intra-node **movement-avoiding reduce-scatter** (the paper's design),
2. inter-node **ring allreduce** of the scattered partitions, with every
   on-node process driving its own share of the message so the NIC is
   saturated ("multi-lane" — Traeff & Hunold [52]),
3. intra-node **all-gather** of the result.

Vendor implementations are modelled as leader-based hierarchies: one
process per node reduces the node's contribution (intra-node reduce),
exchanges across nodes through a single lane (tree for small messages,
ring for large), and broadcasts back — the structure OMPI-hcoll,
Intel MPI and MVAPICH2 use on InfiniBand.

Both are now two-level instances of the composable framework in
:mod:`repro.library.hierarchy`; this module keeps the historical facade
and adds the per-level breakdown on the result.  Relative to the
pre-hierarchy model, three cost-model bugs are fixed here:

* **estimate/commit split** — the hcoll tree-vs-ring probe no longer
  double-counts the road not taken in the network counters,
* **ceil-division partitions** — the trailing allgather runs at
  ``ceil(nbytes / p)`` per rank instead of ``nbytes // p`` (which
  dropped the remainder) or the *full* message when ``nbytes < p``
  (which inflated tiny-message cost ``p``-fold),
* **chunked pipeline accounting** — a ``C``-chunk segmented pipeline
  pays its inter-node latency terms and message counts per chunk, and
  the network counters reset per call instead of accumulating forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.library.communicator import Communicator
from repro.library.hierarchy import (
    Hierarchy,
    HierarchyResult,
    allreduce_stages,
)
from repro.library.mpi import MPILibrary
from repro.library.yhccl import YHCCL
from repro.machine.network import INFINIBAND_EDR, Network, NetworkSpec


@dataclass
class MultiNodeResult:
    """Timing breakdown of one multi-node collective.

    ``time`` accounts for pipelining when enabled; ``intra_time`` and
    ``inter_time`` are the un-overlapped phase totals.  ``hierarchy``
    carries the full per-level ``repro-hier/1`` breakdown.
    """

    time: float
    intra_time: float
    inter_time: float
    nbytes: int
    nnodes: int
    pipelined: bool = False
    hierarchy: Optional[HierarchyResult] = None

    @property
    def time_us(self) -> float:
        return self.time * 1e6

    @property
    def overlap_saving(self) -> float:
        """Fraction of the serial phase sum hidden by pipelining."""
        serial = self.intra_time + self.inter_time
        return 1.0 - self.time / serial if serial > 0 else 0.0


class MultiNodeAllreduce:
    """Hierarchical allreduce across ``nnodes`` identical nodes.

    ``implementation`` is ``"YHCCL"`` or a vendor name accepted by
    :class:`~repro.library.mpi.MPILibrary` (``"OMPI-hcoll"`` maps to the
    Open MPI node model with a tree-optimized network phase).
    """

    #: pipeline chunk count for the segmented hierarchical allreduce
    PIPELINE_CHUNKS = 4

    def __init__(self, comm: Communicator, nnodes: int, *,
                 implementation: str = "YHCCL",
                 network: Optional[NetworkSpec] = None,
                 pipelined: bool = True):
        if nnodes < 1:
            raise ValueError("need at least one node")
        self.comm = comm
        self.nnodes = nnodes
        self.implementation = implementation
        self.network = Network(network or INFINIBAND_EDR)
        self.pipelined = pipelined
        vendor = "Open MPI" if implementation == "OMPI-hcoll" else implementation
        self._lib = (
            YHCCL(comm) if implementation == "YHCCL" else MPILibrary(comm, vendor)
        )
        yhccl = implementation == "YHCCL"
        stages = allreduce_stages(
            self._lib,
            net=self.network,
            nnodes=nnodes,
            nranks_per_node=comm.nranks,
            mode="partition" if yhccl else "leader",
            adaptive=implementation == "OMPI-hcoll",
        )
        self.hierarchy = Hierarchy(
            stages,
            name=implementation,
            network=self.network,
            nnodes=nnodes,
            nranks=nnodes * comm.nranks,
        )

    def allreduce(self, nbytes: int) -> MultiNodeResult:
        # chunking a latency-bound message multiplies its latency
        # terms; only pipeline when the message is bandwidth-bound.
        # Section 5.5's segmented pipeline: the message is chunked;
        # chunk k's inter-node ring overlaps chunk k+1's intra-node
        # reduce-scatter (and the trailing allgathers overlap the
        # preceding chunks' exchanges).
        chunks = 1
        if (self.pipelined and self.implementation == "YHCCL"
                and self.nnodes > 1
                and nbytes >= self.PIPELINE_CHUNKS * (1 << 20)):
            chunks = self.PIPELINE_CHUNKS
        res = self.hierarchy.run(nbytes, chunks=chunks)
        return MultiNodeResult(
            time=res.time,
            intra_time=res.intra_time,
            inter_time=res.inter_time,
            nbytes=nbytes,
            nnodes=self.nnodes,
            pipelined=res.pipelined,
            hierarchy=res,
        )
