"""YHCCL: the paper's collective library, as a user-facing facade.

Routes every call through the Section 5.1 switching logic
(:mod:`repro.collectives.switching`), executes on the communicator's
engine, and returns a :class:`CollectiveResult` carrying simulated time,
data-access volume and traffic breakdown.

Mirrors the artifact's activation model: constructing with
``priority=0`` disables YHCCL (calls fall through to the fallback
vendor), just as ``OMPI_MCA_coll_yhccl_priority=0`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.collectives.common import (
    run_allgather_collective,
    run_bcast_collective,
    run_reduce_collective,
)
from repro.collectives.switching import Selection, YHCCLConfig, select
from repro.library.communicator import Communicator
from repro.machine.spec import KB
from repro.obs.counters import Counters


@dataclass
class CollectiveResult:
    """Outcome of one collective call on the simulated node."""

    kind: str
    nbytes: int
    time: float
    dav: int
    memory_traffic: int
    sync_count: int
    algorithm: str
    copy_policy: str
    #: per-rank counter registry snapshot (``repro-obs/1``), built by
    #: :meth:`repro.obs.counters.Counters.from_run` — ``None`` only for
    #: results constructed directly without an engine run
    counters: Optional[dict] = None

    @property
    def time_us(self) -> float:
        return self.time * 1e6

    @property
    def dab(self) -> float:
        """Data access bandwidth (bytes/s): DAV over completion time.

        Zero-time results report ``0.0`` (not infinity), keeping
        aggregate statistics and JSON serialization well-defined.
        """
        return self.dav / self.time if self.time > 0 else 0.0


def _platform_imax(comm: Communicator) -> int:
    """The paper's tuned MA slice caps: 256 KB NodeA, 128 KB NodeB."""
    if comm.machine is None:
        return 256 * KB
    return {"NodeA": 256 * KB, "NodeB": 128 * KB}.get(
        comm.machine.name, 128 * KB
    )


class YHCCL:
    """The optimized collective library (Figure 4's full stack)."""

    def __init__(self, comm: Communicator, *,
                 config: Optional[YHCCLConfig] = None, priority: int = 100):
        self.comm = comm
        self.config = config or YHCCLConfig(imax=_platform_imax(comm))
        self.priority = priority
        if priority <= 0:
            raise ValueError(
                "priority<=0 disables YHCCL; instantiate MPILibrary for the "
                "fallback implementation instead"
            )

    # ---- collective operations ------------------------------------------------

    def allreduce(self, nbytes: int, *, op: str = "sum",
                  iterations: int = 1) -> CollectiveResult:
        return self._reduce_family("allreduce", nbytes, op=op,
                                   iterations=iterations)

    def reduce(self, nbytes: int, *, op: str = "sum", root: int = 0,
               iterations: int = 1) -> CollectiveResult:
        return self._reduce_family("reduce", nbytes, op=op, root=root,
                                   iterations=iterations)

    def reduce_scatter(self, nbytes: int, *, op: str = "sum",
                       iterations: int = 1) -> CollectiveResult:
        return self._reduce_family("reduce_scatter", nbytes, op=op,
                                   iterations=iterations)

    def bcast(self, nbytes: int, *, root: int = 0,
              iterations: int = 1) -> CollectiveResult:
        sel = self._select("bcast", nbytes)
        res = run_bcast_collective(
            sel.algorithm, self.comm.engine, nbytes,
            copy_policy=sel.copy_policy, imax=self.config.imax, root=root,
            iterations=iterations,
        )
        return self._wrap("bcast", nbytes, sel, res)

    def allgather(self, nbytes: int,
                  iterations: int = 1) -> CollectiveResult:
        sel = self._select("allgather", nbytes)
        res = run_allgather_collective(
            sel.algorithm, self.comm.engine, nbytes,
            copy_policy=sel.copy_policy, imax=self.config.imax,
            iterations=iterations,
        )
        return self._wrap("allgather", nbytes, sel, res)

    # ---- schedule verification --------------------------------------------------

    def analyze(self, kind: str, nbytes: int, *, op: str = "sum",
                schedule_seed: Optional[int] = None):
        """Verify the schedule YHCCL would select for ``(kind, nbytes)``.

        Runs the selected algorithm on a *traced* functional twin of
        this communicator (same rank count and machine) and returns the
        :class:`~repro.analysis.AnalysisReport` of its happens-before
        race check, schedule lints and DAV cross-check — the artifact's
        answer to "is this schedule correct, or did this run just get
        lucky?".  See ``docs/analysis.md``.
        """
        from repro.analysis import analyze_trace
        from repro.sim.engine import DeadlockError, Engine

        sel = self._select(kind, nbytes) if kind in ("bcast", "allgather") \
            else select(kind, nbytes, self.config, op=op)
        eng = Engine(self.comm.nranks, machine=self.comm.machine,
                     functional=True, trace=True,
                     schedule_seed=schedule_seed)
        runner = {
            "bcast": run_bcast_collective,
            "allgather": run_allgather_collective,
        }.get(kind, run_reduce_collective)
        kw = {} if kind in ("bcast", "allgather") else {"op": op}
        try:
            runner(sel.algorithm, eng, nbytes,
                   copy_policy=sel.copy_policy, imax=self.config.imax, **kw)
        except DeadlockError:
            pass  # the trace carries the blocked certificates
        return analyze_trace(eng.trace, eng.nranks)

    def lint(self, kind: str, nbytes: int, *, op: str = "sum",
             nranks: Optional[int] = None):
        """Statically lint the schedule YHCCL would select for
        ``(kind, nbytes)``.

        One traced functional run (``nranks`` defaults to 4) lifts the
        selected algorithm into a schedule IR; the full static pass
        pipeline — deadlock freedom, Theorem 3.1 DAV, buffer lints,
        NUMA/false-sharing placement, critical-path bound — then runs
        over the DAG with no further execution.  Returns the
        :class:`~repro.analysis.static.Report` (``report.ok`` means no
        error-severity findings).  See ``docs/static_analysis.md``.
        """
        from repro.analysis.static import extract_program, run_passes

        sel = self._select(kind, nbytes) if kind in ("bcast", "allgather") \
            else select(kind, nbytes, self.config, op=op)
        runner = {
            "bcast": run_bcast_collective,
            "allgather": run_allgather_collective,
        }.get(kind, run_reduce_collective)
        kw = {} if kind in ("bcast", "allgather") else {"op": op}
        p = 4 if nranks is None else nranks

        def run(eng):
            runner(sel.algorithm, eng, nbytes,
                   copy_policy=sel.copy_policy, imax=self.config.imax, **kw)

        ir = extract_program(
            run, nranks=p, label=f"{sel.algorithm.name}/{kind}",
            kind=kind, s=nbytes, machine=self.comm.machine,
        )
        ir.meta["locality"] = str(getattr(sel.algorithm, "locality", ""))
        # extract_program cannot know which Table 1-3 row models this
        # algorithm; recover it by identity from the registry so the
        # static DAV pass checks instead of skipping.  bcast/allgather
        # ("pipelined") keep "" — their formulas key on kind alone.
        from repro.library.mpi import ALGORITHMS
        for name, kinds in ALGORITHMS.items():
            if name != "pipelined" and kinds.get(kind) is sel.algorithm:
                ir.meta["dav_algorithm"] = name
                ir.meta["k"] = int(getattr(sel.algorithm, "branch", 2))
                break
        return run_passes(ir)

    def verify(self, kind: str, nbytes: int, *, op: str = "sum",
               nranks: Optional[int] = None, sanitize: bool = False,
               max_schedules: Optional[int] = None):
        """Model-check the algorithm YHCCL would select for
        ``(kind, nbytes)``.

        Where :meth:`analyze` certifies the one interleaving the engine
        executed, ``verify`` explores **every** DPOR-distinct
        interleaving of the selected algorithm on a functional twin
        (``nranks`` defaults to ``min(self.comm.nranks, 3)`` — the
        schedule space grows fast) and checks output equality, race
        freedom and the DAV invariant at each terminal state.  Returns
        a :class:`~repro.analysis.mc.VerifyCaseResult`; a failure
        carries a minimized replayable schedule certificate.
        """
        from repro.analysis.mc import DEFAULT_BUDGET, verify_program

        sel = self._select(kind, nbytes) if kind in ("bcast", "allgather") \
            else select(kind, nbytes, self.config, op=op)
        runner = {
            "bcast": run_bcast_collective,
            "allgather": run_allgather_collective,
        }.get(kind, run_reduce_collective)
        kw = {} if kind in ("bcast", "allgather") else {"op": op}
        p = min(self.comm.nranks, 3) if nranks is None else nranks

        def run(eng):
            runner(sel.algorithm, eng, nbytes,
                   copy_policy=sel.copy_policy, imax=self.config.imax, **kw)

        return verify_program(
            run, nranks=p, label=f"{sel.algorithm.name}/{kind}",
            collective=sel.algorithm.name, kind=kind, s=nbytes,
            sanitize=sanitize,
            max_schedules=(max_schedules if max_schedules is not None
                           else DEFAULT_BUDGET),
        )

    # ---- internals ---------------------------------------------------------------

    def _select(self, kind: str, nbytes: int) -> Selection:
        return select(kind, nbytes, self.config)

    def _reduce_family(self, kind: str, nbytes: int, *, op: str = "sum",
                       root: int = 0, iterations: int = 1) -> CollectiveResult:
        sel = select(kind, nbytes, self.config, op=op)
        res = run_reduce_collective(
            sel.algorithm, self.comm.engine, nbytes, op=op,
            copy_policy=sel.copy_policy, imax=self.config.imax, root=root,
            iterations=iterations,
        )
        return self._wrap(kind, nbytes, sel, res)

    def _wrap(self, kind: str, nbytes: int, sel: Selection, res
              ) -> CollectiveResult:
        return CollectiveResult(
            kind=kind,
            nbytes=nbytes,
            time=res.time,
            dav=res.traffic.dav if res.traffic else 0,
            memory_traffic=res.traffic.memory_traffic if res.traffic else 0,
            sync_count=res.sync_count,
            algorithm=sel.algorithm.name,
            copy_policy=sel.copy_policy,
            counters=Counters.from_run(res).snapshot(),
        )
