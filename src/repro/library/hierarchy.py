"""Composable hierarchical collectives (ROADMAP item 2).

A cluster-scale collective is a stack of *stages*: any shared-memory
algorithm (the MA designs, socket-aware MA, the vendor baselines) runs
as a **leaf stage** on each node, under any pluggable **network stage**
(ring, binomial tree, Rabenseifner reduce-scatter+allgather, and their
multi-lane variants) exchanging across nodes.  This generalises the
hard-coded two-phase :class:`~repro.library.multinode.MultiNodeAllreduce`
into the explicit hierarchy the hybrid MPI+MPI literature argues for
(Zhou et al., arXiv:2007.06892; MPI Advance, arXiv:2309.07337):

* every level is a :class:`Stage` object reporting time, DAV-style byte
  counts and traffic counters for *its* level,
* the :class:`Hierarchy` composes levels, optionally as a segmented
  pipeline, and rolls counters up into a ``repro-hier/1`` document in
  which per-level traffic sums exactly to the committed network totals.

Cost queries are side-effect-free: stages are **evaluated** first (no
counter mutation — a :class:`BestOfStage` prices every candidate), and
only the stages that actually run are **committed** to the
:class:`~repro.machine.network.Network` counters.

The segmented pipeline (Section 5.5 of the paper) overlaps chunk k's
inter-node exchange with chunk k+1's intra-node phase.  Chunking is
modelled honestly: a network stage is re-costed at the chunk size, so
its latency terms and message counts scale with the chunk count, while
leaf stages — bandwidth-bound on the node's memory system — divide
their full-message time across chunks.

:func:`allreduce_stages` builds the two standard two-level instances:
the paper's *partition* hierarchy (MA reduce-scatter -> multi-lane ring
-> MA allgather) and the *leader* hierarchy vendors use on InfiniBand
(node reduce -> single-lane tree/ring exchange -> node bcast).
:func:`hierarchy_for_topology` assembles a full hierarchy from a
:class:`~repro.machine.network.Topology`, including heterogeneous
NodeA/NodeB groups gated on the slowest group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.library.communicator import Communicator
from repro.library.mpi import MPILibrary
from repro.library.yhccl import YHCCL
from repro.machine.network import Network, NetworkCost, Topology
from repro.machine.spec import PRESETS

#: schema tag of the per-level breakdown document
HIER_SCHEMA = "repro-hier/1"

#: message-size threshold of the vendor tree-vs-ring switch
VENDOR_TREE_CUTOFF = 256 * 1024


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative partition arithmetic."""
    return -(-a // b)


# ---------------------------------------------------------------------------
# Per-stage results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StageResult:
    """One level's contribution to a hierarchical collective.

    ``time`` is the level's total across all pipeline chunks;
    ``chunk_time`` the steady-state per-chunk time the pipeline
    composition uses.  ``bytes_on_wire`` / ``messages`` are the
    inter-node traffic this level commits (zero for leaf stages);
    ``dav`` / ``memory_traffic`` the node-local byte counts a leaf
    reports (zero for network stages).
    """

    name: str
    level: str  # "intra" | "inter"
    time: float
    chunk_time: float
    nbytes: int
    chunks: int = 1
    algorithm: str = ""
    dav: int = 0
    memory_traffic: int = 0
    bytes_on_wire: int = 0
    messages: int = 0
    steps: int = 0

    def to_doc(self) -> dict:
        return {
            "name": self.name,
            "level": self.level,
            "algorithm": self.algorithm,
            "time": self.time,
            "chunk_time": self.chunk_time,
            "nbytes": self.nbytes,
            "chunks": self.chunks,
            "dav": self.dav,
            "memory_traffic": self.memory_traffic,
            "bytes_on_wire": self.bytes_on_wire,
            "messages": self.messages,
            "steps": self.steps,
        }


@dataclass(frozen=True)
class HierarchyResult:
    """Composed outcome with per-level breakdown and counter roll-up."""

    name: str
    nbytes: int
    nnodes: int
    nranks: int
    chunks: int
    time: float
    stages: Tuple[StageResult, ...]
    topology: Optional[dict] = None

    @property
    def pipelined(self) -> bool:
        return self.chunks > 1

    @property
    def intra_time(self) -> float:
        return sum(s.time for s in self.stages if s.level == "intra")

    @property
    def inter_time(self) -> float:
        return sum(s.time for s in self.stages if s.level == "inter")

    @property
    def network_bytes(self) -> int:
        return sum(s.bytes_on_wire for s in self.stages)

    @property
    def network_messages(self) -> int:
        return sum(s.messages for s in self.stages)

    @property
    def dav(self) -> int:
        return sum(s.dav for s in self.stages)

    @property
    def time_us(self) -> float:
        return self.time * 1e6

    def to_doc(self) -> dict:
        """``repro-hier/1``: per-level breakdown plus totals.

        ``network.bytes_sent`` / ``network.messages`` equal the sums of
        the per-level counters by construction — consumers can (and the
        tests do) verify the roll-up.
        """
        doc = {
            "schema": HIER_SCHEMA,
            "name": self.name,
            "nbytes": self.nbytes,
            "nnodes": self.nnodes,
            "nranks": self.nranks,
            "chunks": self.chunks,
            "pipelined": self.pipelined,
            "time": self.time,
            "intra_time": self.intra_time,
            "inter_time": self.inter_time,
            "levels": [s.to_doc() for s in self.stages],
            "network": {
                "bytes_sent": self.network_bytes,
                "messages": self.network_messages,
            },
            "dav": self.dav,
        }
        if self.topology is not None:
            doc["topology"] = self.topology
        return doc


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------


class Stage:
    """One level of a hierarchical collective.

    ``evaluate`` must be free of side effects on shared counters so the
    hierarchy (or a :class:`BestOfStage`) can price alternatives;
    ``commit`` posts the chosen result's traffic.
    """

    name: str = "stage"
    level: str = "intra"

    def evaluate(self, nbytes: int, chunks: int = 1) -> StageResult:
        raise NotImplementedError

    def commit(self, result: StageResult) -> None:  # noqa: B027 (leafs no-op)
        """Post ``result``'s traffic to the stage's counters."""


class LeafStage(Stage):
    """A node-local collective phase.

    ``op`` is any callable returning an object with a ``time`` attribute
    (the library facades' ``CollectiveResult`` fits); ``sizer`` maps the
    hierarchy's message size to this phase's size — e.g. the trailing
    allgather of the partition hierarchy runs at ``ceil(nbytes / p)``
    per rank.  Leaf phases are bandwidth-bound on the node's memory
    system, so a pipeline chunk costs ``time / chunks``.
    """

    level = "intra"

    def __init__(self, name: str, op: Callable[[int], object], *,
                 sizer: Optional[Callable[[int], int]] = None,
                 algorithm: str = ""):
        self.name = name
        self._op = op
        self._sizer = sizer or (lambda n: n)
        self._algorithm = algorithm

    def evaluate(self, nbytes: int, chunks: int = 1) -> StageResult:
        size = self._sizer(nbytes)
        res = self._op(size)
        time = float(res.time)
        return StageResult(
            name=self.name,
            level=self.level,
            time=time,
            chunk_time=time / chunks,
            nbytes=size,
            chunks=chunks,
            algorithm=self._algorithm or getattr(res, "algorithm", ""),
            dav=int(getattr(res, "dav", 0) or 0),
            memory_traffic=int(getattr(res, "memory_traffic", 0) or 0),
        )


class GroupedLeafStage(Stage):
    """A node-local phase across heterogeneous node groups.

    Every group runs its own leaf concurrently; the level completes when
    the slowest group does (the inter-node exchange gates on it), so
    ``time`` is the max over children while the byte counts sum across
    the per-group reports.
    """

    level = "intra"

    def __init__(self, name: str, children: Sequence[LeafStage]):
        if not children:
            raise ValueError("a grouped stage needs at least one child")
        self.name = name
        self.children = tuple(children)

    def evaluate(self, nbytes: int, chunks: int = 1) -> StageResult:
        parts = [c.evaluate(nbytes, chunks) for c in self.children]
        slowest = max(parts, key=lambda r: r.time)
        return StageResult(
            name=self.name,
            level=self.level,
            time=slowest.time,
            chunk_time=slowest.chunk_time,
            nbytes=slowest.nbytes,
            chunks=chunks,
            algorithm=slowest.algorithm,
            dav=sum(p.dav for p in parts),
            memory_traffic=sum(p.memory_traffic for p in parts),
        )


class NetworkStage(Stage):
    """Base for inter-node exchange stages over a shared :class:`Network`.

    Subclasses implement :meth:`cost` (pure).  Pipelining re-costs the
    exchange at the chunk size and scales it by the chunk count, so
    latency terms, bytes and message counts all grow with chunking —
    exactly what a segmented ring pays on a real fabric.
    """

    level = "inter"

    def __init__(self, name: str, net: Network, nnodes: int):
        if nnodes < 1:
            raise ValueError("need at least one node")
        self.name = name
        self.net = net
        self.nnodes = nnodes

    def cost(self, nbytes: int) -> NetworkCost:
        raise NotImplementedError

    def evaluate(self, nbytes: int, chunks: int = 1) -> StageResult:
        if chunks <= 1:
            per = total = self.cost(nbytes)
        else:
            per = self.cost(ceil_div(nbytes, chunks))
            total = per.scaled(chunks)
        return StageResult(
            name=self.name,
            level=self.level,
            time=total.time,
            chunk_time=per.time,
            nbytes=nbytes,
            chunks=chunks,
            algorithm=self.name,
            bytes_on_wire=total.bytes_on_wire,
            messages=total.messages,
            steps=total.steps,
        )

    def commit(self, result: StageResult) -> None:
        self.net.commit(NetworkCost(
            time=result.time,
            bytes_on_wire=result.bytes_on_wire,
            messages=result.messages,
            steps=result.steps,
        ))


class RingStage(NetworkStage):
    """Ring allreduce across nodes; ``lanes`` concurrent senders per
    node (the paper's multi-lane design uses one lane per rank)."""

    def __init__(self, net: Network, nnodes: int, *, lanes: int = 1):
        super().__init__(f"ring-{lanes}lane" if lanes > 1 else "ring",
                         net, nnodes)
        if lanes < 1:
            raise ValueError("need at least one lane")
        self.lanes = lanes

    def cost(self, nbytes: int) -> NetworkCost:
        return self.net.ring_allreduce_cost(nbytes, self.nnodes,
                                            concurrent_procs=self.lanes)


class TreeAllreduceStage(NetworkStage):
    """Binomial reduce+bcast across node leaders (single lane)."""

    def __init__(self, net: Network, nnodes: int):
        super().__init__("tree", net, nnodes)

    def cost(self, nbytes: int) -> NetworkCost:
        return self.net.tree_allreduce_cost(nbytes, self.nnodes)


class RabenseifnerStage(NetworkStage):
    """Recursive-halving RS + recursive-doubling AG across nodes."""

    def __init__(self, net: Network, nnodes: int, *, lanes: int = 1):
        super().__init__("rabenseifner", net, nnodes)
        if lanes < 1:
            raise ValueError("need at least one lane")
        self.lanes = lanes

    def cost(self, nbytes: int) -> NetworkCost:
        return self.net.rabenseifner_allreduce_cost(
            nbytes, self.nnodes, concurrent_procs=self.lanes)


class BestOfStage(Stage):
    """Price every candidate exchange, run (and commit) only the
    fastest — the estimate/commit split that fixes the historical
    double-count of the road not taken."""

    level = "inter"

    def __init__(self, children: Sequence[NetworkStage], *,
                 name: str = "best-of"):
        if not children:
            raise ValueError("need at least one candidate stage")
        self.children = tuple(children)
        self.name = name
        self._chosen: Dict[int, Stage] = {}

    def evaluate(self, nbytes: int, chunks: int = 1) -> StageResult:
        results = [c.evaluate(nbytes, chunks) for c in self.children]
        best = min(range(len(results)), key=lambda i: results[i].time)
        self._chosen[id(results[best])] = self.children[best]
        return results[best]

    def commit(self, result: StageResult) -> None:
        chosen = self._chosen.pop(id(result), None)
        if chosen is None:  # committed standalone: match by name
            chosen = next(c for c in self.children if c.name == result.name)
        chosen.commit(result)


class SizeSwitchStage(Stage):
    """Static vendor-style switch: ``small`` exchange up to and
    including ``threshold`` bytes, ``large`` above it."""

    level = "inter"

    def __init__(self, small: NetworkStage, large: NetworkStage, *,
                 threshold: int = VENDOR_TREE_CUTOFF, name: str = ""):
        self.small = small
        self.large = large
        self.threshold = threshold
        self.name = name or f"{small.name}<={threshold}<{large.name}"

    def _pick(self, nbytes: int) -> NetworkStage:
        return self.small if nbytes <= self.threshold else self.large

    def evaluate(self, nbytes: int, chunks: int = 1) -> StageResult:
        return self._pick(nbytes).evaluate(nbytes, chunks)

    def commit(self, result: StageResult) -> None:
        self._pick(result.nbytes).commit(result)


# ---------------------------------------------------------------------------
# Hierarchy composition
# ---------------------------------------------------------------------------


class Hierarchy:
    """A stack of stages executed as one collective.

    ``run`` evaluates every level (side-effect-free), commits each
    level's traffic to the network counters, and composes the times:
    serially for ``chunks=1``, as a ``chunks``-deep software pipeline
    otherwise (``T = sum(chunk times) + (chunks-1) * max(chunk time)``
    — fill plus steady state on the bottleneck stage).
    """

    def __init__(self, stages: Sequence[Stage], *, name: str = "hierarchy",
                 network: Optional[Network] = None, nnodes: int = 1,
                 nranks: int = 0, topology: Optional[Topology] = None):
        if not stages:
            raise ValueError("a hierarchy needs at least one stage")
        self.stages = tuple(stages)
        self.name = name
        self.network = network
        self.topology = topology
        if topology is not None:
            nnodes = topology.nnodes
            nranks = topology.nranks
        self.nnodes = nnodes
        self.nranks = nranks

    def run(self, nbytes: int, *, chunks: int = 1,
            reset: bool = True) -> HierarchyResult:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if chunks < 1:
            raise ValueError("need at least one chunk")
        if reset and self.network is not None:
            self.network.reset()
        results = [s.evaluate(nbytes, chunks) for s in self.stages]
        for stage, res in zip(self.stages, results):
            stage.commit(res)
        if chunks == 1:
            # group by level so the two-level total matches the legacy
            # intra + inter float-summation order bitwise
            intra = sum(r.time for r in results if r.level == "intra")
            inter = sum(r.time for r in results if r.level == "inter")
            time = intra + inter
        else:
            chunk_times = [r.chunk_time for r in results]
            time = sum(chunk_times) + (chunks - 1) * max(chunk_times)
        return HierarchyResult(
            name=self.name,
            nbytes=nbytes,
            nnodes=self.nnodes,
            nranks=self.nranks,
            chunks=chunks,
            time=time,
            stages=tuple(results),
            topology=self.topology.describe() if self.topology else None,
        )


# ---------------------------------------------------------------------------
# Standard two-level builders
# ---------------------------------------------------------------------------


def vendor_network_stage(net: Network, nnodes: int, *,
                         adaptive: bool = False) -> Stage:
    """The single-lane exchange vendors run between node leaders.

    ``adaptive`` models hcoll's runtime probe (price tree and ring,
    take the min); the static variant switches at the 256 KiB message
    size Intel MPI / MVAPICH2 / MPICH use.
    """
    tree = TreeAllreduceStage(net, nnodes)
    ring = RingStage(net, nnodes, lanes=1)
    if adaptive:
        return BestOfStage((tree, ring), name="tree|ring")
    return SizeSwitchStage(tree, ring)


def allreduce_stages(lib: object, *, net: Network, nnodes: int,
                     nranks_per_node: int, mode: str = "partition",
                     lanes: Optional[int] = None,
                     network_stage: Optional[Stage] = None,
                     adaptive: bool = False,
                     leaf_ops: Optional[Dict[str, Callable[[int], object]]]
                     = None) -> List[Stage]:
    """Build the standard two-level allreduce stage stack.

    ``mode="partition"`` is the paper's hierarchy: MA reduce-scatter,
    multi-lane inter-node ring over the scattered partitions (one lane
    per rank unless ``lanes`` overrides), MA allgather of
    ``ceil(nbytes / p)`` per rank.  ``mode="leader"`` is the vendor
    hierarchy: node reduce, single-lane leader exchange (tree/ring
    switch, or ``network_stage``), node bcast.

    ``lib`` supplies the leaf collectives (any object with the
    :class:`~repro.library.yhccl.YHCCL` facade's method names);
    ``leaf_ops`` overrides individual kinds with custom callables —
    the bench layer injects compiled-replay leaves this way.
    """
    p = nranks_per_node
    if p < 1:
        raise ValueError("need at least one rank per node")
    ops = dict(leaf_ops or {})

    def op(kind: str) -> Callable[[int], object]:
        return ops.get(kind) or getattr(lib, kind)

    if mode == "partition":
        exchange = network_stage or RingStage(
            net, nnodes, lanes=lanes if lanes is not None else p)
        return [
            LeafStage("reduce_scatter", op("reduce_scatter")),
            exchange,
            # every rank gathers its ceil-division partition; the last
            # partition may be ragged but no rank gathers more than
            # ceil(nbytes / p), and p * ceil(nbytes / p) >= nbytes
            LeafStage("allgather", op("allgather"),
                      sizer=lambda n: ceil_div(n, p) if n else 0),
        ]
    if mode == "leader":
        exchange = network_stage or vendor_network_stage(
            net, nnodes, adaptive=adaptive)
        return [
            LeafStage("reduce", op("reduce")),
            exchange,
            LeafStage("bcast", op("bcast")),
        ]
    raise ValueError(f"unknown hierarchy mode: {mode!r}")


@dataclass
class _GroupLib:
    """A node group's leaf library plus its shape."""

    group_name: str
    lib: object
    ranks_per_node: int


def _leaf_library(machine_name: str, ranks_per_node: int,
                  implementation: str) -> object:
    machine = PRESETS[machine_name]
    comm = Communicator(ranks_per_node, machine=machine, functional=False)
    if implementation == "YHCCL":
        return YHCCL(comm)
    vendor = "Open MPI" if implementation == "OMPI-hcoll" else implementation
    return MPILibrary(comm, vendor)


def hierarchy_for_topology(topology: Topology, *,
                           implementation: str = "YHCCL",
                           mode: Optional[str] = None,
                           lanes: Optional[int] = None,
                           adaptive: Optional[bool] = None,
                           network: Optional[Network] = None,
                           network_stage_factory: Optional[
                               Callable[[Network, int], Stage]] = None,
                           name: str = "") -> Hierarchy:
    """Assemble a two-level hierarchy for a whole cluster topology.

    Homogeneous topologies get plain leaf stages; heterogeneous ones a
    :class:`GroupedLeafStage` per phase, gated on the slowest group.
    The exchange defaults to the implementation's native choice —
    multi-lane ring for YHCCL (lanes = the *smallest* group's rank
    count, since every node must sustain that concurrency), the
    tree/ring leader switch for vendors.
    """
    mode = mode or ("partition" if implementation == "YHCCL" else "leader")
    adaptive = (implementation == "OMPI-hcoll" if adaptive is None
                else adaptive)
    net = network or Network(topology.network)
    nnodes = topology.nnodes
    min_p = min(g.ranks_per_node for g in topology.groups)

    if network_stage_factory is not None:
        exchange: Stage = network_stage_factory(net, nnodes)
    elif mode == "partition":
        exchange = RingStage(net, nnodes,
                             lanes=lanes if lanes is not None else min_p)
    else:
        exchange = vendor_network_stage(net, nnodes, adaptive=adaptive)

    libs = [
        _GroupLib(g.machine, _leaf_library(g.machine, g.ranks_per_node,
                                           implementation),
                  g.ranks_per_node)
        for g in topology.groups
    ]

    def leaf(kind: str, sizer_per_p: bool = False) -> Stage:
        children = [
            LeafStage(
                f"{kind}@{gl.group_name}" if len(libs) > 1 else kind,
                getattr(gl.lib, kind),
                sizer=(lambda n, p=gl.ranks_per_node:
                       ceil_div(n, p) if n else 0) if sizer_per_p else None,
            )
            for gl in libs
        ]
        if len(children) == 1:
            return children[0]
        return GroupedLeafStage(kind, children)

    if mode == "partition":
        stages: List[Stage] = [
            leaf("reduce_scatter"), exchange, leaf("allgather", True)
        ]
    else:
        stages = [leaf("reduce"), exchange, leaf("bcast")]

    return Hierarchy(
        stages,
        name=name or f"{implementation}-{mode}",
        network=net,
        topology=topology,
    )


# re-exported for convenience alongside the stage classes
__all__ = [
    "HIER_SCHEMA",
    "VENDOR_TREE_CUTOFF",
    "ceil_div",
    "StageResult",
    "HierarchyResult",
    "Stage",
    "LeafStage",
    "GroupedLeafStage",
    "NetworkStage",
    "RingStage",
    "TreeAllreduceStage",
    "RabenseifnerStage",
    "BestOfStage",
    "SizeSwitchStage",
    "Hierarchy",
    "vendor_network_stage",
    "allreduce_stages",
    "hierarchy_for_topology",
]
