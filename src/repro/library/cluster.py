"""Composed multi-node simulation with per-node skew.

:class:`~repro.library.multinode.MultiNodeAllreduce` composes phase
*totals* analytically — right for symmetric steady state, blind to
imbalance.  :class:`ClusterAllreduce` composes actual per-node engine
runs instead: each node's intra-node phases execute on its own
simulated engine (so node-local effects — cache state, rank counts,
machine differences — are carried through), and the inter-node exchange
starts only when a node's reduce-scatter *finished*, with the ring
gated by the slowest participant per step.

That makes straggler questions answerable: MiniAMR-style refinement
imbalance delays one node's entry into the exchange — how much of the
skew does the collective absorb, and how does YHCCL's multi-lane ring
compare to a leader tree under skew?  (`tests/library/test_cluster.py`
exercises both.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.library.communicator import Communicator
from repro.library.yhccl import YHCCL
from repro.machine.network import INFINIBAND_EDR, Network, NetworkSpec
from repro.machine.spec import MachineSpec


@dataclass
class NodeResult:
    """One node's phase timings within a cluster collective."""

    node: int
    skew: float
    rs_done: float  # absolute time the reduce-scatter finished
    exchange_done: float
    finish: float  # allgather finished


@dataclass
class ClusterResult:
    """Outcome of one composed cluster allreduce."""

    nodes: list  # NodeResult per node
    nbytes: int

    @property
    def time(self) -> float:
        return max(n.finish for n in self.nodes)

    @property
    def time_us(self) -> float:
        return self.time * 1e6

    def skew_absorbed(self) -> float:
        """How much of the injected skew the collective hid:
        1 - (finish spread / injected spread).  1.0 means the ring's
        step-wise gating fully re-synchronized the nodes."""
        inj = max(n.skew for n in self.nodes) - min(n.skew for n in self.nodes)
        out = max(n.finish for n in self.nodes) - min(
            n.finish for n in self.nodes
        )
        if inj <= 0:
            return 1.0
        return max(0.0, 1.0 - out / inj)


class ClusterAllreduce:
    """Composed hierarchical allreduce over per-node simulations.

    Parameters
    ----------
    machine:
        Node hardware model (all nodes identical; heterogeneity enters
        through ``skews``).
    nnodes, ranks_per_node:
        Cluster shape.
    network:
        NIC model; the exchange uses the multi-lane ring
        (``ranks_per_node`` concurrent streams per node).
    """

    def __init__(self, machine: MachineSpec, nnodes: int,
                 ranks_per_node: int, *,
                 network: Optional[NetworkSpec] = None):
        if nnodes < 1:
            raise ValueError("need at least one node")
        self.machine = machine
        self.nnodes = nnodes
        self.p = ranks_per_node
        self.net = Network(network or INFINIBAND_EDR)

    def _intra_times(self, nbytes: int) -> tuple:
        """(reduce_scatter_time, allgather_time) on one node."""
        comm = Communicator(self.p, machine=self.machine, functional=False)
        lib = YHCCL(comm)
        rs = lib.reduce_scatter(nbytes, iterations=2).time
        ag_bytes = nbytes // self.p if nbytes >= self.p else nbytes
        ag = lib.allgather(ag_bytes, iterations=2).time
        return rs, ag

    def run(self, nbytes: int, *,
            skews: Optional[Sequence[float]] = None) -> ClusterResult:
        """Execute with optional per-node start skews (seconds).

        The exchange is a ring over nodes; each of its ``2(N-1)`` steps
        can start only when every participant finished the previous one
        (bulk-synchronous gating — the skew of the slowest node
        propagates into every step exactly once)."""
        skews = list(skews or [0.0] * self.nnodes)
        if len(skews) != self.nnodes:
            raise ValueError(f"need {self.nnodes} skews")
        if any(s < 0 for s in skews):
            raise ValueError("skews must be non-negative")
        self.net.reset()  # per-call traffic accounting
        rs_t, ag_t = self._intra_times(nbytes)

        # every node enters the exchange when its RS is done
        enter = [skews[i] + rs_t for i in range(self.nnodes)]
        if self.nnodes == 1:
            nodes = [NodeResult(0, skews[0], enter[0], enter[0],
                                enter[0] + ag_t)]
            return ClusterResult(nodes=nodes, nbytes=nbytes)

        steps = 2 * (self.nnodes - 1)
        chunk = nbytes / self.nnodes
        bw = self.net.effective_bandwidth(self.p)
        step_time = self.net.spec.latency + chunk / bw
        self.net.commit(
            self.net.ring_allreduce_cost(nbytes, self.nnodes,
                                         concurrent_procs=self.p)
        )
        # ring gating: step k starts at max over participants of their
        # step k-1 completion — i.e. the whole ring marches at the pace
        # of the latest entrant
        start = max(enter)
        exchange_done = start + steps * step_time
        nodes = [
            NodeResult(
                node=i,
                skew=skews[i],
                rs_done=enter[i],
                exchange_done=exchange_done,
                finish=exchange_done + ag_t,
            )
            for i in range(self.nnodes)
        ]
        return ClusterResult(nodes=nodes, nbytes=nbytes)

    def straggler_penalty(self, nbytes: int, skew: float) -> float:
        """Completion-time increase caused by one straggling node."""
        base = self.run(nbytes).time
        skews = [0.0] * self.nnodes
        skews[0] = skew
        return self.run(nbytes, skews=skews).time - base
