"""Vendor-MPI facade and the algorithm registry.

``MPILibrary(comm, "Open MPI")`` exposes the same five collectives as
:class:`~repro.library.yhccl.YHCCL`, backed by the vendor models of
:mod:`repro.collectives.baselines` — the uniform interface the
benchmark harness sweeps over.

``ALGORITHMS`` additionally names every individual algorithm
implementation (``"ma"``, ``"socket-ma"``, ``"ring"``, ``"dpml"``, ...)
so the per-figure benchmarks can compare algorithms directly, outside
any vendor packaging.
"""

from __future__ import annotations

from repro.collectives import baselines
from repro.collectives.allgather import PIPELINED_ALLGATHER
from repro.collectives.bcast import PIPELINED_BCAST
from repro.collectives.common import (
    run_allgather_collective,
    run_bcast_collective,
    run_reduce_collective,
)
from repro.collectives.dpml import (
    DPML2_ALLREDUCE,
    DPML_ALLREDUCE,
    DPML_REDUCE,
    DPML_REDUCE_SCATTER,
)
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE, MA_REDUCE_SCATTER
from repro.collectives.rabenseifner import (
    RABENSEIFNER_ALLREDUCE,
    RABENSEIFNER_REDUCE_SCATTER,
)
from repro.collectives.rg import RG_ALLREDUCE, RG_REDUCE
from repro.collectives.ring import RING_ALLREDUCE, RING_REDUCE_SCATTER
from repro.collectives.socket_aware import (
    SOCKET_MA_ALLREDUCE,
    SOCKET_MA_REDUCE,
    SOCKET_MA_REDUCE_SCATTER,
)
from repro.library.communicator import Communicator
from repro.library.yhccl import CollectiveResult
from repro.obs.counters import Counters

#: name -> {kind -> algorithm}: the raw algorithm registry
ALGORITHMS = {
    "ma": {
        "reduce_scatter": MA_REDUCE_SCATTER,
        "allreduce": MA_ALLREDUCE,
        "reduce": MA_REDUCE,
    },
    "socket-ma": {
        "reduce_scatter": SOCKET_MA_REDUCE_SCATTER,
        "allreduce": SOCKET_MA_ALLREDUCE,
        "reduce": SOCKET_MA_REDUCE,
    },
    "ring": {
        "reduce_scatter": RING_REDUCE_SCATTER,
        "allreduce": RING_ALLREDUCE,
    },
    "rabenseifner": {
        "reduce_scatter": RABENSEIFNER_REDUCE_SCATTER,
        "allreduce": RABENSEIFNER_ALLREDUCE,
    },
    "dpml": {
        "reduce_scatter": DPML_REDUCE_SCATTER,
        "allreduce": DPML_ALLREDUCE,
        "reduce": DPML_REDUCE,
    },
    "dpml2": {"allreduce": DPML2_ALLREDUCE},
    "rg": {"allreduce": RG_ALLREDUCE, "reduce": RG_REDUCE},
    "pipelined": {"bcast": PIPELINED_BCAST, "allgather": PIPELINED_ALLGATHER},
}


def implementations() -> list[str]:
    """Names accepted by :class:`MPILibrary` (the Figure 15 baselines)."""
    return sorted(baselines.make_vendor_suites().keys())


class MPILibrary:
    """A vendor MPI implementation's collectives on the simulated node."""

    def __init__(self, comm: Communicator, vendor: str, *,
                 imax: int = 1024 * 1024):
        suites = baselines.make_vendor_suites()
        if vendor not in suites:
            raise ValueError(
                f"unknown vendor {vendor!r}; choose from {sorted(suites)}"
            )
        self.comm = comm
        self.vendor = vendor
        self.suite = suites[vendor]
        self.imax = imax

    def _run(self, kind: str, nbytes: int, *, iterations: int = 1,
             **kw) -> CollectiveResult:
        if kind not in self.suite:
            raise ValueError(f"{self.vendor} model lacks {kind}")
        alg, policy = self.suite[kind]
        runner = {
            "reduce_scatter": run_reduce_collective,
            "reduce": run_reduce_collective,
            "allreduce": run_reduce_collective,
            "bcast": run_bcast_collective,
            "allgather": run_allgather_collective,
        }[kind]
        res = runner(alg, self.comm.engine, nbytes, copy_policy=policy,
                     imax=self.imax, iterations=iterations, **kw)
        return CollectiveResult(
            kind=kind,
            nbytes=nbytes,
            time=res.time,
            dav=res.traffic.dav if res.traffic else 0,
            memory_traffic=res.traffic.memory_traffic if res.traffic else 0,
            sync_count=res.sync_count,
            algorithm=alg.name,
            copy_policy=policy,
            counters=Counters.from_run(res).snapshot(),
        )

    def allreduce(self, nbytes: int, *, op: str = "sum",
                  iterations: int = 1) -> CollectiveResult:
        return self._run("allreduce", nbytes, op=op, iterations=iterations)

    def reduce(self, nbytes: int, *, op: str = "sum", root: int = 0,
               iterations: int = 1) -> CollectiveResult:
        return self._run("reduce", nbytes, op=op, root=root,
                         iterations=iterations)

    def reduce_scatter(self, nbytes: int, *, op: str = "sum",
                       iterations: int = 1) -> CollectiveResult:
        return self._run("reduce_scatter", nbytes, op=op,
                         iterations=iterations)

    def bcast(self, nbytes: int, *, root: int = 0,
              iterations: int = 1) -> CollectiveResult:
        return self._run("bcast", nbytes, root=root, iterations=iterations)

    def allgather(self, nbytes: int,
                  iterations: int = 1) -> CollectiveResult:
        return self._run("allgather", nbytes, iterations=iterations)
