"""PMPI-style collective profiler (Section 5.1's profiling tool).

Wraps any library facade (:class:`~repro.library.yhccl.YHCCL` or
:class:`~repro.library.mpi.MPILibrary`) and records every collective
call: operation, size, time, DAV, achieved data-access bandwidth and
the algorithm selected — the data behind the paper's DAB discussion in
Section 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ProfileRecord:
    kind: str
    nbytes: int
    time: float
    dav: int
    algorithm: str
    #: per-rank counter snapshot (``repro-obs/1``) when the wrapped
    #: library provides one; ``None`` for bare results
    counters: Optional[dict] = None

    @property
    def dab(self) -> float:
        """Data access bandwidth (bytes/s).

        A zero-time record (degenerate, e.g. an empty payload) yields
        ``0.0`` rather than infinity: infinities would poison aggregate
        DAB statistics and are not representable in JSON.
        """
        return self.dav / self.time if self.time > 0 else 0.0


@dataclass
class _OpStats:
    calls: int = 0
    total_time: float = 0.0
    total_bytes: int = 0
    total_dav: int = 0


class Profiler:
    """Intercepts collective calls the way a PMPI shim does."""

    COLLECTIVES = ("allreduce", "reduce", "reduce_scatter", "bcast",
                   "allgather")

    def __init__(self, library):
        self.library = library
        self.records: list[ProfileRecord] = []

    def __getattr__(self, name):
        # Dunders must keep their standard failure semantics: copy,
        # pickle and inspect probe them and interpret AttributeError as
        # "not supported" — delegating would break that protocol.
        # ``library`` itself guards unpickling, where __getattr__ runs
        # before __init__ has populated the instance dict.
        if name.startswith("__") or name == "library":
            raise AttributeError(name)
        inner = getattr(self.library, name)  # AttributeError names both
        if name not in self.COLLECTIVES:
            # A PMPI shim is transparent: non-collective API (analyze,
            # verify, comm, ...) passes straight through unprofiled.
            return inner

        def wrapper(nbytes, **kw):
            result = inner(nbytes, **kw)
            self.records.append(
                ProfileRecord(
                    kind=result.kind,
                    nbytes=result.nbytes,
                    time=result.time,
                    dav=result.dav,
                    algorithm=result.algorithm,
                    counters=getattr(result, "counters", None),
                )
            )
            return result

        return wrapper

    # ---- reporting ----------------------------------------------------------

    def stats(self) -> dict:
        out: dict[str, _OpStats] = {}
        for rec in self.records:
            st = out.setdefault(rec.kind, _OpStats())
            st.calls += 1
            st.total_time += rec.time
            st.total_bytes += rec.nbytes
            st.total_dav += rec.dav
        return out

    @property
    def total_time(self) -> float:
        return sum(r.time for r in self.records)

    def report(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"{'collective':<16}{'calls':>7}{'bytes':>14}{'time (ms)':>12}"
            f"{'DAB (GB/s)':>12}"
        ]
        for kind, st in sorted(self.stats().items()):
            # same zero-time guard as ProfileRecord.dab: a sum of
            # degenerate zero-time records must not divide by zero
            dab = (st.total_dav / st.total_time / 1e9
                   if st.total_time > 0 else 0.0)
            lines.append(
                f"{kind:<16}{st.calls:>7}{st.total_bytes:>14}"
                f"{st.total_time * 1e3:>12.3f}{dab:>12.1f}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self.records.clear()
