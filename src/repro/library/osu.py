"""OSU-micro-benchmark-style harness (artifact workflow, Appendix C.3).

The paper's evaluation drives the OSU MPI benchmark suite:

    mpiexec -n 64 ./osu_allreduce -c -m 65536:268435456

This module reproduces that workflow against the simulated node: a size
sweep with warm-up and measured iterations, optional result validation
(OSU's ``-c``), and the familiar two-column output.  The YHCCL on/off
switch mirrors ``OMPI_MCA_coll_yhccl_priority``.

Command line (see ``python -m repro --help``)::

    python -m repro osu allreduce -n 64 --machine NodeA -m 65536:268435456
    python -m repro osu bcast -n 48 --machine NodeB --no-yhccl -c
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.library.communicator import Communicator
from repro.library.mpi import MPILibrary
from repro.library.yhccl import YHCCL
from repro.machine.spec import PRESETS

COLLECTIVES = ("allreduce", "reduce", "reduce_scatter", "bcast", "allgather")
DEFAULT_RANGE = (65536, 268435456)


@dataclass
class OSUResult:
    """One row of OSU output."""

    size: int
    avg_latency_us: float
    validated: bool


@dataclass
class OSUBenchmark:
    """A configured OSU-style run.

    Parameters mirror the OSU suite: ``msg_range`` is the ``-m lo:hi``
    sweep (sizes double from lo to hi), ``validate`` is ``-c``,
    ``iterations``/``warmups`` control the measurement loop (the
    simulator is deterministic, so small counts suffice — warm-ups
    still matter because they set the steady-state cache contents).
    """

    collective: str
    nranks: int = 64
    machine: str = "NodeA"
    use_yhccl: bool = True
    vendor: str = "Open MPI"
    msg_range: tuple = DEFAULT_RANGE
    validate: bool = False
    warmups: int = 1
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.collective not in COLLECTIVES:
            raise ValueError(
                f"unknown collective {self.collective!r}; "
                f"choose from {COLLECTIVES}"
            )
        if self.machine not in PRESETS:
            raise ValueError(
                f"unknown machine {self.machine!r}; choose from "
                f"{sorted(PRESETS)}"
            )
        lo, hi = self.msg_range
        if not (0 < lo <= hi):
            raise ValueError(f"bad message range {self.msg_range}")

    # ---- the sweep ----------------------------------------------------------

    def sizes(self) -> list:
        out = []
        s = self.msg_range[0]
        while s <= self.msg_range[1]:
            out.append(s)
            s *= 2
        return out

    def _library(self, comm: Communicator):
        if self.use_yhccl:
            return YHCCL(comm)
        return MPILibrary(comm, self.vendor)

    def run(self) -> list:
        """Run the sweep; returns a list of :class:`OSUResult`."""
        machine = PRESETS[self.machine]
        rows = []
        for size in self.sizes():
            comm = Communicator(
                self.nranks, machine=machine, functional=self.validate
            )
            lib = self._library(comm)
            call = getattr(lib, self.collective)
            total = self.warmups + self.iterations
            res = call(size, iterations=total)
            validated = self.validate  # run_* helpers verify when functional
            rows.append(
                OSUResult(size=size, avg_latency_us=res.time * 1e6,
                          validated=validated)
            )
        return rows

    # ---- output -------------------------------------------------------------

    def header(self) -> str:
        name = {
            "allreduce": "OSU MPI Allreduce Latency Test",
            "reduce": "OSU MPI Reduce Latency Test",
            "reduce_scatter": "OSU MPI Reduce_scatter Latency Test",
            "bcast": "OSU MPI Broadcast Latency Test",
            "allgather": "OSU MPI Allgather Latency Test",
        }[self.collective]
        impl = "YHCCL (priority=100)" if self.use_yhccl else self.vendor
        return (
            f"# {name} — simulated {self.machine}, {self.nranks} ranks, "
            f"{impl}\n# {'Size':>10}{'Avg Latency(us)':>20}"
        )

    def render(self, rows) -> str:
        lines = [self.header()]
        for r in rows:
            mark = "  (validated)" if r.validated else ""
            lines.append(f"{r.size:>12}{r.avg_latency_us:>20.2f}{mark}")
        return "\n".join(lines)


def compare_priorities(collective: str, nranks: int = 64,
                       machine: str = "NodeA",
                       msg_range: tuple = DEFAULT_RANGE,
                       vendor: str = "Open MPI") -> str:
    """The artifact's S3 step: the same sweep with YHCCL enabled
    (priority=100) and disabled (priority=0 → vendor fallback),
    side by side with the speedup column."""
    on = OSUBenchmark(collective, nranks=nranks, machine=machine,
                      msg_range=msg_range, use_yhccl=True).run()
    off = OSUBenchmark(collective, nranks=nranks, machine=machine,
                       msg_range=msg_range, use_yhccl=False,
                       vendor=vendor).run()
    lines = [
        f"# {collective}: YHCCL=100 vs YHCCL=0 ({vendor}) — "
        f"{machine}, {nranks} ranks",
        f"# {'Size':>10}{'YHCCL(us)':>14}{vendor + '(us)':>16}"
        f"{'speedup':>10}",
    ]
    for a, b in zip(on, off):
        lines.append(
            f"{a.size:>12}{a.avg_latency_us:>14.2f}"
            f"{b.avg_latency_us:>16.2f}"
            f"{b.avg_latency_us / a.avg_latency_us:>10.2f}"
        )
    return "\n".join(lines)
