"""Collective auto-tuner: measured decision tables for the switching layer.

Production MPI libraries ship tuning tables (Open MPI's ``coll_tuned``
decision files, MVAPICH2's CVARs) choosing an algorithm per (machine,
rank count, message size).  The paper hand-tunes YHCCL's two knobs —
the small-message switch and the MA slice cap ``Imax`` (Section 5.1).
This module measures instead of guessing: it sweeps the candidate
algorithms over a size grid on the simulated machine and emits a
:class:`DecisionTable` the library can follow, plus the best ``Imax``
found for the MA designs.

    comm = Communicator(64, machine=NODE_A)
    table = Tuner(comm).tune("allreduce")
    lib = YHCCL(comm, config=table.to_config())

The tuner is also the honesty check on the hand tuning: the paper's
choices (switch at 256 KB, Imax 256 KB on NodeA) should be near what
measurement picks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.collectives.common import run_reduce_collective
from repro.collectives.dpml import (
    DPML2_ALLREDUCE,
    DPML_REDUCE,
    DPML_REDUCE_SCATTER,
)
from repro.collectives.ma import MA_ALLREDUCE, MA_REDUCE, MA_REDUCE_SCATTER
from repro.collectives.socket_aware import (
    SOCKET_MA_ALLREDUCE,
    SOCKET_MA_REDUCE,
    SOCKET_MA_REDUCE_SCATTER,
)
from repro.collectives.switching import YHCCLConfig
from repro.library.communicator import Communicator
from repro.machine.spec import KB, MB

#: candidate algorithms per collective kind
CANDIDATES = {
    "allreduce": {
        "two-level-dpml": DPML2_ALLREDUCE,
        "ma": MA_ALLREDUCE,
        "socket-ma": SOCKET_MA_ALLREDUCE,
    },
    "reduce_scatter": {
        "dpml": DPML_REDUCE_SCATTER,
        "ma": MA_REDUCE_SCATTER,
        "socket-ma": SOCKET_MA_REDUCE_SCATTER,
    },
    "reduce": {
        "dpml": DPML_REDUCE,
        "ma": MA_REDUCE,
        "socket-ma": SOCKET_MA_REDUCE,
    },
}

DEFAULT_SIZES = [16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB]
DEFAULT_IMAXES = [64 * KB, 128 * KB, 256 * KB, 512 * KB]


@dataclass
class DecisionEntry:
    size: int
    algorithm: str
    time: float
    runner_up: str
    margin: float  # runner-up time / winner time


@dataclass
class DecisionTable:
    """Measured routing decisions for one collective kind."""

    kind: str
    machine: str
    nranks: int
    imax: int
    entries: list = field(default_factory=list)

    def algorithm_for(self, nbytes: int) -> str:
        """Winner at the nearest measured size at or above ``nbytes``."""
        if not self.entries:
            raise ValueError("empty decision table")
        for e in self.entries:
            if nbytes <= e.size:
                return e.algorithm
        return self.entries[-1].algorithm

    def switch_size(self) -> Optional[int]:
        """Largest measured size still won by the small-message
        (DPML-family) algorithm — the empirical Section 5.1 threshold.
        ``None`` when the MA designs win everywhere."""
        last = None
        for e in self.entries:
            if "dpml" in e.algorithm:
                last = e.size
        return last

    def to_config(self) -> YHCCLConfig:
        """A YHCCLConfig following the measured decisions."""
        return YHCCLConfig(
            imax=self.imax,
            small_threshold=self.switch_size() or 0,
            socket_aware=any(
                e.algorithm == "socket-ma" for e in self.entries
            ),
        )

    def render(self) -> str:
        lines = [
            f"decision table: {self.kind} on {self.machine} "
            f"(p={self.nranks}, Imax={self.imax >> 10}KB)",
            f"{'size':>10}{'winner':>18}{'time(us)':>12}{'margin':>9}",
        ]
        for e in self.entries:
            lines.append(
                f"{e.size:>10}{e.algorithm:>18}{e.time * 1e6:>12.1f}"
                f"{e.margin:>8.2f}x"
            )
        return "\n".join(lines)


class Tuner:
    """Measure-and-pick tuner over the simulated machine."""

    def __init__(self, comm: Communicator, *, iterations: int = 2):
        if comm.machine is None:
            raise ValueError("tuning needs a machine model")
        self.comm = comm
        self.iterations = iterations

    def _fresh(self) -> Communicator:
        return Communicator(self.comm.nranks, machine=self.comm.machine,
                            functional=False)

    def _time(self, alg, nbytes: int, imax: int) -> float:
        comm = self._fresh()
        res = run_reduce_collective(
            alg, comm.engine, nbytes, copy_policy="adaptive", imax=imax,
            iterations=self.iterations,
        )
        return res.time

    def tune_imax(self, kind: str = "allreduce", *,
                  nbytes: int = 16 * MB,
                  candidates=DEFAULT_IMAXES) -> int:
        """Best MA slice cap at a representative large message."""
        alg = CANDIDATES[kind]["socket-ma"]
        best = min(candidates, key=lambda i: self._time(alg, nbytes, i))
        return best

    def tune(self, kind: str = "allreduce", *,
             sizes=DEFAULT_SIZES, imax: Optional[int] = None
             ) -> DecisionTable:
        """Full decision table for one collective kind."""
        if kind not in CANDIDATES:
            raise ValueError(
                f"no candidates for {kind!r}; tune one of "
                f"{sorted(CANDIDATES)}"
            )
        imax = imax or self.tune_imax(kind)
        table = DecisionTable(
            kind=kind, machine=self.comm.machine.name,
            nranks=self.comm.nranks, imax=imax,
        )
        for s in sizes:
            times = {
                name: self._time(alg, s, imax)
                for name, alg in CANDIDATES[kind].items()
            }
            ordered = sorted(times.items(), key=lambda kv: kv[1])
            (win, t_win), (up, t_up) = ordered[0], ordered[1]
            table.entries.append(
                DecisionEntry(size=s, algorithm=win, time=t_win,
                              runner_up=up, margin=t_up / t_win)
            )
        return table
