"""Communicator: a set of simulated ranks on a (possibly modelled) node.

Wraps an :class:`~repro.sim.engine.Engine` plus the run-mode choices
(functional vs timing, machine model, RNG seed) and provides buffer
management helpers shared by the library facades.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.machine.spec import MachineSpec
from repro.sim.engine import Engine


class Communicator:
    """A group of ``nranks`` simulated processes.

    Parameters
    ----------
    nranks:
        Number of ranks (one per core; validated against the machine).
    machine:
        Optional machine model; required for timing results.  Without
        it, collectives still run functionally (tests, small demos).
    functional:
        Carry real numpy payloads.  Disable for large timing sweeps.
    dtype:
        Element type of functional payloads.
    """

    def __init__(self, nranks: int, *, machine: Optional[MachineSpec] = None,
                 functional: Optional[bool] = None, dtype=np.float64,
                 trace: bool = False, trace_accesses: bool = True,
                 seed: int = 2023):
        if functional is None:
            functional = machine is None
        self.engine = Engine(
            nranks,
            machine=machine,
            functional=functional,
            dtype=dtype,
            trace=trace,
            trace_accesses=trace_accesses,
            seed=seed,
        )

    @property
    def nranks(self) -> int:
        return self.engine.nranks

    @property
    def machine(self) -> Optional[MachineSpec]:
        return self.engine.machine

    @property
    def functional(self) -> bool:
        return self.engine.functional

    def reset_caches(self) -> None:
        """Cold-start the simulated caches (between unrelated runs)."""
        if self.engine.memsys is not None:
            self.engine.memsys.reset_caches()

    def socket_of(self, rank: int) -> int:
        if self.engine.memsys is None:
            return 0
        return self.engine.memsys.socket_of_rank(rank)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        m = self.machine.name if self.machine else "no-machine"
        mode = "functional" if self.functional else "timing"
        return f"<Communicator {self.nranks} ranks on {m} ({mode})>"
