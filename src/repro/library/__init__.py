"""YHCCL public API: communicators, the collective library facade, the
vendor-MPI selector and the PMPI-style profiler.

This is the layer a downstream user programs against::

    from repro.library import Communicator, YHCCL
    from repro.machine import NODE_A

    comm = Communicator(nranks=64, machine=NODE_A)
    lib = YHCCL(comm)
    result = lib.allreduce(nbytes=16 << 20)
    print(result.time, result.dav)

The :class:`~repro.library.mpi.MPILibrary` facade exposes the same five
collectives backed by any vendor model (``"Open MPI"``, ``"Intel MPI"``,
``"MVAPICH2"``, ``"MPICH"``, ``"XPMEM"``) or by a single named algorithm,
so benchmark code can sweep implementations uniformly.
"""

from repro.library.communicator import Communicator
from repro.library.yhccl import YHCCL, CollectiveResult
from repro.library.mpi import MPILibrary, ALGORITHMS, implementations
from repro.library.cluster import ClusterAllreduce, ClusterResult
from repro.library.hierarchy import (
    BestOfStage,
    GroupedLeafStage,
    Hierarchy,
    HierarchyResult,
    LeafStage,
    NetworkStage,
    RabenseifnerStage,
    RingStage,
    SizeSwitchStage,
    Stage,
    StageResult,
    TreeAllreduceStage,
    allreduce_stages,
    hierarchy_for_topology,
    vendor_network_stage,
)
from repro.library.multinode import MultiNodeAllreduce, MultiNodeResult
from repro.library.profiler import Profiler, ProfileRecord

__all__ = [
    "Communicator",
    "YHCCL",
    "CollectiveResult",
    "MPILibrary",
    "ALGORITHMS",
    "implementations",
    "Profiler",
    "ProfileRecord",
    "ClusterAllreduce",
    "ClusterResult",
    "MultiNodeAllreduce",
    "MultiNodeResult",
    "Stage",
    "StageResult",
    "LeafStage",
    "GroupedLeafStage",
    "NetworkStage",
    "RingStage",
    "TreeAllreduceStage",
    "RabenseifnerStage",
    "BestOfStage",
    "SizeSwitchStage",
    "Hierarchy",
    "HierarchyResult",
    "allreduce_stages",
    "vendor_network_stage",
    "hierarchy_for_topology",
]
