"""Application workloads driving the collective library (Section 5.6):
the MiniAMR adaptive-mesh-refinement proxy app and data-parallel CNN
training (ResNet-50 / VGG-16 via a Horovod-style trainer).
"""

from repro.apps.miniamr import MiniAMR, MiniAMRConfig, MiniAMRResult
from repro.apps.cnn import (
    CNNTrainer,
    TrainingResult,
    MODELS,
    resnet50,
    vgg16,
)

__all__ = [
    "MiniAMR",
    "MiniAMRConfig",
    "MiniAMRResult",
    "CNNTrainer",
    "TrainingResult",
    "MODELS",
    "resnet50",
    "vgg16",
]
