"""Data-parallel CNN training with Horovod-style gradient allreduce.

Figure 18's workload: ResNet-50 (25.6 M parameters) and VGG-16
(138.4 M parameters) trained data-parallel on Cluster C (24 processes
per node, 1–256 nodes), reporting images/second.

The trainer models one SGD iteration as

    t_iter = t_forward + combine(t_backward, t_comm)

where ``t_comm`` is the per-layer gradient allreduce through the
collective library (intra-node) and the hierarchical network model
(inter-node).  YHCCL (with Horovod's tensor pipelining) *overlaps*
gradient exchange with back-propagation — ``combine = max``; the
baseline's blocking allreduce serializes — ``combine = sum`` — which is
the mechanism behind the paper's fixed ~1.8–2.0x throughput gap
("our optimization in hiding communication with computation",
Section 5.6).

Layer tables carry real per-layer parameter counts (abbreviated to the
dominant layers); a functional mode with a tiny model pushes real
gradient arrays through the simulated library so tests can verify that
data-parallel averaging is numerically exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.library.communicator import Communicator
from repro.library.multinode import MultiNodeAllreduce

#: effective training throughput per core (flops/s) — Xeon E5-2692 v2
#: class, calibrated to Figure 18's single-node images/second.
TRAIN_FLOPS_PER_CORE = 1.5e9

#: Horovod-over-MPI blocking-path calibration (see EXPERIMENTS.md):
#: per-tensor negotiation/dispatch cost (base + per-doubling of world
#: size), and the serialization slowdown of the un-pipelined baseline's
#: *on-node* gradient exchange relative to a dedicated collective run
#: (the wire time is charged as-is).  The constants are fit so the
#: simulated gaps land on the paper's Figure 18 (1.94x ResNet-50 /
#: 1.80x VGG-16 at 256 nodes; artifact: 1.62x single-node).
BASELINE_COORD_BASE = 6e-3
BASELINE_COORD_PER_DOUBLING = 1e-3
BASELINE_DISPATCH_SLOWDOWN = 20.0


@dataclass(frozen=True)
class Layer:
    name: str
    params: int  # parameter count
    flops_per_image: float  # forward flops
    tensors: int = 1  # gradient tensors (weights/biases per sublayer)


@dataclass(frozen=True)
class ModelSpec:
    name: str
    layers: tuple

    @property
    def params(self) -> int:
        return sum(l.params for l in self.layers)

    @property
    def forward_flops(self) -> float:
        return sum(l.flops_per_image for l in self.layers)

    @property
    def gradient_bytes(self) -> int:
        return 4 * self.params  # fp32 gradients


def resnet50() -> ModelSpec:
    """ResNet-50: 25.6 M params, ~3.9 GFLOP forward per image.

    Stage-level aggregation of the standard architecture.
    """
    return ModelSpec(
        name="ResNet-50",
        layers=(
            Layer("conv1", 9_408, 0.12e9, tensors=1),
            Layer("conv2_x", 215_808, 0.68e9, tensors=30),
            Layer("conv3_x", 1_219_584, 1.04e9, tensors=40),
            Layer("conv4_x", 7_098_368, 1.47e9, tensors=60),
            Layer("conv5_x", 14_964_736, 0.52e9, tensors=27),
            Layer("fc", 2_049_000, 0.004e9, tensors=2),
            Layer("bn_misc", 53_120, 0.03e9, tensors=1),
        ),
    )


def vgg16() -> ModelSpec:
    """VGG-16: 138.4 M params, ~15.5 GFLOP forward per image."""
    return ModelSpec(
        name="VGG-16",
        layers=(
            Layer("conv1-2", 38_720, 2.0e9, tensors=4),
            Layer("conv3-4", 221_440, 2.8e9, tensors=4),
            Layer("conv5-7", 1_475_328, 3.7e9, tensors=6),
            Layer("conv8-10", 5_899_776, 3.7e9, tensors=6),
            Layer("conv11-13", 7_079_424, 2.8e9, tensors=6),
            Layer("fc14", 102_764_544, 0.21e9, tensors=2),
            Layer("fc15", 16_781_312, 0.034e9, tensors=2),
            Layer("fc16", 4_097_000, 0.008e9, tensors=2),
        ),
    )


MODELS = {"resnet50": resnet50, "vgg16": vgg16}


@dataclass
class TrainingResult:
    model: str
    implementation: str
    nnodes: int
    batch_per_rank: int
    iter_time: float
    compute_time: float
    comm_time: float
    images_per_second: float


class CNNTrainer:
    """One data-parallel training setup on ``nnodes`` identical nodes."""

    def __init__(self, comm: Communicator, model: ModelSpec, *,
                 implementation: str = "YHCCL", nnodes: int = 1,
                 batch_per_rank: int = 4, fusion_bytes: int = 64 << 20):
        if batch_per_rank < 1:
            raise ValueError("batch size must be positive")
        self.comm = comm
        self.model = model
        self.implementation = implementation
        self.nnodes = nnodes
        self.batch_per_rank = batch_per_rank
        self.fusion_bytes = fusion_bytes

    # ---- compute model ------------------------------------------------------

    def _compute_times(self) -> tuple[float, float]:
        """(forward, backward) seconds per iteration per rank."""
        imgs = self.batch_per_rank
        fwd_flops = self.model.forward_flops * imgs
        t_fwd = fwd_flops / TRAIN_FLOPS_PER_CORE
        return t_fwd, 2.0 * t_fwd  # backward ≈ 2x forward

    def _fused_buckets(self) -> list[int]:
        """Horovod tensor fusion: greedily pack gradient tensors into
        buckets of at most ``fusion_bytes``, in reverse layer order (the
        order gradients become ready).  A single tensor larger than the
        cap travels alone — Horovod never splits tensors."""
        buckets = []
        cur = 0
        for layer in reversed(self.model.layers):
            per_tensor = 4 * layer.params // layer.tensors
            for _ in range(layer.tensors):
                if cur and cur + per_tensor > self.fusion_bytes:
                    buckets.append(cur)
                    cur = 0
                cur += per_tensor
        if cur:
            buckets.append(cur)
        return buckets

    # ---- the iteration -------------------------------------------------------

    def iteration(self) -> TrainingResult:
        import math

        t_fwd, t_bwd = self._compute_times()
        mn = MultiNodeAllreduce(self.comm, self.nnodes,
                                implementation=self.implementation)
        if self.implementation == "YHCCL":
            # fused buckets, exchanged concurrently with back-propagation
            t_comm = sum(mn.allreduce(b).time for b in self._fused_buckets())
            t_iter = t_fwd + max(t_bwd, t_comm)
        else:
            # blocking per-tensor path: Horovod negotiates and dispatches
            # each gradient tensor through MPI after the backward pass
            world = self.comm.nranks * self.nnodes
            coord = BASELINE_COORD_BASE + BASELINE_COORD_PER_DOUBLING * max(
                0.0, math.log2(world)
            )
            t_comm = 0.0
            cache: dict[int, tuple] = {}
            for layer in self.model.layers:
                tensor_bytes = max(8, 4 * layer.params // layer.tensors)
                tensor_bytes = -(-tensor_bytes // 8) * 8
                if tensor_bytes not in cache:
                    r = mn.allreduce(tensor_bytes)
                    cache[tensor_bytes] = (r.intra_time, r.inter_time)
                intra, inter = cache[tensor_bytes]
                # the dispatch serialization penalizes the on-node part;
                # the wire time is what it is
                t_comm += layer.tensors * (
                    coord + BASELINE_DISPATCH_SLOWDOWN * intra + inter
                )
            t_iter = t_fwd + t_bwd + t_comm
        global_batch = self.batch_per_rank * self.comm.nranks * self.nnodes
        return TrainingResult(
            model=self.model.name,
            implementation=self.implementation,
            nnodes=self.nnodes,
            batch_per_rank=self.batch_per_rank,
            iter_time=t_iter,
            compute_time=t_fwd + t_bwd,
            comm_time=t_comm,
            images_per_second=global_batch / t_iter,
        )

    # ---- functional verification path -----------------------------------------

    @staticmethod
    def verify_gradient_averaging(nranks: int = 4, params: int = 1000,
                                  seed: int = 3) -> bool:
        """Push real per-rank gradients through the simulated YHCCL
        allreduce and check the data-parallel average is exact."""
        from repro.collectives.ma import MA_ALLREDUCE
        from repro.collectives.common import make_env
        from repro.sim.engine import Engine

        eng = Engine(nranks, functional=True, seed=seed)
        env = make_env(MA_ALLREDUCE, engine=eng, s=8 * params)
        grads = [env.sendbufs[r].array().copy() for r in range(nranks)]
        eng.run(lambda ctx: MA_ALLREDUCE.program(ctx, env))
        want = np.sum(grads, axis=0)
        for r in range(nranks):
            np.testing.assert_allclose(env.recvbufs[r].array(), want,
                                       rtol=1e-12)
        return True
