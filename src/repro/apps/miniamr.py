"""MiniAMR: a 3-D stencil mini-app with adaptive mesh refinement.

A faithful-in-structure miniature of the ECP MiniAMR proxy (Figure 17's
workload): each rank owns a set of blocks; every timestep applies a
7-point stencil sweep to each block, a synthetic object moves through
the domain triggering block refinement/coarsening, and refinement
bookkeeping is agreed on with **allreduce** operations whose message
length is proportional to the number of refinements — the large-message
allreduce that dominates the app's communication (the paper runs
``--num_refine 40000``).

The stencil and refinement logic are real (numpy blocks, checksummed in
the tests); communication costs come from the simulated collective
library, and compute time from a calibrated flop model.  Identical
allreduce calls are timed once per (size, implementation, node-count)
and multiplied — the calls are bitwise-identical workloads, so this is
exact for the timing model while keeping quarter-million-call runs
tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.library.communicator import Communicator
from repro.library.multinode import MultiNodeAllreduce

#: effective per-core stencil throughput (flops/s); with the default
#: workload (8^3 blocks, 40 variables, one sweep per refinement step)
#: this puts the single-node compute near Figure 17's ~20 s.
STENCIL_FLOPS_PER_CORE = 2.0e9
STENCIL_FLOPS_PER_CELL = 8.0  # 7-point stencil: 6 adds + 1 multiply + store


@dataclass
class MiniAMRConfig:
    """Workload shape, defaulting to the paper's artifact settings
    (``--num_refine 40000 --num_tsteps 20 --refine_freq 1``)."""

    block_size: int = 8  # cells per block edge (MiniAMR default scale)
    blocks_per_rank: int = 8
    num_vars: int = 40  # MiniAMR's default variable count
    num_refine: int = 40000
    num_tsteps: int = 20
    refine_freq: int = 1
    #: allreduce payload per refinement entry (refine counters, float64)
    bytes_per_refine: int = 8
    #: refinement events carried out with real block logic (the rest are
    #: statistically identical; compute time scales by the true count)
    simulated_refines: int = 200

    def allreduce_bytes(self, nnodes: int = 1) -> int:
        """Message length of the refinement allreduce.

        Proportional to the refinement count, and — because the runs
        weak-scale (``srun -N 64 -n 4096``) — to the node count: the
        bookkeeping vector covers the *global* block population.
        """
        return max(8, self.bytes_per_refine * self.num_refine) * max(1, nnodes)


@dataclass
class MiniAMRResult:
    total_time: float
    compute_time: float
    comm_time: float
    nnodes: int
    implementation: str
    refined_blocks: int
    checksum: float

    @property
    def comm_fraction(self) -> float:
        return self.comm_time / self.total_time if self.total_time else 0.0


class _Block:
    """One mesh block: a cubic cell array plus refinement level."""

    __slots__ = ("cells", "level", "center")

    def __init__(self, n: int, level: int, center, rng):
        self.cells = rng.random((n, n, n))
        self.level = level
        self.center = np.asarray(center, dtype=float)

    def stencil_sweep(self) -> None:
        """One 7-point stencil relaxation (vectorized, periodic faces)."""
        c = self.cells
        out = c.copy()
        for axis in range(3):
            out += np.roll(c, 1, axis=axis) + np.roll(c, -1, axis=axis)
        self.cells = out / 7.0

    def checksum(self) -> float:
        return float(self.cells.sum())


class MiniAMR:
    """Run the mini-app against one collective implementation.

    ``implementation`` is ``"YHCCL"`` or a vendor name (Figure 17 uses
    the Open MPI default); ``nnodes`` scales the run across identical
    nodes through the hierarchical allreduce model.
    """

    def __init__(self, comm: Communicator, config: Optional[MiniAMRConfig] = None,
                 *, implementation: str = "YHCCL", nnodes: int = 1,
                 seed: int = 7):
        self.comm = comm
        self.config = config or MiniAMRConfig()
        self.implementation = implementation
        self.nnodes = nnodes
        self.rng = np.random.default_rng(seed)
        n = self.config.block_size
        self.blocks = [
            _Block(n, 0, self.rng.random(3), self.rng)
            for _ in range(self.config.blocks_per_rank)
        ]
        self._object_pos = np.array([0.1, 0.1, 0.1])
        self.refined = 0

    # ---- refinement logic -------------------------------------------------

    def _move_object(self) -> None:
        self._object_pos = (self._object_pos + 0.037) % 1.0

    def _refine_step(self) -> int:
        """Refine blocks the object touches, coarsen the rest; returns
        the number of refinement events this step."""
        events = 0
        n = self.config.block_size
        new_blocks = []
        for blk in self.blocks:
            d = np.linalg.norm(blk.center - self._object_pos)
            if d < 0.25 and blk.level < 3:
                # split into two child blocks (abbreviated octree)
                for delta in (-0.05, 0.05):
                    child = _Block(n, blk.level + 1, blk.center + delta,
                                   self.rng)
                    # children inherit a coarse restriction of the parent
                    child.cells[:] = blk.cells.mean()
                    new_blocks.append(child)
                events += 1
            elif d > 0.6 and blk.level > 0:
                blk.level -= 1
                new_blocks.append(blk)
                events += 1
            else:
                new_blocks.append(blk)
        # keep the population bounded like the real app's load balancer
        self.blocks = new_blocks[: 4 * self.config.blocks_per_rank]
        self.refined += events
        return events

    # ---- timing model ------------------------------------------------------

    def _sweep_time(self) -> float:
        """One stencil sweep over this rank's base block budget.

        Uses the configured block count (not the instantaneous refined
        population) so the aggregate compute estimate is deterministic;
        the load balancer keeps per-rank work near this budget anyway.
        """
        cells = self.config.blocks_per_rank * self.config.block_size ** 3
        flops = cells * self.config.num_vars * STENCIL_FLOPS_PER_CELL
        return flops / STENCIL_FLOPS_PER_CORE  # one sweep per core

    def run(self) -> MiniAMRResult:
        cfg = self.config
        # one representative allreduce timing per implementation; the
        # refinement allreduces are bitwise-identical workloads, so one
        # simulation per size is exact for the timing model
        mn = MultiNodeAllreduce(self.comm, self.nnodes,
                                implementation=self.implementation)
        ar = mn.allreduce(cfg.allreduce_bytes(self.nnodes))
        # small per-step consistency allreduce (counters)
        ar_small = mn.allreduce(1024)

        comm = 0.0
        # real refinement/stencil logic runs for `simulated_refines`
        # events; compute time scales with the true refinement count
        # (one sweep between consecutive refinement steps).
        refine_rounds = max(1, cfg.simulated_refines // max(1, cfg.num_tsteps))
        for _ in range(cfg.num_tsteps):
            for blk in self.blocks:
                blk.stencil_sweep()
            for _ in range(refine_rounds):
                self._move_object()
                self._refine_step()
            comm += ar_small.time
        refine_steps = cfg.num_refine // max(1, cfg.refine_freq)
        compute = refine_steps * self._sweep_time()
        # refinement-driven allreduce: one call per refinement step
        # (the paper's dominant large-message traffic)
        comm += refine_steps * ar.time
        checksum = float(sum(b.checksum() for b in self.blocks))
        return MiniAMRResult(
            total_time=compute + comm,
            compute_time=compute,
            comm_time=comm,
            nnodes=self.nnodes,
            implementation=self.implementation,
            refined_blocks=self.refined,
            checksum=checksum,
        )
