"""Simulated memory buffers: private per-rank memory and shared memory.

A :class:`Buffer` is a contiguous byte range with an identity the cache
model can key on.  In *functional* mode it wraps a numpy array so the
collectives compute real results; in *timing* mode ``data`` is ``None``
and only sizes flow through the machine model.

Offsets and lengths are always expressed in **bytes**; functional
accessors convert to element slices and therefore require alignment to
the element size (the algorithms are slice-aligned by construction; a
misaligned access raises, which has caught real bugs).

**Sanitizer mode** (``Engine(..., sanitize=True)``) attaches
byte-granular shadow state to every buffer the engine allocates: an
*initialized* bitmap (set by fills/random data and by writes) and a
*last-writer* map stamped with the engine's synchronization epoch.
At access time the :class:`Sanitizer` flags

* **uninitialized reads** — a data op reads bytes no one produced;
* **same-epoch overlapping writes** — two ranks write overlapping
  bytes with no synchronization event anywhere between them, which no
  happens-before edge could possibly order (the blatant-race subset a
  shadow-memory check can prove at access time; the vector-clock
  analyzer in :mod:`repro.analysis.hb` covers the rest).

Out-of-bounds slicing is checked unconditionally:
:meth:`BufView.sub` and the :class:`BufView` constructor raise
``ValueError`` on negative or overrunning ranges.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

_buf_ids = itertools.count(1)


class Buffer:
    """Private memory of one rank (the paper's "local memory").

    Parameters
    ----------
    nbytes:
        Size of the buffer.
    owner:
        Owning rank (used for diagnostics and XPMEM-style remote access).
    home_socket:
        NUMA home of the backing pages.  Private buffers are homed on
        the owner's socket by the engine.
    data:
        Optional numpy array (functional mode).  Must have exactly
        ``nbytes`` bytes.
    name:
        Diagnostic label (e.g. ``"sendbuf[3]"``).
    """

    kind = "private"

    def __init__(
        self,
        nbytes: int,
        *,
        owner: Optional[int] = None,
        home_socket: Optional[int] = None,
        data: Optional[np.ndarray] = None,
        name: str = "",
    ):
        if nbytes <= 0:
            raise ValueError(f"buffer size must be positive, got {nbytes}")
        if data is not None and data.nbytes != nbytes:
            raise ValueError(
                f"data has {data.nbytes} bytes but buffer declared {nbytes}"
            )
        self.buf_id = next(_buf_ids)
        self.nbytes = int(nbytes)
        self.owner = owner
        self.home_socket = home_socket
        self.data = data
        self.name = name or f"buf{self.buf_id}"
        #: whether allocation produced defined contents (a fill or
        #: random payload); consumed by the sanitizer's initial shadow
        #: state and the static uninit-read pass
        self.initialized = False
        #: shadow state, attached by :meth:`Sanitizer.attach`
        self.shadow: Optional["Shadow"] = None

    @property
    def itemsize(self) -> int:
        return self.data.dtype.itemsize if self.data is not None else 1

    def view(self, off: int = 0, nbytes: Optional[int] = None) -> "BufView":
        return BufView(self, off, self.nbytes - off if nbytes is None else nbytes)

    def array(self, off: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        """Functional-mode element view of ``[off, off+nbytes)``."""
        if self.data is None:
            raise RuntimeError(f"{self.name} is a virtual (timing-only) buffer")
        if nbytes is None:
            nbytes = self.nbytes - off
        isz = self.data.dtype.itemsize
        if off % isz or nbytes % isz:
            raise ValueError(
                f"access [{off}, {off + nbytes}) of {self.name} is not aligned "
                f"to itemsize {isz}"
            )
        return self.data[off // isz : (off + nbytes) // isz]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "func" if self.data is not None else "virt"
        return f"<{type(self).__name__} {self.name} {self.nbytes}B {mode}>"


class SharedBuffer(Buffer):
    """A shared-memory segment visible to every rank on the node.

    NUMA home defaults to first-touch (``home_socket=None``): the
    machine model assigns each region's home to the socket of the first
    rank that stores it, matching Linux page placement for POSIX shm.
    """

    kind = "shared"

    def __init__(self, nbytes: int, *, data: Optional[np.ndarray] = None,
                 home_socket: Optional[int] = None, name: str = ""):
        super().__init__(
            nbytes, owner=None, home_socket=home_socket, data=data,
            name=name or "shm",
        )


@dataclass(frozen=True)
class BufView:
    """A byte-range view of a buffer — the unit the engine operates on."""

    buf: Buffer
    off: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.off < 0 or self.nbytes < 0:
            raise ValueError("negative view bounds")
        if self.off + self.nbytes > self.buf.nbytes:
            raise ValueError(
                f"view [{self.off}, {self.off + self.nbytes}) exceeds "
                f"{self.buf.name} ({self.buf.nbytes} bytes)"
            )

    def sub(self, off: int, nbytes: int) -> "BufView":
        """Sub-slice relative to this view; must stay inside it.

        A negative ``off`` could otherwise silently escape the view
        into a neighbouring region of the same buffer (the constructor
        only checks buffer bounds), so bounds are enforced here
        unconditionally — not just in sanitizer mode.
        """
        if off < 0 or nbytes < 0 or off + nbytes > self.nbytes:
            raise ValueError(
                f"sub-slice [{off}, {off + nbytes}) escapes view "
                f"{self.buf.name}[{self.off}, {self.off + self.nbytes}) "
                f"of {self.nbytes} bytes"
            )
        return BufView(self.buf, self.off + off, nbytes)

    def array(self) -> np.ndarray:
        return self.buf.array(self.off, self.nbytes)

    @property
    def is_virtual(self) -> bool:
        return self.buf.data is None


def alloc(nbytes: int, *, dtype=np.float64, functional: bool,
          fill: Optional[float] = None, rng: Optional[np.random.Generator] = None,
          owner: Optional[int] = None, name: str = "") -> Buffer:
    """Allocate a private buffer, optionally with concrete data."""
    data = _make_data(nbytes, dtype, functional, fill, rng)
    buf = Buffer(nbytes, owner=owner, data=data, name=name)
    # fill/random allocations model initialized memory; a plain alloc
    # is zero-filled for determinism but semantically uninitialized
    buf.initialized = fill is not None or rng is not None
    return buf


def alloc_shared(nbytes: int, *, dtype=np.float64, functional: bool,
                 name: str = "shm") -> SharedBuffer:
    """Allocate a shared segment (zero-filled in functional mode)."""
    data = _make_data(nbytes, dtype, functional, fill=0.0, rng=None)
    return SharedBuffer(nbytes, data=data, name=name)


class SanitizerError(RuntimeError):
    """A shadow-state violation caught at access time.

    ``kind`` is ``"uninitialized-read"`` or ``"overlapping-write"``;
    ``rank``/``buf_name``/``lo``/``hi`` locate the offending access,
    and for overlapping writes ``other_rank`` names the unsynchronized
    previous writer.
    """

    def __init__(self, kind: str, message: str, *, rank: int,
                 buf_name: str, lo: int, hi: int, other_rank: int = -1):
        super().__init__(message)
        self.kind = kind
        self.rank = rank
        self.buf_name = buf_name
        self.lo = lo
        self.hi = hi
        self.other_rank = other_rank


class Shadow:
    """Byte-granular shadow state of one buffer (sanitizer mode)."""

    __slots__ = ("init", "writer", "epoch")

    def __init__(self, nbytes: int, *, initialized: bool):
        self.init = np.full(nbytes, initialized, dtype=bool)
        self.writer = np.full(nbytes, -1, dtype=np.int32)
        self.epoch = np.full(nbytes, -1, dtype=np.int64)


class Sanitizer:
    """Simulated-memory sanitizer: shadow-state checks at access time.

    The engine advances :attr:`sync_epoch` on every synchronization
    event (post, wait release, barrier completion, run start).  Two
    writes to the same byte by different ranks within one epoch are
    provably unordered — no post/wait or barrier lies between them in
    the whole execution — and are reported immediately, with the
    offending operation still on the stack.  Reads of bytes whose
    ``init`` shadow is unset are reported as uninitialized.
    """

    def __init__(self) -> None:
        self.sync_epoch = 0

    def on_sync(self) -> None:
        self.sync_epoch += 1

    def attach(self, buf: Buffer, *, initialized: bool) -> None:
        buf.shadow = Shadow(buf.nbytes, initialized=initialized)

    def check_access(self, rank: int, op_kind: str,
                     reads: tuple, writes: tuple) -> None:
        """Validate one data operation's byte ranges, then update the
        shadows.  Reads are checked before any write marks bytes
        initialized (``reduce_acc`` reads its destination)."""
        for v in reads:
            self._check_read(rank, op_kind, v)
        for v in writes:
            self._check_write(rank, op_kind, v)

    def _check_read(self, rank: int, op_kind: str, v: "BufView") -> None:
        shadow = v.buf.shadow
        if shadow is None or v.nbytes == 0:
            return
        seg = shadow.init[v.off:v.off + v.nbytes]
        if seg.all():
            return
        bad = v.off + int(np.argmin(seg))
        raise SanitizerError(
            "uninitialized-read",
            f"rank {rank} {op_kind} reads uninitialized byte {bad} of "
            f"{v.buf.name} (range [{v.off}, {v.off + v.nbytes})): no "
            f"write or fill produced it",
            rank=rank, buf_name=v.buf.name, lo=v.off, hi=v.off + v.nbytes,
        )

    def _check_write(self, rank: int, op_kind: str, v: "BufView") -> None:
        shadow = v.buf.shadow
        if shadow is None or v.nbytes == 0:
            return
        sl = slice(v.off, v.off + v.nbytes)
        clash = (
            (shadow.epoch[sl] == self.sync_epoch)
            & (shadow.writer[sl] != rank)
            & (shadow.writer[sl] >= 0)
        )
        if clash.any():
            bad = v.off + int(np.argmax(clash))
            other = int(shadow.writer[bad])
            raise SanitizerError(
                "overlapping-write",
                f"rank {rank} {op_kind} overwrites byte {bad} of "
                f"{v.buf.name} already written by rank {other} in the "
                f"same sync epoch — no synchronization orders the two "
                f"writes (range [{v.off}, {v.off + v.nbytes}))",
                rank=rank, buf_name=v.buf.name, lo=v.off,
                hi=v.off + v.nbytes, other_rank=other,
            )
        shadow.init[sl] = True
        shadow.writer[sl] = rank
        shadow.epoch[sl] = self.sync_epoch


def _make_data(nbytes, dtype, functional, fill, rng) -> Optional[np.ndarray]:
    if not functional:
        return None
    dtype = np.dtype(dtype)
    if nbytes % dtype.itemsize:
        raise ValueError(
            f"{nbytes} bytes is not a whole number of {dtype} elements"
        )
    n = nbytes // dtype.itemsize
    if rng is not None:
        if np.issubdtype(dtype, np.floating):
            return rng.random(n).astype(dtype)
        return rng.integers(0, 1 << 20, n).astype(dtype)
    return np.full(n, 0.0 if fill is None else fill, dtype=dtype)
