"""Simulated memory buffers: private per-rank memory and shared memory.

A :class:`Buffer` is a contiguous byte range with an identity the cache
model can key on.  In *functional* mode it wraps a numpy array so the
collectives compute real results; in *timing* mode ``data`` is ``None``
and only sizes flow through the machine model.

Offsets and lengths are always expressed in **bytes**; functional
accessors convert to element slices and therefore require alignment to
the element size (the algorithms are slice-aligned by construction; a
misaligned access raises, which has caught real bugs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

_buf_ids = itertools.count(1)


class Buffer:
    """Private memory of one rank (the paper's "local memory").

    Parameters
    ----------
    nbytes:
        Size of the buffer.
    owner:
        Owning rank (used for diagnostics and XPMEM-style remote access).
    home_socket:
        NUMA home of the backing pages.  Private buffers are homed on
        the owner's socket by the engine.
    data:
        Optional numpy array (functional mode).  Must have exactly
        ``nbytes`` bytes.
    name:
        Diagnostic label (e.g. ``"sendbuf[3]"``).
    """

    kind = "private"

    def __init__(
        self,
        nbytes: int,
        *,
        owner: Optional[int] = None,
        home_socket: Optional[int] = None,
        data: Optional[np.ndarray] = None,
        name: str = "",
    ):
        if nbytes <= 0:
            raise ValueError(f"buffer size must be positive, got {nbytes}")
        if data is not None and data.nbytes != nbytes:
            raise ValueError(
                f"data has {data.nbytes} bytes but buffer declared {nbytes}"
            )
        self.buf_id = next(_buf_ids)
        self.nbytes = int(nbytes)
        self.owner = owner
        self.home_socket = home_socket
        self.data = data
        self.name = name or f"buf{self.buf_id}"

    @property
    def itemsize(self) -> int:
        return self.data.dtype.itemsize if self.data is not None else 1

    def view(self, off: int = 0, nbytes: Optional[int] = None) -> "BufView":
        return BufView(self, off, self.nbytes - off if nbytes is None else nbytes)

    def array(self, off: int = 0, nbytes: Optional[int] = None) -> np.ndarray:
        """Functional-mode element view of ``[off, off+nbytes)``."""
        if self.data is None:
            raise RuntimeError(f"{self.name} is a virtual (timing-only) buffer")
        if nbytes is None:
            nbytes = self.nbytes - off
        isz = self.data.dtype.itemsize
        if off % isz or nbytes % isz:
            raise ValueError(
                f"access [{off}, {off + nbytes}) of {self.name} is not aligned "
                f"to itemsize {isz}"
            )
        return self.data[off // isz : (off + nbytes) // isz]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "func" if self.data is not None else "virt"
        return f"<{type(self).__name__} {self.name} {self.nbytes}B {mode}>"


class SharedBuffer(Buffer):
    """A shared-memory segment visible to every rank on the node.

    NUMA home defaults to first-touch (``home_socket=None``): the
    machine model assigns each region's home to the socket of the first
    rank that stores it, matching Linux page placement for POSIX shm.
    """

    kind = "shared"

    def __init__(self, nbytes: int, *, data: Optional[np.ndarray] = None,
                 home_socket: Optional[int] = None, name: str = ""):
        super().__init__(
            nbytes, owner=None, home_socket=home_socket, data=data,
            name=name or "shm",
        )


@dataclass(frozen=True)
class BufView:
    """A byte-range view of a buffer — the unit the engine operates on."""

    buf: Buffer
    off: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.off < 0 or self.nbytes < 0:
            raise ValueError("negative view bounds")
        if self.off + self.nbytes > self.buf.nbytes:
            raise ValueError(
                f"view [{self.off}, {self.off + self.nbytes}) exceeds "
                f"{self.buf.name} ({self.buf.nbytes} bytes)"
            )

    def sub(self, off: int, nbytes: int) -> "BufView":
        return BufView(self.buf, self.off + off, nbytes)

    def array(self) -> np.ndarray:
        return self.buf.array(self.off, self.nbytes)

    @property
    def is_virtual(self) -> bool:
        return self.buf.data is None


def alloc(nbytes: int, *, dtype=np.float64, functional: bool,
          fill: Optional[float] = None, rng: Optional[np.random.Generator] = None,
          owner: Optional[int] = None, name: str = "") -> Buffer:
    """Allocate a private buffer, optionally with concrete data."""
    data = _make_data(nbytes, dtype, functional, fill, rng)
    return Buffer(nbytes, owner=owner, data=data, name=name)


def alloc_shared(nbytes: int, *, dtype=np.float64, functional: bool,
                 name: str = "shm") -> SharedBuffer:
    """Allocate a shared segment (zero-filled in functional mode)."""
    data = _make_data(nbytes, dtype, functional, fill=0.0, rng=None)
    return SharedBuffer(nbytes, data=data, name=name)


def _make_data(nbytes, dtype, functional, fill, rng) -> Optional[np.ndarray]:
    if not functional:
        return None
    dtype = np.dtype(dtype)
    if nbytes % dtype.itemsize:
        raise ValueError(
            f"{nbytes} bytes is not a whole number of {dtype} elements"
        )
    n = nbytes // dtype.itemsize
    if rng is not None:
        if np.issubdtype(dtype, np.floating):
            return rng.random(n).astype(dtype)
        return rng.integers(0, 1 << 20, n).astype(dtype)
    return np.full(n, 0.0 if fill is None else fill, dtype=dtype)
