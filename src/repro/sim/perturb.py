"""Perturbation ensembles for compiled schedules.

The compiled evaluator replays a captured schedule under *modified*
inputs — per-op durations and per-rank release times — without re-running
the coroutine engine.  This module supplies the modified inputs: seeded
samplers for the noise sources that dominate collective tail latency on
real shared-memory nodes, and a driver that pushes a whole ensemble
through :meth:`~repro.sim.compiled.CompiledSchedule.evaluate_batch` and
summarizes the tail (p50/p99/p999).

Noise models (all multiplicative/additive on the captured *busy* ops —
data movement and compute; synchronization ops have zero captured cost
and stay zero):

* :class:`OsNoise` — rare long interruptions: each busy op is hit with
  probability ``prob`` by an exponentially distributed delay of mean
  ``mean`` seconds (OS jitter, interrupts, SMM).
* :class:`Straggler` — ``count`` culprit ranks per sample run all their
  busy ops ``slowdown``× slower (a descheduled or thermally throttled
  core).
* :class:`FrequencySkew` — every rank draws a persistent log-normal
  frequency factor (``sigma``): cores legitimately differ in sustained
  clocks under vector load.
* :class:`ArrivalSkew` — ranks enter the collective at exponentially
  distributed offsets of scale ``scale`` seconds (compute imbalance in
  the caller), applied through ``start_times``.

Everything is driven by one :class:`numpy.random.Generator` seeded by
the caller, so ensembles are reproducible: same schedule + same seed +
same model → bitwise-identical statistics.  Chunked evaluation (see
:func:`run_ensemble`) only bounds peak memory; chunk size does not
affect the sampled values or the replayed times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.sim.compiled import KIND_CODES, CompiledSchedule

#: evaluate_batch rows per chunk in :func:`run_ensemble`; purely a
#: memory/throughput trade-off (bit-identical for any value).
CHUNK = 256

#: percentiles reported by :class:`PerturbStats`
TAIL_PERCENTILES = (50.0, 99.0, 99.9)

_BUSY_MAX = KIND_CODES["compute"]  # codes <= this do timed work


@dataclass
class Ensemble:
    """A batch of perturbed evaluator inputs.

    ``dur`` is ``(B, n_ops)`` perturbed durations; ``start_times`` is
    ``(B, nranks)`` release offsets (``None`` → all-zero).  Models
    mutate these in place via :meth:`apply`.
    """

    dur: np.ndarray
    start_times: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self.dur.shape[0]


def _busy_mask(cs: CompiledSchedule) -> np.ndarray:
    """Ops that consume rank time: owned data-movement/compute ops."""
    return (cs.kind <= _BUSY_MAX) & (cs.rank >= 0)


@dataclass(frozen=True)
class OsNoise:
    """Sporadic OS interruptions: additive exponential delays."""

    prob: float = 0.02
    mean: float = 2e-6  # seconds

    def apply(self, cs: CompiledSchedule, ens: Ensemble,
              rng: np.random.Generator) -> None:
        busy = _busy_mask(cs)
        hit = rng.random(ens.dur.shape) < self.prob
        delay = rng.exponential(self.mean, size=ens.dur.shape)
        ens.dur += np.where(hit & busy[None, :], delay, 0.0)


@dataclass(frozen=True)
class Straggler:
    """Per-sample culprit ranks whose busy ops all run slower."""

    count: int = 1
    slowdown: float = 2.0

    def apply(self, cs: CompiledSchedule, ens: Ensemble,
              rng: np.random.Generator) -> None:
        busy = _busy_mask(cs)
        nr = max(cs.nranks, 1)
        k = min(self.count, nr)
        for b in range(len(ens)):
            culprits = rng.choice(nr, size=k, replace=False)
            slow = busy & np.isin(cs.rank, culprits)
            ens.dur[b, slow] *= self.slowdown


@dataclass(frozen=True)
class FrequencySkew:
    """Persistent per-rank clock-speed spread (log-normal factor)."""

    sigma: float = 0.05

    def apply(self, cs: CompiledSchedule, ens: Ensemble,
              rng: np.random.Generator) -> None:
        busy = _busy_mask(cs)
        nr = max(cs.nranks, 1)
        factors = np.exp(rng.normal(0.0, self.sigma, size=(len(ens), nr)))
        rank_ix = np.where(cs.rank >= 0, cs.rank, 0)
        per_op = factors[:, rank_ix]  # (B, n_ops)
        ens.dur = np.where(busy[None, :], ens.dur * per_op, ens.dur)


@dataclass(frozen=True)
class ArrivalSkew:
    """Ranks enter the collective late (exponential offsets)."""

    scale: float = 5e-6  # seconds

    def apply(self, cs: CompiledSchedule, ens: Ensemble,
              rng: np.random.Generator) -> None:
        nr = max(cs.nranks, 1)
        skew = rng.exponential(self.scale, size=(len(ens), nr))
        if ens.start_times is None:
            ens.start_times = skew
        else:
            ens.start_times = ens.start_times + skew


#: named perturbation models for the CLI (``--perturb-model``)
MODELS: Dict[str, Tuple] = {
    "os-noise": (OsNoise(),),
    "straggler": (Straggler(),),
    "freq-skew": (FrequencySkew(),),
    "arrival": (ArrivalSkew(),),
    "mixed": (OsNoise(), Straggler(), FrequencySkew(), ArrivalSkew()),
}


def sample_ensemble(cs: CompiledSchedule, n: int, *, seed: int,
                    model: str = "mixed",
                    dur: Optional[np.ndarray] = None) -> Ensemble:
    """Draw ``n`` perturbed input rows for ``cs`` under ``model``.

    ``dur`` substitutes base per-op durations to perturb around (the
    size-polymorphic path passes model-retimed durations; default is
    the captured ones)."""
    if n < 1:
        raise ValueError(f"ensemble size must be >= 1, got {n}")
    try:
        stages = MODELS[model]
    except KeyError:
        raise ValueError(
            f"unknown perturbation model {model!r}; "
            f"choices: {', '.join(sorted(MODELS))}"
        ) from None
    base = cs.dur if dur is None else np.asarray(dur, dtype=float)
    if base.shape != cs.dur.shape:
        raise ValueError("dur must match the schedule's node count")
    rng = np.random.default_rng(seed)
    ens = Ensemble(dur=np.tile(base, (n, 1)))
    for stage in stages:
        stage.apply(cs, ens, rng)
    return ens


@dataclass
class PerturbStats:
    """Tail summary of one perturbation ensemble."""

    model: str
    n: int
    seed: int
    base: float           # unperturbed compiled time
    p50: float
    p99: float
    p999: float
    mean: float
    worst: float
    rank_p99: list = field(default_factory=list)  # per-rank p99 finish

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "n": self.n,
            "seed": self.seed,
            "base": self.base,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "mean": self.mean,
            "worst": self.worst,
            "rank_p99": list(self.rank_p99),
        }


def run_ensemble(cs: CompiledSchedule, n: int, *, seed: int,
                 model: str = "mixed", chunk: int = CHUNK,
                 dur: Optional[np.ndarray] = None) -> PerturbStats:
    """Sample, replay and summarize an ``n``-row ensemble.

    The whole ensemble is sampled up front (sampling order defines the
    seeded stream), then replayed through ``evaluate_batch`` in
    ``chunk``-row slabs to bound the ``(B, n_ops)`` working set.
    ``dur`` overrides the base durations (see :func:`sample_ensemble`);
    the reported ``base`` time is the unperturbed replay of the same
    durations.
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    ens = sample_ensemble(cs, n, seed=seed, model=model, dur=dur)
    times = np.empty(n)
    rank_times = np.empty((n, cs.nranks))
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        st = None if ens.start_times is None else ens.start_times[lo:hi]
        res = cs.evaluate_batch(start_times=st, dur=ens.dur[lo:hi])
        times[lo:hi] = res.times
        rank_times[lo:hi] = res.rank_times
    p50, p99, p999 = np.percentile(times, TAIL_PERCENTILES)
    return PerturbStats(
        model=model,
        n=n,
        seed=seed,
        base=cs.evaluate(dur=dur).time,
        p50=float(p50),
        p99=float(p99),
        p999=float(p999),
        mean=float(times.mean()),
        worst=float(times.max()),
        rank_p99=[float(v) for v in np.percentile(rank_times, 99.0, axis=0)],
    )
