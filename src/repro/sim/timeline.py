"""ASCII timeline rendering of operation traces.

Turns an engine :class:`~repro.sim.trace.Trace` into a per-rank Gantt
chart, the fastest way to *see* a collective's schedule: the MA
pipeline's diagonal copy wavefront, the barrier walls of DPML's phases,
a broadcast's root/reader overlap.

    eng = Engine(4, machine=TINY, functional=False, trace=True)
    run_reduce_collective(MA_REDUCE_SCATTER, eng, 4096, imax=512)
    print(render_timeline(eng.trace, width=72))

Each character cell is a time bucket; the glyph is the operation that
occupied most of it: ``c`` copy (``C`` non-temporal), ``r`` reduce,
``x`` compute, ``t`` touch, ``w`` flag wait, ``=`` barrier stall,
``.`` idle.  Sync records render as wait/stall segments — the paper's
per-phase breakdowns need the stalls *visible*, not dropped.  Unknown
operation kinds degrade to ``?`` cells with a single warning per
render, so a future op kind cannot silently corrupt a chart.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from repro.sim.trace import Trace

_GLYPHS = {
    ("copy", False): "c",
    ("copy", True): "C",
    ("reduce_acc", False): "r",
    ("reduce_out", False): "r",
    ("reduce_acc", True): "R",
    ("reduce_out", True): "R",
    ("compute", False): "x",
    ("touch", False): "t",
    ("touch", True): "t",
    ("wait", False): "w",
    ("barrier", False): "=",
    ("post", False): "p",  # zero-duration; visible only in huge buckets
}

#: kinds accounted as synchronization stall, not busy work
_SYNC_KINDS = ("post", "wait", "barrier")

_LEGEND = ("glyphs: c/C copy (temporal/NT), r reduce, x compute, t touch, "
           "w wait, = barrier, . idle")


@dataclass
class TimelineStats:
    """Per-rank busy/stall/idle accounting extracted from a trace.

    ``busy`` counts data operations (copy/reduce/compute/touch);
    ``stall`` counts traced synchronization intervals (flag waits and
    barrier stalls).  ``span`` is the global completion time, so
    ``utilization`` compares this rank's useful work to the whole
    collective — sync time no longer inflates it.
    """

    rank: int
    busy: float
    span: float
    stall: float = 0.0

    @property
    def utilization(self) -> float:
        return self.busy / self.span if self.span > 0 else 0.0


def _glyph(kind: str, nt, unknown: Optional[set] = None) -> str:
    g = _GLYPHS.get((kind, bool(nt)))
    if g is None:
        # only copy/reduce distinguish NT; other kinds ignore the flag
        g = _GLYPHS.get((kind, False))
    if g is None:
        if unknown is not None:
            unknown.add(kind)
        return "?"
    return g


def render_timeline(trace: Trace, *, width: int = 80,
                    ranks: Optional[list] = None,
                    show_utilization: bool = True) -> str:
    """Render the trace as one row of ``width`` buckets per rank."""
    if width < 8:
        raise ValueError("width must be at least 8")
    records = [r for r in trace if r.t_end > r.t_start]
    if not records:
        return "(empty trace)"
    t_end = max(r.t_end for r in records)
    if t_end <= 0:
        return "(trace has no timed operations)"
    all_ranks = sorted({r.rank for r in records})
    ranks = all_ranks if ranks is None else [r for r in ranks if r in all_ranks]
    bucket = t_end / width
    unknown: set = set()

    lines = [f"timeline: {t_end * 1e6:.1f} us across {width} buckets "
             f"({bucket * 1e6:.2f} us each)"]
    lines.append(_LEGEND)
    for rank in ranks:
        row = [" "] * width
        fills = [0.0] * width
        for rec in records:
            if rec.rank != rank:
                continue
            first = min(width - 1, int(rec.t_start / bucket))
            last = min(width - 1, int(max(rec.t_start, rec.t_end - 1e-15)
                                      / bucket))
            g = _glyph(rec.kind, rec.nt, unknown)
            for b in range(first, last + 1):
                overlap = min(rec.t_end, (b + 1) * bucket) - max(
                    rec.t_start, b * bucket
                )
                if overlap > fills[b]:
                    fills[b] = overlap
                    row[b] = g
        text = "".join(ch if ch != " " else "." for ch in row)
        suffix = ""
        if show_utilization:
            st = rank_stats(trace, rank)
            suffix = f"  {100 * st.utilization:5.1f}% busy"
        lines.append(f"rank {rank:>3} |{text}|{suffix}")
    if unknown:
        warnings.warn(
            f"render_timeline: unknown op kind(s) {sorted(unknown)} "
            "rendered as '?' — teach sim.timeline._GLYPHS about them",
            RuntimeWarning,
            stacklevel=2,
        )
    return "\n".join(lines)


def rank_stats(trace: Trace, rank: int) -> TimelineStats:
    """Busy/stall time vs the global span, for one rank."""
    records = [r for r in trace if r.t_end > r.t_start]
    span = max((r.t_end for r in records), default=0.0)
    busy = sum(
        r.t_end - r.t_start for r in records
        if r.rank == rank and r.kind not in _SYNC_KINDS
    )
    stall = sum(
        r.t_end - r.t_start for r in records
        if r.rank == rank and r.kind in _SYNC_KINDS
    )
    return TimelineStats(rank=rank, busy=busy, span=span, stall=stall)


def critical_rank(trace: Trace) -> int:
    """The rank whose last operation finishes the collective."""
    records = [r for r in trace if r.t_end > r.t_start]
    if not records:
        raise ValueError("empty trace")
    return max(records, key=lambda r: r.t_end).rank


def phase_summary(trace: Trace, *, buckets: int = 4) -> list:
    """Traffic per time quartile: [(t_from, t_to, copy_bytes,
    reduce_bytes)] — a quick view of where the bytes move."""
    records = [r for r in trace if r.t_end > r.t_start]
    if not records:
        return []
    t_end = max(r.t_end for r in records)
    edges = [t_end * i / buckets for i in range(buckets + 1)]
    out = []
    for lo, hi in zip(edges, edges[1:]):
        copy_b = sum(r.nbytes for r in records
                     if r.kind == "copy" and lo <= r.t_start < hi)
        red_b = sum(r.nbytes for r in records
                    if r.kind.startswith("reduce") and lo <= r.t_start < hi)
        out.append((lo, hi, copy_b, red_b))
    return out
