"""ASCII timeline rendering of operation traces.

Turns an engine :class:`~repro.sim.trace.Trace` into a per-rank Gantt
chart, the fastest way to *see* a collective's schedule: the MA
pipeline's diagonal copy wavefront, the barrier walls of DPML's phases,
a broadcast's root/reader overlap.

    eng = Engine(4, machine=TINY, functional=False, trace=True)
    run_reduce_collective(MA_REDUCE_SCATTER, eng, 4096, imax=512)
    print(render_timeline(eng.trace, width=72))

Each character cell is a time bucket; the glyph is the operation that
occupied most of it: ``c`` copy (``C`` non-temporal), ``r`` reduce,
``x`` compute, ``.`` idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.trace import Trace

_GLYPHS = {
    ("copy", False): "c",
    ("copy", True): "C",
    ("reduce_acc", False): "r",
    ("reduce_out", False): "r",
    ("reduce_acc", True): "R",
    ("reduce_out", True): "R",
    ("compute", False): "x",
}


@dataclass
class TimelineStats:
    """Per-rank busy/idle accounting extracted from a trace."""

    rank: int
    busy: float
    span: float

    @property
    def utilization(self) -> float:
        return self.busy / self.span if self.span > 0 else 0.0


def _glyph(kind: str, nt) -> str:
    return _GLYPHS.get((kind, bool(nt)), "?")


def render_timeline(trace: Trace, *, width: int = 80,
                    ranks: Optional[list] = None,
                    show_utilization: bool = True) -> str:
    """Render the trace as one row of ``width`` buckets per rank."""
    if width < 8:
        raise ValueError("width must be at least 8")
    records = [r for r in trace if r.t_end > r.t_start]
    if not records:
        return "(empty trace)"
    t_end = max(r.t_end for r in records)
    if t_end <= 0:
        return "(trace has no timed operations)"
    all_ranks = sorted({r.rank for r in records})
    ranks = all_ranks if ranks is None else [r for r in ranks if r in all_ranks]
    bucket = t_end / width

    lines = [f"timeline: {t_end * 1e6:.1f} us across {width} buckets "
             f"({bucket * 1e6:.2f} us each)"]
    lines.append("glyphs: c/C copy (temporal/NT), r reduce, x compute, . idle")
    for rank in ranks:
        row = [" "] * width
        fills = [0.0] * width
        for rec in records:
            if rec.rank != rank:
                continue
            first = min(width - 1, int(rec.t_start / bucket))
            last = min(width - 1, int(max(rec.t_start, rec.t_end - 1e-15)
                                      / bucket))
            g = _glyph(rec.kind, rec.nt)
            for b in range(first, last + 1):
                overlap = min(rec.t_end, (b + 1) * bucket) - max(
                    rec.t_start, b * bucket
                )
                if overlap > fills[b]:
                    fills[b] = overlap
                    row[b] = g
        text = "".join(ch if ch != " " else "." for ch in row)
        suffix = ""
        if show_utilization:
            st = rank_stats(trace, rank)
            suffix = f"  {100 * st.utilization:5.1f}% busy"
        lines.append(f"rank {rank:>3} |{text}|{suffix}")
    return "\n".join(lines)


def rank_stats(trace: Trace, rank: int) -> TimelineStats:
    """Busy time vs the global span, for one rank."""
    records = [r for r in trace if r.t_end > r.t_start]
    span = max((r.t_end for r in records), default=0.0)
    busy = sum(
        r.t_end - r.t_start for r in records if r.rank == rank
    )
    return TimelineStats(rank=rank, busy=busy, span=span)


def critical_rank(trace: Trace) -> int:
    """The rank whose last operation finishes the collective."""
    records = [r for r in trace if r.t_end > r.t_start]
    if not records:
        raise ValueError("empty trace")
    return max(records, key=lambda r: r.t_end).rank


def phase_summary(trace: Trace, *, buckets: int = 4) -> list:
    """Traffic per time quartile: [(t_from, t_to, copy_bytes,
    reduce_bytes)] — a quick view of where the bytes move."""
    records = [r for r in trace if r.t_end > r.t_start]
    if not records:
        return []
    t_end = max(r.t_end for r in records)
    edges = [t_end * i / buckets for i in range(buckets + 1)]
    out = []
    for lo, hi in zip(edges, edges[1:]):
        copy_b = sum(r.nbytes for r in records
                     if r.kind == "copy" and lo <= r.t_start < hi)
        red_b = sum(r.nbytes for r in records
                    if r.kind.startswith("reduce") and lo <= r.t_start < hi)
        out.append((lo, hi, copy_b, red_b))
    return out
