"""Pluggable scheduling policies for :class:`~repro.sim.engine.Engine`.

The engine's rank programs are cooperative coroutines: all scheduling
nondeterminism lives at the yield points where a rank attempts a
synchronization.  A :class:`SchedulerPolicy` decides, at each of those
points, which runnable rank advances next.  Two execution modes exist:

* **cooperative** (``controlled = False``, the default
  :class:`FifoScheduler`) — the engine runs the picked rank greedily
  until it actually blocks, releasing other ranks' satisfiable waits
  eagerly as posts arrive.  This is the engine's historical behaviour,
  byte-for-byte: traces, clocks and RNG consumption are identical to
  the pre-policy engine.
* **controlled** (``controlled = True``, e.g.
  :class:`ControlledScheduler`) — the engine executes exactly one
  *step* per policy decision: resume the chosen rank, run it to its
  next yield (or completion), resolve the sync it attempted, and hand
  control back.  Every step sees the full *enabled set* (runnable
  ranks plus blocked ranks whose wait became satisfiable), which is
  what a stateless model checker needs to enumerate interleavings —
  the :mod:`repro.analysis.mc` DPOR explorer drives the engine through
  this interface.

Lazy wait release (controlled mode) is observationally equivalent to
the cooperative engine's eager release: waits are non-consuming and
match ``posts[:count]``, a prefix of an append-only list, so *when* a
satisfiable wait is released never changes which posts it matches nor
the reconciled clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple


class SchedulerPolicy:
    """Base class for engine scheduling policies.

    ``controlled`` selects the engine loop: cooperative policies
    receive the runnable deque in :meth:`pick` and must remove and
    return one rank; controlled policies receive the sorted enabled
    tuple and return one of its members.
    """

    controlled = False

    def begin_run(self, engine, ranks: Sequence[int]) -> None:
        """Called once per :meth:`Engine.run` before scheduling starts."""

    def pick(self, engine, candidates):
        """Choose the next rank to advance (see class docstring)."""
        raise NotImplementedError

    def observe(self, engine, rank: int, event) -> None:
        """Called after each controlled step; ``event`` is the sync the
        rank yielded (``None`` when the rank ran to completion)."""


class FifoScheduler(SchedulerPolicy):
    """The engine's historical schedule: FIFO over runnable ranks, with
    the optional ``schedule_seed`` rotation used by the fuzzing tests.

    This policy is byte-for-byte identical to the pre-policy engine:
    it consumes the engine's schedule RNG in exactly the same pattern
    (one draw per decision with more than one runnable rank).
    """

    controlled = False

    def pick(self, engine, candidates: "Deque[int]") -> int:
        rng = engine._sched_rng
        if rng is not None and len(candidates) > 1:
            candidates.rotate(int(rng.integers(0, len(candidates))))
        return candidates.popleft()


@dataclass(frozen=True)
class StepRecord:
    """One controlled-scheduler step: the unit of DPOR exploration.

    A step is the chosen rank's execution from its resume point to its
    next yield (or completion), including the resolution of any
    pending wait it was parked on.  ``reads``/``writes`` are the
    ``(buf_id, off, end)`` byte ranges the step's data operations
    touched; ``posts``/``waits`` the sync tags it published/consumed.
    ``enabled`` is the full enabled set the scheduler chose from —
    the alternatives a model checker may backtrack to.
    """

    index: int
    rank: int
    enabled: Tuple[int, ...]
    reads: Tuple[Tuple[int, int, int], ...] = ()
    writes: Tuple[Tuple[int, int, int], ...] = ()
    posts: Tuple[object, ...] = ()
    waits: Tuple[object, ...] = ()
    completed: bool = False

    def describe(self) -> str:
        extra = " (done)" if self.completed else ""
        return (f"step {self.index}: rank {self.rank} of {self.enabled}"
                f"{extra}")


@dataclass
class ControlledScheduler(SchedulerPolicy):
    """Step-at-a-time scheduler following a forced choice prefix.

    For step ``i`` the policy picks ``choices[i]`` when that rank is
    enabled; past the end of the prefix (or if the forced rank is not
    enabled — which marks the run *diverged*) it falls back to the
    smallest enabled rank, making the continuation deterministic.
    Every step is recorded as a :class:`StepRecord`, with data/sync
    footprints extracted from the engine's event trace when tracing is
    on — the input to the DPOR conflict relation.
    """

    choices: Sequence[int] = ()
    steps: List[StepRecord] = field(default_factory=list)
    diverged: bool = False
    _pending: Optional[Tuple[int, Tuple[int, ...], int]] = None

    controlled = True

    def begin_run(self, engine, ranks: Sequence[int]) -> None:
        # The DPOR conflict relation is built from AccessEvent byte
        # ranges; the compiled-capture light-tracing mode drops those.
        # Refuse loudly rather than explore with empty footprints.
        if engine.trace is not None and \
                not getattr(engine, "trace_accesses", True):
            raise ValueError(
                "ControlledScheduler needs full access tracing; "
                "construct the engine with trace_accesses=True")
        self._pending = None

    def pick(self, engine, candidates: Tuple[int, ...]) -> int:
        i = len(self.steps)
        if i < len(self.choices) and self.choices[i] in candidates:
            choice = self.choices[i]
        else:
            if i < len(self.choices):
                self.diverged = True
            choice = min(candidates)
        n0 = len(engine.trace.events) if engine.trace is not None else 0
        self._pending = (choice, tuple(candidates), n0)
        return choice

    def observe(self, engine, rank: int, event) -> None:
        assert self._pending is not None and self._pending[0] == rank
        choice, enabled, n0 = self._pending
        self._pending = None
        reads: List[Tuple[int, int, int]] = []
        writes: List[Tuple[int, int, int]] = []
        posts: List[object] = []
        waits: List[object] = []
        if engine.trace is not None:
            from repro.sim.trace import AccessEvent, SyncEvent

            for ev in engine.trace.events[n0:]:
                if isinstance(ev, AccessEvent):
                    rng = (ev.buf_id, ev.off, ev.end)
                    (writes if ev.mode == "w" else reads).append(rng)
                elif isinstance(ev, SyncEvent) and ev.rank == rank:
                    if ev.kind == "post":
                        posts.append(ev.tag)
                    elif ev.kind == "wait":
                        waits.append(ev.tag)
        self.steps.append(
            StepRecord(
                index=len(self.steps),
                rank=rank,
                enabled=enabled,
                reads=tuple(reads),
                writes=tuple(writes),
                posts=tuple(posts),
                waits=tuple(waits),
                completed=event is None,
            )
        )

    @property
    def schedule(self) -> List[int]:
        """The full executed schedule (one rank per step)."""
        return [s.rank for s in self.steps]
