"""Cooperative execution engine for simulated MPI ranks.

Each rank is a Python generator produced by calling the *program*
callable with a :class:`RankCtx`.  Data operations (copy / reduce)
execute immediately when the rank runs and advance that rank's clock via
the machine model; synchronization points are ``yield``\\ ed to the
engine, which releases them when their condition is met and reconciles
the participants' clocks.

Why this is sound: within one rank, operations execute in program
order.  Across ranks, a *correct* shared-memory collective protects
every cross-rank read-after-write with a flag or barrier — exactly the
events the engine orders.  So any interleaving the engine chooses
between sync points is one the real machine could have exhibited, and
the functional results are deterministic.

Synchronization primitives (mirroring the paper's implementation, which
uses per-process atomic flags and a node barrier — Section 3.3):

* ``ctx.post(tag)`` — non-blocking: publish that this rank reached
  ``tag`` (an atomic flag update).
* ``yield ctx.wait(tag, count=1)`` — block until ``count`` posts of
  ``tag`` exist.  Tags must be unique per step (include step indices);
  waits do not consume posts, so one post can release many waiters
  (broadcast-style signalling).
* ``yield ctx.barrier(group=None)`` — rendezvous of ``group`` (default:
  all ranks); matched by per-group arrival order.
"""

from __future__ import annotations

import inspect
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.machine.memory import MemorySystem, TrafficCounters
from repro.machine.spec import MachineSpec
from repro.sim.buffers import (
    Buffer,
    BufView,
    Sanitizer,
    SharedBuffer,
    alloc,
    alloc_shared,
)
from repro.sim.scheduler import FifoScheduler, SchedulerPolicy
from repro.sim.trace import AccessEvent, OpRecord, SpanRecord, SyncEvent, Trace

REDUCE_OPS = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}

_UFUNC_CACHE: dict = dict(REDUCE_OPS)


def resolve_ufunc(op: str):
    """Name -> elementwise combiner.  Falls back to the operator
    registry in :mod:`repro.collectives.ops` for user-registered ops
    (imported lazily: the collectives package imports this module)."""
    try:
        return _UFUNC_CACHE[op]
    except KeyError:
        from repro.collectives.ops import get_op

        ufunc = get_op(op).ufunc
        _UFUNC_CACHE[op] = ufunc
        return ufunc


@dataclass(frozen=True)
class BlockedInfo:
    """One rank parked on an unsatisfiable sync — a deadlock certificate.

    For ``kind == "wait"``: ``tag``/``count`` name the wait, ``have`` the
    posts present and ``posters`` who made them.  For
    ``kind == "barrier"``: ``group`` names the rendezvous and ``arrived``
    the ranks already there; :attr:`missing` lists who never came.
    """

    rank: int
    kind: str
    tag: object = None
    count: int = 0
    have: int = 0
    posters: tuple = ()
    group: tuple = ()
    arrived: tuple = ()

    @property
    def missing(self) -> tuple:
        return tuple(r for r in self.group if r not in self.arrived)

    @property
    def posts_by_rank(self) -> dict:
        """Pending posts on the waited tag, aggregated per poster —
        distinguishes "3 posts from 3 ranks" from "3 posts, all from
        rank 0" when diagnosing partial-post deadlocks."""
        per: dict = {}
        for r in self.posters:
            per[r] = per.get(r, 0) + 1
        return per

    def describe(self) -> str:
        if self.kind == "wait":
            who = ""
            if self.posters:
                per = self.posts_by_rank
                who = " from " + ", ".join(
                    f"rank {r}" + (f" x{n}" if n > 1 else "")
                    for r, n in sorted(per.items())
                )
            return (f"rank {self.rank}: wait({self.tag!r}, count={self.count}) "
                    f"has {self.have} post(s) of {self.count} required{who} — "
                    f"{self.count - self.have} will never arrive")
        return (f"rank {self.rank}: barrier{self.group} arrived="
                f"{self.arrived} ({len(self.arrived)} of {len(self.group)}) "
                f"— waiting for ranks {self.missing}")


class DeadlockError(RuntimeError):
    """No rank can make progress: a sync will never be satisfied.

    ``blocked`` carries one :class:`BlockedInfo` per stuck rank, so
    callers (and :mod:`repro.analysis`) can report which ranks are
    parked on which tags or barrier groups.
    """

    def __init__(self, message: str, blocked: Sequence[BlockedInfo] = ()):
        super().__init__(message)
        self.blocked = tuple(blocked)


class _NullSpan:
    """Shared no-op span: the zero-allocation path when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Open phase label on one rank; closes into a trace SpanRecord."""

    __slots__ = ("_ctx", "_name", "_t0")

    def __init__(self, ctx: "RankCtx", name: str):
        self._ctx = ctx
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = self._ctx.clock
        return self

    def __exit__(self, *exc) -> bool:
        ctx = self._ctx
        trace = ctx.engine.trace
        if trace is not None:
            trace.add_span(SpanRecord(rank=ctx.rank, name=self._name,
                                      t_start=self._t0, t_end=ctx.clock))
        return False


@dataclass(frozen=True)
class _Wait:
    tag: object
    count: int


@dataclass(frozen=True)
class _Barrier:
    group: tuple


@dataclass
class RunResult:
    """Outcome of one engine run.

    ``first_record`` / ``first_span`` index into ``trace.records`` /
    ``trace.spans`` where *this* run began: engine traces accumulate
    across back-to-back runs, and per-run consumers (the
    :mod:`repro.obs` counters) must not double-count earlier runs.
    """

    times: list  # per-rank completion time (seconds)
    traffic: Optional[TrafficCounters]
    per_rank_traffic: Optional[list]
    trace: Optional[Trace]
    sync_count: int
    first_record: int = 0
    first_span: int = 0

    @property
    def run_records(self) -> list:
        """The OpRecords of this run alone (empty without tracing)."""
        if self.trace is None:
            return []
        return self.trace.records[self.first_record:]

    @property
    def run_spans(self) -> list:
        if self.trace is None:
            return []
        return self.trace.spans[self.first_span:]

    @property
    def time(self) -> float:
        """Collective completion time: the slowest rank."""
        return max(self.times)

    @property
    def avg_time(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def dav(self) -> int:
        if self.traffic is None:
            raise RuntimeError("run had no machine model attached")
        return self.traffic.dav


class RankCtx:
    """Per-rank handle passed to algorithm programs."""

    __slots__ = ("engine", "rank", "clock", "_gen")

    def __init__(self, engine: "Engine", rank: int):
        self.engine = engine
        self.rank = rank
        self.clock = 0.0
        self._gen = None

    # ---- topology ----------------------------------------------------------

    @property
    def nranks(self) -> int:
        return self.engine.nranks

    @property
    def machine(self) -> Optional[MachineSpec]:
        return self.engine.machine

    @property
    def socket(self) -> int:
        if self.engine.memsys is None:
            return 0
        return self.engine.memsys.socket_of_rank(self.rank)

    # ---- data operations ------------------------------------------------------

    def copy(self, dst: BufView, src: BufView, *, nt: bool = False,
             policy: str = "", extra_time: float = 0.0,
             concurrency=None, load_concurrency=None) -> None:
        """Copy ``src`` into ``dst`` (sizes must match).

        ``concurrency`` caps the number of ranks assumed to share the
        memory bus for this op; ``load_concurrency`` overrides it for
        the load side only — used when many ranks cooperatively read
        the *same* data (each byte crosses the bus once, not p times).
        """
        eng = self.engine
        if dst.nbytes != src.nbytes:
            raise ValueError(
                f"copy size mismatch: {src.nbytes} -> {dst.nbytes} bytes"
            )
        if eng.sanitizer is not None:
            eng.sanitizer.check_access(self.rank, "copy", (src,), (dst,))
        t0 = self.clock
        if eng.functional and not (src.is_virtual or dst.is_virtual):
            np.copyto(dst.array(), src.array())
        if eng.memsys is not None:
            dt = eng.memsys.load(
                self.rank, src.buf, src.off, src.nbytes,
                concurrency=(load_concurrency if load_concurrency
                             is not None else concurrency),
            )
            dt += eng.memsys.store(self.rank, dst.buf, dst.off, dst.nbytes,
                                   nt=nt, concurrency=concurrency)
            self.clock += dt + eng.machine.op_overhead + extra_time
        eng._record(self, "copy", src.nbytes, src, dst, nt=nt, policy=policy,
                    t0=t0, reads=(src,), writes=(dst,))

    def reduce_acc(self, dst: BufView, src: BufView, *, op: str = "sum",
                   nt: bool = False, concurrency=None) -> None:
        """``dst (op)= src`` — two loads, one store (3n DAV)."""
        self._reduce("reduce_acc", dst, (dst, src), op, nt, concurrency)

    def reduce_out(self, dst: BufView, a: BufView, b: BufView, *,
                   op: str = "sum", nt: bool = False,
                   concurrency=None) -> None:
        """``dst = a (op) b`` — two loads, one store (3n DAV)."""
        self._reduce("reduce_out", dst, (a, b), op, nt, concurrency)

    def _reduce(self, kind: str, dst: BufView, srcs, op: str, nt: bool,
                concurrency=None) -> None:
        eng = self.engine
        n = dst.nbytes
        for s in srcs:
            if s.nbytes != n:
                raise ValueError("reduce operand size mismatch")
        if eng.sanitizer is not None:
            eng.sanitizer.check_access(self.rank, kind, tuple(srcs), (dst,))
        t0 = self.clock
        if eng.functional and not (dst.is_virtual or any(s.is_virtual for s in srcs)):
            ufunc = resolve_ufunc(op)
            a, b = srcs
            ufunc(a.array(), b.array(), out=dst.array())
        if eng.memsys is not None:
            dt = 0.0
            for s in srcs:
                dt += eng.memsys.load(self.rank, s.buf, s.off, s.nbytes,
                                      concurrency=concurrency)
            dt += eng.memsys.store(self.rank, dst.buf, dst.off, n, nt=nt,
                                   concurrency=concurrency)
            self.clock += dt + eng.machine.op_overhead
        eng._record(self, kind, n, srcs[-1], dst, nt=nt, t0=t0,
                    reads=tuple(srcs), writes=(dst,))

    def compute(self, seconds: float) -> None:
        """Model a pure-compute region (used by the applications)."""
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        t0 = self.clock
        self.clock += seconds
        self.engine._record(self, "compute", 0, t0=t0)

    def touch(self, view: BufView) -> None:
        """Load a view without copying (e.g. application reads a result)."""
        eng = self.engine
        if eng.sanitizer is not None:
            eng.sanitizer.check_access(self.rank, "touch", (view,), ())
        t0 = self.clock
        if eng.memsys is not None:
            self.clock += eng.memsys.load(self.rank, view.buf, view.off, view.nbytes)
        eng._record(self, "touch", view.nbytes, view, None, t0=t0,
                    reads=(view,))

    # ---- observability -----------------------------------------------------

    def span(self, name: str):
        """Label a phase of this rank's program (``with ctx.span("x")``).

        Returns a context manager recording a
        :class:`~repro.sim.trace.SpanRecord` over the rank-clock
        interval it covers.  With tracing off this returns a shared
        no-op singleton — the hot path pays one ``if`` and allocates
        nothing.  Spans may nest and may enclose ``yield``\\ ed sync
        points (the interval simply includes the wait).
        """
        if self.engine.trace is None:
            return _NULL_SPAN
        return _Span(self, name)

    # ---- synchronization ---------------------------------------------------------

    def post(self, tag: object) -> None:
        """Signal ``tag`` (atomic flag update; non-blocking)."""
        eng = self.engine
        if eng.sanitizer is not None:
            eng.sanitizer.on_sync()
        seq = 0
        if eng.trace is not None:
            seq = eng.trace.next_seq()
            eng.trace.add_event(
                SyncEvent(seq=seq, rank=self.rank, kind="post", tag=tag)
            )
            eng.trace.add(
                OpRecord(rank=self.rank, kind="post", nbytes=0, tag=tag,
                         t_start=self.clock, t_end=self.clock)
            )
        eng._posts.setdefault(tag, []).append((self.rank, self.clock, seq))

    def wait(self, tag: object, count: int = 1) -> _Wait:
        """Event: block until ``count`` ranks have posted ``tag``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return _Wait(tag, count)

    def barrier(self, group: Optional[Sequence[int]] = None) -> _Barrier:
        """Event: rendezvous of ``group`` (default: every rank)."""
        g = tuple(range(self.nranks)) if group is None else tuple(sorted(group))
        if self.rank not in g:
            raise ValueError(f"rank {self.rank} is not in barrier group {g}")
        return _Barrier(g)


class Engine:
    """Schedules rank programs and aggregates timing/traffic results."""

    def __init__(
        self,
        nranks: int,
        *,
        machine: Optional[MachineSpec] = None,
        functional: bool = True,
        dtype=np.float64,
        trace: bool = False,
        trace_accesses: bool = True,
        seed: int = 12345,
        schedule_seed: Optional[int] = None,
        cache_model: str = "region",
        scheduler: Optional[SchedulerPolicy] = None,
        sanitize: bool = False,
    ):
        """``schedule_seed`` randomizes the order runnable ranks are
        scheduled in.  A correct collective synchronizes every cross-rank
        dependency, so its *functional result must be identical under
        every schedule* — the property tests drive this as a concurrency
        fuzzer.  ``None`` keeps the deterministic FIFO order.

        ``scheduler`` plugs in a :class:`~repro.sim.scheduler.SchedulerPolicy`
        (default :class:`~repro.sim.scheduler.FifoScheduler`, which is
        byte-for-byte the historical behaviour); controlled policies
        let :mod:`repro.analysis.mc` enumerate interleavings.

        ``sanitize`` attaches byte-granular shadow state to every
        buffer this engine allocates, flagging uninitialized reads and
        same-epoch overlapping writes at access time (see
        :class:`~repro.sim.buffers.Sanitizer`).

        ``trace_accesses=False`` keeps op records, spans and sync
        events but skips the per-byte-range :class:`AccessEvent`
        stream.  The compiled-schedule capture uses this *light
        tracing* mode: lowering only needs the op/sync structure, and
        access events dominate the capture overhead on slice-heavy
        cells.  Traces meant for the happens-before analyzer or the
        static buffer lints need the full stream (the default)."""
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        if machine is not None:
            machine.validate_nranks(nranks)
        self.nranks = nranks
        self.machine = machine
        self.functional = functional
        self.dtype = np.dtype(dtype)
        self.memsys = (
            MemorySystem(machine, nranks, cache_model=cache_model)
            if machine
            else None
        )
        self.trace: Optional[Trace] = Trace() if trace else None
        self.trace_accesses = bool(trace_accesses)
        self.rng = np.random.default_rng(seed)
        self._sched_rng = (
            np.random.default_rng(schedule_seed)
            if schedule_seed is not None
            else None
        )
        self.scheduler: SchedulerPolicy = scheduler or FifoScheduler()
        self.sanitizer: Optional[Sanitizer] = Sanitizer() if sanitize else None
        self.buffers: list = []
        #: the most recent :meth:`run`'s result — lets consumers that
        #: only see a derived value (e.g. a bench cell runner's
        #: ``CellResult``) recover the final run's trace slice, as the
        #: compiled-schedule capture does
        self.last_result: Optional[RunResult] = None
        self._posts: dict = {}
        self._barrier_seq: dict = {}
        self._barrier_arrivals: dict = {}
        self._sync_count = 0

    # ---- allocation ----------------------------------------------------------

    def alloc(self, rank: int, nbytes: int, *, fill=None, random=False,
              name: str = "") -> Buffer:
        """Private buffer homed on ``rank``'s socket."""
        buf = alloc(
            nbytes,
            dtype=self.dtype,
            functional=self.functional,
            fill=fill,
            rng=self.rng if random else None,
            owner=rank,
            name=name or f"rank{rank}.buf",
        )
        if self.memsys is not None:
            buf.home_socket = self.memsys.socket_of_rank(rank)
        if self.sanitizer is not None:
            # fill/random allocations model initialized memory; a plain
            # alloc is zero-filled for determinism but semantically
            # uninitialized, so the sanitizer flags reads before writes
            self.sanitizer.attach(buf, initialized=buf.initialized)
        self.buffers.append(buf)
        return buf

    def alloc_shared(self, nbytes: int, *, name: str = "shm") -> SharedBuffer:
        buf = alloc_shared(
            nbytes, dtype=self.dtype, functional=self.functional, name=name
        )
        if self.sanitizer is not None:
            # shared segments are zero-filled (POSIX shm) but no rank
            # has produced their contents yet: read-before-write is a bug
            self.sanitizer.attach(buf, initialized=False)
        self.buffers.append(buf)
        return buf

    # ---- tracing -----------------------------------------------------------------

    def _record(self, ctx: RankCtx, kind: str, nbytes: int, src=None, dst=None,
                *, nt=None, policy: str = "", t0: float = 0.0,
                reads: tuple = (), writes: tuple = ()) -> None:
        if self.trace is None:
            return
        self.trace.add(
            OpRecord(
                rank=ctx.rank,
                kind=kind,
                nbytes=nbytes,
                src=getattr(getattr(src, "buf", None), "name", ""),
                dst=getattr(getattr(dst, "buf", None), "name", ""),
                nt=nt,
                policy=policy,
                t_start=t0,
                t_end=ctx.clock,
            )
        )
        if not self.trace_accesses:
            return
        op_index = len(self.trace.records) - 1
        for mode, views in (("r", reads), ("w", writes)):
            for v in views:
                if v.nbytes == 0:
                    continue
                self.trace.add_event(
                    AccessEvent(
                        seq=self.trace.next_seq(),
                        rank=ctx.rank,
                        mode=mode,
                        buf_id=v.buf.buf_id,
                        buf_name=v.buf.name,
                        shared=v.buf.kind == "shared",
                        off=v.off,
                        nbytes=v.nbytes,
                        op_kind=kind,
                        op_index=op_index,
                    )
                )

    # ---- sync cost helpers -----------------------------------------------------------

    def _pair_latency(self, r1: int, r2: int) -> float:
        if self.machine is None:
            return 0.0
        if self.memsys.socket_of_rank(r1) == self.memsys.socket_of_rank(r2):
            return self.machine.sync_latency_intra
        return self.machine.sync_latency_inter

    def _group_latency(self, group: tuple) -> float:
        if self.machine is None:
            return 0.0
        sockets = {self.memsys.socket_of_rank(r) for r in group}
        lat = (
            self.machine.sync_latency_inter
            if len(sockets) > 1
            else self.machine.sync_latency_intra
        )
        rounds = max(1, math.ceil(math.log2(max(2, len(group)))))
        return 2.0 * rounds * lat

    # ---- the scheduler -------------------------------------------------------------

    def run(self, program: Callable, ranks: Optional[Sequence[int]] = None,
            *, reset_clocks: bool = True, start_times: Optional[list] = None,
            scheduler: Optional[SchedulerPolicy] = None) -> RunResult:
        """Run ``program(ctx)`` on every rank in ``ranks`` to completion.

        ``program`` may be a plain function (no internal syncs) or a
        generator function yielding sync events.  ``scheduler``
        overrides the engine's scheduling policy for this run.
        """
        policy = scheduler if scheduler is not None else self.scheduler
        ranks = list(range(self.nranks)) if ranks is None else list(ranks)
        if self.memsys is not None:
            self.memsys.set_active_ranks(ranks)
            self.memsys.reset_counters()
        self._posts.clear()
        self._barrier_seq.clear()
        self._barrier_arrivals.clear()
        self._sync_count = 0
        if self.sanitizer is not None:
            self.sanitizer.on_sync()
        first_record = 0
        first_span = 0
        if self.trace is not None:
            # Back-to-back collectives on one engine are separated by a
            # global synchronization (the previous run drained fully);
            # the marker lets the analyzer order cross-run accesses.
            self.trace.add_event(
                SyncEvent(seq=self.trace.next_seq(), rank=-1,
                          kind="run_start", group=tuple(ranks))
            )
            first_record = len(self.trace.records)
            first_span = len(self.trace.spans)

        ctxs = {r: RankCtx(self, r) for r in ranks}
        if start_times is not None:
            for r in ranks:
                ctxs[r].clock = start_times[r]
        elif not reset_clocks:
            raise ValueError("reset_clocks=False requires start_times")

        gens: dict[int, object] = {}
        done: set[int] = set()
        for r in ranks:
            out = program(ctxs[r])
            if inspect.isgenerator(out):
                gens[r] = out
            else:
                done.add(r)

        policy.begin_run(self, [r for r in ranks if r in gens])
        if policy.controlled:
            self._run_controlled(policy, ctxs, gens, done)
        else:
            self._run_cooperative(policy, ctxs, gens, done)

        times = [0.0] * self.nranks
        for r in ranks:
            times[r] = ctxs[r].clock
        result = RunResult(
            times=[times[r] for r in ranks] if ranks != list(range(self.nranks))
            else times,
            traffic=self.memsys.counters if self.memsys else None,
            per_rank_traffic=self.memsys.per_rank if self.memsys else None,
            trace=self.trace,
            sync_count=self._sync_count,
            first_record=first_record,
            first_span=first_span,
        )
        self.last_result = result
        return result

    def _run_cooperative(self, policy: SchedulerPolicy, ctxs, gens, done
                         ) -> None:
        """The historical greedy loop: the picked rank runs until it
        actually blocks; other ranks' satisfiable waits are released
        eagerly as posts arrive.  With :class:`FifoScheduler` this is
        byte-for-byte the pre-policy engine."""
        blocked: dict[int, object] = {}
        runnable = deque(r for r in ctxs if r in gens)
        while runnable or blocked:
            if not runnable:
                self._diagnose_deadlock(blocked, ctxs)
            r = policy.pick(self, runnable)
            gen = gens[r]
            ctx = ctxs[r]
            while True:
                try:
                    ev = next(gen)
                except StopIteration:
                    done.add(r)
                    del gens[r]
                    break
                satisfied, newly = self._handle_event(r, ctx, ev, ctxs)
                for nr in newly:
                    if nr != r and nr in blocked:
                        del blocked[nr]
                        runnable.append(nr)
                if satisfied:
                    continue
                blocked[r] = ev
                break
            # re-check ranks whose waits may now be satisfiable by posts
            # made while r was running
            for br in list(blocked):
                bev = blocked[br]
                if isinstance(bev, _Wait) and self._wait_ready(bev):
                    self._release_wait(ctxs[br], bev)
                    del blocked[br]
                    runnable.append(br)

    def _run_controlled(self, policy: SchedulerPolicy, ctxs, gens, done
                        ) -> None:
        """One policy decision per step: resume the chosen rank to its
        next yield, resolve the sync it attempted, return control.

        The enabled set handed to the policy is every rank that can
        make progress: runnable ranks plus blocked ranks whose wait
        became satisfiable (released lazily when scheduled, which is
        observationally equivalent to the cooperative loop's eager
        release — waits are non-consuming and match a prefix of the
        append-only post list).
        """
        blocked: dict[int, object] = {}
        while gens:
            enabled = tuple(sorted(
                r for r in gens
                if r not in blocked
                or (isinstance(blocked[r], _Wait)
                    and self._wait_ready(blocked[r]))
            ))
            if not enabled:
                self._diagnose_deadlock(blocked, ctxs)
            r = policy.pick(self, enabled)
            if r not in enabled:
                raise ValueError(
                    f"scheduler chose rank {r} outside enabled set {enabled}"
                )
            ctx = ctxs[r]
            pending = blocked.pop(r, None)
            if pending is not None:
                self._release_wait(ctx, pending)
            try:
                ev = next(gens[r])
            except StopIteration:
                done.add(r)
                del gens[r]
                policy.observe(self, r, None)
                continue
            satisfied, newly = self._handle_event(r, ctx, ev, ctxs)
            for nr in newly:
                blocked.pop(nr, None)
            if not satisfied:
                blocked[r] = ev
            policy.observe(self, r, ev)

    # ---- event handling -------------------------------------------------------

    def _wait_ready(self, ev: _Wait) -> bool:
        return len(self._posts.get(ev.tag, ())) >= ev.count

    def _release_wait(self, ctx: RankCtx, ev: _Wait) -> None:
        posts = self._posts[ev.tag][: ev.count]
        self._sync_count += 1
        if self.sanitizer is not None:
            self.sanitizer.on_sync()
        t0 = ctx.clock
        t = t0
        for pr, pclock, _ in posts:
            t = max(t, pclock + self._pair_latency(pr, ctx.rank))
        ctx.clock = t
        if self.trace is not None:
            self.trace.add_event(
                SyncEvent(
                    seq=self.trace.next_seq(),
                    rank=ctx.rank,
                    kind="wait",
                    tag=ev.tag,
                    count=ev.count,
                    matched=tuple(seq for _, _, seq in posts),
                )
            )
            self.trace.add(
                OpRecord(rank=ctx.rank, kind="wait", nbytes=0, tag=ev.tag,
                         count=ev.count, t_start=t0, t_end=t)
            )

    def _handle_event(self, r: int, ctx: RankCtx, ev, ctxs):
        """Returns (satisfied_for_r, ranks_released)."""
        if isinstance(ev, _Wait):
            if self._wait_ready(ev):
                self._release_wait(ctx, ev)
                return True, ()
            return False, ()
        if isinstance(ev, _Barrier):
            seq_key = (ev.group, r)
            n = self._barrier_seq.get(seq_key, 0)
            self._barrier_seq[seq_key] = n + 1
            bucket_key = (ev.group, n)
            bucket = self._barrier_arrivals.setdefault(bucket_key, {})
            bucket[r] = ctx.clock
            if len(bucket) == len(ev.group):
                self._sync_count += 1
                if self.sanitizer is not None:
                    self.sanitizer.on_sync()
                t = max(bucket.values()) + self._group_latency(ev.group)
                released = []
                if self.trace is not None:
                    self.trace.add_event(
                        SyncEvent(
                            seq=self.trace.next_seq(),
                            rank=r,
                            kind="barrier",
                            group=ev.group,
                            matched=tuple(sorted(bucket)),
                        )
                    )
                    for br in ev.group:
                        self.trace.add(
                            OpRecord(rank=br, kind="barrier", nbytes=0,
                                     group=ev.group, t_start=bucket[br],
                                     t_end=t)
                        )
                for br in ev.group:
                    ctxs[br].clock = t
                    if br != r:
                        released.append(br)
                del self._barrier_arrivals[bucket_key]
                return True, released
            return False, ()
        raise TypeError(f"rank {r} yielded a non-event: {ev!r}")

    def _diagnose_deadlock(self, blocked, ctxs):
        infos = []
        for r, ev in sorted(blocked.items()):
            if isinstance(ev, _Wait):
                posts = self._posts.get(ev.tag, ())
                info = BlockedInfo(
                    rank=r, kind="wait", tag=ev.tag, count=ev.count,
                    have=len(posts),
                    posters=tuple(pr for pr, _, _ in posts),
                )
            else:
                # the bucket this rank is parked in is its latest arrival
                n = self._barrier_seq[(ev.group, r)] - 1
                bucket = self._barrier_arrivals.get((ev.group, n), {})
                info = BlockedInfo(
                    rank=r, kind="barrier", group=ev.group,
                    arrived=tuple(sorted(bucket)),
                )
            infos.append(info)
            if self.trace is not None:
                self.trace.add_event(
                    SyncEvent(
                        seq=self.trace.next_seq(), rank=r, kind="blocked",
                        tag=getattr(ev, "tag", None),
                        count=getattr(ev, "count", 0),
                        group=getattr(ev, "group", ()),
                        matched=info.posters or info.arrived,
                        detail=info.describe(),
                    )
                )
        raise DeadlockError(
            f"simulation deadlock: {len(infos)} rank(s) blocked\n  "
            + "\n  ".join(i.describe() for i in infos),
            blocked=infos,
        )
