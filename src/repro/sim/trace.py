"""Structured operation trace for debugging and DAV verification.

Tracing is optional (off by default — the hot loops only pay an ``if``)
but invaluable: the integration tests replay a collective with tracing
on and check, operation by operation, that the schedule matches the
paper's figures (e.g. Figure 6's step/slice/rank table for the
movement-avoiding reduce-scatter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class OpRecord:
    """One engine operation.

    ``kind`` is one of ``copy``, ``reduce_acc`` (``A += B``),
    ``reduce_out`` (``C = A + B``), ``sync``, ``barrier``, ``compute``.
    ``nt`` records whether a copy used a non-temporal store.
    """

    rank: int
    kind: str
    nbytes: int
    src: str = ""
    dst: str = ""
    nt: Optional[bool] = None
    policy: str = ""
    t_start: float = 0.0
    t_end: float = 0.0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Trace:
    """Append-only trace with simple query helpers."""

    def __init__(self) -> None:
        self.records: list[OpRecord] = []

    def add(self, rec: OpRecord) -> None:
        self.records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[OpRecord]:
        return iter(self.records)

    def by_rank(self, rank: int) -> list[OpRecord]:
        return [r for r in self.records if r.rank == rank]

    def by_kind(self, kind: str) -> list[OpRecord]:
        return [r for r in self.records if r.kind == kind]

    def copy_bytes(self, *, nt: Optional[bool] = None) -> int:
        return sum(
            r.nbytes
            for r in self.records
            if r.kind == "copy" and (nt is None or r.nt == nt)
        )

    def reduce_bytes(self) -> int:
        return sum(r.nbytes for r in self.records if r.kind.startswith("reduce"))

    def summary(self) -> dict:
        kinds: dict[str, int] = {}
        for r in self.records:
            kinds[r.kind] = kinds.get(r.kind, 0) + 1
        return {
            "ops": len(self.records),
            "by_kind": kinds,
            "copy_bytes": self.copy_bytes(),
            "nt_copy_bytes": self.copy_bytes(nt=True),
            "reduce_bytes": self.reduce_bytes(),
        }
