"""Structured operation trace for debugging, DAV verification and
happens-before analysis.

Tracing is optional (off by default — the hot loops only pay an ``if``)
but invaluable: the integration tests replay a collective with tracing
on and check, operation by operation, that the schedule matches the
paper's figures (e.g. Figure 6's step/slice/rank table for the
movement-avoiding reduce-scatter).

A trace carries three parallel streams:

* ``records`` — one :class:`OpRecord` per engine operation (data *and*
  synchronization), the per-rank schedule view consumed by the replay
  and timeline tools;
* ``events`` — fine-grained :class:`AccessEvent`/:class:`SyncEvent`
  entries in global execution order, the input to
  :mod:`repro.analysis`'s happens-before race detector.  Access events
  name the exact buffer byte range each operation read or wrote; sync
  events capture post/wait/barrier structure, including *which* posts a
  wait matched — everything a vector-clock construction needs;
* ``spans`` — coarse :class:`SpanRecord` phase labels emitted through
  the :meth:`~repro.sim.engine.RankCtx.span` API, naming *why* a rank
  spent a stretch of time (e.g. MA's reduce wavefront vs its copy-out
  phase).  :mod:`repro.obs` turns them into nested Perfetto slices.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class OpRecord:
    """One engine operation.

    ``kind`` is one of ``copy``, ``reduce_acc`` (``A += B``),
    ``reduce_out`` (``C = A + B``), ``compute``, ``touch``, or a
    synchronization kind: ``post``, ``wait``, ``barrier``.
    ``nt`` records whether a copy used a non-temporal store.

    Synchronization records carry structured metadata instead of
    abusing the ``src``/``dst`` strings: ``tag`` is the flag identity a
    ``post``/``wait`` named, ``count`` the number of posts a ``wait``
    required, and ``group`` the member tuple of a ``barrier``.
    """

    rank: int
    kind: str
    nbytes: int
    src: str = ""
    dst: str = ""
    nt: Optional[bool] = None
    policy: str = ""
    t_start: float = 0.0
    t_end: float = 0.0
    tag: object = None
    count: int = 0
    group: tuple = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def is_sync(self) -> bool:
        return self.kind in ("post", "wait", "barrier")


@dataclass(frozen=True)
class AccessEvent:
    """One byte-range access of a data operation.

    ``mode`` is ``"r"`` or ``"w"``; ``op_index`` points back into
    ``Trace.records`` (``-1`` when the operation was not recorded).
    ``shared`` marks accesses to :class:`~repro.sim.buffers.SharedBuffer`
    segments — the ranges cross-rank races live on.
    """

    seq: int
    rank: int
    mode: str
    buf_id: int
    buf_name: str
    shared: bool
    off: int
    nbytes: int
    op_kind: str
    op_index: int = -1

    @property
    def end(self) -> int:
        return self.off + self.nbytes

    def describe(self) -> str:
        rng = f"[{self.off}, {self.end})"
        return (f"rank {self.rank} {self.op_kind} "
                f"{'write' if self.mode == 'w' else 'read'} "
                f"{self.buf_name}{rng} (op #{self.op_index})")


@dataclass(frozen=True)
class SpanRecord:
    """One labelled phase of a rank's execution.

    Spans are purely observational: they carry no synchronization or
    data semantics, only a name and the rank-clock interval it covers.
    Nested ``span`` calls produce containing intervals (the trace
    exporter renders them as nested slices).
    """

    rank: int
    name: str
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class SyncEvent:
    """One synchronization event, in global execution order.

    ``kind``:

    * ``"post"`` — rank published ``tag``;
    * ``"wait"`` — rank's ``wait(tag, count)`` was released; ``matched``
      holds the event seqs of the posts that satisfied it;
    * ``"barrier"`` — a barrier on ``group`` completed (one event per
      completion, emitted by the last arriver);
    * ``"blocked"`` — the run deadlocked with this rank parked on the
      described wait/barrier (a deadlock certificate);
    * ``"run_start"`` — :meth:`Engine.run` began (separates back-to-back
      collectives on one engine; acts as a global synchronization).
    """

    seq: int
    rank: int
    kind: str
    tag: object = None
    count: int = 0
    group: tuple = ()
    matched: tuple = ()
    detail: str = ""

    def describe(self) -> str:
        if self.kind == "post":
            return f"rank {self.rank} post({self.tag!r})"
        if self.kind == "wait":
            return f"rank {self.rank} wait({self.tag!r}, count={self.count})"
        if self.kind == "barrier":
            return f"barrier{self.group}"
        if self.kind == "blocked":
            return f"rank {self.rank} blocked: {self.detail}"
        return self.kind


class Trace:
    """Append-only trace with simple query helpers."""

    def __init__(self) -> None:
        self.records: list[OpRecord] = []
        self.events: list = []  # AccessEvent | SyncEvent, execution order
        self.spans: list[SpanRecord] = []
        self._seq = 0

    def add(self, rec: OpRecord) -> None:
        self.records.append(rec)

    def add_span(self, span: SpanRecord) -> None:
        self.spans.append(span)

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def add_event(self, ev) -> None:
        self.events.append(ev)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[OpRecord]:
        return iter(self.records)

    def slice_last_run(self, first_record: int = 0,
                       first_span: int = 0) -> "Trace":
        """A standalone single-run view of this (cumulative) trace.

        ``first_record`` / ``first_span`` must be the *final* run's
        offsets (:attr:`~repro.sim.engine.RunResult.first_record` /
        ``first_span`` of the engine's most recent run): events are cut
        at the last ``run_start`` separator, so slicing any earlier run
        would mismatch records and events.  ``AccessEvent.op_index``
        values (absolute indices into the cumulative record list) are
        rebased to the sliced list, which makes the result a valid
        input for :func:`repro.analysis.static.extract.ir_from_trace`.
        """
        out = Trace()
        out.records = self.records[first_record:]
        out.spans = self.spans[first_span:]
        start = 0
        for i, ev in enumerate(self.events):
            if isinstance(ev, SyncEvent) and ev.kind == "run_start":
                start = i + 1
        if first_record:
            for ev in self.events[start:]:
                if isinstance(ev, AccessEvent) and ev.op_index >= 0:
                    ev = replace(ev, op_index=ev.op_index - first_record)
                out.events.append(ev)
        else:
            # nothing to rebase: skip the per-event dataclass copies
            out.events.extend(self.events[start:])
        out._seq = self._seq
        return out

    def by_rank(self, rank: int) -> list[OpRecord]:
        return [r for r in self.records if r.rank == rank]

    def by_kind(self, kind: str) -> list[OpRecord]:
        return [r for r in self.records if r.kind == kind]

    def accesses(self) -> List[AccessEvent]:
        return [e for e in self.events if isinstance(e, AccessEvent)]

    def sync_events(self) -> List[SyncEvent]:
        return [e for e in self.events if isinstance(e, SyncEvent)]

    def copy_bytes(self, *, nt: Optional[bool] = None) -> int:
        return sum(
            r.nbytes
            for r in self.records
            if r.kind == "copy" and (nt is None or r.nt == nt)
        )

    def reduce_bytes(self) -> int:
        return sum(r.nbytes for r in self.records if r.kind.startswith("reduce"))

    def touch_bytes(self) -> int:
        return sum(r.nbytes for r in self.records if r.kind == "touch")

    def summary(self) -> dict:
        kinds: dict[str, int] = {}
        for r in self.records:
            kinds[r.kind] = kinds.get(r.kind, 0) + 1
        return {
            "ops": len(self.records),
            "by_kind": kinds,
            "copy_bytes": self.copy_bytes(),
            "nt_copy_bytes": self.copy_bytes(nt=True),
            "reduce_bytes": self.reduce_bytes(),
            "spans": len(self.spans),
        }
