"""Compiled schedule evaluator: vectorized replay of the op-dependency IR.

The coroutine engine (:mod:`repro.sim.engine`) interprets a collective
one operation at a time per rank — generator dispatch, memory-system
calls, scheduler bookkeeping — and is the hot path under every
benchmark sweep.  But under the default FIFO scheduler a collective's
*schedule shape* is deterministic: the same ops, the same sync
structure, the same cache outcomes on every execution.  This module
exploits that by splitting the work in two:

1. **capture** — run the collective *once* through the coroutine
   engine with tracing on and lift the run into the ``repro-ir/1``
   op-dependency DAG (:mod:`repro.analysis.static`);
2. **lower** (:func:`lower`) — flatten the DAG into a topologically
   ordered table of numpy arrays: op kind, byte footprint, rank,
   calibrated duration and CSR predecessor offsets carrying the
   post→wait pair latencies the engine charges on sync edges;
3. **evaluate** (:meth:`CompiledSchedule.evaluate`) — recompute every
   op's completion time with level-by-level vectorized max-plus
   relaxations.  No coroutines, no Python-level per-op dispatch.

The completion-time recurrence is exactly the engine's:

* a data op completes at ``start + duration``;
* a wait releases at ``max(own clock, post clock + pair latency)`` —
  the pair latency rides the sync edge, so a wait whose posts landed
  long ago is free;
* a barrier join completes at ``max(member clocks) + group latency``.

``max`` folds are order-independent in IEEE arithmetic and durations
are *calibrated* at lowering time (nudged by ULPs so that
``start + duration`` reproduces the captured completion bitwise), so
the evaluated times equal the coroutine engine's **bit for bit** — the
equivalence the bench layer's result cache and the tests rely on.

What stays on the coroutine path: anything that must *execute* rather
than re-time a schedule — functional verification, the DPOR model
checker (it explores non-FIFO interleavings), the shadow-memory
sanitizer, and trace export.  Re-timing under a different machine
model is also out: cache outcomes are access-order *and size*
dependent, so a schedule captured on one (machine, p, size) cell is
exact only for that cell.  :func:`CompiledSchedule.model_durations`
offers an explicitly model-level (not engine-exact) re-timing hook
built on :func:`repro.models.timing.static_op_time`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.machine.spec import socket_of_rank_meta

#: schema tag for serialized compiled schedules
COMPILED_SCHEMA = "repro-compiled/1"

#: every schedule schema this loader understands (same guard idiom as
#: the trace/certificate loaders in :mod:`repro.sim.replay`)
SUPPORTED_COMPILED_SCHEMAS = (COMPILED_SCHEMA,)

#: op-kind encoding of the flat schedule (int8 column)
KIND_CODES: Dict[str, int] = {
    "copy": 0,
    "reduce_acc": 1,
    "reduce_out": 2,
    "touch": 3,
    "compute": 4,
    "post": 5,
    "wait": 6,
    "barrier": 7,
}
KIND_NAMES = {v: k for k, v in KIND_CODES.items()}


def _touch_factors() -> np.ndarray:
    from repro.models.timing import op_touch_factor

    out = np.zeros(len(KIND_CODES), dtype=np.float64)
    for name, code in KIND_CODES.items():
        out[code] = op_touch_factor(name)
    return out


#: Theorem 3.1 byte multipliers indexed by op-kind code (shared with
#: :func:`repro.models.timing.op_touched_bytes`)
_TOUCH_FACTOR_BY_CODE = _touch_factors()


class CompileError(ValueError):
    """The IR cannot be lowered (pending syncs, cycles, unknown ops)."""


class ScheduleSchemaError(ValueError):
    """A serialized schedule fails schema validation (unsupported or
    missing schema tag, absent required fields).  Raised instead of a
    raw ``KeyError`` so cache consumers can distinguish a corrupt or
    future-versioned entry (recapture) from a programming error."""


@dataclass
class CompiledTimes:
    """One evaluation's output: per-op completion and per-rank finish."""

    completion: np.ndarray  # float64 [nodes]
    rank_times: List[float]  # per-rank finish clock, engine `times` form

    @property
    def time(self) -> float:
        """Collective completion time: the slowest rank."""
        return max(self.rank_times) if self.rank_times else 0.0


@dataclass
class BatchedTimes:
    """One :meth:`CompiledSchedule.evaluate_batch` call's output.

    Row ``i`` is bitwise-identical to a single :meth:`evaluate` call
    with the same start times and durations — batching is purely a
    layout change (the same IEEE operations run element-wise across
    the batch axis).
    """

    completion: np.ndarray  # float64 [B, nodes]
    rank_times: np.ndarray  # float64 [B, nranks]

    @property
    def times(self) -> np.ndarray:
        """Per-replay collective completion time: the slowest rank."""
        if self.rank_times.shape[1] == 0:
            return np.zeros(self.rank_times.shape[0], dtype=np.float64)
        return self.rank_times.max(axis=1)

    def __len__(self) -> int:
        return self.rank_times.shape[0]


def _concat_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Vectorized ``concatenate([arange(s, s+l) for s, l in ...])``."""
    nz = lens > 0
    starts, lens = starts[nz], lens[nz]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(lens.sum())
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        offs = np.cumsum(lens)[:-1]
        out[offs] = starts[1:] - starts[:-1] - lens[:-1] + 1
    return np.cumsum(out)


@dataclass
class _Level:
    """One wavefront of the evaluation plan (nodes of equal DAG depth).

    ``solo`` are the level's predecessor-free nodes (start directly
    from the base clock); the remaining arrays drive one
    ``np.maximum.reduceat`` gather over the concatenated predecessor
    lists of the level's other nodes.
    """

    solo: np.ndarray  # int64 [a] node ids without predecessors
    nodes: np.ndarray  # int64 [b] node ids with predecessors
    gather: np.ndarray  # int64 [m] concatenated predecessor node ids
    gather_lat: np.ndarray  # float64 [m] per-edge latency
    seg: np.ndarray  # int64 [b] segment starts into gather


@dataclass
class CompiledSchedule:
    """A lowered schedule: flat numpy arrays plus the evaluation plan.

    Instances come from :func:`lower` (fresh capture) or
    :func:`schedule_from_doc` (cache hit); ``meta`` carries the capture
    context (collective, algorithm, machine meta, reference times,
    per-rank traffic) the bench layer re-emits with replayed results.
    """

    meta: dict
    nranks: int
    kind: np.ndarray  # int8 [n]
    rank: np.ndarray  # int32 [n]; -1 for barrier join nodes
    nbytes: np.ndarray  # int64 [n]
    nt: np.ndarray  # bool [n]
    dur: np.ndarray  # float64 [n], calibrated
    t_end_ref: np.ndarray  # float64 [n], captured completion times
    indptr: np.ndarray  # int64 [n+1]: CSR over incoming edges
    pred: np.ndarray  # int64 [m]
    pred_lat: np.ndarray  # float64 [m]
    #: last node of each rank's program-order chain (-1: rank idle)
    last_of_rank: np.ndarray  # int64 [nranks]
    #: member lists of barrier join nodes, for start-time broadcast
    groups: Dict[int, Sequence[int]] = field(default_factory=dict)
    _plan: Optional[List[_Level]] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.kind)

    # ---- evaluation plan ---------------------------------------------

    def _levels(self) -> List[_Level]:
        """Partition nodes into wavefronts of equal dependency depth and
        pre-gather each wavefront's predecessor segments (built once;
        every :meth:`evaluate` call reuses it).

        Depth is longest-path depth, computed by level-synchronous Kahn
        rounds over a successor CSR (a node joins the frontier exactly
        when its deepest predecessor has been processed), and each
        level's gather arrays are sliced out of one stable sort of the
        edge list by destination depth — no per-node Python work.
        """
        if self._plan is not None:
            return self._plan
        n = len(self)
        indptr, pred = self.indptr, self.pred
        counts = np.diff(indptr)
        m = int(indptr[-1])
        dst_of_edge = np.repeat(np.arange(n, dtype=np.int64), counts)
        if m:
            # successor CSR: stable sort keeps each source's out-edges
            # in original (destination-ascending) order
            succ_order = np.argsort(pred, kind="stable")
            succ_dst = dst_of_edge[succ_order]
            succ_counts = np.bincount(pred, minlength=n)
        else:
            succ_dst = np.empty(0, dtype=np.int64)
            succ_counts = np.zeros(n, dtype=np.int64)
        succ_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(succ_counts, out=succ_indptr[1:])
        depth = np.zeros(n, dtype=np.int64)
        indeg = counts.copy()
        frontier = np.flatnonzero(indeg == 0)
        d = 0
        while frontier.size:
            depth[frontier] = d
            d += 1
            idx = _concat_ranges(succ_indptr[frontier],
                                 succ_counts[frontier])
            if idx.size == 0:
                break  # no out-edges left: lower() guarantees a DAG
            targets = succ_dst[idx]
            np.subtract.at(indeg, targets, 1)
            frontier = np.unique(targets[indeg[targets] == 0])
        nlev = int(depth.max()) + 1 if n else 0
        order = np.argsort(depth, kind="stable")
        bounds = np.searchsorted(depth[order], np.arange(nlev + 1))
        if m:
            edepth = depth[dst_of_edge]
            edge_order = np.argsort(edepth, kind="stable")
            ecounts = np.bincount(edepth, minlength=nlev)
            gathers = pred[edge_order]
            glats = self.pred_lat[edge_order]
        else:
            ecounts = np.zeros(nlev, dtype=np.int64)
            gathers = np.empty(0, dtype=np.int64)
            glats = np.empty(0, dtype=np.float64)
        ebounds = np.zeros(nlev + 1, dtype=np.int64)
        np.cumsum(ecounts, out=ebounds[1:])
        plan: List[_Level] = []
        for dlev in range(nlev):
            nodes = order[bounds[dlev]:bounds[dlev + 1]]
            cnt = counts[nodes]
            solo = nodes[cnt == 0]
            rest = nodes[cnt > 0]
            seg = np.zeros(rest.size, dtype=np.int64)
            if rest.size > 1:
                np.cumsum(counts[rest][:-1], out=seg[1:])
            plan.append(_Level(
                solo=solo, nodes=rest,
                gather=gathers[ebounds[dlev]:ebounds[dlev + 1]],
                gather_lat=glats[ebounds[dlev]:ebounds[dlev + 1]],
                seg=seg,
            ))
        self._plan = plan
        return plan

    def _base_batch(self, st: Optional[np.ndarray], B: int) -> np.ndarray:
        """Per-node start floor, batched: each rank's initial clock
        (zero by default), broadcast to barrier joins as the max over
        members.  ``st`` is ``(B, nranks)`` or ``None``."""
        n = len(self)
        base = np.zeros((B, n), dtype=np.float64)
        if st is None:
            return base
        owned = self.rank >= 0
        base[:, owned] = st[:, self.rank[owned]]
        for v, group in self.groups.items():
            base[:, v] = (st[:, list(group)].max(axis=1)
                          if len(group) else 0.0)
        return base

    # ---- evaluation --------------------------------------------------

    def evaluate(self, *, start_times: Optional[Sequence[float]] = None,
                 dur: Optional[np.ndarray] = None) -> CompiledTimes:
        """Vectorized completion-time evaluation of one replay.

        With default arguments this reproduces the capture run's times
        bitwise.  ``start_times`` skews each rank's initial clock (the
        perturbation hook ROADMAP item 5 builds on); ``dur`` swaps in
        alternative per-op durations (see :meth:`model_durations`).
        A batch-of-one :meth:`evaluate_batch` — same operations, same
        bits.
        """
        if dur is not None:
            durv = np.asarray(dur, np.float64)
            if durv.shape != self.dur.shape:
                raise ValueError(
                    "dur must match the schedule's node count"
                )
        res = self.evaluate_batch(start_times=start_times, dur=dur,
                                  batch=1)
        return CompiledTimes(
            completion=res.completion[0],
            rank_times=[float(t) for t in res.rank_times[0]],
        )

    def evaluate_batch(self, *,
                       start_times: Optional[np.ndarray] = None,
                       dur: Optional[np.ndarray] = None,
                       batch: Optional[int] = None) -> BatchedTimes:
        """Evaluate ``B`` replays in one vectorized pass.

        ``start_times`` is ``(B, nranks)`` (or ``(nranks,)``,
        broadcast), ``dur`` is ``(B, n_ops)`` (or ``(n_ops,)``,
        broadcast); ``batch`` pins ``B`` when both are broadcast.  The
        wavefront recurrence runs with one ``np.maximum.reduceat`` per
        level *across the whole batch* (``axis=1``), so each row
        executes exactly the element-wise IEEE operations a single
        :meth:`evaluate` call would — row ``i`` of the result is
        bitwise-identical to evaluating ``(start_times[i], dur[i])``
        alone.  This is what makes thousand-replay perturbation
        ensembles (:mod:`repro.sim.perturb`) nearly free.
        """
        n = len(self)
        st = None
        if start_times is not None:
            st = np.asarray(start_times, dtype=np.float64)
            if st.ndim == 1:
                st = st[None, :]
            if st.ndim != 2 or st.shape[1] != self.nranks:
                raise ValueError(
                    f"start_times must have one entry per rank "
                    f"({self.nranks}), got shape {st.shape}"
                )
        durv = self.dur[None, :] if dur is None \
            else np.asarray(dur, dtype=np.float64)
        if durv.ndim == 1:
            durv = durv[None, :]
        if durv.ndim != 2 or durv.shape[1] != n:
            raise ValueError(
                f"dur must have one entry per op ({n}), got shape "
                f"{durv.shape}"
            )
        sizes = {a.shape[0] for a in (st, durv)
                 if a is not None and a.shape[0] != 1}
        if batch is not None:
            if batch < 1:
                raise ValueError("batch must be positive")
            sizes.add(int(batch))
        if len(sizes) > 1:
            raise ValueError(
                f"inconsistent batch sizes: {sorted(sizes)}"
            )
        B = sizes.pop() if sizes else 1
        if st is not None and st.shape[0] != B:
            st = np.ascontiguousarray(
                np.broadcast_to(st, (B, self.nranks)))
        if durv.shape[0] != B:
            durv = np.broadcast_to(durv, (B, n))
        base = self._base_batch(st, B)
        comp = np.zeros((B, n), dtype=np.float64)
        for level in self._levels():
            if level.solo.size:
                comp[:, level.solo] = (base[:, level.solo]
                                       + durv[:, level.solo])
            if level.nodes.size:
                vals = comp[:, level.gather] + level.gather_lat
                arrive = np.maximum.reduceat(vals, level.seg, axis=1)
                comp[:, level.nodes] = (
                    np.maximum(base[:, level.nodes], arrive)
                    + durv[:, level.nodes]
                )
        rank_times = np.zeros((B, self.nranks), dtype=np.float64)
        live = self.last_of_rank >= 0
        if live.any():
            rank_times[:, live] = comp[:, self.last_of_rank[live]]
        if st is not None and not live.all():
            rank_times[:, ~live] = st[:, ~live]
        return BatchedTimes(completion=comp, rank_times=rank_times)

    # ---- model-driven re-timing --------------------------------------

    def model_durations(self, machine, *,
                        nbytes: Optional[np.ndarray] = None) -> np.ndarray:
        """Alternative per-op durations from the *static* timing model
        (:func:`repro.models.timing.static_op_time`), vectorized.

        This is a model-level estimate — cache-resident bandwidth plus
        per-op overhead — not the stateful memory-system charge, so
        evaluating with it gives the same optimistic bound the static
        critical-path pass computes, not engine-exact times.  Useful
        for what-if sweeps over machine constants without recapturing.

        ``nbytes`` substitutes alternative per-op byte footprints —
        the size-polymorphic replay path passes the captured footprints
        scaled to a different message size whose decision guards agree
        (see :func:`repro.models.nt_model.decision_guards`).
        """
        nb = self.nbytes if nbytes is None \
            else np.asarray(nbytes, dtype=np.int64)
        if nb.shape != self.nbytes.shape:
            raise ValueError("nbytes must match the schedule's node count")
        dur = np.zeros(len(self), dtype=np.float64)
        touched = _TOUCH_FACTOR_BY_CODE[self.kind] * nb
        moved = (self.kind <= KIND_CODES["compute"]) & (touched > 0)
        dur[moved] = (touched[moved] / machine.cache_bandwidth_core
                      + machine.op_overhead)
        compute = self.kind == KIND_CODES["compute"]
        dur[compute] = self.dur[compute]  # program-declared durations
        barrier = self.kind == KIND_CODES["barrier"]
        dur[barrier] = self.dur[barrier]  # captured tree latency
        return dur


def symbolic_durations(cs: "CompiledSchedule", machine,
                       nbytes) -> np.ndarray:
    """Model durations from *certified* symbolic per-op footprints.

    The symbolic lowering hook of the certified poly path
    (``bench --compiled --poly --certified``): ``nbytes`` is the exact
    per-op byte vector a region certificate
    (:class:`repro.analysis.static.symbolic.SymbolicSchedule`) evaluated
    at the replay size, in compiled (toposort) op order.  Unlike the
    plain retiming path — which *scales* the captured footprints by
    ``s_new / s_captured`` — these are engine-exact integers, so the
    only remaining approximation is the duration model itself.

    Validates the vector against the captured schedule before use:
    shape match, non-negative entries, and an identical zero pattern
    (an op that moved no bytes at capture time must move none at any
    size in a shape-invariant region, and vice versa).  A mismatch
    means the certificate does not describe this schedule — raise
    rather than silently retime with wrong footprints.
    """
    arr = np.asarray(nbytes, dtype=np.int64)
    if arr.shape != cs.nbytes.shape:
        raise ValueError(
            f"certified nbytes has {arr.shape[0] if arr.ndim else 0} "
            f"entries, schedule has {len(cs)} ops"
        )
    if (arr < 0).any():
        raise ValueError("certified nbytes must be non-negative")
    if ((arr == 0) != (cs.nbytes == 0)).any():
        bad = int(np.nonzero((arr == 0) != (cs.nbytes == 0))[0][0])
        raise ValueError(
            f"certified nbytes zero pattern differs from the captured "
            f"schedule at op {bad} (captured {int(cs.nbytes[bad])} B, "
            f"certified {int(arr[bad])} B): certificate does not "
            "describe this schedule"
        )
    return cs.model_durations(machine, nbytes=arr)


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _calibrate(arrive: float, t_end: float) -> float:
    """The duration ``d`` with ``arrive + d == t_end`` *bitwise*.

    ``t_end - arrive`` is usually it, but IEEE does not guarantee
    ``a + (b - a) == b``; the engine computed ``t_end`` as ``arrive``
    plus some representable increment, so a short ULP walk always
    lands on it exactly.
    """
    d = t_end - arrive
    while arrive + d > t_end:
        d = math.nextafter(d, -math.inf)
    while arrive + d < t_end:
        d = math.nextafter(d, math.inf)
    return d


def _calibrate_array(arrive: np.ndarray, t_end: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_calibrate`: per-element ULP walks run in
    lockstep (each element follows exactly the scalar walk — down
    first, then up), so the result matches the scalar loop bitwise."""
    dur = t_end - arrive
    over = arrive + dur > t_end
    while over.any():
        idx = np.flatnonzero(over)
        dur[idx] = np.nextafter(dur[idx], -np.inf)
        over[idx] = arrive[idx] + dur[idx] > t_end[idx]
    under = arrive + dur < t_end
    while under.any():
        idx = np.flatnonzero(under)
        dur[idx] = np.nextafter(dur[idx], np.inf)
        under[idx] = arrive[idx] + dur[idx] < t_end[idx]
    return dur


def lower(ir) -> CompiledSchedule:
    """Lower a ``repro-ir/1`` :class:`~repro.analysis.static.ir.ScheduleIR`
    to a :class:`CompiledSchedule`.

    The IR must come from a *completed* run (pending sync nodes — a
    deadlocked capture — refuse to lower) and carry the machine meta
    projection if the capture had a machine model: the post→wait pair
    latencies on sync edges are recomputed from the socket topology
    exactly as the engine charges them.
    """
    nodes = ir.nodes
    if not nodes:
        raise CompileError("cannot lower an empty schedule IR")
    for n in nodes:
        if n.pending:
            raise CompileError(
                f"schedule deadlocked at capture: {n.describe()} never "
                "released; compiled replay requires a completed run"
            )
        if n.kind not in KIND_CODES:
            raise CompileError(f"unknown op kind {n.kind!r} in IR")
    topo = ir.toposort()
    machine = ir.meta.get("machine") or {}
    intra = float(machine.get("sync_latency_intra", 0.0))
    inter = float(machine.get("sync_latency_inter", 0.0))
    sockets = int(machine.get("sockets", 1))
    cps = int(machine.get("cores_per_socket", 1))
    binding = str(machine.get("binding", "compact"))
    nranks = ir.nranks or (max(n.rank for n in nodes) + 1)

    def sock(rank: int) -> int:
        return socket_of_rank_meta(rank, nranks, sockets=sockets,
                                   cores_per_socket=cps, binding=binding)

    # renumber into topological positions so the stored arrays are a
    # valid execution order by construction
    pos = {v: i for i, v in enumerate(topo)}
    n = len(nodes)
    kind = np.zeros(n, dtype=np.int8)
    rank = np.zeros(n, dtype=np.int32)
    nbytes = np.zeros(n, dtype=np.int64)
    nt = np.zeros(n, dtype=bool)
    t_start = np.zeros(n, dtype=np.float64)
    t_end = np.zeros(n, dtype=np.float64)
    groups: Dict[int, Sequence[int]] = {}
    for v, node in enumerate(nodes):
        i = pos[v]
        kind[i] = KIND_CODES[node.kind]
        rank[i] = node.rank
        nbytes[i] = node.nbytes
        nt[i] = bool(node.nt)
        t_start[i] = node.t_start
        t_end[i] = node.t_end
        if node.kind == "barrier":
            groups[i] = tuple(node.group)

    preds_of: List[List[int]] = [[] for _ in range(n)]
    lat_of: List[List[float]] = [[] for _ in range(n)]
    for e in ir.edges:
        src, dst = pos[e.src], pos[e.dst]
        if e.kind == "sync":
            r1, r2 = nodes[e.src].rank, nodes[e.dst].rank
            lat = (intra if r1 < 0 or r2 < 0 or sock(r1) == sock(r2)
                   else inter)
        else:
            lat = 0.0
        preds_of[dst].append(src)
        lat_of[dst].append(lat)

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum([len(p) for p in preds_of], out=indptr[1:])
    pred = np.fromiter((p for ps in preds_of for p in ps),
                       dtype=np.int64, count=int(indptr[-1]))
    pred_lat = np.fromiter((la for ls in lat_of for la in ls),
                           dtype=np.float64, count=int(indptr[-1]))

    # calibrate durations against the captured completion times.  Every
    # predecessor's t_end is *captured* (not recomputed), so all
    # arrivals come out of one CSR segment-max and the ULP walks
    # vectorize — no per-node Python
    arrive = np.zeros(n, dtype=np.float64)
    if pred.size:
        vals = t_end[pred] + pred_lat
        rows = np.flatnonzero(np.diff(indptr) > 0)
        arrive[rows] = np.maximum(
            np.maximum.reduceat(vals, indptr[rows]), 0.0)
    dur = _calibrate_array(arrive, t_end)

    last_of_rank = np.full(nranks, -1, dtype=np.int64)
    for i in range(n):
        r = int(rank[i])
        if r >= 0:
            last_of_rank[r] = i
        else:
            for member in groups.get(i, ()):
                last_of_rank[member] = i

    meta = dict(ir.meta)
    meta.pop("counters", None)  # capture-run counters are re-derived
    return CompiledSchedule(
        meta=meta, nranks=nranks, kind=kind, rank=rank, nbytes=nbytes,
        nt=nt, dur=dur, t_end_ref=t_end, indptr=indptr, pred=pred,
        pred_lat=pred_lat, last_of_rank=last_of_rank, groups=groups,
    )


# ---------------------------------------------------------------------------
# Serialization (JSON-safe, for the content-addressed schedule cache)
# ---------------------------------------------------------------------------


def schedule_to_doc(cs: CompiledSchedule) -> dict:
    """JSON-safe document form (schema ``repro-compiled/1``)."""
    return {
        "schema": COMPILED_SCHEMA,
        "meta": cs.meta,
        "nranks": cs.nranks,
        "kind": cs.kind.tolist(),
        "rank": cs.rank.tolist(),
        "nbytes": cs.nbytes.tolist(),
        "nt": cs.nt.astype(int).tolist(),
        "dur": cs.dur.tolist(),
        "t_end": cs.t_end_ref.tolist(),
        "indptr": cs.indptr.tolist(),
        "pred": cs.pred.tolist(),
        "pred_lat": cs.pred_lat.tolist(),
        "last_of_rank": cs.last_of_rank.tolist(),
        "groups": {str(k): list(v) for k, v in cs.groups.items()},
    }


#: fields a schedule document must carry to be loadable at all
_REQUIRED_DOC_FIELDS = (
    "nranks", "kind", "rank", "nbytes", "nt", "dur", "t_end",
    "indptr", "pred", "pred_lat", "last_of_rank",
)


def schedule_from_doc(doc: dict) -> CompiledSchedule:
    """Parse a document produced by :func:`schedule_to_doc`.

    Floats round-trip exactly through JSON (``repr`` shortest-float
    serialization), so a cache-loaded schedule evaluates bitwise
    identically to the freshly lowered one.

    Corrupt or future-versioned documents raise
    :class:`ScheduleSchemaError` naming the supported schema versions
    (never a raw ``KeyError``): the schedule cache treats that as a
    recapture signal, not a crash.
    """
    if not isinstance(doc, dict):
        raise ScheduleSchemaError(
            f"compiled-schedule document must be an object, got "
            f"{type(doc).__name__}"
        )
    schema = doc.get("schema")
    if schema not in SUPPORTED_COMPILED_SCHEMAS:
        raise ScheduleSchemaError(
            f"unsupported compiled-schedule schema {schema!r}; "
            f"supported versions: "
            f"{', '.join(SUPPORTED_COMPILED_SCHEMAS)}"
        )
    missing = [f for f in _REQUIRED_DOC_FIELDS if f not in doc]
    if missing:
        raise ScheduleSchemaError(
            f"compiled-schedule document ({schema}) is missing "
            f"required fields: {', '.join(missing)}"
        )
    return CompiledSchedule(
        meta=dict(doc.get("meta", {})),
        nranks=int(doc["nranks"]),
        kind=np.asarray(doc["kind"], dtype=np.int8),
        rank=np.asarray(doc["rank"], dtype=np.int32),
        nbytes=np.asarray(doc["nbytes"], dtype=np.int64),
        nt=np.asarray(doc["nt"], dtype=bool),
        dur=np.asarray(doc["dur"], dtype=np.float64),
        t_end_ref=np.asarray(doc["t_end"], dtype=np.float64),
        indptr=np.asarray(doc["indptr"], dtype=np.int64),
        pred=np.asarray(doc["pred"], dtype=np.int64),
        pred_lat=np.asarray(doc["pred_lat"], dtype=np.float64),
        last_of_rank=np.asarray(doc["last_of_rank"], dtype=np.int64),
        groups={int(k): tuple(v)
                for k, v in doc.get("groups", {}).items()},
    )
