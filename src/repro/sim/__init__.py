"""Shared-memory process simulation substrate.

MPI ranks are modelled as cooperative coroutines (Python generators)
scheduled by :class:`~repro.sim.engine.Engine`.  Each rank owns private
:class:`~repro.sim.buffers.Buffer` objects and can access
:class:`~repro.sim.buffers.SharedBuffer` regions, mirroring the POSIX
shared-memory mechanism the paper's library uses.  The engine keeps a
per-rank simulated clock, charges every copy/reduce operation to the
:class:`~repro.machine.memory.MemorySystem`, and implements the
flag/barrier synchronization the algorithms rely on.

Two modes share one code path:

* **functional** — buffers carry real numpy data; collectives produce
  verifiable results (tests assert against numpy oracles);
* **timing** — buffers are virtual (sizes only); the same schedules are
  executed to produce simulated time, traffic and DAV for the paper's
  large-message sweeps without allocating gigabytes.
"""

from repro.sim.buffers import (
    Buffer,
    BufView,
    Sanitizer,
    SanitizerError,
    SharedBuffer,
)
from repro.sim.compiled import (
    CompiledSchedule,
    CompiledTimes,
    CompileError,
    lower,
    schedule_from_doc,
    schedule_to_doc,
)
from repro.sim.engine import (
    BlockedInfo,
    DeadlockError,
    Engine,
    RankCtx,
    RunResult,
)
from repro.sim.scheduler import (
    ControlledScheduler,
    FifoScheduler,
    SchedulerPolicy,
    StepRecord,
)
from repro.sim.timeline import render_timeline, rank_stats, critical_rank
from repro.sim.trace import AccessEvent, OpRecord, SpanRecord, SyncEvent, Trace

__all__ = [
    "Buffer",
    "BufView",
    "Sanitizer",
    "SanitizerError",
    "SharedBuffer",
    "SchedulerPolicy",
    "FifoScheduler",
    "ControlledScheduler",
    "StepRecord",
    "CompileError",
    "CompiledSchedule",
    "CompiledTimes",
    "lower",
    "schedule_from_doc",
    "schedule_to_doc",
    "Engine",
    "RankCtx",
    "RunResult",
    "BlockedInfo",
    "DeadlockError",
    "AccessEvent",
    "OpRecord",
    "SpanRecord",
    "SyncEvent",
    "Trace",
    "render_timeline",
    "rank_stats",
    "critical_rank",
]
