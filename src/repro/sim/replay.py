"""Trace serialization and schedule comparison.

Traces are the ground truth of what a collective did; persisting them
enables postmortem analysis, cross-version regression diffs, and the
golden-schedule tests (the Figure 6 step table is pinned as a golden
trace).

* :func:`trace_to_json` / :func:`trace_from_json` — lossless round-trip
  of a :class:`~repro.sim.trace.Trace`.
* :func:`schedule_signature` — the order-insensitive *schedule* of a
  trace: per rank, the sequence of (kind, bytes, nt) operations.  Two
  runs of the same algorithm must have equal signatures even if timing
  constants change; a schedule regression (reordered, missing or
  resized operation) changes it.
* :func:`diff_schedules` — human-readable first divergence between two
  signatures.
* :class:`ScheduleCertificate` with
  :func:`certificate_to_json` / :func:`certificate_from_json` — a
  replayable witness schedule produced by the model checker
  (:mod:`repro.analysis.mc`): the minimized forced-choice prefix that
  drives the engine into a failing state, plus what failed there.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import List, Optional

from repro.sim.trace import OpRecord, SpanRecord, Trace

#: schema tag for schedule certificates
CERT_SCHEMA = "repro-schedule/1"

#: every certificate schema version :func:`certificate_from_json` loads
SUPPORTED_CERT_SCHEMAS = (CERT_SCHEMA,)

#: every trace payload version :func:`trace_from_json` loads
SUPPORTED_TRACE_VERSIONS = (1,)

_FIELDS = ("rank", "kind", "nbytes", "src", "dst", "nt", "policy",
           "t_start", "t_end", "tag", "count", "group")

#: fields whose values are (possibly nested) tuples — JSON turns them
#: into lists, so loading re-tuples them to keep round trips lossless
_TUPLE_FIELDS = ("tag", "group")


def _retuple(value):
    if isinstance(value, list):
        return tuple(_retuple(v) for v in value)
    return value


def trace_to_json(trace: Trace, *, indent: Optional[int] = None) -> str:
    """Serialize a trace to JSON (schema: list of record objects).

    Phase spans (``trace.spans``) ride along under a ``spans`` key when
    present, keeping the round trip lossless for span-labelled traces
    while older trace files (no key) still load.
    """
    payload: dict = {
        "version": 1,
        "records": [
            {f: getattr(r, f) for f in _FIELDS} for r in trace
        ],
    }
    if trace.spans:
        payload["spans"] = [asdict(s) for s in trace.spans]
    return json.dumps(payload, indent=indent)


def trace_from_json(text: str) -> Trace:
    """Parse a trace serialized by :func:`trace_to_json`."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError(
            "trace payload must be a JSON object with a 'version' key"
        )
    if payload.get("version") not in SUPPORTED_TRACE_VERSIONS:
        raise ValueError(
            f"unsupported trace schema version "
            f"{payload.get('version')!r}; supported versions: "
            f"{', '.join(str(v) for v in SUPPORTED_TRACE_VERSIONS)}"
        )
    trace = Trace()
    for rec in payload["records"]:
        unknown = set(rec) - set(_FIELDS)
        if unknown:
            raise ValueError(f"unknown trace fields {sorted(unknown)}")
        for f in _TUPLE_FIELDS:
            if f in rec:
                rec[f] = _retuple(rec[f])
        trace.add(OpRecord(**rec))
    for span in payload.get("spans", ()):
        trace.add_span(SpanRecord(**span))
    return trace


def schedule_signature(trace: Trace) -> dict:
    """Per-rank operation sequence, stripped of timing.

    ``{rank: [(kind, nbytes, nt), ...]}`` — equal across runs whose
    *schedules* agree, regardless of machine constants.  ``compute``
    and ``touch`` records are excluded (their presence depends on app
    models, not the collective schedule), as are the synchronization
    records (``post``/``wait``/``barrier``) — the signature tracks data
    movement only.
    """
    sig: dict[int, list] = {}
    for r in trace:
        if r.kind in ("compute", "touch") or r.is_sync:
            continue
        sig.setdefault(r.rank, []).append((r.kind, r.nbytes, bool(r.nt)))
    return sig


@dataclass(frozen=True)
class ScheduleCertificate:
    """A replayable witness: the schedule under which a check failed.

    ``choices`` is a forced-choice prefix for
    :class:`repro.sim.scheduler.ControlledScheduler` — rank to advance
    at each step; past the prefix the replay continues deterministically
    (smallest enabled rank), so the prefix is usually the *minimized*
    part of the schedule and the certificate stays short.  ``failure``
    names the failed check (``divergence`` / ``race`` / ``deadlock`` /
    ``sanitizer`` / ``dav`` / ``error``) and ``detail`` carries its
    human-readable message.

    The engine parameters (``nranks``/``s``/``seed``/``sanitize``) pin
    the exact program the schedule applies to; ``case`` is the analysis
    matrix label (e.g. ``"ma/reduce"``).
    """

    case: str
    collective: str
    kind: str
    nranks: int
    s: int
    choices: List[int] = field(default_factory=list)
    failure: str = ""
    detail: str = ""
    seed: int = 0
    sanitize: bool = False

    def describe(self) -> str:
        return (f"[{self.failure}] {self.case} p={self.nranks} s={self.s}: "
                f"{self.detail}\n  witness schedule "
                f"({len(self.choices)} forced step(s)): {self.choices}")


def certificate_to_json(cert: ScheduleCertificate,
                        *, indent: Optional[int] = 2) -> str:
    """Serialize a schedule certificate (schema ``repro-schedule/1``)."""
    payload = {"schema": CERT_SCHEMA, **asdict(cert)}
    return json.dumps(payload, indent=indent)


def certificate_from_json(text: str) -> ScheduleCertificate:
    """Parse a certificate serialized by :func:`certificate_to_json`."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError(
            "certificate payload must be a JSON object with a "
            "'schema' key"
        )
    schema = payload.pop("schema", None)
    if schema not in SUPPORTED_CERT_SCHEMAS:
        raise ValueError(
            f"unsupported certificate schema {schema!r}; supported "
            f"versions: {', '.join(SUPPORTED_CERT_SCHEMAS)}"
        )
    known = {f for f in ScheduleCertificate.__dataclass_fields__}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown certificate fields {sorted(unknown)}")
    payload["choices"] = [int(c) for c in payload.get("choices", [])]
    return ScheduleCertificate(**payload)


def diff_schedules(a: dict, b: dict) -> Optional[str]:
    """First divergence between two signatures, or ``None`` if equal."""
    ranks = sorted(set(a) | set(b))
    for rank in ranks:
        sa, sb = a.get(rank, []), b.get(rank, [])
        if sa == sb:
            continue
        for i, (xa, xb) in enumerate(zip(sa, sb)):
            if xa != xb:
                return (f"rank {rank} op {i}: {xa} != {xb}")
        return (f"rank {rank}: lengths differ ({len(sa)} vs {len(sb)})")
    return None
