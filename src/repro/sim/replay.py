"""Trace serialization and schedule comparison.

Traces are the ground truth of what a collective did; persisting them
enables postmortem analysis, cross-version regression diffs, and the
golden-schedule tests (the Figure 6 step table is pinned as a golden
trace).

* :func:`trace_to_json` / :func:`trace_from_json` — lossless round-trip
  of a :class:`~repro.sim.trace.Trace`.
* :func:`schedule_signature` — the order-insensitive *schedule* of a
  trace: per rank, the sequence of (kind, bytes, nt) operations.  Two
  runs of the same algorithm must have equal signatures even if timing
  constants change; a schedule regression (reordered, missing or
  resized operation) changes it.
* :func:`diff_schedules` — human-readable first divergence between two
  signatures.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.sim.trace import OpRecord, Trace

_FIELDS = ("rank", "kind", "nbytes", "src", "dst", "nt", "policy",
           "t_start", "t_end", "tag", "count", "group")

#: fields whose values are (possibly nested) tuples — JSON turns them
#: into lists, so loading re-tuples them to keep round trips lossless
_TUPLE_FIELDS = ("tag", "group")


def _retuple(value):
    if isinstance(value, list):
        return tuple(_retuple(v) for v in value)
    return value


def trace_to_json(trace: Trace, *, indent: Optional[int] = None) -> str:
    """Serialize a trace to JSON (schema: list of record objects)."""
    payload = {
        "version": 1,
        "records": [
            {f: getattr(r, f) for f in _FIELDS} for r in trace
        ],
    }
    return json.dumps(payload, indent=indent)


def trace_from_json(text: str) -> Trace:
    """Parse a trace serialized by :func:`trace_to_json`."""
    payload = json.loads(text)
    if payload.get("version") != 1:
        raise ValueError(
            f"unsupported trace version {payload.get('version')!r}"
        )
    trace = Trace()
    for rec in payload["records"]:
        unknown = set(rec) - set(_FIELDS)
        if unknown:
            raise ValueError(f"unknown trace fields {sorted(unknown)}")
        for f in _TUPLE_FIELDS:
            if f in rec:
                rec[f] = _retuple(rec[f])
        trace.add(OpRecord(**rec))
    return trace


def schedule_signature(trace: Trace) -> dict:
    """Per-rank operation sequence, stripped of timing.

    ``{rank: [(kind, nbytes, nt), ...]}`` — equal across runs whose
    *schedules* agree, regardless of machine constants.  ``compute``
    and ``touch`` records are excluded (their presence depends on app
    models, not the collective schedule), as are the synchronization
    records (``post``/``wait``/``barrier``) — the signature tracks data
    movement only.
    """
    sig: dict[int, list] = {}
    for r in trace:
        if r.kind in ("compute", "touch") or r.is_sync:
            continue
        sig.setdefault(r.rank, []).append((r.kind, r.nbytes, bool(r.nt)))
    return sig


def diff_schedules(a: dict, b: dict) -> Optional[str]:
    """First divergence between two signatures, or ``None`` if equal."""
    ranks = sorted(set(a) | set(b))
    for rank in ranks:
        sa, sb = a.get(rank, []), b.get(rank, [])
        if sa == sb:
            continue
        for i, (xa, xb) in enumerate(zip(sa, sb)):
            if xa != xb:
                return (f"rank {rank} op {i}: {xa} != {xb}")
        return (f"rank {rank}: lengths differ ({len(sa)} vs {len(sb)})")
    return None
