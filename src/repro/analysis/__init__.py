"""Happens-before schedule analysis for collective traces.

The fuzzing tests show a collective is schedule-*invariant* — same
result under many interleavings.  This package proves the stronger
property for one traced run: no two conflicting buffer accesses are
unordered under the happens-before relation the schedule's post/wait
and barrier structure induces, no rank can block forever, and the data
volume moved matches the paper's Theorem 3.1 accounting.

Entry points:

* :func:`analyze_trace` — run all checks over an event-traced run;
* :func:`repro.analysis.runner.analyze_collective` — build, run and
  analyze a registered collective (the ``python -m repro analyze``
  backend).

See ``docs/analysis.md`` for the formal model and report format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.dav import DavCheck, check_dav, predicted_dav, traced_dav
from repro.analysis.hb import (
    MAX_REPORTED_RACES,
    Race,
    RaceList,
    StampedAccess,
    find_races,
    race_check,
    stamp_accesses,
)
from repro.analysis.schedule import ScheduleIssue, lint_schedule
from repro.sim.trace import Trace

__all__ = [
    "AnalysisReport",
    "analyze_trace",
    "Race",
    "RaceList",
    "StampedAccess",
    "ScheduleIssue",
    "DavCheck",
    "MAX_REPORTED_RACES",
    "stamp_accesses",
    "find_races",
    "race_check",
    "lint_schedule",
    "check_dav",
    "predicted_dav",
    "traced_dav",
]


@dataclass
class AnalysisReport:
    """Combined verdict of every check over one trace."""

    nranks: int
    races: List[Race] = field(default_factory=list)
    total_races: int = 0
    #: exact per-kind tallies over *all* races, not just the reported
    #: ones — ``{"write-write": n, "read-write": m}``
    race_kinds: dict = field(default_factory=dict)
    issues: List[ScheduleIssue] = field(default_factory=list)
    dav: Optional[DavCheck] = None

    @property
    def deadlocks(self) -> List[ScheduleIssue]:
        return [i for i in self.issues if i.kind == "deadlock"]

    @property
    def ok(self) -> bool:
        return (not self.total_races and not self.issues
                and (self.dav is None or self.dav.ok))

    def describe(self) -> str:
        lines: List[str] = []
        if self.total_races:
            kinds = self.race_kinds or {}
            if not kinds:
                for r in self.races:
                    kinds[r.kind] = kinds.get(r.kind, 0) + 1
            detail = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
            lines.append(f"{self.total_races} race(s) ({detail}):")
            lines += [f"  - {r.describe()}" for r in self.races]
            hidden = self.total_races - len(self.races)
            if hidden > 0:
                lines.append(f"  ... and {hidden} more race(s) not shown "
                             f"(all {self.total_races} counted; raise "
                             f"max_reports to list them)")
        if self.issues:
            lines.append(f"{len(self.issues)} schedule issue(s):")
            lines += [f"  - {i.describe()}" for i in self.issues]
        if self.dav is not None:
            lines.append(self.dav.describe())
        if not lines:
            lines.append("no races, no deadlocks, no schedule issues")
        return "\n".join(lines)


def analyze_trace(trace: Trace, nranks: int, *,
                  dav_kind: Optional[str] = None,
                  dav_algorithm: str = "",
                  s: int = 0, m: int = 2, k: int = 2,
                  max_reports: int = MAX_REPORTED_RACES) -> AnalysisReport:
    """Run race detection, schedule lints and (optionally) the DAV
    cross-check over an event-traced run.

    The trace must come from an ``Engine(..., trace=True)`` run; pass
    ``dav_kind``/``dav_algorithm``/``s`` to also verify the moved bytes
    against the Theorem 3.1 formula for that collective.
    """
    races, total = race_check(trace, nranks, max_reports=max_reports)
    issues = lint_schedule(trace, nranks, races=races)
    dav = None
    if dav_kind is not None:
        dav = check_dav(trace, dav_kind, dav_algorithm, s, nranks, m=m, k=k)
    return AnalysisReport(nranks=nranks, races=races, total_races=total,
                          race_kinds=dict(getattr(races, "kind_totals", {})),
                          issues=issues, dav=dav)
