"""Build, run and analyze registered collectives.

The matrix below mirrors the fuzz targets: every algorithm family the
package implements, each exercised through an event-traced functional
run and handed to :func:`repro.analysis.analyze_trace`.  A clean matrix
means every schedule is race-free, deadlock-free and moves exactly the
bytes its Theorem 3.1 row predicts — the backend of
``python -m repro analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.analysis import AnalysisReport, analyze_trace
from repro.collectives.allgather import PIPELINED_ALLGATHER
from repro.collectives.bcast import PIPELINED_BCAST
from repro.collectives.common import (
    ALIGN,
    run_allgather_collective,
    run_bcast_collective,
    run_reduce_collective,
)
from repro.collectives.ordered import ORDERED_ALLREDUCE, ORDERED_REDUCE
from repro.collectives.vector import run_allgather_v, run_reduce_scatter_v
from repro.library.mpi import ALGORITHMS
from repro.machine.spec import MachineSpec
from repro.sim.engine import DeadlockError, Engine


@dataclass(frozen=True)
class Case:
    """One (collective, kind) cell of the analysis matrix."""

    collective: str  # matrix name, e.g. "ma", "socket_aware"
    kind: str        # reduce_scatter / allreduce / ... / allgather_v
    dav_algorithm: str  # models.dav row name, "" when no table row
    run: Callable[[Engine, int], None]
    k: int = 2       # RG tree branch, forwarded to the DAV formula
    locality: str = ""  # algorithm's placement contract ("socket" =
    # promises socket-local traffic; the static NUMA lint escalates
    # violations to errors)

    @property
    def label(self) -> str:
        return f"{self.collective}/{self.kind}"


@dataclass
class CaseResult:
    """A case's analysis outcome (``error`` captures engine crashes
    other than deadlocks, which the lints report as certificates)."""

    case: Case
    report: AnalysisReport
    deadlocked: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.report.ok and not self.deadlocked and not self.error


def _reduce_runner(alg) -> Callable[[Engine, int], None]:
    def run(eng: Engine, s: int) -> None:
        run_reduce_collective(alg, eng, s, imax=max(512, s // eng.nranks))
    return run


def _ragged_counts(s: int, p: int) -> List[int]:
    """Deterministic non-uniform aligned counts summing to ``s``."""
    weights = [(i % 3) + 1 for i in range(p)]
    units = s // ALIGN
    total_w = sum(weights)
    counts = [units * w // total_w * ALIGN for w in weights]
    counts[0] += s - sum(counts)
    return counts


def _cases() -> List[Case]:
    cases: List[Case] = []
    for name, kinds in ALGORITHMS.items():
        collective = name.replace("socket-ma", "socket_aware")
        if name == "pipelined":
            continue  # bcast/allgather get explicit cases below
        dav_name = "dpml" if name == "dpml2" else name
        for kind, alg in kinds.items():
            k = int(getattr(alg, "branch", 2))
            cases.append(Case(collective, kind, dav_name,
                              _reduce_runner(alg), k=k,
                              locality=str(getattr(alg, "locality", ""))))
    cases.append(Case("bcast", "bcast", "", lambda eng, s:
                      run_bcast_collective(PIPELINED_BCAST, eng, s,
                                           imax=max(512, s // 4))))
    cases.append(Case("allgather", "allgather", "", lambda eng, s:
                      run_allgather_collective(PIPELINED_ALLGATHER, eng, s,
                                               imax=max(512, s // 4))))
    cases.append(Case("ordered", "allreduce", "",
                      _reduce_runner(ORDERED_ALLREDUCE)))
    cases.append(Case("ordered", "reduce", "",
                      _reduce_runner(ORDERED_REDUCE)))
    cases.append(Case("vector", "reduce_scatter_v", "ma", lambda eng, s:
                      run_reduce_scatter_v(eng, _ragged_counts(s,
                                           eng.nranks))))
    cases.append(Case("vector", "allgather_v", "", lambda eng, s:
                      run_allgather_v(eng, _ragged_counts(s, eng.nranks))))
    return cases


def cases(name: str = "all") -> List[Case]:
    """The analysis matrix, filtered to collective ``name`` (or all).

    Shared with :mod:`repro.analysis.mc` so ``verify`` explores exactly
    the programs ``analyze`` certifies.
    """
    matched = [c for c in _cases() if name == "all" or c.collective == name]
    if not matched:
        raise ValueError(
            f"unknown collective {name!r}; choose from {collectives()}"
        )
    return matched


def collectives() -> List[str]:
    """Matrix names accepted by :func:`analyze_collective`."""
    return sorted({c.collective for c in _cases()})


def analyze_collective(name: str, *, machine: Optional[MachineSpec] = None,
                       nranks: int = 8, s: int = 4096,
                       schedule_seed: Optional[int] = None
                       ) -> List[CaseResult]:
    """Trace and analyze every kind of collective ``name``
    (or all collectives for ``name == "all"``)."""
    results = []
    for case in cases(name):
        results.append(_analyze_case(case, machine=machine, nranks=nranks,
                                     s=s, schedule_seed=schedule_seed))
    return results


def _analyze_case(case: Case, *, machine: Optional[MachineSpec],
                  nranks: int, s: int,
                  schedule_seed: Optional[int]) -> CaseResult:
    eng = Engine(nranks, machine=machine, functional=True, trace=True,
                 schedule_seed=schedule_seed)
    deadlocked = False
    error = ""
    try:
        case.run(eng, s)
    except DeadlockError:
        deadlocked = True  # certificates are in the trace's blocked events
    except Exception as exc:  # pragma: no cover - defensive
        error = f"{type(exc).__name__}: {exc}"
    m = machine.sockets if machine is not None else 2
    report = analyze_trace(
        eng.trace, nranks,
        dav_kind=case.kind, dav_algorithm=case.dav_algorithm,
        s=s, m=m, k=case.k,
    )
    return CaseResult(case=case, report=report, deadlocked=deadlocked,
                      error=error)


def render_results(results: List[CaseResult]) -> str:
    """Human-readable multi-case report for the CLI."""
    lines = []
    for res in results:
        status = "OK" if res.ok else "FAIL"
        lines.append(f"[{status}] {res.case.label}")
        if res.error:
            lines.append(f"  engine error: {res.error}")
        body = res.report.describe()
        lines += [f"  {ln}" for ln in body.splitlines()]
    bad = sum(1 for r in results if not r.ok)
    lines.append(f"{len(results)} case(s) analyzed, {bad} failing")
    return "\n".join(lines)
