"""Stateless model checking of collective schedules (DPOR).

PR 1's happens-before analyzer certifies the *one* interleaving the
cooperative engine executed.  This package closes the gap: it re-runs
a collective under a controlled scheduler and explores every
Mazurkiewicz-distinct interleaving (sleep-set + persistent-set dynamic
partial-order reduction), checking functional output equality, race
freedom, the DAV invariant and deadlock/sanitizer cleanliness at each
terminal state.  Failures are minimized to replayable
:class:`~repro.sim.replay.ScheduleCertificate` witnesses.

Entry points: :func:`verify_collective` (the ``python -m repro verify``
backend), :func:`verify_case`, :func:`verify_program` (arbitrary engine
programs, used by the seeded-bug tests) and :func:`replay_certificate`.
See ``docs/analysis.md`` for the equivalence-class model.
"""

from repro.analysis.mc.conflict import data_conflict, dependent, sync_conflict
from repro.analysis.mc.dpor import Explorer, Node
from repro.analysis.mc.verify import (
    DEFAULT_BUDGET,
    Execution,
    ReplayOutcome,
    VerifyCaseResult,
    render_verification,
    replay_certificate,
    verify_case,
    verify_collective,
    verify_program,
)

__all__ = [
    "DEFAULT_BUDGET",
    "Execution",
    "Explorer",
    "Node",
    "ReplayOutcome",
    "VerifyCaseResult",
    "data_conflict",
    "dependent",
    "sync_conflict",
    "render_verification",
    "replay_certificate",
    "verify_case",
    "verify_collective",
    "verify_program",
]
