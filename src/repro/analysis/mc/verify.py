"""Exhaustive schedule verification of registered collectives.

``python -m repro verify`` backend: re-run a collective under the
controlled scheduler, let the DPOR :class:`~repro.analysis.mc.dpor.Explorer`
enumerate every Mazurkiewicz-distinct interleaving, and at each
terminal state check

* **functional output** — the runner's numpy-oracle assertion, plus
  byte equality of *every* engine buffer (scratch and shm included)
  against the first clean execution;
* **freedom from races** — the PR 1 happens-before check, re-run on
  the explored schedule's trace;
* **the DAV invariant** — ``traced_dav`` must be schedule-invariant
  (Theorem 3.1 accounting does not depend on interleaving);
* **no deadlock / sanitizer violation / engine error** anywhere.

The first failing schedule is *minimized* — binary search for the
shortest forced-choice prefix that still reproduces the failure (the
suffix re-runs deterministically) — and reported as a replayable
:class:`~repro.sim.replay.ScheduleCertificate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.analysis.hb import race_check
from repro.analysis.dav import traced_dav
from repro.analysis.mc.dpor import Explorer
from repro.analysis.runner import Case, cases
from repro.sim.buffers import SanitizerError
from repro.sim.engine import DeadlockError, Engine
from repro.sim.replay import ScheduleCertificate
from repro.sim.scheduler import ControlledScheduler, StepRecord

#: default exploration budget per case (schedules, not steps)
DEFAULT_BUDGET = 1000

#: terminal buffer state, keyed by (name, occurrence).  Buffers may be
#: allocated *during* the run (e.g. ring's per-rank scratch), so global
#: allocation order is schedule-dependent; names are per-rank and each
#: rank's allocations follow program order, making the key invariant.
Snapshot = dict


@dataclass
class Execution:
    """One controlled run of the program: schedule, trace, outcome."""

    scheduler: ControlledScheduler
    engine: Engine
    failure: Optional[Tuple[str, str]] = None  # (kind, detail), raised only
    snapshot: Snapshot = field(default_factory=dict)

    @property
    def schedule(self) -> List[int]:
        return self.scheduler.schedule


class _Executor:
    """Build a fresh engine per schedule and run the program under it."""

    def __init__(self, run_fn: Callable[[Engine], None], *, nranks: int,
                 seed: int, sanitize: bool):
        self.run_fn = run_fn
        self.nranks = nranks
        self.seed = seed
        self.sanitize = sanitize
        self.last: Optional[Execution] = None
        #: first clean execution: (buffer snapshot, traced dav)
        self.baseline: Optional[Tuple[Snapshot, float]] = None

    def __call__(self, choices: List[int]) -> List[StepRecord]:
        sched = ControlledScheduler(choices=choices)
        eng = Engine(self.nranks, functional=True, trace=True,
                     seed=self.seed, scheduler=sched,
                     sanitize=self.sanitize)
        exe = Execution(scheduler=sched, engine=eng)
        try:
            self.run_fn(eng)
        except DeadlockError as e:
            exe.failure = ("deadlock", str(e))
        except SanitizerError as e:
            exe.failure = ("sanitizer", str(e))
        except AssertionError as e:
            detail = str(e).strip().splitlines()
            exe.failure = ("divergence",
                           "output differs from the numpy oracle"
                           + (f": {detail[0]}" if detail else ""))
        except Exception as e:  # noqa: BLE001 - each schedule must not kill the search
            exe.failure = ("error", f"{type(e).__name__}: {e}")
        else:
            seen: dict = {}
            for b in eng.buffers:
                occ = seen.get(b.name, 0)
                seen[b.name] = occ + 1
                exe.snapshot[(b.name, occ)] = (
                    b.data.tobytes() if b.data is not None else None
                )
        self.last = exe
        return sched.steps

    # ---- terminal-state classification -----------------------------------

    def classify(self, exe: Execution) -> Optional[Tuple[str, str]]:
        """The first failed check of a completed execution, if any."""
        if exe.failure is not None:
            return exe.failure
        races, total = race_check(exe.engine.trace, self.nranks)
        if total:
            first = races[0].describe() if races else ""
            return ("race", f"{total} race(s) under this schedule; {first}")
        dav = traced_dav(exe.engine.trace)
        if self.baseline is None:
            self.baseline = (exe.snapshot, dav)
            return None
        base_snap, base_dav = self.baseline
        if dav != base_dav:
            return ("dav",
                    f"traced DAV {dav:.0f} differs from canonical "
                    f"{base_dav:.0f} — data volume is schedule-dependent")
        if set(exe.snapshot) != set(base_snap):
            odd = set(exe.snapshot) ^ set(base_snap)
            name = sorted(odd)[0][0]
            return ("divergence",
                    f"buffer allocations differ from the canonical "
                    f"schedule's (e.g. {name})")
        for key in base_snap:
            if exe.snapshot[key] != base_snap[key]:
                return ("divergence",
                        f"final contents of {key[0]} differ from the "
                        f"canonical schedule's")
        return None


@dataclass
class VerifyCaseResult:
    """Verdict of exhaustive exploration of one (collective, kind)."""

    label: str
    collective: str
    kind: str
    nranks: int
    s: int
    schedules: int = 0
    complete: bool = False
    certificate: Optional[ScheduleCertificate] = None

    @property
    def ok(self) -> bool:
        return self.certificate is None

    def describe(self) -> str:
        if self.ok:
            scope = ("all" if self.complete
                     else "budget-capped") + f" {self.schedules} schedule(s)"
            return (f"{self.label}: {scope} explored — 0 races, "
                    f"0 divergences, 0 deadlocks")
        return (f"{self.label}: FAILED after {self.schedules} schedule(s)\n"
                f"  {self.certificate.describe()}")


def verify_program(run_fn: Callable[[Engine], None], *, nranks: int,
                   label: str = "program", collective: str = "",
                   kind: str = "", s: int = 0, seed: int = 12345,
                   sanitize: bool = False,
                   max_schedules: int = DEFAULT_BUDGET) -> VerifyCaseResult:
    """Model-check an arbitrary engine program.

    ``run_fn(engine)`` must build and run the program on the engine it
    is handed (fresh per schedule) and is expected to be deterministic
    up to scheduling.  This is the core loop ``verify_case`` wraps for
    registered collectives; tests use it directly on seeded-bug
    fixtures.
    """
    executor = _Executor(run_fn, nranks=nranks, seed=seed, sanitize=sanitize)
    explorer = Explorer(executor, max_schedules=max_schedules)
    result = VerifyCaseResult(label=label, collective=collective, kind=kind,
                              nranks=nranks, s=s)
    for _ in explorer.run():
        result.schedules = explorer.schedules_run
        exe = executor.last
        verdict = executor.classify(exe)
        if verdict is not None:
            fail_kind, detail = verdict
            witness = _minimize(executor, exe.schedule, fail_kind)
            result.certificate = ScheduleCertificate(
                case=label, collective=collective, kind=kind,
                nranks=nranks, s=s, choices=witness,
                failure=fail_kind, detail=detail, seed=seed,
                sanitize=sanitize,
            )
            return result
    result.schedules = explorer.schedules_run
    result.complete = explorer.complete
    return result


def _fails_same(executor: _Executor, choices: List[int], kind: str) -> bool:
    executor(choices)
    verdict = executor.classify(executor.last)
    return verdict is not None and verdict[0] == kind


def _minimize(executor: _Executor, schedule: List[int], kind: str
              ) -> List[int]:
    """Shortest forced prefix of ``schedule`` reproducing ``kind``.

    The continuation past the prefix is deterministic, so a prefix is a
    complete replay recipe.  Binary search assumes monotonicity (longer
    prefixes of a failing schedule keep failing); if the failure is
    non-monotonic the result is re-validated and falls back to the full
    schedule.
    """
    lo, hi = 0, len(schedule)
    while lo < hi:
        mid = (lo + hi) // 2
        if _fails_same(executor, schedule[:mid], kind):
            hi = mid
        else:
            lo = mid + 1
    if _fails_same(executor, schedule[:hi], kind):
        return schedule[:hi]
    return list(schedule)  # pragma: no cover - non-monotonic failure


def _case_runner(case: Case, s: int) -> Callable[[Engine], None]:
    def run(eng: Engine) -> None:
        case.run(eng, s)
    return run


def verify_case(case: Case, *, nranks: int = 3, s: int = 1024,
                seed: int = 12345, sanitize: bool = False,
                max_schedules: int = DEFAULT_BUDGET) -> VerifyCaseResult:
    """Exhaustively model-check one analysis-matrix case."""
    return verify_program(
        _case_runner(case, s), nranks=nranks, label=case.label,
        collective=case.collective, kind=case.kind, s=s, seed=seed,
        sanitize=sanitize, max_schedules=max_schedules,
    )


def verify_collective(name: str = "all", *, nranks: int = 3, s: int = 1024,
                      seed: int = 12345, sanitize: bool = False,
                      max_schedules: int = DEFAULT_BUDGET
                      ) -> List[VerifyCaseResult]:
    """Model-check every kind of collective ``name`` (or all)."""
    return [
        verify_case(case, nranks=nranks, s=s, seed=seed, sanitize=sanitize,
                    max_schedules=max_schedules)
        for case in cases(name)
    ]


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of re-running a certificate's witness schedule."""

    reproduced: bool
    failure: str
    detail: str

    def describe(self) -> str:
        status = "reproduced" if self.reproduced else "NOT reproduced"
        return f"certificate {status}: [{self.failure}] {self.detail}"


def replay_certificate(cert: ScheduleCertificate) -> ReplayOutcome:
    """Re-run a certificate against the registered collective it names."""
    if not cert.collective:
        raise ValueError(
            f"certificate {cert.case!r} was produced by verify_program on an "
            "ad-hoc program, not a registered collective; re-run it through "
            "verify_program with the same run function"
        )
    matched = [c for c in cases(cert.collective) if c.kind == cert.kind]
    if not matched:
        raise ValueError(
            f"certificate names unknown case {cert.collective}/{cert.kind}"
        )
    executor = _Executor(_case_runner(matched[0], cert.s),
                         nranks=cert.nranks, seed=cert.seed,
                         sanitize=cert.sanitize)
    # baseline for divergence/dav classification: the canonical schedule
    executor([])
    base = executor.classify(executor.last)
    if base is not None and not cert.choices:
        return ReplayOutcome(base[0] == cert.failure, base[0], base[1])
    executor(list(cert.choices))
    verdict = executor.classify(executor.last)
    if verdict is None:
        return ReplayOutcome(False, "", "witness schedule passed all checks")
    return ReplayOutcome(verdict[0] == cert.failure, verdict[0], verdict[1])


def render_verification(results: List[VerifyCaseResult]) -> str:
    """Human-readable multi-case verification report for the CLI."""
    lines = []
    for res in results:
        status = "OK" if res.ok else "FAIL"
        body = res.describe().splitlines()
        lines.append(f"[{status}] {body[0]}")
        lines += [f"  {ln}" for ln in body[1:]]
    bad = sum(1 for r in results if not r.ok)
    lines.append(f"{len(results)} case(s) verified, {bad} failing")
    return "\n".join(lines)
