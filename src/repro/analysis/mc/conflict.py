"""The dependence relation between scheduler steps.

DPOR explores one representative per *Mazurkiewicz trace* — the
equivalence class of interleavings reachable from each other by
swapping adjacent **independent** steps.  Two steps commute (are
independent) iff executing them in either order reaches the same state
and leaves both enabled; everything the checker prunes rests on this
relation, so it must over-approximate true dependence, never under.

A step (:class:`~repro.sim.scheduler.StepRecord`) is one rank's
execution from its resume point to its next yield, carrying the byte
ranges its data ops touched and the sync tags it posted/consumed.
Steps are **dependent** when any of:

* same rank — program order is never commutable;
* data conflict — overlapping byte ranges of one buffer, at least one
  side writing (the same conflict relation PR 1's happens-before
  analyzer races on);
* post/wait on the same tag — reordering changes whether the wait is
  satisfiable at that point;
* post/post on the same tag — conservative: waits match the first
  ``count`` posts, so post order is observable through matched
  snapshots (the timing model reads each matched post's clock).

Wait/wait pairs and barrier arrivals commute: waits consume nothing
and barrier completion joins all members regardless of arrival order.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.sim.scheduler import StepRecord

Range = Tuple[int, int, int]  # (buf_id, off, end)


def ranges_overlap(a: Iterable[Range], b: Iterable[Range]) -> bool:
    """Any byte shared between the two range sets (same buffer)."""
    for buf_a, lo_a, hi_a in a:
        for buf_b, lo_b, hi_b in b:
            if buf_a == buf_b and lo_a < hi_b and lo_b < hi_a:
                return True
    return False


def data_conflict(a: StepRecord, b: StepRecord) -> bool:
    """Overlapping accesses with at least one write."""
    return (
        ranges_overlap(a.writes, b.writes)
        or ranges_overlap(a.writes, b.reads)
        or ranges_overlap(a.reads, b.writes)
    )


def sync_conflict(a: StepRecord, b: StepRecord) -> bool:
    """Post/wait or post/post on a shared tag."""
    pa, wa = set(a.posts), set(a.waits)
    pb, wb = set(b.posts), set(b.waits)
    return bool((pa & wb) or (pb & wa) or (pa & pb))


def dependent(a: StepRecord, b: StepRecord) -> bool:
    """The DPOR dependence relation (see module docstring)."""
    if a.rank == b.rank:
        return True
    return data_conflict(a, b) or sync_conflict(a, b)
