"""Stateless DPOR exploration over the controlled engine scheduler.

Classic dynamic partial-order reduction (Flanagan & Godefroid, POPL'05)
with sleep sets, adapted to re-execution: the explored object is a
*schedule* — a forced-choice prefix handed to
:class:`~repro.sim.scheduler.ControlledScheduler`, past which the run
continues deterministically (smallest enabled rank).  The engine's rank
programs are deterministic generators, so replaying a prefix always
reconstructs the same intermediate state; no state snapshotting is
needed.

Per executed schedule the explorer:

1. merges the step list into the exploration tree path (each
   :class:`Node` is the state before its step, holding the enabled
   set, the explored-children set, the DPOR backtrack set and the
   sleep set);
2. runs the race scan — for every step ``i`` by rank ``p``, find the
   last earlier step ``j`` of another rank **dependent** with it
   (:func:`~repro.analysis.mc.conflict.dependent`); add ``p`` to
   ``backtrack(pre(j))`` when ``p`` was enabled there, else
   conservatively add the whole enabled set (the persistent-set
   fallback);
3. picks the deepest node with an unexplored, non-sleeping backtrack
   candidate, truncates, and re-executes with the new prefix.

Sleep sets (Godefroid) prune re-exploration of commuting siblings:
a child inherits its parent's sleeping transitions plus the parent's
already-explored choices, minus any transition dependent with the step
just taken.  A sleeping rank is never picked as a backtrack candidate.
Sleeping transitions carry the footprint recorded when they were first
explored — sound because a never-rescheduled rank's generator hasn't
moved, so its next transition is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.mc.conflict import dependent
from repro.sim.scheduler import StepRecord


@dataclass
class Node:
    """One state on the current exploration path (before its step)."""

    index: int
    enabled: Tuple[int, ...]
    choice: int = -1
    #: ranks whose subtree from this node is fully explored
    done: Set[int] = field(default_factory=set)
    #: DPOR backtrack set — ranks that must eventually be tried here
    backtrack: Set[int] = field(default_factory=set)
    #: sleeping transitions: rank -> footprint when it went to sleep
    sleep: Dict[int, StepRecord] = field(default_factory=dict)
    #: footprint of each rank's step when executed *from this node*
    fps: Dict[int, StepRecord] = field(default_factory=dict)

    def candidates(self) -> Set[int]:
        return (self.backtrack - self.done - set(self.sleep)) & set(
            self.enabled
        )


class Explorer:
    """Enumerate DPOR-distinct schedules of a deterministic program.

    ``execute(choices)`` must re-run the program under a fresh engine
    with the given forced prefix and return the resulting step list
    (``ControlledScheduler.steps``).  :meth:`run` yields the choice
    prefix of every schedule actually executed; :attr:`complete` tells
    whether the search space was exhausted within ``max_schedules``.
    """

    def __init__(self, execute: Callable[[List[int]], Sequence[StepRecord]],
                 *, max_schedules: int = 0):
        self._execute = execute
        self.max_schedules = max_schedules
        self.schedules_run = 0
        self.complete = False
        self.path: List[Node] = []

    def run(self) -> Iterator[List[int]]:
        choices: List[int] = []
        while True:
            if self.max_schedules and self.schedules_run >= self.max_schedules:
                self.complete = False
                return
            steps = list(self._execute(list(choices)))
            self.schedules_run += 1
            self._merge(steps)
            self._scan_races(steps)
            yield list(choices)
            nxt = self._next_backtrack()
            if nxt is None:
                self.complete = True
                return
            i, q = nxt
            del self.path[i + 1:]
            choices = [self.path[k].choice for k in range(i)] + [q]

    # ---- tree maintenance -------------------------------------------------

    def _merge(self, steps: Sequence[StepRecord]) -> None:
        """Fold an executed step list into the path.

        Nodes up to the forced prefix already exist (re-execution
        reconstructs the same states); the suffix creates new nodes,
        computing each child's sleep set from its parent.
        """
        for j, s in enumerate(steps):
            if j < len(self.path):
                node = self.path[j]
                if node.enabled != s.enabled:  # pragma: no cover - guard
                    raise RuntimeError(
                        f"non-deterministic replay at step {j}: enabled "
                        f"{node.enabled} became {s.enabled}"
                    )
            else:
                node = Node(index=j, enabled=s.enabled,
                            sleep=self._child_sleep(j, steps))
                self.path.append(node)
            node.choice = s.rank
            node.done.add(s.rank)
            node.fps[s.rank] = s
            # every execution must eventually try some sibling here;
            # seeding with the executed choice makes the node's own
            # exploration state explicit
            node.backtrack.add(s.rank)

    def _child_sleep(self, j: int, steps: Sequence[StepRecord]
                     ) -> Dict[int, StepRecord]:
        if j == 0:
            return {}
        parent = self.path[j - 1]
        taken = steps[j - 1]
        carried: Dict[int, StepRecord] = dict(parent.sleep)
        for r in parent.done:
            if r != taken.rank and r in parent.fps:
                carried[r] = parent.fps[r]
        return {r: fp for r, fp in carried.items()
                if not dependent(fp, taken)}

    def _scan_races(self, steps: Sequence[StepRecord]) -> None:
        for i, s in enumerate(steps):
            for j in range(i - 1, -1, -1):
                t = steps[j]
                if t.rank == s.rank or not dependent(t, s):
                    continue
                node = self.path[j]
                if s.rank in node.enabled:
                    node.backtrack.add(s.rank)
                else:
                    node.backtrack.update(node.enabled)
                break

    def _next_backtrack(self) -> Optional[Tuple[int, int]]:
        for i in range(len(self.path) - 1, -1, -1):
            cands = self.path[i].candidates()
            if cands:
                return i, min(cands)
        return None
