"""Schedule lints: deadlock certificates, tag hygiene, barrier and
window-slot discipline.

These checks complement the happens-before race detector: a race says
*these two operations are unordered*; a lint says *why* — a wait that
can never be satisfied, a flag tag recycled while stale posts survive,
mismatched barrier groups, or a shared-memory window slot overwritten
before its consumer finished reading.

All lints run over the structured event stream an event-traced
:class:`~repro.sim.engine.Engine` produces (see
:mod:`repro.sim.trace`); a deadlocked run leaves ``blocked`` events in
the trace before :class:`~repro.sim.engine.DeadlockError` propagates,
so its certificate survives for offline analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.hb import Race
from repro.sim.trace import SyncEvent, Trace


@dataclass(frozen=True)
class ScheduleIssue:
    """One lint finding.

    ``kind`` is one of ``deadlock``, ``barrier-group-mismatch``,
    ``tag-reuse``, ``unmatched-post-ref``, ``slot-overwrite``.
    """

    kind: str
    message: str
    rank: int = -1
    tag: object = None
    group: tuple = ()

    def describe(self) -> str:
        return f"[{self.kind}] {self.message}"


def lint_schedule(trace: Trace, nranks: int,
                  races: Optional[Sequence[Race]] = None
                  ) -> List[ScheduleIssue]:
    """Run every schedule lint over a trace's event stream."""
    events = [e for e in trace.events if isinstance(e, SyncEvent)]
    issues: List[ScheduleIssue] = []
    issues += _deadlock_certificates(events)
    issues += _barrier_group_mismatches(events)
    issues += _tag_reuse(events)
    issues += _unmatched_post_refs(events)
    if races:
        issues += _slot_overwrites(races)
    return issues


def _deadlock_certificates(events: Sequence[SyncEvent]
                           ) -> List[ScheduleIssue]:
    """``blocked`` events are unsatisfiable waits/barriers: the engine
    emits one per stuck rank immediately before raising
    :class:`~repro.sim.engine.DeadlockError`."""
    out = []
    for ev in events:
        if ev.kind != "blocked":
            continue
        out.append(
            ScheduleIssue(
                kind="deadlock",
                message=ev.detail or ev.describe(),
                rank=ev.rank,
                tag=ev.tag,
                group=ev.group,
            )
        )
    return out


def _barrier_group_mismatches(events: Sequence[SyncEvent]
                              ) -> List[ScheduleIssue]:
    """Blocked barriers whose groups overlap without being equal: two
    ranks each rendezvous with a group containing the other, but they
    named different groups — the classic split-barrier bug."""
    blocked_barriers = [e for e in events
                       if e.kind == "blocked" and e.group]
    out = []
    for i, a in enumerate(blocked_barriers):
        for b in blocked_barriers[i + 1:]:
            ga, gb = set(a.group), set(b.group)
            if ga != gb and (ga & gb):
                out.append(
                    ScheduleIssue(
                        kind="barrier-group-mismatch",
                        message=(
                            f"rank {a.rank} is in barrier{a.group} while "
                            f"rank {b.rank} is in barrier{b.group}: the "
                            f"groups overlap on ranks "
                            f"{tuple(sorted(ga & gb))} but are not equal"
                        ),
                        rank=a.rank,
                        group=a.group,
                    )
                )
    return out


def _tag_reuse(events: Sequence[SyncEvent]) -> List[ScheduleIssue]:
    """A post of tag ``T`` *after* a wait on ``T`` was already released.

    Waits are non-consuming, so a recycled tag cannot distinguish fresh
    posts from stale ones: a later ``wait(T, n)`` may be satisfied by
    posts from a previous step and release before its real dependency
    executed.  Correct schedules make tags unique per step (the engine
    docs mandate step indices in tags); this lint catches violations
    even when the concrete schedule happened to produce a correct
    result.  Run boundaries reset the tracking — the engine clears all
    posts between runs.
    """
    out = []
    first_wait: dict = {}
    reported: set = set()
    for ev in events:
        if ev.kind == "run_start":
            first_wait.clear()
            continue
        if ev.kind == "wait":
            first_wait.setdefault(ev.tag, ev.seq)
        elif ev.kind == "post":
            w = first_wait.get(ev.tag)
            if w is not None and ev.tag not in reported:
                reported.add(ev.tag)
                out.append(
                    ScheduleIssue(
                        kind="tag-reuse",
                        message=(
                            f"rank {ev.rank} posts {ev.tag!r} after a wait "
                            f"on that tag was already released (event "
                            f"#{w}); stale posts can satisfy later waits "
                            f"— make the tag unique per step"
                        ),
                        rank=ev.rank,
                        tag=ev.tag,
                    )
                )
    return out


def _unmatched_post_refs(events: Sequence[SyncEvent]
                         ) -> List[ScheduleIssue]:
    """A wait whose matched-post references are missing from the trace
    — only possible for truncated or hand-built traces, but it would
    silently weaken the happens-before construction, so it is an
    analysis error rather than a silent pass."""
    post_seqs = {e.seq for e in events if e.kind == "post"}
    out = []
    for ev in events:
        if ev.kind != "wait":
            continue
        missing = [p for p in ev.matched if p not in post_seqs]
        if missing:
            out.append(
                ScheduleIssue(
                    kind="unmatched-post-ref",
                    message=(
                        f"wait({ev.tag!r}) on rank {ev.rank} references "
                        f"post events {missing} that are not in the trace "
                        f"(truncated trace?)"
                    ),
                    rank=ev.rank,
                    tag=ev.tag,
                )
            )
    return out


def _slot_overwrites(races: Sequence[Race]) -> List[ScheduleIssue]:
    """Races on *shared* buffers where a write follows an unordered
    read or write by another rank — the window-slot discipline bug: a
    producer recycled a slot before its ``consumed`` flag (or the
    bracketing barrier) ordered the previous round's readers first."""
    out = []
    for race in races:
        if not race.shared or race.second.mode != "w":
            continue
        verb = ("read" if race.first.mode == "r" else "wrote")
        lo, hi = race.overlap
        out.append(
            ScheduleIssue(
                kind="slot-overwrite",
                message=(
                    f"rank {race.second.rank} overwrites "
                    f"{race.buf_name}[{lo}, {hi}) while rank "
                    f"{race.first.rank}'s unordered access that {verb} it "
                    f"may still be in flight — recycle the slot only "
                    f"after its consumed flag or a bracketing barrier"
                ),
                rank=race.second.rank,
            )
        )
    return out
