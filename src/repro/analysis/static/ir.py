"""The schedule IR: a static op-dependency DAG for one collective.

Everything the dynamic tooling re-derives by executing the engine —
happens-before order, buffer footprints, synchronization structure,
data-access volume — is a property of the *schedule shape*.  The IR
captures that shape once, as a directed acyclic graph:

* :class:`OpNode` — one engine operation (copy / reduce / touch /
  compute, or a sync: post / wait / barrier).  Data nodes carry their
  byte-range :class:`Footprint`\\ s; sync nodes carry the structured
  ``tag``/``count``/``group`` metadata.  A *pending* sync node is one
  that never released (lifted from a deadlocked run's ``blocked``
  certificate events).
* :class:`Edge` — ``po`` (program order within a rank, and barrier
  join/fan-out), or ``sync`` (a matched post → wait release).
* :class:`BufferInfo` — identity, size, sharedness, NUMA home and
  initialization state of every buffer the schedule touches.

The static passes (:mod:`repro.analysis.static.passes`) consume this
graph; the extractor (:mod:`repro.analysis.static.extract`) builds it
from one traced run or a ``repro-schedule/1`` certificate.  The IR is
also the input format the compiled-schedule engine (ROADMAP item 1)
replays without coroutine scheduling.

Serialization is schema ``repro-ir/1``; IRs are content-addressed the
same way :mod:`repro.bench.cache` keys benchmark cells (SHA-256 over
the canonical-JSON descriptor, including the ``repro`` source version).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: schema tag for serialized IRs
IR_SCHEMA = "repro-ir/1"

#: every schema version :func:`ir_from_json` can load
SUPPORTED_IR_SCHEMAS = (IR_SCHEMA,)

#: node kinds carrying data footprints
DATA_KINDS = ("copy", "reduce_acc", "reduce_out", "compute", "touch")

#: node kinds carrying synchronization structure
SYNC_KINDS = ("post", "wait", "barrier")


@dataclass(frozen=True)
class Footprint:
    """One byte range ``[off, off+nbytes)`` of one buffer."""

    buf: int  # index into ScheduleIR.buffers
    off: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.off + self.nbytes

    def overlaps(self, other: "Footprint") -> bool:
        return (self.buf == other.buf
                and self.off < other.end and other.off < self.end)


@dataclass(frozen=True)
class BufferInfo:
    """Identity and placement of one buffer the schedule touches.

    ``initialized`` records whether the allocation produced defined
    contents (a fill or random payload); reads of never-written bytes
    of an uninitialized buffer are what the uninit-read pass flags.
    ``home_socket`` is the declared NUMA home (``None`` for shared
    segments, which are first-touch homed — the locality pass derives
    per-range homes from the first writer).
    """

    buf: int
    name: str
    nbytes: int
    shared: bool = False
    owner: int = -1
    home_socket: int = -1
    initialized: bool = False


@dataclass(frozen=True)
class OpNode:
    """One operation of the schedule.

    ``rank`` is ``-1`` for barrier join nodes (they belong to every
    member of ``group``).  ``t_start``/``t_end`` carry the extraction
    run's simulated interval when a machine model was attached (all
    zero otherwise); static passes must not depend on them for
    correctness conclusions, only for reporting.
    """

    node: int
    rank: int
    kind: str
    nbytes: int = 0
    nt: bool = False
    reads: Tuple[Footprint, ...] = ()
    writes: Tuple[Footprint, ...] = ()
    tag: object = None
    count: int = 0
    group: Tuple[int, ...] = ()
    arrived: Tuple[int, ...] = ()
    pending: bool = False
    t_start: float = 0.0
    t_end: float = 0.0

    @property
    def is_sync(self) -> bool:
        return self.kind in SYNC_KINDS

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def describe(self) -> str:
        if self.kind == "barrier":
            state = " PENDING" if self.pending else ""
            return f"#{self.node} barrier{self.group}{state}"
        if self.kind in ("post", "wait"):
            arg = f"{self.tag!r}"
            if self.kind == "wait":
                arg += f", count={self.count}"
            state = " PENDING" if self.pending else ""
            return f"#{self.node} rank {self.rank} {self.kind}({arg}){state}"
        return (f"#{self.node} rank {self.rank} {self.kind} "
                f"{self.nbytes} B")


@dataclass(frozen=True)
class Edge:
    """A dependency: ``src`` must complete before ``dst`` starts.

    ``kind`` is ``"po"`` (program order, including barrier join and
    fan-out edges) or ``"sync"`` (a matched post → wait release).
    """

    src: int
    dst: int
    kind: str = "po"


class IRValidationError(ValueError):
    """The IR is structurally broken (dangling refs, bad ranges)."""


class IRSchemaError(ValueError):
    """A serialized IR's schema version is missing or unsupported.

    The IR analogue of :class:`repro.sim.compiled.ScheduleSchemaError`:
    loading a document written by a future (or corrupted) version must
    fail up front naming the supported versions, not crash downstream
    with an opaque field error.
    """


class ScheduleIR:
    """The static op-dependency DAG of one collective schedule.

    ``meta`` is a JSON-safe dict; the extractor populates (at least)
    ``label``, ``collective``, ``kind``, ``dav_algorithm``, ``nranks``,
    ``s``, ``m``, ``k``, ``machine`` (a constants sub-dict or ``None``),
    ``sim_time``, ``deadlocked``, ``error`` and ``counters`` (the
    ``repro-obs/1`` snapshot of the extraction run).
    """

    def __init__(self, *, meta: Optional[dict] = None,
                 buffers: Iterable[BufferInfo] = (),
                 nodes: Iterable[OpNode] = (),
                 edges: Iterable[Edge] = ()):
        self.meta: dict = dict(meta or {})
        self.buffers: List[BufferInfo] = list(buffers)
        self.nodes: List[OpNode] = list(nodes)
        self.edges: List[Edge] = list(edges)
        self._succs: Optional[List[List[int]]] = None
        self._preds: Optional[List[List[int]]] = None
        self._topo: Optional[List[int]] = None
        self._ancestors: Optional[List[int]] = None

    # ---- structure ---------------------------------------------------

    @property
    def nranks(self) -> int:
        return int(self.meta.get("nranks", 0))

    def __len__(self) -> int:
        return len(self.nodes)

    def _invalidate(self) -> None:
        self._succs = self._preds = None
        self._topo = self._ancestors = None

    def add_node(self, node: OpNode) -> int:
        self.nodes.append(node)
        # bulk construction (the trace extractor adds tens of
        # thousands of nodes) never materializes the caches, so only
        # invalidate when something was actually derived
        if self._succs is not None or self._topo is not None:
            self._invalidate()
        return node.node

    def add_edge(self, src: int, dst: int, kind: str = "po") -> None:
        self.edges.append(Edge(src, dst, kind))
        if self._succs is not None or self._topo is not None:
            self._invalidate()

    def succs(self) -> List[List[int]]:
        if self._succs is None:
            self._succs = [[] for _ in self.nodes]
            self._preds = [[] for _ in self.nodes]
            for e in self.edges:
                self._succs[e.src].append(e.dst)
                self._preds[e.dst].append(e.src)
        return self._succs

    def preds(self) -> List[List[int]]:
        self.succs()
        assert self._preds is not None
        return self._preds

    def by_kind(self, kind: str) -> List[OpNode]:
        return [n for n in self.nodes if n.kind == kind]

    def validate(self) -> None:
        """Structural checks: ids dense and in order, edge endpoints
        and footprint buffers resolvable.  Footprint *ranges* are a
        pass concern (a hand-built IR with an out-of-range footprint
        must load so the bounds pass can flag it)."""
        for i, n in enumerate(self.nodes):
            if n.node != i:
                raise IRValidationError(
                    f"node ids must be dense and ordered: position {i} "
                    f"holds node {n.node}"
                )
            for fp in n.reads + n.writes:
                if not (0 <= fp.buf < len(self.buffers)):
                    raise IRValidationError(
                        f"node #{i} references unknown buffer {fp.buf}"
                    )
        nn = len(self.nodes)
        for e in self.edges:
            if not (0 <= e.src < nn and 0 <= e.dst < nn):
                raise IRValidationError(
                    f"edge {e.src}->{e.dst} references unknown nodes"
                )

    # ---- order -------------------------------------------------------

    def find_cycle(self) -> Optional[List[int]]:
        """A dependency cycle (node ids, in order), or ``None``.

        A schedule whose dependency graph has a cycle can never
        complete — the static form of a deadlock.
        """
        succs = self.succs()
        WHITE, GREY, BLACK = 0, 1, 2
        color = [WHITE] * len(self.nodes)
        parent: Dict[int, int] = {}
        for root in range(len(self.nodes)):
            if color[root] != WHITE:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            color[root] = GREY
            while stack:
                v, i = stack[-1]
                if i < len(succs[v]):
                    stack[-1] = (v, i + 1)
                    w = succs[v][i]
                    if color[w] == GREY:
                        cycle = [w, v]
                        u = v
                        while u != w:
                            u = parent[u]
                            cycle.append(u)
                        cycle.reverse()
                        return cycle[:-1]
                    if color[w] == WHITE:
                        color[w] = GREY
                        parent[w] = v
                        stack.append((w, 0))
                else:
                    color[v] = BLACK
                    stack.pop()
        return None

    def toposort(self) -> List[int]:
        """Topological node order; raises on cyclic IRs."""
        if self._topo is None:
            indeg = [0] * len(self.nodes)
            succs = self.succs()
            for e in self.edges:
                indeg[e.dst] += 1
            ready = sorted(i for i, d in enumerate(indeg) if d == 0)
            out: List[int] = []
            import heapq

            heapq.heapify(ready)
            while ready:
                v = heapq.heappop(ready)
                out.append(v)
                for w in succs[v]:
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        heapq.heappush(ready, w)
            if len(out) != len(self.nodes):
                cycle = self.find_cycle() or []
                raise IRValidationError(
                    f"schedule IR has a dependency cycle: "
                    f"{' -> '.join(str(n) for n in cycle)}"
                )
            self._topo = out
        return self._topo

    def ancestors(self) -> List[int]:
        """Per-node ancestor sets as bitmasks: bit ``a`` of
        ``ancestors()[b]`` means ``a`` happens-before ``b``.

        This is the static happens-before relation: the transitive
        closure of program-order and sync edges.
        """
        if self._ancestors is None:
            anc = [0] * len(self.nodes)
            preds = self.preds()
            for v in self.toposort():
                acc = 0
                for p in preds[v]:
                    acc |= anc[p] | (1 << p)
                anc[v] = acc
            self._ancestors = anc
        return self._ancestors

    def happens_before(self, a: int, b: int) -> bool:
        return bool(self.ancestors()[b] >> a & 1)

    def ordered(self, a: int, b: int) -> bool:
        """True iff some dependency path orders ``a`` and ``b``."""
        return self.happens_before(a, b) or self.happens_before(b, a)

    # ---- accounting ---------------------------------------------------

    def static_dav(self) -> float:
        """Theorem 3.1 accounting over the DAG: ``2n`` bytes per copy,
        ``3n`` per reduce — byte-identical to
        :func:`repro.analysis.dav.traced_dav` on the source trace."""
        total = 0.0
        for n in self.nodes:
            if n.kind == "copy":
                total += 2.0 * n.nbytes
            elif n.kind.startswith("reduce"):
                total += 3.0 * n.nbytes
        return total

    def signature(self) -> dict:
        """Stable shape summary, used by the golden-IR snapshot tests.

        Deliberately machine- and timing-free: node/edge census per
        kind, per-rank data-op counts, sync structure and the static
        DAV.  Any schedule regression (reordered, missing, resized or
        duplicated operation) changes it; timing-constant or machine
        changes do not.
        """
        node_kinds: Dict[str, int] = {}
        per_rank: Dict[str, int] = {}
        for n in self.nodes:
            node_kinds[n.kind] = node_kinds.get(n.kind, 0) + 1
            if n.kind in DATA_KINDS:
                key = str(n.rank)
                per_rank[key] = per_rank.get(key, 0) + 1
        edge_kinds: Dict[str, int] = {}
        for e in self.edges:
            edge_kinds[e.kind] = edge_kinds.get(e.kind, 0) + 1
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "node_kinds": dict(sorted(node_kinds.items())),
            "edge_kinds": dict(sorted(edge_kinds.items())),
            "data_ops_per_rank": dict(sorted(per_rank.items())),
            "buffers": len(self.buffers),
            "pending": sum(1 for n in self.nodes if n.pending),
            "static_dav": self.static_dav(),
        }

    def key(self) -> str:
        """Content address of this IR (SHA-256, hex).

        Keyed exactly like :mod:`repro.bench.cache` cells: the
        canonical-JSON document plus the ``repro`` source version, so
        any change to the package (which could change extraction)
        yields a fresh key while re-extractions of one schedule shape
        under one source tree collide — the property compiled-schedule
        reuse (ROADMAP item 1) needs.
        """
        from repro.bench.cache import descriptor_key, source_version

        return descriptor_key({
            "schema": IR_SCHEMA,
            "source": source_version(),
            "doc": _to_payload(self),
        })


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

#: fields whose values are (possibly nested) tuples — JSON turns them
#: into lists, so loading re-tuples them (shared idiom with
#: :mod:`repro.sim.replay`)
_NODE_TUPLE_FIELDS = ("tag", "group", "arrived")


def _retuple(value):
    if isinstance(value, list):
        return tuple(_retuple(v) for v in value)
    return value


def _to_payload(ir: ScheduleIR) -> dict:
    def node_dict(n: OpNode) -> dict:
        d = asdict(n)
        d["reads"] = [[fp.buf, fp.off, fp.nbytes] for fp in n.reads]
        d["writes"] = [[fp.buf, fp.off, fp.nbytes] for fp in n.writes]
        d["group"] = list(n.group)
        d["arrived"] = list(n.arrived)
        return d

    return {
        "meta": ir.meta,
        "buffers": [asdict(b) for b in ir.buffers],
        "nodes": [node_dict(n) for n in ir.nodes],
        "edges": [[e.src, e.dst, e.kind] for e in ir.edges],
    }


def ir_to_json(ir: ScheduleIR, *, indent: Optional[int] = None) -> str:
    """Serialize an IR (schema ``repro-ir/1``)."""
    payload = {"schema": IR_SCHEMA, **_to_payload(ir)}
    return json.dumps(payload, indent=indent, sort_keys=True)


def ir_from_json(text: str) -> ScheduleIR:
    """Parse an IR serialized by :func:`ir_to_json`.

    Unknown schema versions are rejected up front with an
    :class:`IRSchemaError` naming the supported versions; malformed
    JSON raises :class:`IRSchemaError` too (the document is not an IR
    at any version).
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise IRSchemaError(
            f"schedule-IR document is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise IRSchemaError(
            "schedule-IR document must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema not in SUPPORTED_IR_SCHEMAS:
        raise IRSchemaError(
            f"unsupported schedule-IR schema {schema!r}; supported "
            f"versions: {', '.join(SUPPORTED_IR_SCHEMAS)}"
        )
    known_node = {f for f in OpNode.__dataclass_fields__}
    nodes = []
    for nd in payload.get("nodes", ()):
        unknown = set(nd) - known_node
        if unknown:
            raise ValueError(f"unknown IR node fields {sorted(unknown)}")
        nd = dict(nd)
        nd["reads"] = tuple(Footprint(*fp) for fp in nd.get("reads", ()))
        nd["writes"] = tuple(Footprint(*fp) for fp in nd.get("writes", ()))
        for f in _NODE_TUPLE_FIELDS:
            if f in nd:
                nd[f] = _retuple(nd[f])
        nodes.append(OpNode(**nd))
    buffers = [BufferInfo(**b) for b in payload.get("buffers", ())]
    edges = [Edge(src, dst, kind) for src, dst, kind
             in payload.get("edges", ())]
    ir = ScheduleIR(meta=payload.get("meta", {}), buffers=buffers,
                    nodes=nodes, edges=edges)
    ir.validate()
    return ir
