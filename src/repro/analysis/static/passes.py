"""The static analysis passes.

Each pass reads one :class:`~repro.analysis.static.ir.ScheduleIR` and
emits :class:`~repro.analysis.static.report.Finding`\\ s; none of them
execute anything.  The default pipeline (:data:`DEFAULT_PASSES`):

* :class:`ExtractionPass` — surfaces extraction-time engine errors
  (e.g. an out-of-bounds sub-slice aborts the run before any access is
  recorded; the error string is the finding).
* :class:`DeadlockPass` — dependency cycles, unsatisfiable pending
  waits (fewer posts of the tag exist in the whole schedule than the
  wait requires) and incomplete barriers.  The static mirror of the
  engine's deadlock diagnosis and the DPOR checker's verdict.
* :class:`StaticDavPass` — Theorem 3.1 data-access volume summed over
  the DAG, pinned byte-exactly against the closed-form row in
  :mod:`repro.models.dav` *and* against the extraction run's obs
  counters.
* :class:`BufferPass` — footprint bounds, unordered overlapping
  accesses (the static form of the happens-before race check: two
  conflicting footprints with no dependency path between their nodes)
  and uninitialized-read reachability (a read of a never-filled buffer
  not fully covered by happens-before-ordered writes — the static form
  of the shadow-memory sanitizer).
* :class:`LocalityPass` — cache-line false sharing (distinct ranks
  concurrently writing disjoint bytes of one line) and NUMA placement
  (the fraction of accessed bytes homed on a remote socket, judged
  against :data:`NUMA_CROSS_THRESHOLD`; algorithms declaring
  ``locality = "socket"`` escalate a violation to an error).
* :class:`CriticalPathPass` — the longest dependency path weighted
  with :func:`repro.models.timing.static_op_time`: a completion-time
  lower bound no schedule of this DAG can beat, reported against the
  engine-simulated time.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.dav import REL_TOL, predicted_dav
from repro.analysis.static.ir import IRValidationError, ScheduleIR
from repro.analysis.static.report import Finding, Report
from repro.machine.spec import socket_of_rank_meta
from repro.models.timing import static_op_time

#: flag a schedule when more than this fraction of its accessed bytes
#: live on a remote socket.  Calibrated on the registered matrix at
#: p=4 on NodeA: the socket-aware MA variants stay at 0.08-0.17 (one
#: cross-socket combine of the per-socket partials) and the
#: neighbor-structured algorithms (ring, rabenseifner, dpml, rg) at
#: 0.10-0.17, while the naive flat baselines — plain MA, ordered,
#: vector — have every rank reducing into one shared region and sit
#: at 0.31-0.35.
NUMA_CROSS_THRESHOLD = 0.25

#: the critical-path bound uses the first-order per-op cost model
#: (repro.models.timing), not the engine's memory-level simulation; on
#: schedules with no sync slack (e.g. p=1, a single copy) the two can
#: differ by a few percent without either being wrong.  Flag
#: inconsistency only beyond this relative model tolerance.
CP_REL_TOL = 0.05

#: cap per-code finding spam; the remainder is summarized
MAX_REPORTED = 8


class Pass:
    """Base class: ``run(ir)`` returns this pass's findings."""

    name = ""
    #: finding codes this pass can emit (documentation + tests)
    codes: Tuple[str, ...] = ()

    def run(self, ir: ScheduleIR) -> List[Finding]:
        raise NotImplementedError

    def _finding(self, ir: ScheduleIR, code: str, severity: str,
                 message: str, *, nodes: Tuple[int, ...] = (),
                 data: Optional[dict] = None) -> Finding:
        return Finding(code=code, severity=severity, message=message,
                       pass_name=self.name,
                       case=str(ir.meta.get("label", "")),
                       nodes=nodes, data=data)


def _cap(findings: List[Finding], pass_obj: Pass, ir: ScheduleIR,
         code: str) -> List[Finding]:
    """Keep the first :data:`MAX_REPORTED` findings of one code and
    summarize the rest — never silently truncate."""
    if len(findings) <= MAX_REPORTED:
        return findings
    hidden = len(findings) - MAX_REPORTED
    head = findings[:MAX_REPORTED]
    head.append(pass_obj._finding(
        ir, code, head[0].severity,
        f"... and {hidden} more {code} finding(s) not listed "
        f"(all {len(findings)} counted)",
        data={"total": len(findings)},
    ))
    return head


# ---------------------------------------------------------------------------
# Extraction errors
# ---------------------------------------------------------------------------


class ExtractionPass(Pass):
    """Surface extraction-time engine failures recorded in the meta.

    Errors like an escaping sub-slice raise *before* the offending
    access is recorded, so no footprint exists to lint — the error
    string itself is the verdict, and the partial IR documents how far
    the schedule got."""

    name = "extract"
    codes = ("SA-EXTRACT-ERROR",)

    def run(self, ir: ScheduleIR) -> List[Finding]:
        error = str(ir.meta.get("error", ""))
        if not error:
            return []
        return [self._finding(
            ir, "SA-EXTRACT-ERROR", "error",
            f"schedule aborted during extraction: {error} "
            f"({len(ir.nodes)} op(s) lifted before the failure)",
        )]


# ---------------------------------------------------------------------------
# Deadlock freedom
# ---------------------------------------------------------------------------


class DeadlockPass(Pass):
    """Deadlock freedom over the post/wait/barrier structure."""

    name = "deadlock"
    codes = ("SA-DL-CYCLE", "SA-DL-UNSAT", "SA-DL-BARRIER",
             "SA-DL-BLOCKED")

    def run(self, ir: ScheduleIR) -> List[Finding]:
        out: List[Finding] = []
        cycle = ir.find_cycle()
        if cycle is not None:
            path = " -> ".join(ir.nodes[n].describe() for n in cycle)
            out.append(self._finding(
                ir, "SA-DL-CYCLE", "error",
                f"dependency cycle of {len(cycle)} node(s): {path} — "
                "no execution order satisfies this schedule",
                nodes=tuple(cycle),
            ))
        posts_by_tag: Dict[object, int] = {}
        for n in ir.nodes:
            if n.kind == "post" and not n.pending:
                posts_by_tag[n.tag] = posts_by_tag.get(n.tag, 0) + 1
        for n in ir.nodes:
            if not n.pending:
                continue
            if n.kind == "wait":
                have = posts_by_tag.get(n.tag, 0)
                if have < n.count:
                    out.append(self._finding(
                        ir, "SA-DL-UNSAT", "error",
                        f"rank {n.rank} wait({n.tag!r}, count={n.count}) "
                        f"can never be satisfied: the whole schedule "
                        f"contains {have} post(s) of {n.count} required "
                        f"— {n.count - have} will never arrive",
                        nodes=(n.node,),
                        data={"have": have, "required": n.count},
                    ))
                else:
                    out.append(self._finding(
                        ir, "SA-DL-BLOCKED", "error",
                        f"rank {n.rank} wait({n.tag!r}, count={n.count}) "
                        f"never released although {have} post(s) exist — "
                        "the posts are unreachable from the blocked state",
                        nodes=(n.node,),
                    ))
            elif n.kind == "barrier":
                missing = tuple(r for r in n.group if r not in n.arrived)
                out.append(self._finding(
                    ir, "SA-DL-BARRIER", "error",
                    f"barrier{n.group} never completes: "
                    f"{len(n.arrived)} of {len(n.group)} rank(s) arrived "
                    f"— ranks {missing} never arrive",
                    nodes=(n.node,),
                    data={"arrived": list(n.arrived),
                          "missing": list(missing)},
                ))
        if ir.meta.get("deadlocked") and not out:
            out.append(self._finding(
                ir, "SA-DL-UNSAT", "error",
                "the extraction run deadlocked but left no pending sync "
                "nodes — truncated trace?",
            ))
        return out


# ---------------------------------------------------------------------------
# Static DAV
# ---------------------------------------------------------------------------


class StaticDavPass(Pass):
    """Theorem 3.1 accounting summed over the DAG, pinned against the
    closed-form model and the extraction run's obs counters."""

    name = "dav"
    codes = ("SA-DAV-OK", "SA-DAV-EXCESS", "SA-DAV-UNDER",
             "SA-DAV-SKIP", "SA-DAV-OBS")

    def run(self, ir: ScheduleIR) -> List[Finding]:
        out: List[Finding] = []
        measured = ir.static_dav()
        meta = ir.meta
        counters = meta.get("counters")
        if counters is not None:
            obs = float(counters.get("totals", {}).get("trace_dav", 0.0))
            if obs != measured:
                out.append(self._finding(
                    ir, "SA-DAV-OBS", "error",
                    f"static DAV {measured:.0f} B disagrees with the obs "
                    f"counters' {obs:.0f} B for the same run — the IR "
                    "lift dropped or duplicated operations",
                    data={"static": measured, "counters": obs},
                ))
        if meta.get("deadlocked") or meta.get("error"):
            out.append(self._finding(
                ir, "SA-DAV-SKIP", "info",
                f"DAV model comparison skipped: partial schedule "
                f"(moved {measured:.0f} B before aborting)",
                data={"measured": measured},
            ))
            return out
        kind = str(meta.get("kind", ""))
        algorithm = str(meta.get("dav_algorithm", ""))
        p = int(meta.get("nranks", 0))
        s = int(meta.get("s", 0))
        if p <= 1:
            out.append(self._finding(
                ir, "SA-DAV-SKIP", "info",
                "DAV model comparison skipped: p=1 degenerate schedule "
                "(Table 1-3 formulas assume p >= 2)",
                data={"measured": measured},
            ))
            return out
        predicted = predicted_dav(kind, algorithm, s, p,
                                  m=int(meta.get("m", 2)),
                                  k=int(meta.get("k", 2))) \
            if kind else None
        if predicted is None:
            out.append(self._finding(
                ir, "SA-DAV-SKIP", "info",
                f"no DAV model for {kind or '<ad-hoc>'}/{algorithm}; "
                f"schedule moves {measured:.0f} B",
                data={"measured": measured},
            ))
            return out
        data = {"measured": measured, "predicted": predicted,
                "s": s, "p": p}
        if measured > predicted * (1.0 + REL_TOL):
            out.append(self._finding(
                ir, "SA-DAV-EXCESS", "error",
                f"schedule moves {measured:.0f} B but Theorem 3.1 "
                f"predicts {predicted:.0f} B for {kind}/{algorithm} at "
                f"s={s}, p={p} — {measured - predicted:.0f} B of "
                "redundant movement", data=data,
            ))
        elif measured < predicted * (1.0 - REL_TOL):
            out.append(self._finding(
                ir, "SA-DAV-UNDER", "info",
                f"schedule moves {measured:.0f} B, under the "
                f"{predicted:.0f} B modelled for {kind}/{algorithm} "
                "(moving less than modelled is not a bug)", data=data,
            ))
        else:
            out.append(self._finding(
                ir, "SA-DAV-OK", "info",
                f"static DAV matches Theorem 3.1 byte-exactly: "
                f"{measured:.0f} B for {kind}/{algorithm} at s={s}, "
                f"p={p}", data=data,
            ))
        return out


# ---------------------------------------------------------------------------
# Buffer lints
# ---------------------------------------------------------------------------

#: one access of one footprint: (node id, rank, mode, off, end)
_Access = Tuple[int, int, str, int, int]


def _node_accesses(ir: ScheduleIR) -> Dict[int, List[_Access]]:
    """Per-buffer access lists over all data nodes."""
    per_buf: Dict[int, List[_Access]] = {}
    for n in ir.nodes:
        for mode, fps in (("r", n.reads), ("w", n.writes)):
            for fp in fps:
                per_buf.setdefault(fp.buf, []).append(
                    (n.node, n.rank, mode, fp.off, fp.end)
                )
    return per_buf


def _merge(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    if not intervals:
        return []
    intervals = sorted(intervals)
    out = [intervals[0]]
    for lo, hi in intervals[1:]:
        if lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def _uncovered(lo: int, hi: int,
               covered: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """``[lo, hi)`` minus a merged interval list."""
    gaps: List[Tuple[int, int]] = []
    cur = lo
    for clo, chi in covered:
        if chi <= cur:
            continue
        if clo >= hi:
            break
        if clo > cur:
            gaps.append((cur, min(clo, hi)))
        cur = max(cur, chi)
        if cur >= hi:
            break
    if cur < hi:
        gaps.append((cur, hi))
    return gaps


class BufferPass(Pass):
    """Footprint bounds, unordered conflicting accesses, and
    uninitialized-read reachability."""

    name = "buffers"
    codes = ("SA-BUF-BOUNDS", "SA-BUF-OVERLAP", "SA-BUF-RACE",
             "SA-BUF-UNINIT")

    def run(self, ir: ScheduleIR) -> List[Finding]:
        out: List[Finding] = []
        out += self._bounds(ir)
        per_buf = _node_accesses(ir)
        overlaps: List[Finding] = []
        races: List[Finding] = []
        for buf, accesses in per_buf.items():
            o, r = self._conflicts(ir, buf, accesses)
            overlaps += o
            races += r
        out += _cap(overlaps, self, ir, "SA-BUF-OVERLAP")
        out += _cap(races, self, ir, "SA-BUF-RACE")
        uninit: List[Finding] = []
        for buf, accesses in per_buf.items():
            if not ir.buffers[buf].initialized:
                uninit += self._uninit_reads(ir, buf, accesses)
        out += _cap(uninit, self, ir, "SA-BUF-UNINIT")
        return out

    def _bounds(self, ir: ScheduleIR) -> List[Finding]:
        out = []
        for n in ir.nodes:
            for fp in n.reads + n.writes:
                info = ir.buffers[fp.buf]
                if fp.off < 0 or fp.end > info.nbytes:
                    out.append(self._finding(
                        ir, "SA-BUF-BOUNDS", "error",
                        f"{n.describe()} accesses {info.name}"
                        f"[{fp.off}, {fp.end}) outside the buffer's "
                        f"{info.nbytes} bytes",
                        nodes=(n.node,),
                    ))
        return out

    def _conflicts(self, ir: ScheduleIR, buf: int,
                   accesses: List[_Access]
                   ) -> Tuple[List[Finding], List[Finding]]:
        """Unordered conflicting pairs, via elementary intervals: two
        accesses from different ranks overlapping in bytes, at least
        one a write, with no dependency path between their nodes."""
        info = ir.buffers[buf]
        bounds = sorted({b for _, _, _, lo, hi in accesses
                         for b in (lo, hi)})
        overlaps: List[Finding] = []
        races: List[Finding] = []
        seen: set = set()
        for lo, hi in zip(bounds, bounds[1:]):
            here = [a for a in accesses if a[3] <= lo and a[4] >= hi]
            writers = [a for a in here if a[2] == "w"]
            if not writers:
                continue
            for wa in writers:
                for other in here:
                    if other is wa or other[1] == wa[1]:
                        continue
                    if other[2] == "w" and other[0] > wa[0]:
                        continue  # report each w-w pair once
                    key = tuple(sorted((wa[0], other[0])))
                    if key in seen or ir.ordered(wa[0], other[0]):
                        continue
                    seen.add(key)
                    na, nb = ir.nodes[wa[0]], ir.nodes[other[0]]
                    olo = max(wa[3], other[3])
                    ohi = min(wa[4], other[4])
                    if other[2] == "w":
                        overlaps.append(self._finding(
                            ir, "SA-BUF-OVERLAP", "error",
                            f"ranks {na.rank} and {nb.rank} both write "
                            f"{info.name}[{olo}, {ohi}) with no "
                            f"dependency path ordering {na.describe()} "
                            f"and {nb.describe()}",
                            nodes=key,
                        ))
                    else:
                        races.append(self._finding(
                            ir, "SA-BUF-RACE", "error",
                            f"rank {nb.rank} reads {info.name}"
                            f"[{olo}, {ohi}) while rank {na.rank}'s "
                            f"unordered write may be in flight "
                            f"({nb.describe()} vs {na.describe()})",
                            nodes=key,
                        ))
        return overlaps, races

    def _uninit_reads(self, ir: ScheduleIR, buf: int,
                      accesses: List[_Access]) -> List[Finding]:
        """Reads of a never-filled buffer not fully covered by
        happens-before-ordered writes."""
        info = ir.buffers[buf]
        writes = [(node, lo, hi) for node, _, mode, lo, hi in accesses
                  if mode == "w"]
        out = []
        for node, rank, mode, lo, hi in accesses:
            if mode != "r":
                continue
            covered = _merge([
                (wlo, whi) for wnode, wlo, whi in writes
                if wnode != node and ir.happens_before(wnode, node)
            ])
            gaps = _uncovered(lo, hi, covered)
            if gaps:
                glo, ghi = gaps[0]
                n = ir.nodes[node]
                out.append(self._finding(
                    ir, "SA-BUF-UNINIT", "error",
                    f"{n.describe()} reads {info.name}[{glo}, {ghi}) "
                    f"but no happens-before-ordered write or fill "
                    f"produced those bytes"
                    + (f" ({len(gaps)} uncovered range(s) in "
                       f"[{lo}, {hi}))" if len(gaps) > 1 else ""),
                    nodes=(node,),
                ))
        return out


# ---------------------------------------------------------------------------
# Locality
# ---------------------------------------------------------------------------


def _socket_of(rank: int, nranks: int, m: dict) -> int:
    """Mirror of :meth:`MachineSpec.socket_of_rank` over the IR's
    machine-constants projection."""
    sockets = int(m["sockets"])
    if m.get("binding") == "scatter":
        return rank % sockets
    cores = int(m["cores_per_socket"])
    if nranks <= sockets * cores:
        per = -(-nranks // sockets)
        return min(rank // per, sockets - 1)
    return (rank // cores) % sockets


class LocalityPass(Pass):
    """Cache-line false sharing and NUMA byte placement."""

    name = "locality"
    codes = ("SA-LOC-FALSESHARE", "SA-LOC-NUMA")

    def run(self, ir: ScheduleIR) -> List[Finding]:
        machine = ir.meta.get("machine")
        if not machine or int(machine.get("sockets", 1)) < 2:
            return []
        nranks = ir.nranks
        homes = self._byte_homes(ir, machine, nranks)
        out: List[Finding] = []
        out += _cap(self._false_sharing(ir, machine, nranks), self, ir,
                    "SA-LOC-FALSESHARE")
        out += self._numa(ir, machine, nranks, homes)
        return out

    def _byte_homes(self, ir: ScheduleIR, machine: dict,
                    nranks: int) -> Dict[int, bytearray]:
        """Per-byte NUMA home of every buffer: the declared home for
        private buffers, the first writer's socket (first-touch, in
        schedule order) for shared segments.  255 = never homed."""
        homes: Dict[int, bytearray] = {}
        for info in ir.buffers:
            if info.shared or info.home_socket < 0:
                homes[info.buf] = bytearray([255]) * info.nbytes
            else:
                homes[info.buf] = bytearray([info.home_socket]
                                            ) * info.nbytes
        for n in ir.nodes:  # node order == extraction execution order
            if n.rank < 0:
                continue
            sock = _socket_of(n.rank, nranks, machine)
            for fp in n.writes:
                h = homes[fp.buf]
                lo, hi = max(fp.off, 0), min(fp.end, len(h))
                for i in range(lo, hi):
                    if h[i] == 255:
                        h[i] = sock
        return homes

    def _numa(self, ir: ScheduleIR, machine: dict, nranks: int,
              homes: Dict[int, bytearray]) -> List[Finding]:
        cross = 0
        total = 0
        for n in ir.nodes:
            if n.rank < 0:
                continue
            sock = _socket_of(n.rank, nranks, machine)
            for fp in n.reads + n.writes:
                h = homes[fp.buf]
                lo, hi = max(fp.off, 0), min(fp.end, len(h))
                for i in range(lo, hi):
                    if h[i] == 255:
                        continue
                    total += 1
                    if h[i] != sock:
                        cross += 1
        if not total:
            return []
        fraction = cross / total
        data = {"cross_bytes": cross, "total_bytes": total,
                "fraction": round(fraction, 4),
                "threshold": NUMA_CROSS_THRESHOLD}
        if fraction <= NUMA_CROSS_THRESHOLD:
            return []
        severity = ("error" if ir.meta.get("locality") == "socket"
                    else "warning")
        contract = (" — the algorithm declares locality='socket' and "
                    "must keep its traffic socket-local"
                    if severity == "error" else "")
        return [self._finding(
            ir, "SA-LOC-NUMA", severity,
            f"{fraction:.0%} of accessed bytes ({cross} of {total}) are "
            f"homed on a remote socket (threshold "
            f"{NUMA_CROSS_THRESHOLD:.0%}); a socket-aware schedule "
            f"would stage per-socket partials first{contract}",
            data=data,
        )]

    def _false_sharing(self, ir: ScheduleIR, machine: dict,
                       nranks: int) -> List[Finding]:
        """Two ranks concurrently writing *disjoint* bytes of one cache
        line: no race, but the line ping-pongs between cores."""
        line = int(machine.get("line_size", 64))
        out: List[Finding] = []
        per_buf = _node_accesses(ir)
        for buf, accesses in per_buf.items():
            info = ir.buffers[buf]
            by_line: Dict[int, List[_Access]] = {}
            for a in accesses:
                if a[2] != "w":
                    continue
                for ln in range(a[3] // line, (a[4] - 1) // line + 1):
                    by_line.setdefault(ln, []).append(a)
            for ln, writers in sorted(by_line.items()):
                ranks = {a[1] for a in writers}
                if len(ranks) < 2:
                    continue
                reported = False
                for i, wa in enumerate(writers):
                    if reported:
                        break
                    for wb in writers[i + 1:]:
                        if wa[1] == wb[1]:
                            continue
                        # byte overlap inside the line is a race
                        # (BufferPass territory), not false sharing
                        if max(wa[3], wb[3]) < min(wa[4], wb[4]):
                            continue
                        if ir.ordered(wa[0], wb[0]):
                            continue
                        out.append(self._finding(
                            ir, "SA-LOC-FALSESHARE", "warning",
                            f"ranks {wa[1]} and {wb[1]} concurrently "
                            f"write disjoint bytes of the same "
                            f"{line}-byte cache line "
                            f"({info.name} line {ln}, bytes "
                            f"[{ln * line}, {(ln + 1) * line})) — the "
                            f"line will ping-pong between cores; pad "
                            f"or align the slices to {line} bytes",
                            nodes=(wa[0], wb[0]),
                            data={"buffer": info.name, "line": ln},
                        ))
                        reported = True
                        break
        return out


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------


class CriticalPathPass(Pass):
    """Static completion-time lower bound along the weighted DAG."""

    name = "critical-path"
    codes = ("SA-CP-BOUND", "SA-CP-INCONSISTENT")

    def run(self, ir: ScheduleIR) -> List[Finding]:
        if not ir.nodes:
            return []
        machine = ir.meta.get("machine")
        if not machine:
            return [self._finding(
                ir, "SA-CP-BOUND", "info",
                f"critical path spans {self._hops(ir)} of "
                f"{len(ir.nodes)} node(s) (no machine model attached; "
                "hop count only)",
                data={"hops": self._hops(ir)},
            )]
        cbw = float(machine["cache_bandwidth_core"])
        ovh = float(machine["op_overhead"])
        intra = float(machine["sync_latency_intra"])
        inter = float(machine.get("sync_latency_inter", intra))
        sockets = int(machine.get("sockets", 1))
        cps = int(machine.get("cores_per_socket", 1))
        binding = str(machine.get("binding", "compact"))
        nranks = ir.nranks or None

        def sock(rank: int) -> int:
            return socket_of_rank_meta(
                rank, nranks, sockets=sockets, cores_per_socket=cps,
                binding=binding,
            )

        def pair_lat(r1: int, r2: int) -> float:
            return intra if sock(r1) == sock(r2) else inter

        finish: List[float] = [0.0] * len(ir.nodes)
        # the engine releases a wait at max(own clock, post clock +
        # pair latency): the latency rides the post->wait sync *edge*
        # (a wait whose posts landed long ago is free), while a barrier
        # completion charges the whole group its tree latency.  Both
        # latencies depend on the machine's socket topology exactly as
        # in the engine — intra-socket pairs/groups pay the cheap flag
        # latency, cross-socket ones the coherence-miss latency — so
        # the bound stays a bound without going needlessly slack on
        # 1- and 4-socket presets.
        edge_w: Dict[Tuple[int, int], float] = {
            (e.src, e.dst): pair_lat(ir.nodes[e.src].rank,
                                     ir.nodes[e.dst].rank)
            for e in ir.edges
            if e.kind == "sync" and ir.nodes[e.src].rank >= 0
            and ir.nodes[e.dst].rank >= 0
        }
        for v in ir.toposort():
            n = ir.nodes[v]
            if n.kind == "barrier":
                rounds = max(1, math.ceil(
                    math.log2(max(2, len(n.group)))))
                blat = (inter if len({sock(r) for r in n.group}) > 1
                        else intra)
                lat = 2.0 * rounds * blat
            else:
                lat = 0.0
            w = static_op_time(
                n.kind, n.nbytes, cache_bandwidth_core=cbw,
                op_overhead=ovh, sync_latency=lat,
                duration=n.duration,
            )
            best = 0.0
            for p in ir.preds()[v]:
                arrive = finish[p] + edge_w.get((p, v), 0.0)
                if arrive > best:
                    best = arrive
            finish[v] = best + w
        bound = max(finish)
        sim = float(ir.meta.get("sim_time", 0.0))
        data = {"bound": bound, "simulated": sim,
                "hops": self._hops(ir)}
        out = [self._finding(
            ir, "SA-CP-BOUND", "info",
            f"static completion-time lower bound {bound * 1e6:.2f} us"
            + (f" vs {sim * 1e6:.2f} us simulated "
               f"({sim / bound:.2f}x the bound)"
               if sim > 0 and bound > 0 else
               " (no simulated time to compare against)"),
            data=data,
        )]
        partial = ir.meta.get("deadlocked") or ir.meta.get("error")
        if sim > 0 and bound > sim * (1.0 + CP_REL_TOL) and not partial:
            out.append(self._finding(
                ir, "SA-CP-INCONSISTENT", "warning",
                f"the static lower bound ({bound * 1e6:.2f} us) exceeds "
                f"the engine-simulated time ({sim * 1e6:.2f} us) by more "
                f"than the {CP_REL_TOL:.0%} model tolerance — the timing "
                "models disagree; one of them is mis-calibrated",
                data=data,
            ))
        return out

    def _hops(self, ir: ScheduleIR) -> int:
        depth = [1] * len(ir.nodes)
        preds = ir.preds()
        for v in ir.toposort():
            for p in preds[v]:
                depth[v] = max(depth[v], depth[p] + 1)
        return max(depth, default=0)


#: the standard pipeline, in execution order
DEFAULT_PASSES: Tuple[Pass, ...] = (
    ExtractionPass(),
    DeadlockPass(),
    StaticDavPass(),
    BufferPass(),
    LocalityPass(),
    CriticalPathPass(),
)


def run_passes(ir: ScheduleIR,
               passes: Optional[Sequence[Pass]] = None) -> Report:
    """Run a pass pipeline over one IR and collect the report.

    A cyclic IR makes order-dependent passes impossible; they are
    skipped with an ``SA-IR-INVALID`` error rather than crashing the
    pipeline (the deadlock pass still reports the cycle itself).
    """
    report = Report(case=str(ir.meta.get("label", "")),
                    signature=ir.signature())
    for p in (DEFAULT_PASSES if passes is None else passes):
        try:
            report.extend(p.name, p.run(ir))
        except IRValidationError as exc:
            report.extend(p.name, [Finding(
                code="SA-IR-INVALID", severity="error",
                message=f"pass skipped: {exc}", pass_name=p.name,
                case=report.case,
            )])
    return report
