"""``python -m repro lint`` — static schedule linting.

Follows the ``repro.bench.cli`` / ``repro.obs.cli`` convention:
:func:`add_lint_parser` registers the subcommand,
:func:`run_lint_command` executes it.  Exit status is non-zero only on
*error*-severity findings (warnings and infos never break CI — the
``lint-schedules`` job relies on that contract).
"""

from __future__ import annotations

import sys

from repro.machine.spec import PRESETS


def add_lint_parser(sub) -> None:
    lint = sub.add_parser(
        "lint",
        help="static schedule analysis (deadlock/DAV/buffer/NUMA/"
             "critical-path passes over the extracted IR)",
    )
    lint.add_argument("collective", nargs="?", default="all",
                      help="matrix name (see 'info') or 'all'")
    lint.add_argument("-n", "--nranks", type=int, default=None,
                      help="extraction rank count (default 4)")
    lint.add_argument("-s", "--size", type=int, default=None,
                      help="message size in bytes (default 1024)")
    lint.add_argument("--machine", default="NodeA",
                      choices=["none"] + sorted(PRESETS),
                      help="machine preset for the locality and "
                           "critical-path passes ('none' disables them; "
                           "default NodeA)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable findings on stdout "
                           "(schema repro-lint/1)")
    lint.add_argument("--ir-out", default="", metavar="DIR",
                      help="also write each extracted schedule IR "
                           "(repro-ir/1 JSON) into this directory")


def run_lint_command(args) -> int:
    from repro.analysis.static.extract import DEFAULT_NRANKS, DEFAULT_S
    from repro.analysis.static.lint import (
        dump_irs,
        lint_all,
        lint_collective,
        render_reports,
        reports_to_payload,
    )
    from repro.analysis.static.report import findings_to_json

    nranks = DEFAULT_NRANKS if args.nranks is None else args.nranks
    s = DEFAULT_S if args.size is None else args.size
    machine = None if args.machine == "none" else PRESETS[args.machine]
    ir_sink: dict = {} if args.ir_out else None
    try:
        if args.collective == "all":
            reports = lint_all(nranks=nranks, s=s, machine=machine,
                               ir_sink=ir_sink)
        else:
            reports = lint_collective(args.collective, nranks=nranks,
                                      s=s, machine=machine,
                                      ir_sink=ir_sink)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.ir_out:
        for path in dump_irs(ir_sink, args.ir_out):
            print(f"wrote {path}", file=sys.stderr)
    if args.json:
        print(findings_to_json(reports_to_payload(reports), indent=2))
    else:
        print(render_reports(reports))
    return 0 if all(r.ok for r in reports) else 1
