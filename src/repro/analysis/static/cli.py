"""``python -m repro lint`` — static schedule linting.

Follows the ``repro.bench.cli`` / ``repro.obs.cli`` convention:
:func:`add_lint_parser` registers the subcommand,
:func:`run_lint_command` executes it.  Exit status is non-zero only on
*error*-severity findings (warnings and infos never break CI — the
``lint-schedules`` job relies on that contract).
"""

from __future__ import annotations

import sys

from repro.machine.spec import PRESETS


def add_lint_parser(sub) -> None:
    lint = sub.add_parser(
        "lint",
        help="static schedule analysis (deadlock/DAV/buffer/NUMA/"
             "critical-path passes over the extracted IR)",
    )
    lint.add_argument("collective", nargs="?", default="all",
                      help="matrix name (see 'info') or 'all'")
    lint.add_argument("-n", "--nranks", type=int, default=None,
                      help="extraction rank count (default 4)")
    lint.add_argument("-s", "--size", type=int, default=None,
                      help="message size in bytes (default 1024)")
    lint.add_argument("--machine", default="NodeA",
                      choices=["none"] + sorted(PRESETS),
                      help="machine preset for the locality and "
                           "critical-path passes ('none' disables them; "
                           "default NodeA)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable findings on stdout "
                           "(schema repro-lint/1)")
    lint.add_argument("--ir-out", default="", metavar="DIR",
                      help="also write each extracted schedule IR "
                           "(repro-ir/1 JSON) into this directory")
    lint.add_argument("--certify-regions", action="store_true",
                      help="symbolic-size region certification instead "
                           "of per-case linting: prove every decision "
                           "region of the collective × p matrix shape-"
                           "invariant (SA-SYM-* passes); the positional "
                           "argument selects one collective kind or "
                           "'all'")
    lint.add_argument("--certify-p", default="2,4", metavar="P,P",
                      help="comma-separated rank counts for "
                           "--certify-regions (default 2,4)")
    lint.add_argument("--certify-cap", type=int, default=None,
                      metavar="BYTES",
                      help="largest region base size certified by "
                           "--certify-regions (0 = no cap; default "
                           "4194304); capped regions are reported, "
                           "never silently skipped")


def run_lint_command(args) -> int:
    if args.certify_regions:
        return _run_certify(args)
    from repro.analysis.static.extract import DEFAULT_NRANKS, DEFAULT_S
    from repro.analysis.static.lint import (
        dump_irs,
        lint_all,
        lint_collective,
        render_reports,
        reports_to_payload,
    )
    from repro.analysis.static.report import findings_to_json

    nranks = DEFAULT_NRANKS if args.nranks is None else args.nranks
    s = DEFAULT_S if args.size is None else args.size
    machine = None if args.machine == "none" else PRESETS[args.machine]
    ir_sink: dict = {} if args.ir_out else None
    try:
        if args.collective == "all":
            reports = lint_all(nranks=nranks, s=s, machine=machine,
                               ir_sink=ir_sink)
        else:
            reports = lint_collective(args.collective, nranks=nranks,
                                      s=s, machine=machine,
                                      ir_sink=ir_sink)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.ir_out:
        for path in dump_irs(ir_sink, args.ir_out):
            print(f"wrote {path}", file=sys.stderr)
    if args.json:
        print(findings_to_json(reports_to_payload(reports), indent=2))
    else:
        print(render_reports(reports))
    return 0 if all(r.ok for r in reports) else 1


def _run_certify(args) -> int:
    """``lint --certify-regions``: symbolic certification of every
    decision region in the collective × p matrix (the CI
    ``certify-regions`` step).  Exit 1 on any ``SA-SYM-*`` error."""
    from repro.analysis.static.lint import (
        render_reports,
        reports_to_payload,
    )
    from repro.analysis.static.report import findings_to_json
    from repro.analysis.static.symbolic import (
        DEFAULT_MAX_BASE,
        certify_matrix,
    )
    from repro.models.nt_model import KNOWN_KINDS

    if args.machine == "none":
        print("error: --certify-regions needs a machine preset",
              file=sys.stderr)
        return 2
    kinds = None
    if args.collective != "all":
        if args.collective not in KNOWN_KINDS:
            print(f"error: unknown collective kind {args.collective!r}; "
                  f"--certify-regions covers: {', '.join(KNOWN_KINDS)}",
                  file=sys.stderr)
            return 2
        kinds = [args.collective]
    try:
        ps = tuple(int(x) for x in args.certify_p.split(","))
    except ValueError:
        print(f"error: bad --certify-p {args.certify_p!r}",
              file=sys.stderr)
        return 2
    cap = DEFAULT_MAX_BASE if args.certify_cap is None \
        else args.certify_cap
    progress = None if args.json \
        else (lambda msg: print(msg, file=sys.stderr))
    reports = certify_matrix(PRESETS[args.machine], kinds=kinds, ps=ps,
                             max_base=cap, progress=progress)
    if args.json:
        print(findings_to_json(reports_to_payload(reports), indent=2))
    else:
        print(render_reports(reports))
    return 0 if all(r.ok for r in reports) else 1
