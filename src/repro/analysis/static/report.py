"""Findings, reports and their serialization.

The static analyzer's output unit is a :class:`Finding`: one verdict
of one pass, with a stable machine-readable ``code`` (``SA-DL-UNSAT``,
``SA-DAV-EXCESS``, ...), a severity, and the IR nodes it anchors to.
A :class:`Report` collects the findings of every pass over one IR.

Severities order the response, not just the message: ``error`` means
the schedule is wrong (the lint CLI — and the ``lint-schedules`` CI
job — exit non-zero), ``warning`` means the schedule works but leaves
something on the table (NUMA misplacement, false sharing), ``info``
carries the quantitative verdicts (DAV byte counts, the critical-path
bound) that make a clean report auditable rather than silent.

The serialization here is shared by ``python -m repro lint --json``
and ``python -m repro analyze --json``:
:func:`findings_from_analysis` maps the dynamic analyzer's races,
schedule issues and DAV check onto the same Finding shape (codes
``HB-RACE``, ``LINT-*``, ``DAV-*``), so downstream tooling parses one
format regardless of which analyzer produced it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: severity levels, most severe first
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One verdict of one analysis pass.

    ``code`` is stable across releases (tests and CI match on it);
    ``nodes`` anchors the finding to IR node ids (empty for
    whole-schedule verdicts); ``data`` carries the finding's numbers
    (byte counts, ratios) as a JSON-safe dict.
    """

    code: str
    severity: str
    message: str
    pass_name: str = ""
    case: str = ""
    nodes: Tuple[int, ...] = ()
    data: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; choose from "
                f"{SEVERITIES}"
            )

    def describe(self) -> str:
        where = f" (nodes {list(self.nodes)})" if self.nodes else ""
        return f"[{self.severity}] {self.code}: {self.message}{where}"

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "pass": self.pass_name,
            "case": self.case,
            "nodes": list(self.nodes),
        }
        if self.data is not None:
            out["data"] = self.data
        return out


@dataclass
class Report:
    """Every pass's findings over one schedule IR."""

    case: str = ""
    findings: List[Finding] = field(default_factory=list)
    #: passes that ran, in order (a pass with no findings still counts)
    passes: List[str] = field(default_factory=list)
    #: IR shape summary (ScheduleIR.signature()) for context
    signature: Optional[dict] = None

    def extend(self, pass_name: str, findings: List[Finding]) -> None:
        self.passes.append(pass_name)
        self.findings.extend(findings)

    def by_severity(self, severity: str) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity("error")

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity("warning")

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings and infos allowed)."""
        return not self.errors

    def counts(self) -> dict:
        out = {s: 0 for s in SEVERITIES}
        for f in self.findings:
            out[f.severity] += 1
        return out

    def describe(self) -> str:
        lines = []
        shown = [f for f in self.findings if f.severity != "info"]
        infos = [f for f in self.findings if f.severity == "info"]
        for f in shown + infos:
            lines.append(f.describe())
        if not self.findings:
            lines.append("clean: no findings from "
                         f"{len(self.passes)} pass(es)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "passes": list(self.passes),
            "counts": self.counts(),
            "ok": self.ok,
            "signature": self.signature,
            "findings": [f.to_dict() for f in self.findings],
        }


def findings_to_json(payload: dict, *, indent: Optional[int] = None) -> str:
    """Canonical JSON for finding-bearing documents (both CLIs)."""
    return json.dumps(payload, indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Dynamic-analysis bridge (python -m repro analyze --json)
# ---------------------------------------------------------------------------

#: severity of each dynamic schedule-lint kind
_ISSUE_SEVERITY = {
    "deadlock": "error",
    "barrier-group-mismatch": "error",
    "tag-reuse": "warning",
    "unmatched-post-ref": "error",
    "slot-overwrite": "error",
}


def findings_from_analysis(case_result) -> List[Finding]:
    """Map one dynamic :class:`~repro.analysis.runner.CaseResult` onto
    the shared Finding shape.

    Races become ``HB-RACE`` errors, schedule issues ``LINT-<KIND>``,
    the DAV check ``DAV-OK`` / ``DAV-FAIL`` / ``DAV-SKIP``, and engine
    crashes ``ENGINE-ERROR`` — one code space with the static
    analyzer's ``SA-*`` findings, shared by both ``--json`` outputs.
    """
    label = case_result.case.label
    report = case_result.report
    out: List[Finding] = []
    if case_result.error:
        out.append(Finding(
            code="ENGINE-ERROR", severity="error",
            message=case_result.error, pass_name="engine", case=label,
        ))
    if report.total_races:
        for race in report.races:
            out.append(Finding(
                code="HB-RACE", severity="error",
                message=race.describe(), pass_name="hb", case=label,
            ))
        hidden = report.total_races - len(report.races)
        if hidden > 0:
            out.append(Finding(
                code="HB-RACE", severity="error",
                message=f"... and {hidden} more race(s) not listed",
                pass_name="hb", case=label,
                data={"total": report.total_races,
                      "kinds": dict(report.race_kinds)},
            ))
    for issue in report.issues:
        kind = issue.kind.upper().replace("_", "-")
        out.append(Finding(
            code=f"LINT-{kind}",
            severity=_ISSUE_SEVERITY.get(issue.kind, "error"),
            message=issue.message, pass_name="schedule", case=label,
        ))
    dav = report.dav
    if dav is not None:
        code = {"ok": "DAV-OK", "fail": "DAV-FAIL",
                "skipped": "DAV-SKIP"}[dav.status]
        out.append(Finding(
            code=code,
            severity="error" if dav.status == "fail" else "info",
            message=dav.describe(), pass_name="dav", case=label,
            data={"measured": dav.measured, "predicted": dav.predicted},
        ))
    return out
