"""Static schedule analysis: a pass pipeline over the op-dependency IR.

The dynamic tooling in :mod:`repro.analysis` (vector-clock races, DAV
checks), :mod:`repro.analysis.mc` (exhaustive schedule exploration)
and :mod:`repro.sim.buffers` (shadow-memory sanitizer) all judge
*executions*.  This package judges the *schedule*: one traced run at
small ``p`` lifts a collective into a static DAG
(:class:`~repro.analysis.static.ir.ScheduleIR`), and every verdict
after that — deadlock freedom, Theorem 3.1 byte accounting, buffer
races and uninitialized reads, NUMA placement, the critical-path time
bound — is computed from graph structure alone.

CLI: ``python -m repro lint <collective>|all [--json] [--ir-out DIR]``;
library: :meth:`repro.library.yhccl.YHCCL.lint`.
"""

from repro.analysis.static.extract import (
    extract_case,
    extract_collective,
    extract_from_certificate,
    extract_program,
    ir_from_trace,
)
from repro.analysis.static.ir import (
    IR_SCHEMA,
    SUPPORTED_IR_SCHEMAS,
    BufferInfo,
    Edge,
    Footprint,
    IRSchemaError,
    IRValidationError,
    OpNode,
    ScheduleIR,
    ir_from_json,
    ir_to_json,
)
from repro.analysis.static.lint import (
    lint_all,
    lint_case,
    lint_collective,
    lint_ir,
    render_reports,
    reports_to_payload,
)
from repro.analysis.static.passes import (
    DEFAULT_PASSES,
    BufferPass,
    CriticalPathPass,
    DeadlockPass,
    ExtractionPass,
    LocalityPass,
    Pass,
    StaticDavPass,
    run_passes,
)
from repro.analysis.static.report import (
    SEVERITIES,
    Finding,
    Report,
    findings_from_analysis,
    findings_to_json,
)
from repro.analysis.static.symbolic import (
    SYMCERT_SCHEMA,
    Affine,
    SymbolicBoundsPass,
    SymbolicDavPass,
    SymbolicError,
    SymbolicExactnessPass,
    SymbolicSchedule,
    capture_region_ir,
    certify_matrix,
    certify_region,
    check_guard_partition,
    probe_partners,
    unify,
)

__all__ = [
    "IR_SCHEMA",
    "SUPPORTED_IR_SCHEMAS",
    "SYMCERT_SCHEMA",
    "SEVERITIES",
    "DEFAULT_PASSES",
    "Affine",
    "BufferInfo",
    "BufferPass",
    "CriticalPathPass",
    "DeadlockPass",
    "Edge",
    "ExtractionPass",
    "Finding",
    "Footprint",
    "IRSchemaError",
    "IRValidationError",
    "LocalityPass",
    "OpNode",
    "Pass",
    "Report",
    "ScheduleIR",
    "StaticDavPass",
    "SymbolicBoundsPass",
    "SymbolicDavPass",
    "SymbolicError",
    "SymbolicExactnessPass",
    "SymbolicSchedule",
    "capture_region_ir",
    "certify_matrix",
    "certify_region",
    "check_guard_partition",
    "extract_case",
    "extract_collective",
    "extract_from_certificate",
    "extract_program",
    "findings_from_analysis",
    "findings_to_json",
    "ir_from_json",
    "ir_from_trace",
    "ir_to_json",
    "lint_all",
    "lint_case",
    "lint_collective",
    "lint_ir",
    "probe_partners",
    "render_reports",
    "reports_to_payload",
    "run_passes",
    "unify",
]
