"""Lint driver: extract every registered case and run the passes.

The dynamic analyzer (``python -m repro analyze``) judges what one
execution *did*; the lint driver judges what every execution of the
schedule *could do*, from a single extraction run per case.  Each
registered algorithm variant is lifted to a schedule IR once (at the
requested ``nranks``/``s`` on the requested machine) and the full pass
pipeline runs over the DAG — no further execution happens.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.runner import Case, cases, collectives
from repro.analysis.static.extract import (
    DEFAULT_NRANKS,
    DEFAULT_S,
    MachineArg,
    extract_case,
)
from repro.analysis.static.ir import ScheduleIR, ir_to_json
from repro.analysis.static.passes import Pass, run_passes
from repro.analysis.static.report import Report


def lint_case(case: Case, *, nranks: int = DEFAULT_NRANKS,
              s: int = DEFAULT_S, machine: MachineArg = "NodeA",
              seed: int = 12345,
              passes: Optional[Sequence[Pass]] = None) -> Report:
    """Extract one case and run the pass pipeline over its IR."""
    ir = extract_case(case, nranks=nranks, s=s, machine=machine,
                      seed=seed)
    return run_passes(ir, passes)


def lint_ir(ir: ScheduleIR,
            passes: Optional[Sequence[Pass]] = None) -> Report:
    """Run the pass pipeline over an already-extracted IR."""
    return run_passes(ir, passes)


def lint_collective(name: str, *, nranks: int = DEFAULT_NRANKS,
                    s: int = DEFAULT_S,
                    machine: MachineArg = "NodeA",
                    seed: int = 12345,
                    ir_sink: Optional[Dict[str, ScheduleIR]] = None,
                    ) -> List[Report]:
    """Lint every registered algorithm variant of one collective.

    ``ir_sink`` (label -> IR) collects the extracted IRs for callers
    that want to persist them (``--ir-out``)."""
    reports = []
    for case in cases(name):
        ir = extract_case(case, nranks=nranks, s=s, machine=machine,
                          seed=seed)
        if ir_sink is not None:
            ir_sink[case.label] = ir
        reports.append(run_passes(ir))
    return reports


def lint_all(*, nranks: int = DEFAULT_NRANKS, s: int = DEFAULT_S,
             machine: MachineArg = "NodeA", seed: int = 12345,
             ir_sink: Optional[Dict[str, ScheduleIR]] = None,
             ) -> List[Report]:
    """Lint every case of every registered collective."""
    reports = []
    for name in collectives():
        reports.extend(lint_collective(
            name, nranks=nranks, s=s, machine=machine, seed=seed,
            ir_sink=ir_sink,
        ))
    return reports


def render_reports(reports: Sequence[Report]) -> str:
    """Human-readable multi-case summary (mirrors
    :func:`repro.analysis.runner.render_results`)."""
    lines = []
    for report in reports:
        counts = report.counts()
        verdict = "ok" if report.ok else "FINDINGS"
        lines.append(
            f"{report.case:<40} {verdict:>8}  "
            f"errors={counts['error']} warnings={counts['warning']}"
        )
        for f in report.findings:
            if f.severity != "info":
                lines.append(f"    {f.describe()}")
    clean = sum(1 for r in reports if r.ok)
    lines.append(f"{clean}/{len(reports)} schedules lint clean")
    return "\n".join(lines)


def reports_to_payload(reports: Sequence[Report]) -> dict:
    """JSON document for ``python -m repro lint --json``."""
    counts = {"error": 0, "warning": 0, "info": 0}
    for r in reports:
        for sev, n in r.counts().items():
            counts[sev] += n
    return {
        "schema": "repro-lint/1",
        "cases": [r.to_dict() for r in reports],
        "counts": counts,
        "ok": all(r.ok for r in reports),
    }


def dump_irs(ir_sink: Dict[str, ScheduleIR], out_dir: str) -> List[str]:
    """Persist extracted IRs as ``<label>.ir.json`` under ``out_dir``."""
    import os

    os.makedirs(out_dir, exist_ok=True)
    written = []
    for label, ir in sorted(ir_sink.items()):
        safe = label.replace("/", "-")
        path = os.path.join(out_dir, f"{safe}.ir.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(ir_to_json(ir, indent=2))
            fh.write("\n")
        written.append(path)
    return written
