"""Lift a collective into the static schedule IR.

One traced run at small ``p`` is the *extraction oracle*: the engine's
parallel streams (:class:`~repro.sim.trace.OpRecord` per operation,
:class:`~repro.sim.trace.AccessEvent` per byte range,
:class:`~repro.sim.trace.SyncEvent` per post/wait/barrier release)
carry exactly the DAG a schedule induces, so the lift is a single
record-driven walk — no re-execution, no vector clocks:

* data records become data nodes carrying their byte footprints
  (``AccessEvent.op_index`` points straight back at the record);
* the *k*-th post / wait record pairs with the *k*-th post / wait sync
  event (the engine appends record and event in one atomic section),
  so a wait's ``matched`` post seqs become its incoming sync edges;
* a barrier completion appends one sync event plus one contiguous
  record per member, collapsed here into a single join node
  (``rank == -1``) with program-order edges from and to every member;
* ``blocked`` events (a deadlocked run's certificates) become
  *pending* sync nodes, preserving the stuck waits/barriers the
  deadlock pass reasons about.

Extraction never runs the sanitizer: a :class:`SanitizerError` aborts
*before* the offending access is recorded, which would erase exactly
the footprint the static passes need.  Instead every buffer's
``initialized`` state (recorded at allocation) rides along in
:class:`~repro.analysis.static.ir.BufferInfo`, and the uninit-read
pass re-derives the verdict from reachability.

Entry points: :func:`extract_case` (one analysis-matrix case),
:func:`extract_program` (an ad-hoc engine program, e.g. the seeded-bug
fixtures), :func:`extract_from_certificate` (replays a
``repro-schedule/1`` witness prefix once and lifts the failing
schedule), and the underlying :func:`ir_from_trace`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.runner import Case, cases
from repro.analysis.static.ir import BufferInfo, Footprint, OpNode, ScheduleIR
from repro.machine.spec import CACHE_LINE, MachineSpec, PRESETS
from repro.obs.counters import Counters
from repro.sim.engine import DeadlockError, Engine
from repro.sim.replay import ScheduleCertificate
from repro.sim.scheduler import ControlledScheduler
from repro.sim.trace import AccessEvent, SyncEvent, Trace

#: default extraction geometry: small enough to lift in milliseconds,
#: large enough that every algorithm's slicing is non-degenerate
DEFAULT_NRANKS = 4
DEFAULT_S = 1024

#: accepted machine arguments: a spec, a preset name, or None (no
#: machine model — the locality/critical-path passes then skip)
MachineArg = Union[MachineSpec, str, None]


def _resolve_machine(machine: MachineArg) -> Optional[MachineSpec]:
    if machine is None or isinstance(machine, MachineSpec):
        return machine
    if machine not in PRESETS:
        raise ValueError(
            f"unknown machine preset {machine!r}; choose from "
            f"{sorted(PRESETS)}"
        )
    return PRESETS[machine]


def machine_meta(machine: Optional[MachineSpec]) -> Optional[dict]:
    """The JSON-safe machine constants the static passes consume.

    Deliberately a *projection*, not the full spec: the IR stays
    loadable without reconstructing a :class:`MachineSpec`, and its
    content address only varies with constants a pass actually uses.
    """
    if machine is None:
        return None
    return {
        "name": machine.name,
        "sockets": machine.sockets,
        "cores_per_socket": machine.socket.cores,
        "binding": machine.binding,
        "line_size": CACHE_LINE,
        "cache_bandwidth_core": machine.cache_bandwidth_core,
        "op_overhead": machine.op_overhead,
        "sync_latency_intra": machine.sync_latency_intra,
        "sync_latency_inter": machine.sync_latency_inter,
    }


def _buffer_infos(buffers: Sequence) -> Tuple[List[BufferInfo], Dict[int, int]]:
    """Engine buffers -> BufferInfo list + ``buf_id -> index`` map."""
    infos: List[BufferInfo] = []
    index: Dict[int, int] = {}
    for b in buffers:
        index[b.buf_id] = len(infos)
        infos.append(BufferInfo(
            buf=len(infos),
            name=b.name,
            nbytes=b.nbytes,
            shared=b.kind == "shared",
            owner=-1 if b.owner is None else int(b.owner),
            home_socket=(-1 if b.home_socket is None
                         else int(b.home_socket)),
            initialized=bool(getattr(b, "initialized", False)),
        ))
    return infos, index


def ir_from_trace(trace: Trace, *, buffers: Sequence = (),
                  meta: Optional[dict] = None) -> ScheduleIR:
    """Lift one traced run into a :class:`ScheduleIR`.

    ``trace`` must cover a *single* engine run (the extraction helpers
    always build a fresh engine); ``buffers`` is the engine's buffer
    list — buffers only seen in access events get stub entries sized to
    the largest access, marked initialized (no false uninit findings on
    hand-built traces).
    """
    buf_infos, buf_index = _buffer_infos(buffers)
    # footprints per record index
    reads_of: Dict[int, List[Footprint]] = {}
    writes_of: Dict[int, List[Footprint]] = {}
    post_events: List[SyncEvent] = []
    wait_events: List[SyncEvent] = []
    barrier_events: List[SyncEvent] = []
    blocked_events: List[SyncEvent] = []
    for ev in trace.events:
        if isinstance(ev, AccessEvent):
            if ev.buf_id not in buf_index:
                buf_index[ev.buf_id] = len(buf_infos)
                buf_infos.append(BufferInfo(
                    buf=len(buf_infos), name=ev.buf_name, nbytes=ev.end,
                    shared=ev.shared, initialized=True,
                ))
            elif ev.end > buf_infos[buf_index[ev.buf_id]].nbytes \
                    and buffers == ():
                i = buf_index[ev.buf_id]
                buf_infos[i] = BufferInfo(
                    buf=i, name=ev.buf_name, nbytes=ev.end,
                    shared=ev.shared, initialized=True,
                )
            fp = Footprint(buf_index[ev.buf_id], ev.off, ev.nbytes)
            target = writes_of if ev.mode == "w" else reads_of
            target.setdefault(ev.op_index, []).append(fp)
        elif isinstance(ev, SyncEvent):
            if ev.kind == "post":
                post_events.append(ev)
            elif ev.kind == "wait":
                wait_events.append(ev)
            elif ev.kind == "barrier":
                barrier_events.append(ev)
            elif ev.kind == "blocked":
                blocked_events.append(ev)
            # run_start: a fresh engine's single run needs no separator

    ir = ScheduleIR(meta=meta, buffers=buf_infos)
    last_node: Dict[int, int] = {}
    node_of_post_seq: Dict[int, int] = {}
    posts_by_tag: Dict[object, List[int]] = {}
    pi = wi = bi = 0

    def _new(node: OpNode) -> int:
        nid = ir.add_node(node)
        return nid

    def _chain(rank: int, nid: int) -> None:
        prev = last_node.get(rank)
        if prev is not None:
            ir.add_edge(prev, nid, "po")
        last_node[rank] = nid

    records = trace.records
    i = 0
    while i < len(records):
        rec = records[i]
        if rec.kind == "barrier":
            if bi >= len(barrier_events):
                raise ValueError(
                    "trace is inconsistent: barrier record without a "
                    "matching barrier sync event (truncated trace?)"
                )
            ev = barrier_events[bi]
            bi += 1
            group = tuple(ev.group)
            batch = records[i:i + len(group)]
            if len(batch) != len(group) or any(
                    r.kind != "barrier" for r in batch):
                raise ValueError(
                    "trace is inconsistent: barrier record batch does "
                    f"not cover group {group}"
                )
            nid = _new(OpNode(
                node=len(ir.nodes), rank=-1, kind="barrier", group=group,
                arrived=tuple(ev.matched),
                t_start=max(r.t_start for r in batch),
                t_end=batch[0].t_end,
            ))
            for member in group:
                _chain(member, nid)
            i += len(group)
            continue
        if rec.kind == "post":
            ev = post_events[pi]
            pi += 1
            nid = _new(OpNode(
                node=len(ir.nodes), rank=rec.rank, kind="post",
                tag=rec.tag, t_start=rec.t_start, t_end=rec.t_end,
            ))
            node_of_post_seq[ev.seq] = nid
            posts_by_tag.setdefault(rec.tag, []).append(nid)
            _chain(rec.rank, nid)
        elif rec.kind == "wait":
            ev = wait_events[wi]
            wi += 1
            nid = _new(OpNode(
                node=len(ir.nodes), rank=rec.rank, kind="wait",
                tag=rec.tag, count=rec.count,
                t_start=rec.t_start, t_end=rec.t_end,
            ))
            _chain(rec.rank, nid)
            for seq in ev.matched:
                src = node_of_post_seq.get(seq)
                if src is not None:
                    ir.add_edge(src, nid, "sync")
        else:
            nid = _new(OpNode(
                node=len(ir.nodes), rank=rec.rank, kind=rec.kind,
                nbytes=rec.nbytes, nt=bool(rec.nt),
                reads=tuple(reads_of.get(i, ())),
                writes=tuple(writes_of.get(i, ())),
                t_start=rec.t_start, t_end=rec.t_end,
            ))
            _chain(rec.rank, nid)
        i += 1

    # a deadlocked run's stuck syncs: pending nodes so the deadlock
    # pass sees the unsatisfied waits and incomplete barriers
    for ev in blocked_events:
        if ev.group:
            nid = _new(OpNode(
                node=len(ir.nodes), rank=ev.rank, kind="barrier",
                group=tuple(ev.group), arrived=tuple(ev.matched),
                pending=True,
            ))
        else:
            nid = _new(OpNode(
                node=len(ir.nodes), rank=ev.rank, kind="wait",
                tag=ev.tag, count=ev.count, pending=True,
            ))
            for src in posts_by_tag.get(ev.tag, ())[:ev.count]:
                ir.add_edge(src, nid, "sync")
        _chain(ev.rank, nid)

    ir.validate()
    return ir


# ---------------------------------------------------------------------------
# Extraction drivers
# ---------------------------------------------------------------------------


def _lift_run(run_fn: Callable[[Engine], None], *, nranks: int,
              machine: Optional[MachineSpec], seed: int,
              meta: dict,
              scheduler: Optional[ControlledScheduler] = None) -> ScheduleIR:
    """One traced functional run of ``run_fn`` lifted into an IR."""
    eng = Engine(nranks, machine=machine, functional=True, trace=True,
                 seed=seed, scheduler=scheduler)
    deadlocked = False
    error = ""
    try:
        run_fn(eng)
    except DeadlockError:
        deadlocked = True  # blocked events become pending nodes
    except Exception as exc:  # noqa: BLE001 - a broken schedule must
        # still lift: the partial IR plus the error is the finding
        error = f"{type(exc).__name__}: {exc}"
    counters = Counters.from_trace(eng.trace, nranks=nranks)
    meta = dict(meta)
    meta.update({
        "nranks": nranks,
        "machine": machine_meta(machine),
        "sim_time": counters.span,
        "deadlocked": deadlocked,
        "error": error,
        "counters": counters.snapshot(),
    })
    return ir_from_trace(eng.trace, buffers=eng.buffers, meta=meta)


def extract_case(case: Case, *, nranks: int = DEFAULT_NRANKS,
                 s: int = DEFAULT_S,
                 machine: MachineArg = "NodeA",
                 seed: int = 12345) -> ScheduleIR:
    """Lift one analysis-matrix case (default machine: NodeA, so the
    locality and critical-path passes have a topology to reason with —
    the byte-exact passes are machine-independent; ``machine=None``
    lifts without one)."""
    machine = _resolve_machine(machine)
    meta = {
        "label": case.label,
        "collective": case.collective,
        "kind": case.kind,
        "dav_algorithm": case.dav_algorithm,
        "locality": case.locality,
        "s": s,
        "m": machine.sockets if machine is not None else 2,
        "k": case.k,
    }
    return _lift_run(lambda eng: case.run(eng, s), nranks=nranks,
                     machine=machine, seed=seed, meta=meta)


def extract_collective(name: str, *, nranks: int = DEFAULT_NRANKS,
                       s: int = DEFAULT_S,
                       machine: MachineArg = "NodeA",
                       seed: int = 12345) -> List[ScheduleIR]:
    """Lift every kind of collective ``name`` (or all, matching the
    ``analyze``/``verify`` matrix)."""
    return [extract_case(c, nranks=nranks, s=s, machine=machine, seed=seed)
            for c in cases(name)]


def extract_program(run_fn: Callable[[Engine], None], *, nranks: int,
                    label: str = "program", kind: str = "",
                    s: int = 0,
                    machine: MachineArg = None,
                    seed: int = 12345) -> ScheduleIR:
    """Lift an ad-hoc engine program (``run_fn(engine)`` builds and
    runs it, like the :func:`repro.analysis.mc.verify_program` run
    functions and the seeded-bug test fixtures)."""
    machine = _resolve_machine(machine)
    meta = {
        "label": label,
        "collective": "",
        "kind": kind,
        "dav_algorithm": "",
        "locality": "",
        "s": s,
        "m": machine.sockets if machine is not None else 2,
        "k": 2,
    }
    return _lift_run(run_fn, nranks=nranks, machine=machine, seed=seed,
                     meta=meta)


def extract_from_certificate(cert: ScheduleCertificate) -> ScheduleIR:
    """Replay a ``repro-schedule/1`` witness once and lift the failing
    schedule — the IR of the *exact* interleaving the model checker
    minimized, pending nodes and all.

    Certificates from :func:`~repro.analysis.mc.verify_program` on
    ad-hoc programs carry no registered case; lift those through
    :func:`extract_program` with the original run function instead.
    """
    if not cert.collective:
        raise ValueError(
            f"certificate {cert.case!r} names no registered collective; "
            "use extract_program with the original run function"
        )
    matched = [c for c in cases(cert.collective) if c.kind == cert.kind]
    if not matched:
        raise ValueError(
            f"certificate names unknown case {cert.collective}/{cert.kind}"
        )
    case = matched[0]
    meta = {
        "label": case.label,
        "collective": case.collective,
        "kind": case.kind,
        "dav_algorithm": case.dav_algorithm,
        "locality": case.locality,
        "s": cert.s,
        "m": 2,
        "k": case.k,
        "certificate": {"failure": cert.failure, "detail": cert.detail,
                        "choices": list(cert.choices)},
    }
    sched = ControlledScheduler(choices=list(cert.choices))
    return _lift_run(lambda eng: case.run(eng, cert.s), nranks=cert.nranks,
                     machine=None, seed=cert.seed, meta=meta,
                     scheduler=sched)
