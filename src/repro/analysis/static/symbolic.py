"""Symbolic-size schedules: certify decision-guard regions exactly.

PR 8's size-polymorphic replay keys one captured schedule per
*decision region* (:func:`repro.models.nt_model.decision_guards`) and
model-retimes it for other sizes — an estimate resting on an unproven
assumption: that the schedule *shape* really is invariant across every
size the region claims.  This module turns that assumption into a
checked certificate.

The abstract domain is **piecewise-affine in the message size** ``s``:
inside one guard region, restricted to one residue class of
``s mod region_modulus(p, machine)``, every op byte count, footprint
offset/length and buffer extent the engine produces is an *exact*
affine function ``a*s + b`` (the partition/slice arithmetic is integer
division by region-constant divisors, and the modulus clears every
remainder).  Two concrete captures therefore determine each
coefficient over the rationals (:class:`Affine` holds
:class:`fractions.Fraction`\\ s — no float rounding anywhere), and a
third capture *tests* the theory.

Certification of a region (:func:`certify_region`):

* **unification** (:func:`unify`) — every capture must have the same
  op-DAG skeleton (kinds, ranks, tags, sync edges, footprint
  structure); a mismatch is ``SA-SYM-SHAPE``, the proof that the
  region's guards were incomplete;
* **exactness** (:class:`SymbolicExactnessPass`) — the symbolic
  schedule instantiated at every capture's size (anchors *and*
  held-out validation sizes) reproduces the capture bitwise
  (``SA-SYM-EXACT``);
* **DAV identity** (:class:`SymbolicDavPass`) — the symbolic Theorem
  3.1 volume is itself affine; it must equal the closed form of
  :mod:`repro.models.dav` as a *polynomial identity* — coefficient by
  coefficient, not size by size (``SA-SYM-DAV``);
* **interval soundness** (:class:`SymbolicBoundsPass`) — an affine
  function attains its extrema at interval endpoints, so footprint
  bounds checked at both region edges hold for every congruent size
  between them; the relational lints (overlap, uninit reads) compare
  boundary affines, whose pairwise orderings only change at their
  rational crossing points — enumerating the crossings inside the
  interval yields crossing-free segments on which every verdict is
  provably constant, and one concrete lint per segment (plus both
  edges) covers all congruent sizes (``SA-SYM-VARY`` when a segment's
  verdict differs from the edges');
* **guard partition** (:func:`check_guard_partition`) — over the
  swept size range the guards must be exhaustive (every size evaluates
  to a region) and exclusive-as-intervals (a region never reappears
  after a different one on the sorted sweep) (``SA-SYM-GUARD``).

A certified region serializes as schema ``repro-symcert/1`` and rides
the compiled-schedule cache: ``bench --compiled --poly --certified``
replays retimed cells with engine-exact per-op byte counts and exact
DAV (durations stay model-derived — that is the documented estimate;
the *bytes* no longer are).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.dav import REL_TOL, predicted_dav
from repro.analysis.static.ir import (
    BufferInfo,
    Edge,
    Footprint,
    OpNode,
    ScheduleIR,
)
from repro.analysis.static.passes import BufferPass, Pass, _cap
from repro.analysis.static.report import Finding, Report
from repro.machine.spec import MachineSpec
from repro.models.nt_model import decision_guards, region_modulus

#: schema tag for serialized region certificates
SYMCERT_SCHEMA = "repro-symcert/1"

#: every schema version :func:`SymbolicSchedule.from_doc` can load
SUPPORTED_SYMCERT_SCHEMAS = (SYMCERT_SCHEMA,)

#: held-out engine captures a certification validates against, beyond
#: the two anchors the affine coefficients are fitted from
DEFAULT_VALIDATE = 3

#: how far partner probing walks (in region-modulus steps) looking for
#: guard-equal sizes around a base size
PROBE_KMAX = 64


class SymbolicError(ValueError):
    """A symbolic operation failed; ``code`` names the SA-SYM-* class."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


# ---------------------------------------------------------------------------
# The affine domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """``a*s + b`` over the rationals — one symbolic byte quantity.

    Exact by construction: coefficients are
    :class:`fractions.Fraction`, evaluation at integer sizes either
    yields an integer or refuses (:meth:`at`), and two point fits
    (:meth:`fit`) invert exactly.
    """

    a: Fraction
    b: Fraction

    @classmethod
    def const(cls, value: int) -> "Affine":
        return cls(Fraction(0), Fraction(value))

    @classmethod
    def fit(cls, s0: int, v0, s1: int, v1) -> "Affine":
        """The unique affine through ``(s0, v0)`` and ``(s1, v1)``."""
        if s0 == s1:
            raise SymbolicError(
                "SA-SYM-SHAPE",
                f"cannot fit an affine from two captures at one size {s0}",
            )
        a = Fraction(v1) - Fraction(v0)
        a /= s1 - s0
        return cls(a, Fraction(v0) - a * s0)

    def __call__(self, s: int) -> Fraction:
        return self.a * s + self.b

    def at(self, s: int) -> int:
        """Exact integer value at size ``s``; non-integral values are a
        certification failure, never rounded."""
        v = self(s)
        if v.denominator != 1:
            raise SymbolicError(
                "SA-SYM-EXACT",
                f"symbolic value {self.describe()} is non-integral "
                f"({v}) at s={s}",
            )
        return int(v)

    @property
    def is_const(self) -> bool:
        return self.a == 0

    def describe(self) -> str:
        if self.a == 0:
            return str(self.b)
        term = "s" if self.a == 1 else f"{self.a}*s"
        if self.b == 0:
            return term
        sign = "+" if self.b > 0 else "-"
        return f"{term} {sign} {abs(self.b)}"

    def to_json(self) -> list:
        return [[self.a.numerator, self.a.denominator],
                [self.b.numerator, self.b.denominator]]

    @classmethod
    def from_json(cls, doc: Sequence) -> "Affine":
        (an, ad), (bn, bd) = doc
        return cls(Fraction(an, ad), Fraction(bn, bd))


@dataclass(frozen=True)
class SymbolicFootprint:
    """One byte range with symbolic offset and length."""

    buf: int
    off: Affine
    nbytes: Affine

    def at(self, s: int) -> Footprint:
        return Footprint(self.buf, self.off.at(s), self.nbytes.at(s))


# ---------------------------------------------------------------------------
# The symbolic schedule
# ---------------------------------------------------------------------------

#: OpNode fields that define the size-invariant skeleton of a node
_SHAPE_FIELDS = ("rank", "kind", "nt", "tag", "count", "group",
                 "arrived", "pending")

#: BufferInfo fields that must be size-invariant (extent is symbolic)
_BUFFER_SHAPE_FIELDS = ("name", "shared", "owner", "home_socket",
                        "initialized")


@dataclass(frozen=True)
class SymbolicOp:
    """One op with its skeleton pinned and its bytes symbolic."""

    node: int
    shape: dict  # _SHAPE_FIELDS -> concrete values
    nbytes: Affine
    reads: Tuple[SymbolicFootprint, ...]
    writes: Tuple[SymbolicFootprint, ...]

    def at(self, s: int) -> OpNode:
        return OpNode(
            node=self.node,
            nbytes=self.nbytes.at(s),
            reads=tuple(fp.at(s) for fp in self.reads),
            writes=tuple(fp.at(s) for fp in self.writes),
            **self.shape,
        )


@dataclass(frozen=True)
class SymbolicBuffer:
    """One buffer with symbolic extent."""

    buf: int
    shape: dict  # _BUFFER_SHAPE_FIELDS -> concrete values
    nbytes: Affine

    def at(self, s: int) -> BufferInfo:
        return BufferInfo(buf=self.buf, nbytes=self.nbytes.at(s),
                          **self.shape)


class SymbolicSchedule:
    """One decision region's schedule as a function of ``s``.

    Valid for every size ``s`` with ``s % modulus == residue`` whose
    decision guards equal ``guards``; the certified (endpoint-checked)
    span is ``[lo, hi]``.  ``anchors`` are the two sizes the affine
    coefficients were fitted from, ``validated`` the held-out sizes a
    fresh engine capture was compared against.
    """

    def __init__(self, *, meta: dict, guards: dict, modulus: int,
                 residue: int, lo: int, hi: int,
                 anchors: Tuple[int, int],
                 validated: Tuple[int, ...] = (),
                 buffers: Sequence[SymbolicBuffer] = (),
                 nodes: Sequence[SymbolicOp] = (),
                 edges: Sequence[Edge] = ()):
        self.meta = dict(meta)
        self.guards = dict(guards)
        self.modulus = int(modulus)
        self.residue = int(residue)
        self.lo = int(lo)
        self.hi = int(hi)
        self.anchors = (int(anchors[0]), int(anchors[1]))
        self.validated = tuple(int(v) for v in validated)
        self.buffers = list(buffers)
        self.nodes = list(nodes)
        self.edges = list(edges)
        self._topo: Optional[List[int]] = None

    # ---- instantiation ----------------------------------------------

    def covers(self, s: int) -> bool:
        """Is ``s`` in the residue class this certificate is exact on?
        (Guard equality is the caller's key discipline; the congruence
        is the extra condition affinity needs.)"""
        return s > 0 and s % self.modulus == self.residue

    def instantiate(self, s: int) -> ScheduleIR:
        """The concrete ``repro-ir/1`` schedule at size ``s``.

        Refuses sizes outside the certificate's residue class — the
        affine interpolation is only proven there."""
        if not self.covers(s):
            raise SymbolicError(
                "SA-SYM-RANGE",
                f"size {s} is outside the certified residue class "
                f"(s % {self.modulus} == {self.residue})",
            )
        meta = dict(self.meta)
        meta["s"] = s
        meta["symbolic"] = True
        ir = ScheduleIR(
            meta=meta,
            buffers=[b.at(s) for b in self.buffers],
            nodes=[n.at(s) for n in self.nodes],
            edges=list(self.edges),
        )
        ir.validate()
        return ir

    def op_nbytes(self, s: int) -> List[int]:
        """Exact per-op byte counts at ``s``, in IR node order."""
        return [n.nbytes.at(s) for n in self.nodes]

    def compiled_nbytes(self, s: int) -> List[int]:
        """Exact per-op byte counts at ``s`` in *compiled* order — the
        toposort renumbering :func:`repro.sim.compiled.lower` applies,
        so the list aligns index-for-index with
        ``CompiledSchedule.nbytes``."""
        if self._topo is None:
            skeleton = ScheduleIR(
                meta={"nranks": self.meta.get("nranks", 0)},
                buffers=[b.at(self.lo) for b in self.buffers],
                nodes=[n.at(self.lo) for n in self.nodes],
                edges=list(self.edges),
            )
            self._topo = skeleton.toposort()
        per_node = self.op_nbytes(s)
        return [per_node[v] for v in self._topo]

    # ---- accounting --------------------------------------------------

    def dav(self) -> Affine:
        """Theorem 3.1 accounting as a symbolic polynomial: ``2n`` per
        copy, ``3n`` per reduce, summed over the DAG."""
        a = Fraction(0)
        b = Fraction(0)
        for n in self.nodes:
            kind = n.shape["kind"]
            if kind == "copy":
                w = 2
            elif kind.startswith("reduce"):
                w = 3
            else:
                continue
            a += w * n.nbytes.a
            b += w * n.nbytes.b
        return Affine(a, b)

    def signature(self) -> dict:
        """Stable shape summary for the golden symbolic-schedule tests:
        the op/edge census, the symbolic DAV polynomial and how many
        quantities actually vary with ``s``.  Machine- and timing-free
        like :meth:`ScheduleIR.signature`."""
        node_kinds: Dict[str, int] = {}
        var_ops = 0
        var_fps = 0
        for n in self.nodes:
            kind = n.shape["kind"]
            node_kinds[kind] = node_kinds.get(kind, 0) + 1
            if not n.nbytes.is_const:
                var_ops += 1
            for fp in n.reads + n.writes:
                if not (fp.off.is_const and fp.nbytes.is_const):
                    var_fps += 1
        edge_kinds: Dict[str, int] = {}
        for e in self.edges:
            edge_kinds[e.kind] = edge_kinds.get(e.kind, 0) + 1
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "node_kinds": dict(sorted(node_kinds.items())),
            "edge_kinds": dict(sorted(edge_kinds.items())),
            "buffers": len(self.buffers),
            "dav": self.dav().describe(),
            "variable_ops": var_ops,
            "variable_footprints": var_fps,
            "variable_buffers": sum(
                1 for b in self.buffers if not b.nbytes.is_const),
            "modulus": self.modulus,
        }

    # ---- serialization ----------------------------------------------

    def to_doc(self) -> dict:
        """JSON-safe certificate document (schema ``repro-symcert/1``)."""
        return {
            "schema": SYMCERT_SCHEMA,
            "meta": self.meta,
            "guards": self.guards,
            "modulus": self.modulus,
            "residue": self.residue,
            "lo": self.lo,
            "hi": self.hi,
            "anchors": list(self.anchors),
            "validated": list(self.validated),
            "dav": self.dav().to_json(),
            "buffers": [
                {"buf": b.buf, "nbytes": b.nbytes.to_json(), **b.shape}
                for b in self.buffers
            ],
            "nodes": [
                {
                    "node": n.node,
                    "nbytes": n.nbytes.to_json(),
                    "reads": [[fp.buf, fp.off.to_json(),
                               fp.nbytes.to_json()] for fp in n.reads],
                    "writes": [[fp.buf, fp.off.to_json(),
                                fp.nbytes.to_json()] for fp in n.writes],
                    **{f: _jsonable(n.shape[f]) for f in _SHAPE_FIELDS},
                }
                for n in self.nodes
            ],
            "edges": [[e.src, e.dst, e.kind] for e in self.edges],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "SymbolicSchedule":
        """Load a certificate; unsupported schemas are rejected up
        front naming the supported versions (the ``ScheduleSchemaError``
        discipline)."""
        schema = doc.get("schema") if isinstance(doc, dict) else None
        if schema not in SUPPORTED_SYMCERT_SCHEMAS:
            raise SymbolicError(
                "SA-SYM-SCHEMA",
                f"unsupported symbolic-certificate schema {schema!r}; "
                f"supported versions: "
                f"{', '.join(SUPPORTED_SYMCERT_SCHEMAS)}",
            )
        buffers = [
            SymbolicBuffer(
                buf=int(b["buf"]),
                nbytes=Affine.from_json(b["nbytes"]),
                shape={f: b[f] for f in _BUFFER_SHAPE_FIELDS},
            )
            for b in doc.get("buffers", ())
        ]
        nodes = []
        for nd in doc.get("nodes", ()):
            shape = {f: _retuple(nd[f]) for f in _SHAPE_FIELDS}
            nodes.append(SymbolicOp(
                node=int(nd["node"]),
                nbytes=Affine.from_json(nd["nbytes"]),
                reads=tuple(
                    SymbolicFootprint(buf, Affine.from_json(off),
                                      Affine.from_json(nb))
                    for buf, off, nb in nd.get("reads", ())),
                writes=tuple(
                    SymbolicFootprint(buf, Affine.from_json(off),
                                      Affine.from_json(nb))
                    for buf, off, nb in nd.get("writes", ())),
                shape=shape,
            ))
        edges = [Edge(src, dst, kind) for src, dst, kind
                 in doc.get("edges", ())]
        return cls(
            meta=doc.get("meta", {}), guards=doc.get("guards", {}),
            modulus=doc["modulus"], residue=doc["residue"],
            lo=doc["lo"], hi=doc["hi"],
            anchors=tuple(doc["anchors"]),  # type: ignore[arg-type]
            validated=tuple(doc.get("validated", ())),
            buffers=buffers, nodes=nodes, edges=edges,
        )


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def _retuple(value):
    if isinstance(value, list):
        return tuple(_retuple(v) for v in value)
    return value


# ---------------------------------------------------------------------------
# Structural unification
# ---------------------------------------------------------------------------


def _node_skeleton(n: OpNode) -> tuple:
    return (
        tuple(getattr(n, f) for f in _SHAPE_FIELDS),
        tuple(fp.buf for fp in n.reads),
        tuple(fp.buf for fp in n.writes),
    )


def _skeleton_mismatch(a: ScheduleIR, b: ScheduleIR) -> Optional[str]:
    """First structural difference between two captures, or ``None``."""
    if len(a.nodes) != len(b.nodes):
        return (f"op count differs: {len(a.nodes)} vs {len(b.nodes)} "
                "nodes — the region's guards do not pin the DAG shape")
    if len(a.buffers) != len(b.buffers):
        return f"buffer count differs: {len(a.buffers)} vs {len(b.buffers)}"
    for na, nb in zip(a.nodes, b.nodes):
        if _node_skeleton(na) != _node_skeleton(nb):
            return (f"node #{na.node} differs structurally: "
                    f"{na.describe()} vs {nb.describe()}")
    for ba, bb in zip(a.buffers, b.buffers):
        for f in _BUFFER_SHAPE_FIELDS:
            if getattr(ba, f) != getattr(bb, f):
                return (f"buffer {ba.buf} ({ba.name!r}) differs on "
                        f"{f}: {getattr(ba, f)!r} vs {getattr(bb, f)!r}")
    ea = sorted((e.src, e.dst, e.kind) for e in a.edges)
    eb = sorted((e.src, e.dst, e.kind) for e in b.edges)
    if ea != eb:
        extra = set(ea) ^ set(eb)
        sample = sorted(extra)[:4]
        return (f"dependency edges differ ({len(extra)} edge(s) not "
                f"shared, e.g. {sample})")
    return None


def unify(captures: Sequence[Tuple[int, ScheduleIR]], *,
          modulus: int, guards: Optional[dict] = None) -> SymbolicSchedule:
    """Lift concrete captures from one region into a symbolic schedule.

    Requires at least two distinct sizes, all congruent modulo
    ``modulus``.  Every capture must share the op-DAG skeleton —
    a mismatch raises :class:`SymbolicError` with code
    ``SA-SYM-SHAPE``.  The affine coefficients are fitted from the two
    *extreme* sizes; intermediate captures are left for the exactness
    pass to validate (held-out data, not training data).
    """
    if len(captures) < 2:
        raise SymbolicError(
            "SA-SYM-SHAPE",
            f"unification needs at least two captures, got {len(captures)}",
        )
    ordered = sorted(captures, key=lambda c: c[0])
    sizes = [s for s, _ in ordered]
    if len(set(sizes)) < 2:
        raise SymbolicError(
            "SA-SYM-SHAPE",
            f"unification needs two distinct sizes, got {sorted(set(sizes))}",
        )
    residue = sizes[0] % modulus
    for s in sizes[1:]:
        if s % modulus != residue:
            raise SymbolicError(
                "SA-SYM-RANGE",
                f"sizes {sizes[0]} and {s} are not congruent modulo the "
                f"region modulus {modulus}; footprints are only affine "
                "within one residue class",
            )
    (s0, lo_ir), (s1, hi_ir) = ordered[0], ordered[-1]
    for s, ir in ordered[1:]:
        why = _skeleton_mismatch(lo_ir, ir)
        if why is not None:
            raise SymbolicError(
                "SA-SYM-SHAPE",
                f"captures at s={s0} and s={s} do not unify: {why}",
            )

    def fit(v0: int, v1: int) -> Affine:
        return Affine.fit(s0, v0, s1, v1)

    nodes = []
    for na, nb in zip(lo_ir.nodes, hi_ir.nodes):
        nodes.append(SymbolicOp(
            node=na.node,
            shape={f: getattr(na, f) for f in _SHAPE_FIELDS},
            nbytes=fit(na.nbytes, nb.nbytes),
            reads=tuple(
                SymbolicFootprint(fa.buf, fit(fa.off, fb.off),
                                  fit(fa.nbytes, fb.nbytes))
                for fa, fb in zip(na.reads, nb.reads)),
            writes=tuple(
                SymbolicFootprint(fa.buf, fit(fa.off, fb.off),
                                  fit(fa.nbytes, fb.nbytes))
                for fa, fb in zip(na.writes, nb.writes)),
        ))
    buffers = [
        SymbolicBuffer(
            buf=ba.buf,
            shape={f: getattr(ba, f) for f in _BUFFER_SHAPE_FIELDS},
            nbytes=fit(ba.nbytes, bb.nbytes),
        )
        for ba, bb in zip(lo_ir.buffers, hi_ir.buffers)
    ]
    meta = {k: v for k, v in lo_ir.meta.items()
            if k not in ("s", "sim_time", "counters")}
    return SymbolicSchedule(
        meta=meta, guards=guards or {}, modulus=modulus, residue=residue,
        lo=s0, hi=s1, anchors=(s0, s1),
        validated=tuple(s for s, _ in ordered[1:-1]),
        buffers=buffers, nodes=nodes, edges=list(lo_ir.edges),
    )


# ---------------------------------------------------------------------------
# Certification passes (SA-SYM-*)
# ---------------------------------------------------------------------------


def _diff_concrete(sym: SymbolicSchedule, s: int,
                   cap: ScheduleIR) -> List[str]:
    """Every way ``sym.instantiate(s)`` differs from the capture."""
    try:
        inst = sym.instantiate(s)
    except SymbolicError as exc:
        return [str(exc)]
    diffs: List[str] = []
    why = _skeleton_mismatch(inst, cap)
    if why is not None:
        return [why]
    for ni, nc in zip(inst.nodes, cap.nodes):
        if ni.nbytes != nc.nbytes:
            diffs.append(f"node #{ni.node} nbytes {ni.nbytes} != "
                         f"captured {nc.nbytes}")
        for mode, a, b in (("read", ni.reads, nc.reads),
                           ("write", ni.writes, nc.writes)):
            for fa, fb in zip(a, b):
                if (fa.off, fa.nbytes) != (fb.off, fb.nbytes):
                    diffs.append(
                        f"node #{ni.node} {mode} footprint buf{fa.buf} "
                        f"[{fa.off}, {fa.end}) != captured "
                        f"[{fb.off}, {fb.end})")
    for bi, bc in zip(inst.buffers, cap.buffers):
        if bi.nbytes != bc.nbytes:
            diffs.append(f"buffer {bi.buf} ({bi.name!r}) extent "
                         f"{bi.nbytes} != captured {bc.nbytes}")
    return diffs


class SymbolicExactnessPass(Pass):
    """Certificate check (a): the symbolic schedule reproduces every
    concrete capture — anchors and held-out sizes — bitwise."""

    name = "sym-exact"
    codes = ("SA-SYM-EXACT", "SA-SYM-EXACT-OK")

    def __init__(self, sym: SymbolicSchedule,
                 captures: Sequence[Tuple[int, ScheduleIR]]):
        self.sym = sym
        self.captures = list(captures)

    def run(self, ir: ScheduleIR) -> List[Finding]:
        out: List[Finding] = []
        for s, cap in self.captures:
            diffs = _diff_concrete(self.sym, s, cap)
            if diffs:
                out.append(self._finding(
                    ir, "SA-SYM-EXACT", "error",
                    f"symbolic schedule does not reproduce the engine "
                    f"capture at s={s}: {diffs[0]}"
                    + (f" (+{len(diffs) - 1} more)" if len(diffs) > 1
                       else ""),
                    data={"s": s, "mismatches": len(diffs),
                          "first": diffs[:4]},
                ))
        out = _cap(out, self, ir, "SA-SYM-EXACT")
        if not out:
            held_out = [s for s, _ in self.captures
                        if s not in self.sym.anchors]
            out.append(self._finding(
                ir, "SA-SYM-EXACT-OK", "info",
                f"symbolic footprints reproduce {len(self.captures)} "
                f"engine capture(s) bitwise (anchors "
                f"{list(self.sym.anchors)}, held-out {held_out})",
                data={"anchors": list(self.sym.anchors),
                      "held_out": held_out},
            ))
        return out


class SymbolicDavPass(Pass):
    """Certificate check (b): symbolic DAV equals Theorem 3.1's closed
    form as a polynomial identity (coefficients, not samples)."""

    name = "sym-dav"
    codes = ("SA-SYM-DAV", "SA-SYM-DAV-OK", "SA-SYM-DAV-UNDER",
             "SA-SYM-DAV-SKIP")

    def __init__(self, sym: SymbolicSchedule):
        self.sym = sym

    def run(self, ir: ScheduleIR) -> List[Finding]:
        sym = self.sym
        d = sym.dav()
        meta = sym.meta
        kind = str(meta.get("kind", ""))
        algorithm = str(meta.get("dav_algorithm", ""))
        p = int(meta.get("nranks", 0))
        m = int(meta.get("m", 2))
        k = int(meta.get("k", 2))
        predicted = (predicted_dav(kind, algorithm, 1, p, m=m, k=k)
                     if kind and p > 1 else None)
        if predicted is None:
            return [self._finding(
                ir, "SA-SYM-DAV-SKIP", "info",
                f"no DAV model for {kind or '<ad-hoc>'}/{algorithm}; "
                f"symbolic DAV is {d.describe()}",
                data={"dav": d.describe()},
            )]
        # The closed forms are homogeneous-linear in s (every table row
        # is c(p, m, k) * s), so the identity has two clauses: the
        # symbolic constant term must vanish and the slope must match
        # the model coefficient.  Checked on the coefficients — one
        # verdict for the whole region, not one per size.
        coeff = float(predicted)
        data = {"dav": d.describe(), "model": f"{coeff:g}*s",
                "kind": kind, "algorithm": algorithm, "p": p}
        if d.b != 0:
            return [self._finding(
                ir, "SA-SYM-DAV", "error",
                f"symbolic DAV {d.describe()} has a constant term; "
                f"Theorem 3.1's closed form for {kind}/{algorithm} is "
                f"homogeneous in s — the region moves size-independent "
                "bytes the model does not account for", data=data,
            )]
        slope = float(d.a)
        if slope > coeff * (1.0 + REL_TOL):
            return [self._finding(
                ir, "SA-SYM-DAV", "error",
                f"symbolic DAV {d.describe()} exceeds the closed form "
                f"{coeff:g}*s for {kind}/{algorithm} at p={p} — "
                "redundant movement at every size in the region",
                data=data,
            )]
        if slope < coeff * (1.0 - REL_TOL):
            return [self._finding(
                ir, "SA-SYM-DAV-UNDER", "info",
                f"symbolic DAV {d.describe()} is under the modelled "
                f"{coeff:g}*s for {kind}/{algorithm} (moving less than "
                "modelled is not a bug)", data=data,
            )]
        return [self._finding(
            ir, "SA-SYM-DAV-OK", "info",
            f"symbolic DAV matches Theorem 3.1 as a polynomial "
            f"identity: {d.describe()} ≡ {coeff:g}*s for "
            f"{kind}/{algorithm} at p={p}", data=data,
        )]


#: refuse certification when the boundary affines cross more often
#: than this inside one region — each crossing-free segment needs a
#: concrete witness lint, and thousands of them means the region's
#: shape is churning, not invariant
MAX_WITNESSES = 64


class SymbolicBoundsPass(Pass):
    """Certificate check (c): buffer lints hold for *all* congruent
    sizes in ``[lo, hi]``, by interval arithmetic at the region edges.

    Soundness: an affine function attains its extrema at the interval
    endpoints, so a footprint bound that holds at both edges holds
    throughout.  The relational lints (overlap, uninit coverage) are
    built from comparisons of boundary affines; two affines change
    relative order only at their rational crossing point, so every
    verdict is constant on the crossing-free segments between
    consecutive interior crossings.  The pass enumerates those
    segments exactly and runs the concrete :class:`BufferPass` on one
    congruent witness size per segment (plus both edges): together the
    witnesses cover every congruent size in the interval.  A witness
    whose lint differs from the clean edges is ``SA-SYM-VARY`` — the
    region's verdicts are *not* size-invariant."""

    name = "sym-bounds"
    codes = ("SA-SYM-BOUNDS", "SA-SYM-VARY", "SA-SYM-BOUNDS-OK")

    def __init__(self, sym: SymbolicSchedule):
        self.sym = sym

    def run(self, ir: ScheduleIR) -> List[Finding]:
        sym = self.sym
        edges = (sym.lo, sym.hi)
        bounds: List[Finding] = []
        extents = {b.buf: b.nbytes for b in sym.buffers}
        for n in sym.nodes:
            for fp in n.reads + n.writes:
                cap = extents.get(fp.buf)
                for s in edges:
                    off, nb = fp.off(s), fp.nbytes(s)
                    limit = cap(s) if cap is not None else None
                    if off < 0 or nb < 0 or (limit is not None
                                             and off + nb > limit):
                        bounds.append(self._finding(
                            ir, "SA-SYM-BOUNDS", "error",
                            f"node #{n.node} footprint "
                            f"[{fp.off.describe()}, +{fp.nbytes.describe()})"
                            f" of buf{fp.buf} escapes at region edge "
                            f"s={s} (extent "
                            f"{cap.describe() if cap else '?'})",
                            nodes=(n.node,),
                            data={"s": s, "buf": fp.buf},
                        ))
                        break
        out = _cap(bounds, self, ir, "SA-SYM-BOUNDS")
        witnesses = self._witness_sizes()
        if witnesses is None:
            out.append(self._finding(
                ir, "SA-SYM-VARY", "error",
                f"boundary affines cross more than {MAX_WITNESSES} "
                f"times inside [{sym.lo}, {sym.hi}] — the region's "
                "lint verdicts churn with size; refusing to certify",
            ))
            witnesses = []
        buffer_pass = BufferPass()
        vary: List[Finding] = []
        for s in sorted({*edges, *witnesses}):
            try:
                inst = sym.instantiate(s)
            except SymbolicError as exc:
                out.append(self._finding(
                    ir, "SA-SYM-BOUNDS", "error",
                    f"cannot instantiate witness size s={s}: {exc}",
                ))
                continue
            findings = buffer_pass.run(inst)
            if s in edges:
                out.extend(findings)
                continue
            errors = [f for f in findings if f.severity == "error"]
            if errors:
                vary.append(self._finding(
                    ir, "SA-SYM-VARY", "error",
                    f"lint verdict changes inside the region: at the "
                    f"interior witness s={s}, {errors[0].code}: "
                    f"{errors[0].message}",
                    data={"s": s, "codes": sorted({f.code
                                                   for f in errors})},
                ))
        out.extend(_cap(vary, self, ir, "SA-SYM-VARY"))
        if not any(f.severity == "error" for f in out):
            out.append(self._finding(
                ir, "SA-SYM-BOUNDS-OK", "info",
                f"footprint bounds, overlap ordering and init coverage "
                f"hold for every s ≡ {sym.residue} (mod {sym.modulus}) "
                f"in [{sym.lo}, {sym.hi}] "
                f"({len(witnesses)} interior order segment(s) witnessed)",
                data={"lo": sym.lo, "hi": sym.hi,
                      "modulus": sym.modulus, "residue": sym.residue,
                      "witnesses": len(witnesses)},
            ))
        return out

    def _boundaries(self) -> Dict[int, List[Tuple[Fraction, Fraction]]]:
        """Distinct boundary affines per buffer: 0, the extent, and
        every footprint's start and end."""
        sym = self.sym
        per_buf: Dict[int, Dict[Tuple[Fraction, Fraction], None]] = {}
        for b in sym.buffers:
            per_buf.setdefault(b.buf, {})[(b.nbytes.a, b.nbytes.b)] = None
            per_buf[b.buf][(Fraction(0), Fraction(0))] = None
        for n in sym.nodes:
            for fp in n.reads + n.writes:
                bb = per_buf.setdefault(fp.buf, {})
                bb[(fp.off.a, fp.off.b)] = None
                bb[(fp.off.a + fp.nbytes.a, fp.off.b + fp.nbytes.b)] = None
        return {buf: list(affs) for buf, affs in per_buf.items()}

    def _witness_sizes(self) -> Optional[List[int]]:
        """One congruent size per crossing-free interior segment (and
        each congruent crossing point itself), or ``None`` when the
        crossing count exceeds :data:`MAX_WITNESSES`."""
        sym = self.sym
        lo, hi = Fraction(sym.lo), Fraction(sym.hi)
        cuts: set = set()
        for affs in self._boundaries().values():
            for i, (a1, b1) in enumerate(affs):
                for a2, b2 in affs[i + 1:]:
                    if a1 == a2:
                        continue
                    star = (b2 - b1) / (a1 - a2)
                    if lo < star < hi:
                        cuts.add(star)
                        if len(cuts) > MAX_WITNESSES:
                            return None
        witnesses: set = set()
        points = [lo] + sorted(cuts) + [hi]
        for left, right in zip(points, points[1:]):
            w = self._congruent_in(left, right)
            if w is not None:
                witnesses.add(w)
        for c in cuts:
            if c.denominator == 1 and sym.covers(int(c)):
                witnesses.add(int(c))
        return sorted(witnesses)

    def _congruent_in(self, left: Fraction,
                      right: Fraction) -> Optional[int]:
        """Smallest integer in the *open* interval congruent to the
        certificate's residue class, or ``None``."""
        sym = self.sym
        start = left.numerator // left.denominator + 1  # > left
        n = start + (sym.residue - start) % sym.modulus
        return n if Fraction(n) < right else None


# ---------------------------------------------------------------------------
# Guard partition check (d)
# ---------------------------------------------------------------------------


def check_guard_partition(kind: str, p: int, machine: MachineSpec, *,
                          imax: int, policy: str = "adaptive",
                          sizes: Sequence[int]) -> List[Finding]:
    """Certificate check (d): over the swept sizes, the decision guards
    are exhaustive (every size evaluates to a region) and mutually
    exclusive as *intervals* (once the sweep leaves a region it never
    re-enters it — regions partition the sorted size axis)."""
    import json as _json

    case = f"{kind} p={p}"
    out: List[Finding] = []
    seen_order: List[str] = []
    first_size: Dict[str, int] = {}
    for s in sorted(set(sizes)):
        try:
            guards = decision_guards(kind, s, p, machine, imax=imax,
                                     policy=policy)
        except (KeyError, ValueError) as exc:
            out.append(Finding(
                code="SA-SYM-GUARD", severity="error",
                message=f"guards are not exhaustive: no region for "
                        f"s={s} ({exc})",
                pass_name="sym-guards", case=case, data={"s": s},
            ))
            continue
        key = _json.dumps(guards, sort_keys=True)
        if seen_order and seen_order[-1] == key:
            continue
        if key in first_size:
            out.append(Finding(
                code="SA-SYM-GUARD", severity="error",
                message=f"guards are not exclusive as intervals: the "
                        f"region of s={first_size[key]} reappears at "
                        f"s={s} after a different region — region "
                        "boundaries are not monotone in s",
                pass_name="sym-guards", case=case,
                data={"s": s, "first": first_size[key]},
            ))
            continue
        first_size[key] = s
        seen_order.append(key)
    if not out:
        out.append(Finding(
            code="SA-SYM-GUARD-OK", severity="info",
            message=f"{len(set(sizes))} swept sizes partition into "
                    f"{len(seen_order)} contiguous decision regions",
            pass_name="sym-guards", case=case,
            data={"sizes": len(set(sizes)),
                  "regions": len(seen_order)},
        ))
    return out


# ---------------------------------------------------------------------------
# Region certification driver
# ---------------------------------------------------------------------------


def probe_partners(kind: str, base: int, p: int, machine: MachineSpec, *,
                   imax: int, policy: str = "adaptive", need: int,
                   kmax: int = PROBE_KMAX) -> List[int]:
    """Guard-equal sizes congruent to ``base`` modulo the region
    modulus, found by probing ``base ± k * modulus``.

    Decision regions over the benchmark sweeps are often singletons
    (power-of-two sizes hop regions quickly), so certification
    synthesizes its own in-region anchors instead of relying on the
    sweep to provide two.  ``k`` runs geometrically first (1, 2, 4,
    ...): spread-out anchors both stretch the certified interval and
    make held-out validation a stronger test of the affine form, with
    a linear scan as fallback for narrow regions."""
    guards0 = decision_guards(kind, base, p, machine, imax=imax,
                              policy=policy)
    modulus = region_modulus(p, machine)

    def in_region(cand: int) -> bool:
        if cand <= 0 or cand == base:
            return False
        try:
            guards = decision_guards(kind, cand, p, machine,
                                     imax=imax, policy=policy)
        except (KeyError, ValueError):
            return False
        return guards == guards0

    out: set = set()
    k = 1
    while k <= kmax:  # full geometric ladder: stretch the interval
        for cand in (base + k * modulus, base - k * modulus):
            if in_region(cand):
                out.add(cand)
        k *= 2
    k = 1
    while len(out) < need and k <= kmax:  # linear fill: narrow regions
        for cand in (base + k * modulus, base - k * modulus):
            if in_region(cand):
                out.add(cand)
        k += 1
    cands = sorted(out)
    if len(cands) <= need:
        return cands
    # keep the extremes (widest certified span) and sample the rest
    # evenly so held-out sizes probe the whole interval
    picks = sorted({round(i * (len(cands) - 1) / (need - 1))
                    for i in range(need)})
    chosen = [cands[i] for i in picks]
    for c in cands:  # rounding collisions: fill back to `need`
        if len(chosen) >= need:
            break
        if c not in chosen:
            chosen.append(c)
    return sorted(chosen)


def _table_row(kind: str, algorithm: str) -> str:
    """Map a bench cell's display label (``dpml2-allreduce``) onto the
    ``models.dav`` Table 1-3 row name (``dpml2``) so the symbolic DAV
    pass checks the polynomial identity instead of skipping.  bcast and
    allgather key on kind alone, so the pipelined label maps to ``""``
    (mirroring ``YHCCL.lint``'s registry recovery)."""
    suffix = "-" + kind.replace("_", "-")
    name = algorithm[:-len(suffix)] if algorithm.endswith(suffix) \
        else algorithm
    return "" if name == "pipelined" else name


def capture_region_ir(spec, machine: MachineSpec, p: int,
                      nbytes: int) -> ScheduleIR:
    """One full-fidelity capture for certification: the bench cell run
    with access tracing *on* (footprints are the certified content —
    the light capture :func:`repro.bench.compiled.capture_schedule`
    uses would have nothing to certify)."""
    from repro.analysis.static.extract import ir_from_trace, machine_meta
    from repro.library.communicator import Communicator

    comm = Communicator(p, machine=machine, functional=False, trace=True,
                        trace_accesses=True)
    cell = spec.resolve()(comm, nbytes)
    res = comm.engine.last_result
    if res is None or res.trace is None:
        raise RuntimeError("cell runner did not execute the engine")
    run_trace = res.trace.slice_last_run(res.first_record, res.first_span)
    return ir_from_trace(run_trace, buffers=comm.engine.buffers, meta={
        "label": f"{spec.family}/{spec.kind} p={p} s={nbytes}",
        "collective": spec.kind,
        "kind": spec.kind,
        "algorithm": cell.algorithm,
        "dav_algorithm": _table_row(spec.kind, cell.algorithm),
        "nranks": p,
        "s": nbytes,
        "m": machine.sockets,
        "machine": machine_meta(machine),
        "sim_time": res.time,
    })


def _spec_policy(spec) -> str:
    """Copy policy the cell's guards are evaluated under (the bench
    layer's convention: the library stack always runs adaptive)."""
    runner = spec.describe()
    if runner.get("family") == "yhccl":
        return "adaptive"
    return runner.get("policy", "memmove")


CaptureFn = Callable[[object, MachineSpec, int, int], ScheduleIR]


def certify_region(spec, machine: MachineSpec, p: int, base: int, *,
                   validate: int = DEFAULT_VALIDATE,
                   capture: Optional[CaptureFn] = None,
                   ) -> Tuple[Optional[SymbolicSchedule], Report]:
    """Certify the decision region containing ``(spec, p, base)``.

    Probes ``validate + 1`` guard-equal partner sizes, captures all of
    them plus the base with access tracing, unifies the two extremes
    into a symbolic schedule and validates it against the remaining
    ``>= validate`` held-out captures, then runs the full SA-SYM-*
    pass set.  Returns ``(symbolic schedule or None, report)`` — a
    failed certification reports findings, never silently passes.
    """
    from repro.bench.runners import resolve_imax

    if capture is None:
        capture = capture_region_ir
    imax = resolve_imax(spec.imax, machine)
    policy = _spec_policy(spec)
    case = f"{spec.family}/{spec.kind} p={p} s={base}"
    report = Report(case=case)
    modulus = region_modulus(p, machine)
    partners = probe_partners(spec.kind, base, p, machine, imax=imax,
                              policy=policy, need=validate + 1)
    if len(partners) < validate + 1:
        report.extend("sym-certify", [Finding(
            code="SA-SYM-ANCHORS", severity="error",
            message=f"only {len(partners)} guard-equal partner size(s) "
                    f"within ±{PROBE_KMAX} modulus steps of s={base}; "
                    f"need {validate + 1} for anchored validation — "
                    "region too narrow to certify",
            pass_name="sym-certify", case=case,
            data={"base": base, "modulus": modulus,
                  "partners": partners},
        )])
        return None, report
    sizes = sorted({base, *partners})
    captures = [(s, capture(spec, machine, p, s)) for s in sizes]
    try:
        sym = unify(captures, modulus=modulus,
                    guards=decision_guards(spec.kind, base, p, machine,
                                           imax=imax, policy=policy))
    except SymbolicError as exc:
        report.extend("sym-certify", [Finding(
            code=exc.code, severity="error", message=str(exc),
            pass_name="sym-certify", case=case,
            data={"sizes": sizes},
        )])
        return None, report
    report.signature = sym.signature()
    anchor_ir = captures[0][1]
    for pass_obj in (SymbolicExactnessPass(sym, captures),
                     SymbolicDavPass(sym),
                     SymbolicBoundsPass(sym)):
        report.extend(pass_obj.name, pass_obj.run(anchor_ir))
    return (sym if report.ok else None), report


#: default base-size ceiling for matrix certification: regions above
#: this ship DAGs with hundreds of pipeline rounds (capture cost grows
#: with op count, not bytes) and are certified on demand by the bench
#: ``--certified`` path instead; skipped bases are *reported*, never
#: silently dropped
DEFAULT_MAX_BASE = 4 * 1024 * 1024


def certify_matrix(machine: MachineSpec, *,
                   kinds: Optional[Sequence[str]] = None,
                   ps: Sequence[int] = (2, 4),
                   validate: int = DEFAULT_VALIDATE,
                   max_base: int = DEFAULT_MAX_BASE,
                   sweep: Optional[Dict[str, Sequence[int]]] = None,
                   capture: Optional[CaptureFn] = None,
                   progress: Optional[Callable[[str], None]] = None,
                   ) -> List[Report]:
    """Certify every decision region the default sweeps touch, for
    every ``(collective, p)`` cell of the adaptive library matrix.

    For each cell: one guard-partition report over the *full* sweep,
    then one certification report per distinct region whose first
    swept size is at most ``max_base`` (``0`` disables the cap).
    Regions above the cap are listed in the guard report — the cap is
    a time budget, not a silent truncation.  This is the ``python -m
    repro lint --certify-regions`` and CI ``certify-regions``
    workload."""
    from repro.bench.runners import resolve_imax
    from repro.bench.sizes import SIZES_ALLGATHER, SIZES_LARGE
    from repro.bench.spec import yhccl_spec
    from repro.models.nt_model import KNOWN_KINDS

    reports: List[Report] = []
    for kind in (KNOWN_KINDS if kinds is None else kinds):
        spec = yhccl_spec(kind)
        sizes = (sweep or {}).get(kind) or (
            SIZES_ALLGATHER if kind == "allgather" else SIZES_LARGE)
        for p in ps:
            imax = resolve_imax(spec.imax, machine)
            case = f"{kind} p={p}"
            guard_report = Report(case=f"{case} guards")
            guard_report.extend("sym-guards", check_guard_partition(
                kind, p, machine, imax=imax, policy="adaptive",
                sizes=sizes))
            bases: List[int] = []
            skipped: List[int] = []
            seen: List[dict] = []
            for s in sorted(set(sizes)):
                guards = decision_guards(kind, s, p, machine,
                                         imax=imax, policy="adaptive")
                if guards in seen:
                    continue
                seen.append(guards)
                if max_base and s > max_base:
                    skipped.append(s)
                else:
                    bases.append(s)
            if skipped:
                guard_report.extend("sym-certify", [Finding(
                    code="SA-SYM-CAPPED", severity="info",
                    message=f"{len(skipped)} region(s) above the "
                            f"{max_base} B certification cap not "
                            f"certified here (bases {skipped}); the "
                            "bench --certified path certifies them on "
                            "demand",
                    pass_name="sym-certify", case=case,
                    data={"max_base": max_base, "bases": skipped},
                )])
            reports.append(guard_report)
            for base in bases:
                if progress is not None:
                    progress(f"[certify] {kind} p={p} region@{base} ...")
                _, report = certify_region(spec, machine, p, base,
                                           validate=validate,
                                           capture=capture)
                reports.append(report)
    return reports
