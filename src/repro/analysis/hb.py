"""Happens-before race detection over engine event traces.

The engine executes one concrete interleaving, but the *happens-before*
relation it records (post/wait edges, barrier joins) covers every
interleaving a real machine could exhibit.  Two accesses to overlapping
bytes of one buffer, from different ranks, at least one a write, with
no happens-before path between them, are a data race: some legal
schedule orders them the other way and changes the result.  This is the
same analysis ThreadSanitizer performs dynamically for native code,
specialized to the engine's three synchronization primitives.

Vector-clock construction (standard Mattern/Fidge clocks):

* every access or post by rank ``r`` increments ``VC[r][r]`` and is
  stamped with a snapshot of ``VC[r]``;
* a released ``wait`` joins the waiter's clock with the snapshots of
  the posts it matched (the engine records exactly which posts those
  were);
* a completed ``barrier`` joins all members' clocks;
* a ``run_start`` marker joins *all* ranks (back-to-back collectives on
  one engine are separated by the driver loop draining every rank).

Access ``a`` happens-before access ``b`` iff
``a.snapshot[a.rank] <= b.snapshot[a.rank]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.trace import AccessEvent, SyncEvent, Trace

#: cap on fully-detailed race reports; detection always counts all races
MAX_REPORTED_RACES = 50


@dataclass(frozen=True)
class Race:
    """Two unordered conflicting accesses to one buffer."""

    buf_name: str
    buf_id: int
    shared: bool
    first: AccessEvent
    second: AccessEvent
    overlap: Tuple[int, int]  # [lo, hi) byte range both accesses touch

    @property
    def kind(self) -> str:
        modes = {self.first.mode, self.second.mode}
        return "write-write" if modes == {"w"} else "read-write"

    def describe(self) -> str:
        lo, hi = self.overlap
        return (
            f"{self.kind} race on {self.buf_name}[{lo}, {hi}): "
            f"{self.first.describe()} is unordered with "
            f"{self.second.describe()} — no post/wait or barrier chain "
            f"connects them"
        )


@dataclass(frozen=True)
class StampedAccess:
    """An access event plus its rank's vector-clock snapshot."""

    event: AccessEvent
    snapshot: Tuple[int, ...]

    def happens_before(self, other: "StampedAccess") -> bool:
        r = self.event.rank
        return self.snapshot[r] <= other.snapshot[r]


def stamp_accesses(events: Sequence[object], nranks: int
                   ) -> List[StampedAccess]:
    """Run the vector clocks over ``events`` (global execution order)."""
    vc = [[0] * nranks for _ in range(nranks)]
    post_snap: Dict[int, Tuple[int, ...]] = {}
    out: List[StampedAccess] = []
    for ev in events:
        if isinstance(ev, AccessEvent):
            row = vc[ev.rank]
            row[ev.rank] += 1
            out.append(StampedAccess(ev, tuple(row)))
        elif isinstance(ev, SyncEvent):
            if ev.kind == "post":
                row = vc[ev.rank]
                row[ev.rank] += 1
                post_snap[ev.seq] = tuple(row)
            elif ev.kind == "wait":
                row = vc[ev.rank]
                for pseq in ev.matched:
                    snap = post_snap.get(pseq)
                    if snap is None:
                        continue
                    for i in range(nranks):
                        if snap[i] > row[i]:
                            row[i] = snap[i]
                row[ev.rank] += 1
            elif ev.kind == "barrier":
                _join(vc, ev.group, nranks)
            elif ev.kind == "run_start":
                _join(vc, range(nranks), nranks)
            # "blocked" events order nothing
    return out


def _join(vc: List[List[int]], members, nranks: int) -> None:
    members = [m for m in members if 0 <= m < nranks]
    joined = [max(vc[m][i] for m in members) for i in range(nranks)]
    for m in members:
        row = vc[m]
        for i in range(nranks):
            row[i] = joined[i]
        row[m] += 1


class RaceList(List[Race]):
    """The reported races, carrying **exact** per-kind totals.

    Reporting is truncated at ``max_reports`` but :attr:`kind_totals`
    counts every race found (``{"write-write": n, "read-write": m}``),
    so a truncated report can never read as "only N races".
    """

    def __init__(self, items: Sequence[Race] = (),
                 kind_totals: Optional[Dict[str, int]] = None):
        super().__init__(items)
        self.kind_totals: Dict[str, int] = dict(kind_totals or {})


def find_races(stamped: Sequence[StampedAccess],
               *, max_reports: int = MAX_REPORTED_RACES
               ) -> Tuple[RaceList, int]:
    """All unordered conflicting access pairs.

    Returns ``(reported_races, total_count)``; reporting is capped at
    ``max_reports`` but counting — overall and per kind (see
    :class:`RaceList`) — is exact.

    Complexity: accesses are bucketed per buffer into *elementary
    intervals* (the ranges cut by every access boundary), so only pairs
    that genuinely share bytes are compared — the all-pairs scan over a
    sliced collective trace would be quadratic in the slice count.
    """
    by_buf: Dict[int, List[StampedAccess]] = {}
    for sa in stamped:
        by_buf.setdefault(sa.event.buf_id, []).append(sa)

    races: List[Race] = []
    seen: set = set()
    total = 0
    kind_totals: Dict[str, int] = {}
    for accesses in by_buf.values():
        if len({sa.event.rank for sa in accesses}) < 2:
            continue
        for bucket in _interval_buckets(accesses):
            for i, a in enumerate(bucket):
                ea = a.event
                for b in bucket[i + 1:]:
                    eb = b.event
                    if ea.rank == eb.rank:
                        continue
                    if ea.mode == "r" and eb.mode == "r":
                        continue
                    if a.happens_before(b) or b.happens_before(a):
                        continue
                    key = (min(ea.seq, eb.seq), max(ea.seq, eb.seq))
                    if key in seen:
                        continue
                    seen.add(key)
                    total += 1
                    kind = ("write-write" if ea.mode == "w" and eb.mode == "w"
                            else "read-write")
                    kind_totals[kind] = kind_totals.get(kind, 0) + 1
                    if len(races) < max_reports:
                        lo = max(ea.off, eb.off)
                        hi = min(ea.end, eb.end)
                        races.append(
                            Race(
                                buf_name=ea.buf_name,
                                buf_id=ea.buf_id,
                                shared=ea.shared,
                                first=ea if ea.seq < eb.seq else eb,
                                second=eb if ea.seq < eb.seq else ea,
                                overlap=(lo, hi),
                            )
                        )
    return RaceList(races, kind_totals), total


def _interval_buckets(accesses: Sequence[StampedAccess]
                      ) -> List[List[StampedAccess]]:
    """Group accesses by the elementary byte intervals they cover.

    Boundaries are every access start/end; each elementary interval
    collects the accesses spanning it.  Any overlapping pair shares at
    least one elementary interval, so checking within buckets is
    complete; pairs are deduplicated by the caller.
    """
    bounds = sorted({sa.event.off for sa in accesses}
                    | {sa.event.end for sa in accesses})
    index = {b: i for i, b in enumerate(bounds)}
    buckets: List[List[StampedAccess]] = [[] for _ in range(len(bounds) - 1)]
    for sa in accesses:
        lo = index[sa.event.off]
        hi = index[sa.event.end]
        for k in range(lo, hi):
            buckets[k].append(sa)
    return [b for b in buckets if len(b) > 1]


def race_check(trace: Trace, nranks: int,
               *, max_reports: int = MAX_REPORTED_RACES
               ) -> Tuple[RaceList, int]:
    """Stamp a trace's events and return its races."""
    stamped = stamp_accesses(trace.events, nranks)
    return find_races(stamped, max_reports=max_reports)
