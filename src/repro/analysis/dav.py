"""DAV cross-check: traced data-access volume vs the paper's formulas.

The trace records every copy and reduce with its byte count, so the
*measured* DAV of a run is ``2 * copy_bytes + 3 * reduce_bytes`` —
each copy reads and writes ``n`` bytes (2n accesses), each reduce reads
two operands and writes one (3n), per Section 3's accounting
(Theorem 3.1).  The closed-form rows in :mod:`repro.models.dav`
(``paper=False`` variants) predict exactly this number for each
implementation; a collective that moves *more* than its formula has a
schedule bug (a redundant copy, an oversized slice), which this check
turns into a hard failure.

Collectives the paper has no table row for (``bcast``, ``allgather``)
carry locally-derived formulas; anything else is reported as skipped,
never silently passed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.models.dav import implementation_dav
from repro.sim.trace import Trace

#: relative tolerance for float formula vs integer byte counters
REL_TOL = 1e-9


@dataclass(frozen=True)
class DavCheck:
    """Outcome of comparing a trace's DAV against its formula.

    ``status`` is ``"ok"``, ``"fail"`` or ``"skipped"`` (no model for
    this collective).
    """

    status: str
    measured: float
    predicted: Optional[float]
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "fail"

    def describe(self) -> str:
        if self.status == "skipped":
            return f"DAV check skipped: {self.detail}"
        rel = ""
        if self.predicted:
            rel = f" ({self.measured / self.predicted:.4f}x predicted)"
        return (f"DAV {self.status}: measured {self.measured:.0f} B, "
                f"predicted {self.predicted:.0f} B{rel}{self.detail}")


def traced_dav(trace: Trace) -> float:
    """Data-access volume of a traced run (bytes touched, Thm 3.1)."""
    return 2.0 * trace.copy_bytes() + 3.0 * trace.reduce_bytes()


# Formulas for collectives outside Tables 1-3, derived from this
# package's implementations the same way the tables' *_impl variants
# were (each term is one copy/reduce pass over s or s/p bytes):
#   bcast             root writes shm (2s), p-1 readers copy out (2s each)
#   allgather         p ranks copy in s (2s each), p copy out ps (2ps each)
#   reduce_scatter_v  the MA pipeline on ragged counts; total is still s,
#                     so Table 1's MA row applies verbatim
#   allgather_v       total contribution s copied in once, s copied out
#                     by each of p ranks
_EXTRA_DAV: Dict[str, Callable[[int, int], float]] = {
    "bcast": lambda s, p: 2.0 * s * p,
    "allgather": lambda s, p: 2.0 * s * p + 2.0 * s * p * p,
    "reduce_scatter_v": lambda s, p: s * (3.0 * p - 1.0),
    "allgather_v": lambda s, p: 2.0 * s * (p + 1.0),
}


def predicted_dav(kind: str, algorithm: str, s: int, p: int, *,
                  m: int = 2, k: int = 2) -> Optional[float]:
    """Expected DAV, or ``None`` when no model covers the collective."""
    if kind in _EXTRA_DAV:
        return _EXTRA_DAV[kind](s, p)
    try:
        return implementation_dav(kind, algorithm, s, p, m=m, k=k)
    except (KeyError, ValueError):
        return None


def check_dav(trace: Trace, kind: str, algorithm: str, s: int, p: int, *,
              m: int = 2, k: int = 2) -> DavCheck:
    """Compare a trace's measured DAV against the formula for
    ``(kind, algorithm)``; exceeding the prediction is a failure."""
    measured = traced_dav(trace)
    if p == 1:
        # every collective degenerates to local copies; the table
        # formulas assume p >= 2 (ring's 5s(p-1) would predict 0)
        return DavCheck(
            status="skipped", measured=measured, predicted=None,
            detail="p=1 degenerate run (Table 1-3 formulas assume p >= 2)",
        )
    predicted = predicted_dav(kind, algorithm, s, p, m=m, k=k)
    if predicted is None:
        return DavCheck(
            status="skipped", measured=measured, predicted=None,
            detail=f"no DAV model for {kind}/{algorithm}",
        )
    if measured > predicted * (1.0 + REL_TOL):
        return DavCheck(
            status="fail", measured=measured, predicted=predicted,
            detail=(f" — {kind}/{algorithm} moved "
                    f"{measured - predicted:.0f} B more than Theorem 3.1 "
                    f"predicts at s={s}, p={p}"),
        )
    detail = ""
    if measured < predicted * (1.0 - REL_TOL):
        detail = " (under prediction: schedule moved less than modelled)"
    return DavCheck(status="ok", measured=measured, predicted=predicted,
                    detail=detail)
