"""Command-line front end: ``python -m repro <command>``.

Commands
--------

``osu <collective>``
    OSU-micro-benchmark-style latency sweep on a simulated node
    (the artifact's Appendix C.3 workflow).

``compare <collective>``
    The artifact's S3 step: YHCCL priority=100 vs priority=0 (vendor
    fallback), side by side.

``report``
    Collect the benchmark suite's result tables — legacy ``*.txt``
    tables and ``repro-bench/1`` ``BENCH_*.json`` sweeps — into one
    markdown report (run ``python -m repro bench all`` first).

``trace <collective>``
    Export one traced run as Chrome trace-event / Perfetto JSON
    (per-rank tracks, phase spans, sync flow arrows, byte counters)
    plus the per-rank counter registry and its Theorem 3.1 DAV
    cross-check (see ``docs/observability.md``).

``info``
    Print the machine presets and registered algorithms.

``analyze <collective>``
    Happens-before schedule analysis: trace a collective and check for
    data races, deadlocks, schedule lints and DAV regressions (see
    ``docs/analysis.md``).  ``analyze all`` sweeps the whole matrix;
    exits non-zero when any check fails.

``verify <collective>``
    Exhaustive schedule verification: DPOR model checking of every
    Mazurkiewicz-distinct interleaving at small rank counts, plus an
    optional simulated-memory sanitizer (``--sanitize``).  Failures
    are minimized to replayable schedule certificates
    (``--cert-out``); ``--replay`` re-runs a saved certificate.

``bench <name>|all``
    The benchmark suite: fans sweep cells out over worker processes
    (``--jobs N``), memoizes results in ``benchmarks/results/cache/``
    and serializes every sweep to ``BENCH_*.json`` plus a consolidated
    ``BENCH_summary.json`` (see ``docs/benchmarks.md``).
    ``--compiled`` replays cells through compiled schedules —
    vectorized, bitwise-identical re-simulation (see
    ``docs/compiled.md``).

``lint <collective>|all``
    Static schedule analysis: extract each registered schedule into an
    op-dependency IR (one traced run at small p) and run the pass
    pipeline — deadlock freedom, Theorem 3.1 DAV, buffer lints, NUMA /
    false-sharing placement, critical-path bound (see
    ``docs/static_analysis.md``).  Exits non-zero on error-severity
    findings; ``--json`` shares the Finding format with ``analyze
    --json``.
"""

from __future__ import annotations

import argparse
import sys

from repro.library.mpi import ALGORITHMS, implementations
from repro.library.osu import COLLECTIVES, DEFAULT_RANGE, OSUBenchmark, \
    compare_priorities
from repro.machine.spec import PRESETS


def _parse_range(text: str) -> tuple:
    lo, _, hi = text.partition(":")
    return (int(lo), int(hi or lo))


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("collective", choices=COLLECTIVES)
    p.add_argument("-n", "--nranks", type=int, default=64)
    p.add_argument("--machine", default="NodeA", choices=sorted(PRESETS))
    p.add_argument("-m", "--msg-range", type=_parse_range,
                   default=DEFAULT_RANGE, metavar="LO:HI")
    p.add_argument("--vendor", default="Open MPI",
                   choices=implementations())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="YHCCL reproduction: simulated collective benchmarks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    osu = sub.add_parser("osu", help="OSU-style latency sweep")
    _add_common(osu)
    osu.add_argument("-c", "--validate", action="store_true",
                     help="functional validation (slower; real payloads)")
    osu.add_argument("--no-yhccl", action="store_true",
                     help="disable YHCCL (vendor fallback, priority=0)")

    cmp_p = sub.add_parser("compare", help="YHCCL on vs off, side by side")
    _add_common(cmp_p)

    sub.add_parser("info", help="presets and algorithm registry")

    ana = sub.add_parser(
        "analyze", help="happens-before race/deadlock/DAV analysis"
    )
    ana.add_argument("collective",
                     help="matrix name (see 'info') or 'all'")
    ana.add_argument("-n", "--nranks", type=int, default=8)
    ana.add_argument("-s", "--size", type=int, default=4096,
                     help="message size in bytes (default 4096)")
    ana.add_argument("--machine", default="none",
                     choices=["none", "both"] + sorted(PRESETS),
                     help="machine preset, 'both' for NodeA+NodeB, "
                          "'none' for pure functional (default)")
    ana.add_argument("--schedule-seed", type=int, default=None,
                     help="randomize the engine schedule")
    ana.add_argument("--json", action="store_true",
                     help="machine-readable findings on stdout "
                          "(schema repro-analyze/1; progress on stderr)")

    ver = sub.add_parser(
        "verify", help="DPOR exhaustive interleaving verification"
    )
    ver.add_argument("collective", nargs="?", default="all",
                     help="matrix name (see 'info') or 'all'")
    ver.add_argument("-n", "--ranks", type=int, default=3,
                     help="rank count to explore at (default 3; keep <= 4)")
    ver.add_argument("-s", "--size", type=int, default=1024,
                     help="message size in bytes (default 1024)")
    ver.add_argument("--max-schedules", type=int, default=None,
                     help="exploration budget per case (default 1000)")
    ver.add_argument("--sanitize", action="store_true",
                     help="byte-granular shadow-memory checks per access")
    ver.add_argument("--cert-out", default="",
                     help="write failing schedule certificates (JSON) "
                          "into this directory")
    ver.add_argument("--replay", default="",
                     help="replay a saved certificate file instead of "
                          "exploring")

    rep = sub.add_parser("report", help="assemble benchmark result report")
    rep.add_argument("--results", default="benchmarks/results")
    rep.add_argument("--out", default="")

    from repro.obs.cli import add_trace_parser

    add_trace_parser(sub)

    from repro.bench.cli import add_bench_parser

    add_bench_parser(sub)

    from repro.analysis.static.cli import add_lint_parser

    add_lint_parser(sub)

    args = parser.parse_args(argv)

    if args.command == "info":
        print("machine presets:")
        for name, m in PRESETS.items():
            print(f"  {name}: {m.sockets}x{m.socket.cores} cores, "
                  f"L3 {m.socket.l3.size >> 20}MB"
                  f"{'' if m.socket.l3.inclusive else ' (non-inclusive)'}")
        print("\nvendor models:", ", ".join(implementations()))
        print("algorithms:", ", ".join(sorted(ALGORITHMS)))
        return 0

    if args.command == "osu":
        bench = OSUBenchmark(
            args.collective, nranks=args.nranks, machine=args.machine,
            msg_range=args.msg_range, validate=args.validate,
            use_yhccl=not args.no_yhccl, vendor=args.vendor,
        )
        print(bench.render(bench.run()))
        return 0

    if args.command == "report":
        from pathlib import Path

        from repro.reporting import build_report, write_report

        results = Path(args.results)
        try:
            if args.out:
                path = write_report(results, Path(args.out))
                print(f"wrote {path}")
            else:
                print(build_report(results))
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.command == "analyze":
        from repro.analysis.runner import analyze_collective, render_results
        from repro.analysis.static.report import (
            findings_from_analysis,
            findings_to_json,
        )

        if args.machine == "none":
            machines = [None]
        elif args.machine == "both":
            machines = [PRESETS["NodeA"], PRESETS["NodeB"]]
        else:
            machines = [PRESETS[args.machine]]
        failed = False
        json_cases = []
        for mach in machines:
            label = mach.name if mach is not None else "functional"
            out = sys.stderr if args.json else sys.stdout
            print(f"== {label} (p={args.nranks}, s={args.size}) ==",
                  file=out)
            try:
                results = analyze_collective(
                    args.collective, machine=mach, nranks=args.nranks,
                    s=args.size, schedule_seed=args.schedule_seed,
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(render_results(results), file=out)
            failed = failed or any(not r.ok for r in results)
            for res in results:
                json_cases.append({
                    "case": res.case.label,
                    "machine": label,
                    "ok": res.ok,
                    "findings": [f.to_dict()
                                 for f in findings_from_analysis(res)],
                })
        if args.json:
            print(findings_to_json({
                "schema": "repro-analyze/1",
                "nranks": args.nranks,
                "s": args.size,
                "cases": json_cases,
                "ok": not failed,
            }, indent=2))
        return 1 if failed else 0

    if args.command == "verify":
        from pathlib import Path

        from repro.analysis.mc import (
            DEFAULT_BUDGET,
            render_verification,
            replay_certificate,
            verify_collective,
        )
        from repro.sim.replay import certificate_from_json, certificate_to_json

        if args.replay:
            try:
                cert = certificate_from_json(Path(args.replay).read_text())
                outcome = replay_certificate(cert)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(cert.describe())
            print(outcome.describe())
            return 0 if outcome.reproduced else 1
        budget = (args.max_schedules if args.max_schedules is not None
                  else DEFAULT_BUDGET)
        try:
            results = verify_collective(
                args.collective, nranks=args.ranks, s=args.size,
                sanitize=args.sanitize, max_schedules=budget,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_verification(results))
        if args.cert_out:
            out = Path(args.cert_out)
            out.mkdir(parents=True, exist_ok=True)
            for res in results:
                if res.certificate is None:
                    continue
                path = out / f"{res.label.replace('/', '_')}.cert.json"
                path.write_text(certificate_to_json(res.certificate))
                print(f"wrote {path}")
        return 1 if any(not r.ok for r in results) else 0

    if args.command == "bench":
        from repro.bench.cli import run_bench_command

        return run_bench_command(args)

    if args.command == "trace":
        from repro.obs.cli import run_trace_command

        return run_trace_command(args)

    if args.command == "lint":
        from repro.analysis.static.cli import run_lint_command

        return run_lint_command(args)

    if args.command == "compare":
        print(compare_priorities(
            args.collective, nranks=args.nranks, machine=args.machine,
            msg_range=args.msg_range, vendor=args.vendor,
        ))
        return 0

    return 2  # pragma: no cover - argparse enforces commands


if __name__ == "__main__":
    sys.exit(main())
