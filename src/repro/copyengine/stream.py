"""Sliced STREAM-COPY microbenchmark (Table 4 and Figure 3).

The paper redesigns STREAM COPY to copy a huge array *slice by slice*,
mimicking the data-copy granularity of pipelined collectives, and
compares ``memmove``, ``t-copy`` and ``nt-copy`` (Section 4.1).  We run
the same experiment on the simulated memory system: every rank streams
its share of a large source array into a destination array at a given
slice size, and we report the STREAM-convention bandwidth
``2 * bytes_copied / time``.

Figure 3's copy-out experiment is the variant where the *source* is a
single shared-memory buffer and each rank copies all of it to a private
buffer with ``memmove`` — the overhead collapses once the slice size
crosses the library's NT threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import MachineSpec
from repro.sim.engine import Engine
from repro.copyengine.primitives import CopyPolicy, copy_with_policy


@dataclass
class SlicedCopyResult:
    """Outcome of one sliced-copy run."""

    policy: str
    slice_size: int
    bytes_copied: int
    time: float
    traffic_bytes: int

    @property
    def bandwidth(self) -> float:
        """STREAM-convention bandwidth (read + write bytes / time)."""
        return 2.0 * self.bytes_copied / self.time

    @property
    def time_us(self) -> float:
        return self.time * 1e6


class SlicedCopyBenchmark:
    """Sliced copies on a simulated node.

    Parameters
    ----------
    machine:
        Node model.
    nranks:
        Concurrent copying processes (one per core in the paper).
    total_bytes:
        Aggregate array size split evenly across ranks (Table 4 uses
        16 GB).
    """

    def __init__(self, machine: MachineSpec, nranks: int, total_bytes: int):
        machine.validate_nranks(nranks)
        if total_bytes % nranks:
            raise ValueError("total_bytes must divide evenly across ranks")
        self.machine = machine
        self.nranks = nranks
        self.total_bytes = total_bytes

    def _run(self, policy: CopyPolicy, slice_size: int, src_shared_bytes: int = 0,
             warm_src: bool = False) -> SlicedCopyResult:
        if slice_size <= 0:
            raise ValueError("slice size must be positive")
        eng = Engine(self.nranks, machine=self.machine, functional=False)
        per_rank = (
            src_shared_bytes if src_shared_bytes else self.total_bytes // self.nranks
        )
        if per_rank % slice_size:
            raise ValueError(
                f"per-rank bytes {per_rank} not a multiple of slice {slice_size}"
            )
        if src_shared_bytes:
            shared = eng.alloc_shared(src_shared_bytes, name="shm_src")
            srcs = {r: shared for r in range(self.nranks)}
        else:
            srcs = {
                r: eng.alloc(r, per_rank, name=f"src{r}") for r in range(self.nranks)
            }
        dsts = {r: eng.alloc(r, per_rank, name=f"dst{r}") for r in range(self.nranks)}

        if warm_src:
            # Untimed pass loading the source into cache: models the
            # copy-out of data a preceding reduction phase produced.
            def warm(ctx):
                src = srcs[ctx.rank]
                for off in range(0, per_rank, slice_size):
                    ctx.touch(src.view(off, slice_size))

            eng.run(warm)

        def program(ctx):
            src = srcs[ctx.rank]
            dst = dsts[ctx.rank]
            for off in range(0, per_rank, slice_size):
                copy_with_policy(
                    ctx, dst.view(off, slice_size), src.view(off, slice_size), policy
                )

        res = eng.run(program)
        return SlicedCopyResult(
            policy=policy.kind,
            slice_size=slice_size,
            bytes_copied=per_rank * self.nranks,
            time=res.time,
            traffic_bytes=res.traffic.memory_traffic,
        )

    # ---- Table 4 -----------------------------------------------------------

    def run_policy(self, kind: str, slice_size: int) -> SlicedCopyResult:
        """Bandwidth of one policy at one slice size (Table 4 cell)."""
        return self._run(CopyPolicy(kind=kind), slice_size)

    def table4(self, slice_sizes, policies=("memmove", "t", "nt")) -> dict:
        """The full Table 4 grid: policy x slice size -> bandwidth."""
        return {
            kind: {s: self.run_policy(kind, s) for s in slice_sizes}
            for kind in policies
        }

    # ---- Figure 3 ----------------------------------------------------------

    def copy_out_overhead(self, shared_bytes: int, slice_size: int,
                          nt_threshold: int | None = None) -> SlicedCopyResult:
        """Figure 3: every rank memmoves a shared buffer to private memory.

        ``nt_threshold`` overrides the machine's memmove threshold to
        model different C libraries (the paper shows icpc and gcc; both
        exhibit the same cliff, at slightly different constants).
        """
        machine = self.machine
        if nt_threshold is not None:
            machine = machine.with_(memmove_nt_threshold=nt_threshold)
        bench = SlicedCopyBenchmark(machine, self.nranks, self.total_bytes)
        return bench._run(
            CopyPolicy(kind="memmove"), slice_size,
            src_shared_bytes=shared_bytes, warm_src=True,
        )
