"""Algorithm 1: memory copy with adaptive non-temporal stores.

The adaptive copy extends ``memmove`` with three extra inputs that
describe the *algorithm* rather than the single call:

* ``t`` — the temporal flag of the **stored** buffer: ``False`` when
  the stored data will be reused soon (e.g. a copy-in to shared memory
  that the next reduction reads), ``True`` when it is written once and
  not revisited (e.g. the copy-out to a receiving buffer);
* ``W`` — the collective's *work data size*: sending + receiving +
  auxiliary (shared-memory) buffers across the node (Section 4.2);
* ``C`` — the available cache capacity, ``c' + p * c''`` for a
  non-inclusive LLC, else ``c'`` (Section 4.2).

NT stores are selected exactly when ``t`` is set and ``W > C``: only
then does the write-allocate path cause capacity misses whose RFO and
write-back traffic cannot be amortized by future hits (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import MachineSpec, available_cache_capacity
from repro.sim.buffers import BufView
from repro.sim.engine import RankCtx


@dataclass
class AdaptiveCopy:
    """A configured adaptive-copy instance for one collective call.

    Create it once per collective with the algorithm's work-set size,
    then invoke it per slice with the slice's temporal flag.  Tracks
    how many copies took each path, which the tests and benchmarks use
    to verify the switch point of Section 5.4
    (``s > (C - m*p*Imax) / (2p)`` for socket-aware MA all-reduce).
    """

    machine: MachineSpec
    nranks: int
    work_set: int

    def __post_init__(self) -> None:
        if self.work_set < 0:
            raise ValueError("work set must be non-negative")
        self.cache_capacity = available_cache_capacity(self.machine, self.nranks)
        self.nt_copies = 0
        self.t_copies = 0

    def would_use_nt(self, t_flag: bool) -> bool:
        return bool(t_flag) and self.work_set > self.cache_capacity

    def __call__(self, ctx: RankCtx, dst: BufView, src: BufView,
                 t_flag: bool) -> None:
        nt = self.would_use_nt(t_flag)
        if nt:
            self.nt_copies += 1
        else:
            self.t_copies += 1
        ctx.copy(dst, src, nt=nt, policy="adaptive")


def adaptive_copy(ctx: RankCtx, dst: BufView, src: BufView, *, t_flag: bool,
                  work_set: int, cache_capacity: int) -> None:
    """One-shot form of Algorithm 1 (``adaptive-copy(a, b, tau, t, C, W)``)."""
    nt = bool(t_flag) and work_set > cache_capacity
    ctx.copy(dst, src, nt=nt, policy="adaptive")
