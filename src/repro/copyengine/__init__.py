"""Data-copy primitives and the adaptive non-temporal store heuristic.

This subpackage is the reproduction of Section 4: the ``t-copy`` /
``nt-copy`` / ``memmove`` primitives, the ``adaptive-copy`` decision
procedure (Algorithm 1) driven by the working-set-vs-cache model, the
kernel-assisted (CMA-style) copy used by the vendor baselines, and the
sliced STREAM-COPY microbenchmark behind Table 4 and Figure 3.
"""

from repro.copyengine.primitives import (
    CopyPolicy,
    resolve_nt,
    t_copy,
    nt_copy,
    memmove,
    kernel_copy,
)
from repro.copyengine.adaptive import AdaptiveCopy, adaptive_copy
from repro.copyengine.stream import SlicedCopyBenchmark, SlicedCopyResult

__all__ = [
    "CopyPolicy",
    "resolve_nt",
    "t_copy",
    "nt_copy",
    "memmove",
    "kernel_copy",
    "AdaptiveCopy",
    "adaptive_copy",
    "SlicedCopyBenchmark",
    "SlicedCopyResult",
]
