"""Copy primitives: temporal, non-temporal, memmove and kernel-assisted.

All primitives execute through :meth:`repro.sim.engine.RankCtx.copy`;
they differ only in the store path:

* :func:`t_copy` — prefetched loads + regular (write-allocate) stores.
  A store miss raises an RFO and the dirty line streams back later:
  3 bytes of memory traffic per byte copied when the destination is
  cold and the working set exceeds the cache.
* :func:`nt_copy` — prefetched loads + non-temporal stores: the data
  bypasses the cache, 2 bytes of traffic per byte copied, but a
  subsequent load of the destination misses.
* :func:`memmove` — glibc-style: temporal below the library's size
  threshold, non-temporal above it.  The paper's point (Section 2.2) is
  that this thresholds on the *copy size only*, which misjudges
  pipelined collectives that copy small slices of huge messages.
* :func:`kernel_copy` — CMA-style kernel-assisted single copy: the
  destination process reads the source pages directly (one copy instead
  of two), but pays a syscall, per-page pinning costs, optional page-lock
  contention, and — per Linux's ``process_vm_readv`` implementation —
  never uses non-temporal stores (Table 5's finding).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.sim.buffers import BufView
from repro.sim.engine import RankCtx


@dataclass(frozen=True)
class CopyPolicy:
    """A named store-path selection rule.

    ``kind`` is one of ``"t"``, ``"nt"``, ``"memmove"``, ``"adaptive"``.
    For ``"adaptive"`` the Algorithm-1 inputs must be provided:
    ``t_flag`` (True when the *stored* data is non-temporal, i.e. not
    reused soon), ``work_set`` (W) and ``cache_capacity`` (C).
    """

    kind: str = "t"
    t_flag: bool = False
    work_set: int = 0
    cache_capacity: int = 0

    def uses_nt(self, nbytes: int, nt_threshold: int) -> bool:
        return resolve_nt(
            self.kind,
            nbytes,
            nt_threshold,
            t_flag=self.t_flag,
            work_set=self.work_set,
            cache_capacity=self.cache_capacity,
        )


def resolve_nt(kind: str, nbytes: int, nt_threshold: int, *,
               t_flag: bool = False, work_set: int = 0,
               cache_capacity: int = 0) -> bool:
    """Decide whether a copy uses non-temporal stores.

    Note on Algorithm 1: the paper's listing prints the branches as
    ``if t and W > C then t-copy else nt-copy``, but the surrounding
    text (Sections 4.2/4.3 and Figure 8) makes the intent unambiguous:
    NT stores are used exactly when the stored data is *non-temporal*
    (``t == 1``) **and** the working set exceeds the available cache
    (``W > C``).  We implement that intent.
    """
    if kind == "t":
        return False
    if kind == "nt":
        return True
    if kind == "memmove":
        return nbytes >= nt_threshold
    if kind == "adaptive":
        return bool(t_flag) and work_set > cache_capacity
    raise ValueError(f"unknown copy policy {kind!r}")


def t_copy(ctx: RankCtx, dst: BufView, src: BufView) -> None:
    """Copy with prefetched loads and regular temporal stores."""
    ctx.copy(dst, src, nt=False, policy="t")


def nt_copy(ctx: RankCtx, dst: BufView, src: BufView) -> None:
    """Copy with prefetched loads and non-temporal stores."""
    ctx.copy(dst, src, nt=True, policy="nt")


def memmove(ctx: RankCtx, dst: BufView, src: BufView) -> None:
    """C-library copy: store path thresholds on the copy size alone."""
    thr = ctx.machine.memmove_nt_threshold if ctx.machine else 1 << 62
    ctx.copy(dst, src, nt=dst.nbytes >= thr, policy="memmove")


def kernel_copy(ctx: RankCtx, dst: BufView, src: BufView, *,
                contention: int = 1) -> None:
    """CMA-style kernel-assisted copy (``process_vm_readv``).

    ``contention`` is the number of processes concurrently walking the
    same source pages; the kernel serializes them on the page locks
    (Section 5.6), so the per-page cost scales with it.
    """
    if contention < 1:
        raise ValueError("contention must be >= 1")
    extra = 0.0
    if ctx.machine is not None:
        m = ctx.machine
        pages = -(-dst.nbytes // m.kernel_page_size)
        extra = m.kernel_syscall_overhead + pages * m.kernel_page_overhead * contention
    ctx.copy(dst, src, nt=False, policy="kernel", extra_time=extra)


def copy_with_policy(ctx: RankCtx, dst: BufView, src: BufView,
                     policy: CopyPolicy, *, contention: int = 1) -> None:
    """Dispatch a copy through a :class:`CopyPolicy` (or kernel copy)."""
    if policy.kind == "kernel":
        kernel_copy(ctx, dst, src, contention=contention)
        return
    thr = ctx.machine.memmove_nt_threshold if ctx.machine else 1 << 62
    ctx.copy(dst, src, nt=policy.uses_nt(dst.nbytes, thr), policy=policy.kind)
