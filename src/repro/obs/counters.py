"""Per-rank observability counters (schema ``repro-obs/1``).

One :class:`RankCounters` per rank aggregates everything the paper's
argument is made of, from two independent sources:

* the **operation trace** (:class:`~repro.sim.trace.Trace`): copy / NT
  / reduce / touch bytes, flag-wait and barrier-stall time, busy time —
  from which the Theorem 3.1 data-access volume is
  ``2 * copy + 3 * reduce`` bytes, exactly what
  :func:`repro.analysis.dav.traced_dav` computes node-wide;
* the **memory system** (:class:`~repro.machine.memory.TrafficCounters`
  per rank): the same accesses broken down by the physical level that
  served them — cache hits, DRAM reads/writes, cross-socket (NUMA) and
  cache-to-cache transfers.

A machine-model run without tracing still yields the memory-level
breakdown (this is what benchmark cells snapshot); a traced run yields
both, and the two DAV accountings must agree for every collective —
``tests/obs`` pins that cross-check against :mod:`repro.models.dav`.

Counters are plain data: :meth:`Counters.snapshot` produces the
JSON-safe dict embedded in :class:`~repro.library.yhccl.CollectiveResult`,
:class:`~repro.library.profiler.ProfileRecord` and every
``repro-bench/1`` sweep cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.trace import Trace

SCHEMA = "repro-obs/1"

#: OpRecord kinds accounted as synchronization, not work
SYNC_KINDS = ("post", "wait", "barrier")


@dataclass
class RankCounters:
    """Everything one rank did, totalled.

    Trace-derived fields are zero (and :attr:`Counters.traced` False)
    when the run was not traced; memory-level fields are zero (and
    :attr:`Counters.machine` False) when no machine model was attached.
    """

    rank: int
    # -- trace-derived -------------------------------------------------
    copy_bytes: int = 0
    nt_copy_bytes: int = 0
    reduce_bytes: int = 0
    touch_bytes: int = 0
    sync_wait_time: float = 0.0
    barrier_stall_time: float = 0.0
    busy_time: float = 0.0
    finish_time: float = 0.0
    span: float = 0.0  # global completion time (shared by all ranks)
    # -- memory-level breakdown (machine-model runs) -------------------
    logical_load: int = 0
    logical_store: int = 0
    cache_hit_bytes: int = 0
    mem_read_bytes: int = 0
    mem_write_bytes: int = 0
    numa_bytes: int = 0
    c2c_bytes: int = 0

    @property
    def trace_dav(self) -> float:
        """Theorem 3.1 accounting: a copy touches ``2n`` bytes (load +
        store), a reduce ``3n`` (two loads + store)."""
        return 2.0 * self.copy_bytes + 3.0 * self.reduce_bytes

    @property
    def dav(self) -> float:
        """Logical data-access volume: the memory system's per-rank
        load+store count when available, else the trace accounting."""
        traffic = self.logical_load + self.logical_store
        return float(traffic) if traffic else self.trace_dav

    @property
    def stall_time(self) -> float:
        return self.sync_wait_time + self.barrier_stall_time

    @property
    def utilization(self) -> float:
        """Busy time over the *global* completion time — matches
        :func:`repro.sim.timeline.rank_stats`."""
        return self.busy_time / self.span if self.span > 0 else 0.0


#: snapshot field lists (order is the schema; values are attr names)
_INT_FIELDS = ("copy_bytes", "nt_copy_bytes", "reduce_bytes", "touch_bytes",
               "logical_load", "logical_store", "cache_hit_bytes",
               "mem_read_bytes", "mem_write_bytes", "numa_bytes", "c2c_bytes")
#: the memory-level subset, fillable from per-rank TrafficCounters
_TRAFFIC_FIELDS = ("logical_load", "logical_store", "cache_hit_bytes",
                   "mem_read_bytes", "mem_write_bytes", "numa_bytes",
                   "c2c_bytes")
_TIME_FIELDS = ("sync_wait_time", "barrier_stall_time", "busy_time",
                "finish_time")
_DERIVED_FIELDS = ("dav", "trace_dav", "utilization")


@dataclass
class Counters:
    """The per-rank counter registry of one collective run."""

    ranks: List[RankCounters] = field(default_factory=list)
    traced: bool = False
    machine: bool = False

    def __len__(self) -> int:
        return len(self.ranks)

    def __iter__(self):
        return iter(self.ranks)

    def __getitem__(self, rank: int) -> RankCounters:
        return self.ranks[rank]

    # ---- totals ------------------------------------------------------

    @property
    def span(self) -> float:
        return max((rc.finish_time for rc in self.ranks), default=0.0)

    def total(self, attr: str) -> float:
        return sum(getattr(rc, attr) for rc in self.ranks)

    @property
    def dav(self) -> float:
        return self.total("dav")

    @property
    def trace_dav(self) -> float:
        return self.total("trace_dav")

    # ---- construction ------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Trace, *, nranks: Optional[int] = None,
                   per_rank_traffic: Optional[list] = None,
                   first_record: int = 0) -> "Counters":
        """Build counters from a trace (optionally one run's slice of
        it, via ``first_record``) plus optional per-rank traffic."""
        records = trace.records[first_record:]
        if nranks is None:
            nranks = max((r.rank for r in records), default=-1) + 1
            if per_rank_traffic is not None:
                nranks = max(nranks, len(per_rank_traffic))
        out = cls(ranks=[RankCounters(rank=r) for r in range(nranks)],
                  traced=True)
        for rec in records:
            rc = out.ranks[rec.rank]
            dur = rec.t_end - rec.t_start
            if rec.kind == "copy":
                rc.copy_bytes += rec.nbytes
                if rec.nt:
                    rc.nt_copy_bytes += rec.nbytes
                rc.busy_time += dur
            elif rec.kind.startswith("reduce"):
                rc.reduce_bytes += rec.nbytes
                rc.busy_time += dur
            elif rec.kind == "touch":
                rc.touch_bytes += rec.nbytes
                rc.busy_time += dur
            elif rec.kind == "wait":
                rc.sync_wait_time += dur
            elif rec.kind == "barrier":
                rc.barrier_stall_time += dur
            elif rec.kind not in SYNC_KINDS:  # compute and future kinds
                rc.busy_time += dur
            if rec.t_end > rc.finish_time:
                rc.finish_time = rec.t_end
        if per_rank_traffic is not None:
            out._fill_traffic(per_rank_traffic)
        span = out.span
        for rc in out.ranks:
            rc.span = span
        return out

    @classmethod
    def from_run(cls, result) -> "Counters":
        """Build counters from a :class:`~repro.sim.engine.RunResult`.

        Uses the run's own slice of the (cumulative) engine trace when
        tracing was on; falls back to the memory system's per-rank
        traffic alone otherwise — which is exactly what benchmark cells
        (machine model on, tracing off) persist.
        """
        traffic = result.per_rank_traffic
        if result.trace is not None:
            return cls.from_trace(
                result.trace,
                nranks=len(traffic) if traffic is not None else None,
                per_rank_traffic=traffic,
                first_record=result.first_record,
            )
        nranks = len(traffic) if traffic is not None else len(result.times)
        out = cls(ranks=[RankCounters(rank=r) for r in range(nranks)])
        if traffic is not None:
            out._fill_traffic(traffic)
        times = result.times
        if len(times) == nranks:
            for rc, t in zip(out.ranks, times):
                rc.finish_time = t
        span = out.span
        for rc in out.ranks:
            rc.span = span
        return out

    @classmethod
    def from_machine(cls, times: list,
                     per_rank_traffic: Optional[list] = None) -> "Counters":
        """Counters for a machine-model, *untraced* execution: per-rank
        finish times plus the memory-level traffic breakdown — exactly
        the form benchmark cells persist.  ``per_rank_traffic`` entries
        may be :class:`~repro.machine.memory.TrafficCounters` objects or
        plain dicts (the compiled-schedule replay path stores the
        captured breakdown as dicts)."""
        out = cls(ranks=[RankCounters(rank=r) for r in range(len(times))])
        if per_rank_traffic is not None:
            out._fill_traffic(per_rank_traffic)
        for rc, t in zip(out.ranks, times):
            rc.finish_time = float(t)
        span = out.span
        for rc in out.ranks:
            rc.span = span
        return out

    def _fill_traffic(self, per_rank_traffic: list) -> None:
        self.machine = True
        for rc, tc in zip(self.ranks, per_rank_traffic):
            for name in _TRAFFIC_FIELDS:
                value = (tc[name] if isinstance(tc, dict)
                         else getattr(tc, name))
                setattr(rc, name, int(value))

    # ---- serialization ----------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe, deterministic dict form (schema ``repro-obs/1``).

        ``traced`` / ``machine`` tell consumers which field families are
        meaningful; per-rank values are parallel arrays indexed by rank
        (compact in the bench JSON relative to per-rank objects).
        """
        per_rank: dict = {}
        for name in _INT_FIELDS:
            per_rank[name] = [getattr(rc, name) for rc in self.ranks]
        for name in _TIME_FIELDS:
            per_rank[name] = [getattr(rc, name) for rc in self.ranks]
        for name in _DERIVED_FIELDS:
            per_rank[name] = [getattr(rc, name) for rc in self.ranks]
        totals = {name: self.total(name)
                  for name in _INT_FIELDS + _TIME_FIELDS + _DERIVED_FIELDS
                  if name != "utilization"}
        return {
            "schema": SCHEMA,
            "nranks": len(self.ranks),
            "traced": self.traced,
            "machine": self.machine,
            "span": self.span,
            "totals": totals,
            "per_rank": per_rank,
        }


def tail_snapshot(rank_times, *,
                  percentiles: tuple = (50.0, 99.0, 99.9)) -> dict:
    """JSON-safe tail summary of a batched-replay rank-time matrix.

    ``rank_times`` is the ``(B, nranks)`` array a perturbation ensemble
    produces (:class:`~repro.sim.compiled.BatchedTimes`); each row is
    one replayed run.  Returns the per-rank percentile finish times plus
    the run-level (max-over-ranks) percentiles, keyed ``"p50"`` style —
    the same shape the bench tables embed for ``--perturb`` sweeps.
    """
    import numpy as np

    rt = np.asarray(rank_times, dtype=float)
    if rt.ndim != 2:
        raise ValueError(f"rank_times must be 2-D (B, nranks), got {rt.shape}")
    times = rt.max(axis=1) if rt.shape[1] else np.zeros(rt.shape[0])
    labels = [("p%g" % p).replace(".", "_") for p in percentiles]
    run_q = np.percentile(times, percentiles)
    rank_q = np.percentile(rt, percentiles, axis=0)
    return {
        "n": int(rt.shape[0]),
        "nranks": int(rt.shape[1]),
        "time": {lab: float(v) for lab, v in zip(labels, run_q)},
        "per_rank": {lab: [float(v) for v in row]
                     for lab, row in zip(labels, rank_q)},
    }
