"""Unified observability layer: counters, spans, Perfetto export.

Everything in this package *consumes* the existing trace and machine
instrumentation — it adds no new hooks to the engine hot loops:

* :class:`~repro.obs.counters.Counters` — the per-rank counter
  registry (copy / NT / reduce / touch bytes, sync-wait and
  barrier-stall time, memory-level traffic, DAV, utilization),
  snapshotted into :class:`~repro.library.yhccl.CollectiveResult`,
  :class:`~repro.library.profiler.ProfileRecord` and every
  ``repro-bench/1`` sweep cell;
* :func:`~repro.obs.perfetto.chrome_trace` /
  :func:`~repro.obs.perfetto.write_chrome_trace` — Chrome
  trace-event / Perfetto JSON export with per-rank tracks, phase
  spans, post→wait flow arrows and byte-counter tracks, behind
  ``python -m repro trace <collective> --out trace.json``;
* the span API lives on the engine itself
  (:meth:`repro.sim.engine.RankCtx.span`) so collectives can label
  phases without importing this package.

See ``docs/observability.md``.
"""

from repro.obs.counters import SCHEMA, Counters, RankCounters
from repro.obs.perfetto import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "SCHEMA",
    "Counters",
    "RankCounters",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
