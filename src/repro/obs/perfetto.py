"""Chrome trace-event / Perfetto JSON export of engine traces.

Produces the JSON Object Format of the Trace Event spec — loadable in
``chrome://tracing`` and https://ui.perfetto.dev — from a
:class:`~repro.sim.trace.Trace`:

* one **track per rank** (``pid 0`` = the node, ``tid r`` = rank ``r``)
  with a complete-event (``ph: "X"``) slice per data operation and per
  wait/barrier stall, and an instant event per flag post;
* **nested phase slices** from :class:`~repro.sim.trace.SpanRecord`
  labels (the ``ctx.span("...")`` API) on the same rank track, so a
  timeline shows *why* time went where (MA's reduce wavefront vs its
  copy-out phase);
* **flow arrows** (``ph: "s"``/``"f"``) from each post to the waits it
  released, reconstructed from the sync event stream's ``matched``
  seqs — the cross-rank happens-before edges, drawn;
* **counter tracks** (``ph: "C"``) of cumulative copy / NT-copy /
  reduce bytes over simulated time.

Simulated seconds map to trace microseconds.  The exported document
embeds the :mod:`repro.obs.counters` snapshot under
``otherData.counters`` so a trace file is self-describing; the
structure is checked field-by-field by :func:`validate_chrome_trace`
(also the CI ``obs-smoke`` gate).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import List, Optional

from repro.sim.trace import Trace

SCHEMA = "repro-trace-event/1"

#: simulated seconds -> trace-event microseconds
_US = 1e6

#: required keys per event phase, beyond pid/tid (checked by the
#: validator; "M" metadata events omit ts entirely)
_PHASE_KEYS = {
    "X": ("name", "ts", "dur"),
    "M": ("name", "args"),
    "C": ("name", "ts", "args"),
    "s": ("name", "cat", "id", "ts"),
    "f": ("name", "cat", "id", "ts"),
    "i": ("name", "ts", "s"),
}


def _meta(name: str, args: dict, *, pid: int = 0,
          tid: Optional[int] = None) -> dict:
    ev = {"ph": "M", "pid": pid, "name": name, "args": args}
    if tid is not None:
        ev["tid"] = tid
    return ev


def _slice(name: str, cat: str, rank: int, t0: float, t1: float,
           args: dict) -> dict:
    return {
        "ph": "X",
        "pid": 0,
        "tid": rank,
        "name": name,
        "cat": cat,
        "ts": t0 * _US,
        "dur": max(0.0, (t1 - t0) * _US),
        "args": args,
    }


def chrome_trace(trace: Trace, *, counters: Optional[dict] = None,
                 label: str = "") -> dict:
    """Render ``trace`` as a Chrome trace-event JSON document (dict)."""
    events: List[dict] = [_meta("process_name", {"name": "node"})]
    ranks = sorted({r.rank for r in trace.records}
                   | {s.rank for s in trace.spans})
    for rank in ranks:
        events.append(_meta("thread_name", {"name": f"rank {rank}"},
                            tid=rank))
        events.append(_meta("thread_sort_index", {"sort_index": rank},
                            tid=rank))

    # Phase spans first: at equal ts the earlier event nests outside.
    for span in trace.spans:
        events.append(_slice(span.name, "phase", span.rank,
                             span.t_start, span.t_end, {}))

    cum = {"copy_bytes": 0, "nt_copy_bytes": 0, "reduce_bytes": 0}
    counter_samples: List[dict] = []
    for rec in trace.records:
        if rec.kind == "copy":
            name = "copy (nt)" if rec.nt else "copy"
            args = {"nbytes": rec.nbytes, "src": rec.src, "dst": rec.dst,
                    "policy": rec.policy}
            events.append(_slice(name, "data", rec.rank, rec.t_start,
                                 rec.t_end, args))
            cum["copy_bytes"] += rec.nbytes
            if rec.nt:
                cum["nt_copy_bytes"] += rec.nbytes
        elif rec.kind.startswith("reduce"):
            args = {"nbytes": rec.nbytes, "src": rec.src, "dst": rec.dst}
            events.append(_slice(rec.kind, "data", rec.rank, rec.t_start,
                                 rec.t_end, args))
            cum["reduce_bytes"] += rec.nbytes
        elif rec.kind in ("compute", "touch"):
            events.append(_slice(rec.kind, "data", rec.rank, rec.t_start,
                                 rec.t_end, {"nbytes": rec.nbytes}))
        elif rec.kind == "wait":
            events.append(_slice("wait", "sync", rec.rank, rec.t_start,
                                 rec.t_end,
                                 {"tag": repr(rec.tag),
                                  "count": rec.count}))
        elif rec.kind == "barrier":
            events.append(_slice("barrier", "sync", rec.rank, rec.t_start,
                                 rec.t_end, {"group": list(rec.group)}))
        elif rec.kind == "post":
            events.append({
                "ph": "i", "pid": 0, "tid": rec.rank, "name": "post",
                "cat": "sync", "ts": rec.t_start * _US, "s": "t",
                "args": {"tag": repr(rec.tag)},
            })
        else:  # future kinds export generically rather than vanish
            events.append(_slice(rec.kind, "data", rec.rank, rec.t_start,
                                 rec.t_end, {"nbytes": rec.nbytes}))
        if rec.kind == "copy" or rec.kind.startswith("reduce"):
            counter_samples.append({
                "ph": "C", "pid": 0, "name": "bytes moved",
                "ts": rec.t_end * _US, "args": dict(cum),
            })
    events.extend(counter_samples)
    events.extend(_flow_events(trace))

    other: dict = {"schema": SCHEMA}
    if label:
        other["collective"] = label
    if counters is not None:
        other["counters"] = counters
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def _flow_events(trace: Trace) -> List[dict]:
    """Post -> wait flow arrows from the sync event stream.

    ``ctx.post`` and ``Engine._release_wait`` append the
    :class:`~repro.sim.trace.SyncEvent` and its twin OpRecord together,
    so zipping the per-kind subsequences recovers each event's time.
    """
    post_evs = [e for e in trace.sync_events() if e.kind == "post"]
    post_recs = trace.by_kind("post")
    wait_evs = [e for e in trace.sync_events() if e.kind == "wait"]
    wait_recs = trace.by_kind("wait")
    by_seq = {ev.seq: rec for ev, rec in zip(post_evs, post_recs)}
    out: List[dict] = []
    for ev, rec in zip(wait_evs, wait_recs):
        for seq in ev.matched:
            post = by_seq.get(seq)
            if post is None:
                continue
            out.append({
                "ph": "s", "pid": 0, "tid": post.rank, "name": "sync",
                "cat": "flow", "id": int(seq), "ts": post.t_start * _US,
            })
            out.append({
                "ph": "f", "pid": 0, "tid": rec.rank, "name": "sync",
                "cat": "flow", "id": int(seq), "ts": rec.t_end * _US,
                "bp": "e",
            })
    return out


def write_chrome_trace(trace: Trace, path, *,
                       counters: Optional[dict] = None,
                       label: str = "") -> Path:
    """Export ``trace`` to ``path`` as validated trace-event JSON."""
    doc = chrome_trace(trace, counters=counters, label=label)
    validate_chrome_trace(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
    return path


def validate_chrome_trace(doc: dict) -> dict:
    """Field-by-field schema check of a trace-event document.

    Raises :class:`ValueError` naming the first offending event;
    returns ``{phase: count}`` on success (handy for tests).
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    counts: dict = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: event must be an object")
        ph = ev.get("ph")
        if ph not in _PHASE_KEYS:
            raise ValueError(f"{where}: unknown phase {ph!r}")
        if not isinstance(ev.get("pid"), int):
            raise ValueError(f"{where}: pid must be an int")
        if ph != "M" and not isinstance(ev.get("tid", 0), int):
            raise ValueError(f"{where}: tid must be an int")
        for key in _PHASE_KEYS[ph]:
            if key not in ev:
                raise ValueError(f"{where}: phase {ph!r} requires {key!r}")
        for key in ("ts", "dur"):
            if key in ev:
                v = ev[key]
                if not isinstance(v, (int, float)) or not math.isfinite(v):
                    raise ValueError(f"{where}: {key} must be finite")
        if ph == "X" and ev["dur"] < 0:
            raise ValueError(f"{where}: negative duration")
        if ph == "C":
            for k, v in ev["args"].items():
                if not isinstance(v, (int, float)) or not math.isfinite(v):
                    raise ValueError(
                        f"{where}: counter {k!r} must be numeric"
                    )
        counts[ph] = counts.get(ph, 0) + 1
    return counts
