"""``python -m repro trace`` — export a collective run for Perfetto.

Runs one traced functional collective from the analysis matrix
(:func:`repro.analysis.runner.cases`), writes the Chrome trace-event
JSON (load it at https://ui.perfetto.dev), and prints the per-rank
counter summary plus the Theorem 3.1 DAV cross-check.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.dav import check_dav
from repro.analysis.runner import Case, cases
from repro.machine.spec import PRESETS
from repro.obs.counters import Counters
from repro.obs.perfetto import write_chrome_trace
from repro.sim.engine import DeadlockError, Engine
from repro.sim.timeline import render_timeline


def resolve_case(name: str) -> Case:
    """Map a CLI collective name onto one analysis-matrix case.

    Accepted spellings, most to least specific:

    * ``"ma/reduce_scatter"`` — exact matrix label;
    * ``"ma_reduce_scatter"`` — underscore form of the same;
    * a collective name (``"ma"``) — its first kind;
    * a kind (``"allreduce"``) — preferring the ``ma`` family, which
      is the paper's headline algorithm.
    """
    matrix = cases("all")
    for case in matrix:
        if name in (case.label, f"{case.collective}_{case.kind}"):
            return case
    by_collective = [c for c in matrix if c.collective == name]
    if by_collective:
        return by_collective[0]
    by_kind = [c for c in matrix if c.kind == name]
    if by_kind:
        preferred = [c for c in by_kind if c.collective == "ma"]
        return (preferred or by_kind)[0]
    labels = ", ".join(sorted(c.label for c in matrix))
    raise ValueError(f"unknown collective {name!r}; choose from: {labels}")


def trace_case(case: Case, *, nranks: int = 8, s: int = 4096,
               machine=None) -> tuple:
    """Run ``case`` traced; return ``(engine, counters)``."""
    eng = Engine(nranks, machine=machine, functional=True, trace=True)
    try:
        case.run(eng, s)
    except DeadlockError as exc:
        raise RuntimeError(f"{case.label} deadlocked: {exc}") from exc
    counters = Counters.from_trace(
        eng.trace, nranks=nranks,
        per_rank_traffic=eng.memsys.per_rank if eng.memsys else None,
    )
    return eng, counters


def _counter_lines(counters: Counters) -> List[str]:
    lines = ["rank  copy B     nt B       reduce B   wait us  "
             "stall us  util"]
    for rc in counters:
        lines.append(
            f"{rc.rank:>4}  {rc.copy_bytes:<9}  {rc.nt_copy_bytes:<9}  "
            f"{rc.reduce_bytes:<9}  {rc.sync_wait_time * 1e6:7.1f}  "
            f"{rc.barrier_stall_time * 1e6:8.1f}  "
            f"{100 * rc.utilization:4.0f}%"
        )
    lines.append(
        f"total copy {int(counters.total('copy_bytes'))} B, "
        f"reduce {int(counters.total('reduce_bytes'))} B, "
        f"DAV {counters.trace_dav:.0f} B"
    )
    return lines


def add_trace_parser(sub) -> None:
    """Register the ``trace`` subcommand on a subparsers object."""
    p = sub.add_parser(
        "trace",
        help="export one traced run as Perfetto/Chrome trace JSON",
    )
    p.add_argument("collective",
                   help="matrix case ('ma/reduce_scatter', "
                        "'ma_reduce_scatter'), a collective ('ma') or "
                        "a kind ('allreduce')")
    p.add_argument("--out", required=True,
                   help="output trace JSON path")
    p.add_argument("-n", "--nranks", type=int, default=8)
    p.add_argument("-s", "--size", type=int, default=4096,
                   help="message size in bytes (default 4096)")
    p.add_argument("--machine", default="none",
                   choices=["none"] + sorted(PRESETS),
                   help="machine preset for timing (default none)")
    p.add_argument("--timeline", action="store_true",
                   help="also print the ASCII timeline")


def run_trace_command(args) -> int:
    """Execute ``python -m repro trace`` with parsed ``args``."""
    try:
        case = resolve_case(args.collective)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    machine = None if args.machine == "none" else PRESETS[args.machine]
    try:
        eng, counters = trace_case(case, nranks=args.nranks, s=args.size,
                                   machine=machine)
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    path = write_chrome_trace(eng.trace, Path(args.out),
                              counters=counters.snapshot(),
                              label=case.label)
    print(f"{case.label}: p={args.nranks} s={args.size} -> {path}")
    print(f"  open in https://ui.perfetto.dev ({len(eng.trace.records)} "
          f"ops, {len(eng.trace.spans)} spans)")
    for line in _counter_lines(counters):
        print(f"  {line}")
    check = _dav_check(case, eng, args)
    if check is not None:
        print(f"  {check.describe()}")
    if args.timeline:
        print(render_timeline(eng.trace))
    return 0 if check is None or check.ok else 1


def _dav_check(case: Case, eng: Engine, args):
    """Cross-check the trace's DAV against the Theorem 3.1 formula
    (``None`` when the matrix has no table row for this case)."""
    if not case.dav_algorithm:
        return None
    m: Optional[int] = eng.machine.sockets if eng.machine else 2
    return check_dav(eng.trace, case.kind, case.dav_algorithm,
                     args.size, args.nranks, m=m, k=case.k)
