"""Reproduction report builder.

Collects everything the benchmark suite wrote under
``benchmarks/results/`` into a single markdown report, ordered by the
paper's experiment index — the regenerable companion to EXPERIMENTS.md.
Two result formats coexist and both are rendered:

* legacy ``*.txt`` tables (the per-figure pytest modules' ``emit``
  output) — included verbatim;
* ``repro-bench/1`` ``BENCH_*.json`` documents (``python -m repro
  bench``) — sweeps are rebuilt with
  :meth:`repro.bench.table.SweepTable.from_json` and rendered through
  the *same* :meth:`~repro.bench.table.SweepTable.render` as live runs,
  so the two paths cannot drift apart; custom payloads are included as
  pretty-printed JSON.

    python -m repro report [--results DIR] [--out FILE]
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

#: experiment index: (results-file glob prefix, section heading)
EXPERIMENT_ORDER = [
    ("fig03", "Figure 3 — copy-out overhead vs slice size"),
    ("table1", "Table 1 — DAV of reduce-scatter algorithms"),
    ("table2", "Table 2 — DAV of all-reduce algorithms"),
    ("table3", "Table 3 — DAV of reduce algorithms"),
    ("table4", "Table 4 — sliced STREAM bandwidth"),
    ("fig09", "Figure 9 — reduce-scatter comparison"),
    ("fig10", "Figure 10 — reduce comparison"),
    ("fig11", "Figure 11 — all-reduce comparison"),
    ("fig12", "Figure 12 — adaptive all-reduce"),
    ("fig13", "Figure 13 — adaptive broadcast"),
    ("fig14", "Figure 14 — adaptive all-gather"),
    ("fig15", "Figure 15 — vs state-of-the-art MPIs"),
    ("fig16a", "Figure 16a — single-node scalability"),
    ("fig16b", "Figure 16b — multi-node all-reduce"),
    ("fig17", "Figure 17 — MiniAMR"),
    ("table5", "Table 5 — CMA copy vs adaptive-copy"),
    ("fig18", "Figure 18 — CNN training throughput"),
    ("ablation", "Ablations (beyond the paper)"),
    ("model_validation", "Model validation"),
]

#: BENCH_*.json files that are derived indexes, not result documents
_NON_RESULT_JSON = ("BENCH_summary.json",)


@dataclass
class ReportSection:
    heading: str
    files: list = field(default_factory=list)


def _experiment_key(path: Path) -> str:
    """The experiment-index key of one results file: ``fig09_...txt``
    and ``BENCH_fig09_... .json`` both belong to the ``fig09`` rows."""
    name = path.name
    if name.startswith("BENCH_"):
        name = name[len("BENCH_"):]
    return name


def _result_files(results_dir: Path) -> List[Path]:
    txt = sorted(results_dir.glob("*.txt"))
    js = [p for p in sorted(results_dir.glob("BENCH_*.json"))
          if p.name not in _NON_RESULT_JSON]
    return txt + js


def collect_sections(results_dir: Path) -> list:
    """Group the results files by experiment, in paper order.

    Both formats participate: legacy text tables and the ``bench``
    runner's JSON documents.
    """
    if not results_dir.is_dir():
        raise FileNotFoundError(
            f"{results_dir} does not exist — run "
            "`python -m repro bench all` to produce benchmark results "
            "first"
        )
    all_files = _result_files(results_dir)
    used: set = set()
    sections = []
    for prefix, heading in EXPERIMENT_ORDER:
        files = [f for f in all_files
                 if _experiment_key(f).startswith(prefix)]
        if files:
            sections.append(ReportSection(heading=heading, files=files))
            used.update(files)
    leftovers = [f for f in all_files if f not in used]
    if leftovers:
        sections.append(ReportSection(heading="Other results",
                                      files=leftovers))
    return sections


def render_result_file(path: Path) -> str:
    """One results file as report text — the shared-renderer seam.

    Text files are included verbatim.  JSON documents are parsed and
    every sweep is rendered via :class:`~repro.bench.table.SweepTable`,
    exactly as the live ``bench`` run printed it; non-sweep (custom)
    payloads fall back to pretty-printed JSON.
    """
    if path.suffix != ".json":
        return path.read_text().rstrip()
    from repro.bench.table import SweepTable

    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return f"({path.name}: unreadable JSON: {exc})"
    parts = []
    for sweep in doc.get("sweeps", []):
        parts.append(SweepTable.from_json(sweep).render())
    if "custom" in doc:
        parts.append(json.dumps(doc["custom"], sort_keys=True, indent=2))
    if not parts:
        return f"({path.name}: no sweeps or custom payload)"
    return "\n\n".join(parts)


def build_report(results_dir: Path, *, title: Optional[str] = None) -> str:
    """Render the full markdown report."""
    sections = collect_sections(results_dir)
    lines = [
        title or "# Reproduction report — regenerated benchmark tables",
        "",
        "Produced from the result tables the benchmark suite wrote to "
        f"`{results_dir}` (legacy text tables and `repro-bench/1` JSON "
        "sweeps).  See EXPERIMENTS.md for the paper-vs-measured "
        "analysis of each experiment.",
    ]
    for sec in sections:
        lines += ["", f"## {sec.heading}", ""]
        for f in sec.files:
            lines += ["```", render_result_file(f), "```", ""]
    return "\n".join(lines)


def write_report(results_dir: Path, out: Path) -> Path:
    out.write_text(build_report(results_dir) + "\n")
    return out
