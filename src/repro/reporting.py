"""Reproduction report builder.

Collects the tables the benchmark suite wrote under
``benchmarks/results/`` into a single markdown report, ordered by the
paper's experiment index — the regenerable companion to EXPERIMENTS.md.

    python -m repro report [--results DIR] [--out FILE]
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

#: experiment index: (results-file glob prefix, section heading)
EXPERIMENT_ORDER = [
    ("fig03", "Figure 3 — copy-out overhead vs slice size"),
    ("table1", "Table 1 — DAV of reduce-scatter algorithms"),
    ("table2", "Table 2 — DAV of all-reduce algorithms"),
    ("table3", "Table 3 — DAV of reduce algorithms"),
    ("table4", "Table 4 — sliced STREAM bandwidth"),
    ("fig09", "Figure 9 — reduce-scatter comparison"),
    ("fig10", "Figure 10 — reduce comparison"),
    ("fig11", "Figure 11 — all-reduce comparison"),
    ("fig12", "Figure 12 — adaptive all-reduce"),
    ("fig13", "Figure 13 — adaptive broadcast"),
    ("fig14", "Figure 14 — adaptive all-gather"),
    ("fig15", "Figure 15 — vs state-of-the-art MPIs"),
    ("fig16a", "Figure 16a — single-node scalability"),
    ("fig16b", "Figure 16b — multi-node all-reduce"),
    ("fig17", "Figure 17 — MiniAMR"),
    ("table5", "Table 5 — CMA copy vs adaptive-copy"),
    ("fig18", "Figure 18 — CNN training throughput"),
    ("ablation", "Ablations (beyond the paper)"),
    ("model_validation", "Model validation"),
]


@dataclass
class ReportSection:
    heading: str
    files: list


def collect_sections(results_dir: Path) -> list:
    """Group the results files by experiment, in paper order."""
    if not results_dir.is_dir():
        raise FileNotFoundError(
            f"{results_dir} does not exist — run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    all_files = sorted(results_dir.glob("*.txt"))
    used: set = set()
    sections = []
    for prefix, heading in EXPERIMENT_ORDER:
        files = [f for f in all_files if f.name.startswith(prefix)]
        if files:
            sections.append(ReportSection(heading=heading, files=files))
            used.update(files)
    leftovers = [f for f in all_files if f not in used]
    if leftovers:
        sections.append(ReportSection(heading="Other results",
                                      files=leftovers))
    return sections


def build_report(results_dir: Path, *, title: Optional[str] = None) -> str:
    """Render the full markdown report."""
    sections = collect_sections(results_dir)
    lines = [
        title or "# Reproduction report — regenerated benchmark tables",
        "",
        "Produced from the text tables the benchmark suite wrote to "
        f"`{results_dir}`.  See EXPERIMENTS.md for the paper-vs-measured "
        "analysis of each experiment.",
    ]
    for sec in sections:
        lines += ["", f"## {sec.heading}", ""]
        for f in sec.files:
            lines += ["```", f.read_text().rstrip(), "```", ""]
    return "\n".join(lines)


def write_report(results_dir: Path, out: Path) -> Path:
    out.write_text(build_report(results_dir) + "\n")
    return out
