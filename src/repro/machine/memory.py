"""Memory-system timing: converts loads/stores into time and traffic.

The :class:`MemorySystem` owns one :class:`~repro.machine.cache.RegionCache`
per socket (sized to the socket's *effective* capacity, i.e. L3 plus the
aggregated private L2s for non-inclusive designs) and charges every
access to one of three paths:

* **cache hit** — per-core cache bandwidth (caches scale with cores);
* **local DRAM** — the socket's streaming bandwidth, *shared* by the
  ranks currently active on that socket (bandwidth contention is the
  first-order effect in node-level collectives);
* **remote DRAM / cache-to-cache** — the inter-socket link bandwidth,
  also shared, with a latency de-rating factor.

NUMA homing uses first-touch at region granularity: the first rank to
*store* a region homes its pages on that rank's socket, which is what
Linux does for the POSIX shared-memory segments the paper's library
allocates.  Private buffers are homed on their owner's socket.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import RegionCache
from repro.machine.spec import MachineSpec


@dataclass
class TrafficCounters:
    """Node-wide traffic and logical data-access-volume accounting.

    ``logical_load`` / ``logical_store`` implement the paper's DAV
    metric (Section 2.1): bytes loaded and stored by the algorithm,
    independent of where they are served from.  The remaining fields
    break the same accesses down by the physical path that served them.
    """

    logical_load: int = 0
    logical_store: int = 0
    cache_hit_bytes: int = 0
    mem_read_bytes: int = 0
    mem_write_bytes: int = 0
    rfo_bytes: int = 0
    writeback_bytes: int = 0
    numa_bytes: int = 0  # bytes that crossed the socket interconnect
    c2c_bytes: int = 0  # served by a remote socket's cache

    @property
    def dav(self) -> int:
        """Data access volume: total bytes loaded plus stored."""
        return self.logical_load + self.logical_store

    @property
    def memory_traffic(self) -> int:
        return self.mem_read_bytes + self.mem_write_bytes

    def __add__(self, other: "TrafficCounters") -> "TrafficCounters":
        return TrafficCounters(
            *[
                getattr(self, f.name) + getattr(other, f.name)
                for f in self.__dataclass_fields__.values()
            ]
        )


class MemorySystem:
    """Timing model of one node's caches, DRAM and socket interconnect."""

    #: usable fraction of the nominal cache capacity: real shared
    #: caches retain far less of a streaming working set than their
    #: size (conflict misses, other tenants); the adaptive-copy
    #: heuristic still uses the paper's nominal capacity model.
    CACHE_RETENTION = 0.75

    def __init__(self, machine: MachineSpec, nranks: int, *,
                 cache_model: str = "region"):
        machine.validate_nranks(nranks)
        self.machine = machine
        self.nranks = nranks
        cap = int(self.CACHE_RETENTION * machine.socket.effective_cache_capacity)
        if cache_model == "region":
            self.caches = [RegionCache(cap) for _ in range(machine.sockets)]
        elif cache_model == "interval":
            from repro.machine.interval_cache import IntervalCache

            self.caches = [IntervalCache(cap) for _ in range(machine.sockets)]
        else:
            raise ValueError(
                f"unknown cache model {cache_model!r} "
                "(choose 'region' or 'interval')"
            )
        self.counters = TrafficCounters()
        self.per_rank = [TrafficCounters() for _ in range(nranks)]
        self._rank_socket = [machine.socket_of_rank(r, nranks) for r in range(nranks)]
        # active ranks per socket, set by the engine per collective phase
        self._active = [
            max(1, len(machine.ranks_on_socket(nranks, s)))
            for s in range(machine.sockets)
        ]
        self._homes: dict[tuple, int] = {}

    # ---- configuration -----------------------------------------------------

    def set_active_ranks(self, ranks) -> None:
        """Declare which ranks are concurrently active (for bw sharing)."""
        counts = [0] * self.machine.sockets
        for r in ranks:
            counts[self._rank_socket[r]] += 1
        self._active = [max(1, c) for c in counts]

    def socket_of_rank(self, rank: int) -> int:
        return self._rank_socket[rank]

    def reset_counters(self) -> None:
        self.counters = TrafficCounters()
        self.per_rank = [TrafficCounters() for _ in range(self.nranks)]

    def reset_caches(self, *, clear_homes: bool = False) -> None:
        """Flush the simulated caches (cold start).

        NUMA page placement is durable across cache flushes; pass
        ``clear_homes=True`` only when recycling the memory system for
        an unrelated buffer population.
        """
        for c in self.caches:
            c.clear()
        if clear_homes:
            self._homes.clear()

    # ---- NUMA homing ---------------------------------------------------------

    def _home_of(self, buf, key: tuple) -> int:
        home = self._homes.get(key)
        if home is not None:
            return home
        if buf.home_socket is not None:
            return buf.home_socket
        # untouched, un-homed region: interleaved; treat as local
        return -1

    def _touch_home(self, buf, key: tuple, socket: int) -> None:
        if buf.home_socket is None and key not in self._homes:
            self._homes[key] = socket

    # ---- bandwidth shares ----------------------------------------------------

    def _sharers(self, socket: int, concurrency) -> int:
        """Number of ranks splitting the socket's DRAM bandwidth.

        Defaults to the ranks active in the current collective on this
        socket; algorithms whose phase structure leaves most ranks idle
        (e.g. a root's solo copy-out) pass an explicit ``concurrency``.
        """
        if concurrency is None:
            return self._active[socket]
        return max(1, min(concurrency, self._active[socket]))

    def _local_bw(self, socket: int, concurrency=None) -> float:
        return self.machine.socket.mem_bandwidth / self._sharers(socket, concurrency)

    def _remote_bw(self, socket: int, concurrency=None) -> float:
        link = min(self.machine.numa_bandwidth, self.machine.socket.mem_bandwidth)
        return (
            link
            / self._sharers(socket, concurrency)
            / self.machine.numa_latency_factor
        )

    def _mem_time(self, socket: int, local_bytes: int, remote_bytes: int,
                  concurrency=None) -> float:
        t = 0.0
        if local_bytes:
            t += local_bytes / self._local_bw(socket, concurrency)
        if remote_bytes:
            t += remote_bytes / self._remote_bw(socket, concurrency)
        return t

    def _c2c_bw(self, socket: int, concurrency=None) -> float:
        """Cache-to-cache transfer bandwidth over the socket link.

        Shared by the concurrently-reading ranks like any other
        cross-socket traffic; cooperative same-data fan-outs pass a low
        ``concurrency`` (each byte crosses the link once, then hits the
        local cache).
        """
        return (
            self.machine.numa_bandwidth
            / self.machine.numa_latency_factor
            / self._sharers(socket, concurrency)
        )

    # ---- accounting helper -----------------------------------------------------

    def _account(self, rank: int, *, is_load: bool, n: int, hit: int = 0,
                 mem_read: int = 0, mem_write: int = 0, rfo: int = 0,
                 writeback: int = 0, numa: int = 0, c2c: int = 0) -> None:
        for t in (self.counters, self.per_rank[rank]):
            if is_load:
                t.logical_load += n
            else:
                t.logical_store += n
            t.cache_hit_bytes += hit
            t.mem_read_bytes += mem_read
            t.mem_write_bytes += mem_write
            t.rfo_bytes += rfo
            t.writeback_bytes += writeback
            t.numa_bytes += numa
            t.c2c_bytes += c2c

    # ---- access API ---------------------------------------------------------------

    def load(self, rank: int, buf, off: int, n: int, *,
             concurrency=None) -> float:
        """Rank reads ``n`` bytes of ``buf`` at ``off``; returns seconds."""
        if n <= 0:
            return 0.0
        sock = self._rank_socket[rank]
        key = (buf.buf_id, off, n)
        res = self.caches[sock].load(buf.buf_id, off, n)
        c2c = 0
        remote = False
        if res.miss:
            # Cache-to-cache: another socket may hold the region.
            for s, cache in enumerate(self.caches):
                if s != sock and key in cache:
                    c2c = res.miss
                    break
            if not c2c:
                home = self._home_of(buf, key)
                remote = home not in (-1, sock)
        mem_read = res.miss - c2c
        self._account(
            rank, is_load=True, n=n, hit=res.hit, mem_read=mem_read,
            mem_write=res.writeback, writeback=res.writeback,
            numa=(mem_read if remote else 0) + c2c, c2c=c2c,
        )
        t = res.hit / self.machine.cache_bandwidth_core
        t += c2c / self._c2c_bw(sock, concurrency)
        t += self._mem_time(
            sock,
            (0 if remote else mem_read) + res.writeback,
            mem_read if remote else 0,
            concurrency,
        )
        return t

    def store(self, rank: int, buf, off: int, n: int, *, nt: bool = False,
              concurrency=None) -> float:
        """Rank writes ``n`` bytes; ``nt`` selects a non-temporal store."""
        if n <= 0:
            return 0.0
        sock = self._rank_socket[rank]
        key = (buf.buf_id, off, n)
        self._touch_home(buf, key, sock)
        home = self._home_of(buf, key)
        remote = home not in (-1, sock)
        # Invalidate copies on other sockets (ownership moves here).
        for s, cache in enumerate(self.caches):
            if s != sock:
                cache.invalidate(key)
        if nt:
            res = self.caches[sock].store_nt(buf.buf_id, off, n)
            self._account(
                rank, is_load=False, n=n, mem_write=n + res.writeback,
                writeback=res.writeback, numa=n if remote else 0,
            )
            return self._mem_time(
                sock,
                (0 if remote else n) + res.writeback,
                n if remote else 0,
                concurrency,
            )
        res = self.caches[sock].store(buf.buf_id, off, n)
        self._account(
            rank, is_load=False, n=n, hit=res.hit, mem_read=res.rfo,
            mem_write=res.writeback, rfo=res.rfo, writeback=res.writeback,
            numa=res.rfo if remote else 0,
        )
        t = res.hit / self.machine.cache_bandwidth_core
        # RFO read comes from the region's home; the dirty write-back of
        # evicted data drains to local memory.
        t += self._mem_time(
            sock,
            (0 if remote else res.rfo) + res.writeback,
            res.rfo if remote else 0,
            concurrency,
        )
        # The cache-fill write itself happens at cache speed.
        t += res.miss / self.machine.cache_bandwidth_core
        return t
