"""Alpha-beta model of the inter-node interconnect.

The multi-node experiments (Figures 16b, 17, 18) only require relative
intra- vs inter-node costs.  We model each node's NIC as a full-duplex
link with latency ``alpha`` and bandwidth ``beta``, plus the *multi-lane*
effect the paper exploits (Section 5.5): a single MPI process cannot
saturate a modern InfiniBand NIC, so implementations that communicate
through one leader per node see only ``lane_bandwidth``; k concurrent
processes see ``min(k * lane_bandwidth, link_bandwidth)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import GB_S, US


@dataclass(frozen=True)
class NetworkSpec:
    """Per-node NIC characteristics."""

    name: str
    latency: float  # seconds, one message
    link_bandwidth: float  # bytes/s, full NIC
    lane_bandwidth: float  # bytes/s achievable by a single process

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or self.lane_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.lane_bandwidth > self.link_bandwidth:
            raise ValueError("a single lane cannot exceed the link")


#: 100 Gb/s-class fabric: ~12 GB/s links, one process drives ~4 GB/s.
INFINIBAND_EDR = NetworkSpec(
    name="InfiniBand-EDR",
    latency=1.5 * US,
    link_bandwidth=12.0 * GB_S,
    lane_bandwidth=4.0 * GB_S,
)


class Network:
    """Cost model for point-to-point and ring exchanges between nodes."""

    def __init__(self, spec: NetworkSpec = INFINIBAND_EDR):
        self.spec = spec
        self.bytes_sent = 0
        self.messages = 0

    def effective_bandwidth(self, concurrent_procs: int) -> float:
        """Aggregate node bandwidth seen by ``concurrent_procs`` senders."""
        if concurrent_procs <= 0:
            raise ValueError("need at least one sender")
        return min(
            concurrent_procs * self.spec.lane_bandwidth, self.spec.link_bandwidth
        )

    def p2p_time(self, nbytes: int, concurrent_procs: int = 1) -> float:
        """One message of ``nbytes`` with the node link shared by
        ``concurrent_procs`` concurrent streams (each gets an equal share
        of the effective bandwidth)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.bytes_sent += nbytes
        self.messages += 1
        bw = self.effective_bandwidth(concurrent_procs) / concurrent_procs
        return self.spec.latency + nbytes / bw

    def ring_allreduce_time(
        self, nbytes: int, nnodes: int, concurrent_procs: int = 1
    ) -> float:
        """Inter-node ring allreduce of ``nbytes`` (reduce-scatter +
        allgather, the standard 2(n-1)/n exchange), with
        ``concurrent_procs`` processes per node driving the NIC
        (the paper's multi-lane hierarchical design splits the message
        across processes)."""
        if nnodes <= 1:
            return 0.0
        steps = 2 * (nnodes - 1)
        chunk = nbytes / nnodes
        bw = self.effective_bandwidth(concurrent_procs)
        self.bytes_sent += int(chunk * steps)
        self.messages += steps
        return steps * (self.spec.latency + chunk / bw)

    def tree_bcast_time(self, nbytes: int, nnodes: int) -> float:
        """Binomial-tree broadcast across nodes, single leader per node."""
        if nnodes <= 1:
            return 0.0
        import math

        rounds = math.ceil(math.log2(nnodes))
        self.bytes_sent += nbytes * (nnodes - 1)
        self.messages += nnodes - 1
        return rounds * (self.spec.latency + nbytes / self.spec.lane_bandwidth)

    def tree_allreduce_time(self, nbytes: int, nnodes: int) -> float:
        """Reduce+bcast binomial tree, single leader per node (models the
        vendor tree collectives that win on small messages)."""
        return 2.0 * self.tree_bcast_time(nbytes, nnodes)
