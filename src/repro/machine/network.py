"""Alpha-beta model of the inter-node interconnect.

The multi-node experiments (Figures 16b, 17, 18) only require relative
intra- vs inter-node costs.  We model each node's NIC as a full-duplex
link with latency ``alpha`` and bandwidth ``beta``, plus the *multi-lane*
effect the paper exploits (Section 5.5): a single MPI process cannot
saturate a modern InfiniBand NIC, so implementations that communicate
through one leader per node see only ``lane_bandwidth``; k concurrent
processes see ``min(k * lane_bandwidth, rails * link_bandwidth)``.
``rails`` models multi-rail nodes (several NICs striped per node, the
HPE Slingshot / dual-HCA InfiniBand configuration): each rail adds a
full link of bandwidth, reachable only with enough concurrent senders.

Cost queries are **side-effect-free**: every ``*_cost`` method returns
a :class:`NetworkCost` estimate and touches no counters, so callers can
price several candidate exchange strategies (the vendor tree-vs-ring
switch) and then :meth:`Network.commit` only the one that actually
runs.  The historical ``*_time`` helpers are thin pure wrappers around
the cost methods.  ``bytes_sent`` / ``messages`` therefore reflect
exactly the committed traffic; :meth:`Network.reset` gives per-call
accounting (see :mod:`repro.library.multinode`).

:class:`Topology` describes a whole cluster — groups of identical
nodes (machine preset, node count, ranks per node) sharing one NIC
model — and is the shape argument of the composable hierarchy layer
(:mod:`repro.library.hierarchy`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.machine.spec import GB_S, US


@dataclass(frozen=True)
class NetworkSpec:
    """Per-node NIC characteristics.

    ``link_bandwidth`` is one rail's full-duplex bandwidth;
    ``lane_bandwidth`` what a single process can drive; ``rails`` how
    many independent rails (NICs) each node stripes traffic across.
    """

    name: str
    latency: float  # seconds, one message
    link_bandwidth: float  # bytes/s, one full NIC rail
    lane_bandwidth: float  # bytes/s achievable by a single process
    rails: int = 1

    def __post_init__(self) -> None:
        if self.link_bandwidth <= 0 or self.lane_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.lane_bandwidth > self.link_bandwidth:
            raise ValueError("a single lane cannot exceed the link")
        if self.rails < 1:
            raise ValueError("a node needs at least one rail")

    @property
    def node_bandwidth(self) -> float:
        """Aggregate NIC bandwidth of one node (all rails)."""
        return self.rails * self.link_bandwidth


#: 100 Gb/s-class fabric: ~12 GB/s links, one process drives ~4 GB/s.
INFINIBAND_EDR = NetworkSpec(
    name="InfiniBand-EDR",
    latency=1.5 * US,
    link_bandwidth=12.0 * GB_S,
    lane_bandwidth=4.0 * GB_S,
)

#: 200 Gb/s-class fabric, two rails per node (dual-HCA striping).
INFINIBAND_HDR_2RAIL = NetworkSpec(
    name="InfiniBand-HDR-2rail",
    latency=1.3 * US,
    link_bandwidth=24.0 * GB_S,
    lane_bandwidth=6.0 * GB_S,
    rails=2,
)

#: NIC presets resolvable by name from declarative benchmark specs.
NETWORKS: "dict[str, NetworkSpec]" = {
    INFINIBAND_EDR.name: INFINIBAND_EDR,
    INFINIBAND_HDR_2RAIL.name: INFINIBAND_HDR_2RAIL,
}


@dataclass(frozen=True)
class NetworkCost:
    """Side-effect-free estimate of one inter-node exchange.

    ``bytes_on_wire`` / ``messages`` are per-node (what one NIC carries
    — the convention the counters have always used); ``steps`` is the
    synchronous step count of the exchange (latency terms).
    """

    time: float
    bytes_on_wire: int
    messages: int
    steps: int = 0

    def scaled(self, n: int) -> "NetworkCost":
        """The cost of running this exchange ``n`` times back to back
        (a segmented pipeline's chunks: every latency term, message and
        byte recurs per chunk)."""
        if n < 1:
            raise ValueError("need at least one repetition")
        return NetworkCost(
            time=self.time * n,
            bytes_on_wire=self.bytes_on_wire * n,
            messages=self.messages * n,
            steps=self.steps * n,
        )


ZERO_COST = NetworkCost(time=0.0, bytes_on_wire=0, messages=0, steps=0)


class Network:
    """Cost model for point-to-point and collective exchanges between
    nodes, with explicit estimate/commit traffic accounting."""

    def __init__(self, spec: NetworkSpec = INFINIBAND_EDR):
        self.spec = spec
        self.bytes_sent = 0
        self.messages = 0

    # ---- accounting -------------------------------------------------------

    def reset(self) -> None:
        """Zero the traffic counters (per-call accounting)."""
        self.bytes_sent = 0
        self.messages = 0

    def commit(self, cost: NetworkCost) -> None:
        """Record a chosen exchange's traffic.  Only committed costs
        reach the counters — pricing the road not taken is free."""
        self.bytes_sent += cost.bytes_on_wire
        self.messages += cost.messages

    # ---- cost queries (side-effect-free) ----------------------------------

    def effective_bandwidth(self, concurrent_procs: int) -> float:
        """Aggregate node bandwidth seen by ``concurrent_procs`` senders."""
        if concurrent_procs <= 0:
            raise ValueError("need at least one sender")
        return min(
            concurrent_procs * self.spec.lane_bandwidth,
            self.spec.node_bandwidth,
        )

    def p2p_cost(self, nbytes: int, concurrent_procs: int = 1) -> NetworkCost:
        """One message of ``nbytes`` with the node link shared by
        ``concurrent_procs`` concurrent streams (each gets an equal
        share of the effective bandwidth)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bw = self.effective_bandwidth(concurrent_procs) / concurrent_procs
        return NetworkCost(
            time=self.spec.latency + nbytes / bw,
            bytes_on_wire=nbytes,
            messages=1,
            steps=1,
        )

    def ring_allreduce_cost(
        self, nbytes: int, nnodes: int, concurrent_procs: int = 1
    ) -> NetworkCost:
        """Inter-node ring allreduce of ``nbytes`` (reduce-scatter +
        allgather, the standard 2(n-1)/n exchange), with
        ``concurrent_procs`` processes per node driving the NIC (the
        paper's multi-lane hierarchical design splits the message
        across processes)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nnodes <= 1:
            return ZERO_COST
        steps = 2 * (nnodes - 1)
        chunk = nbytes / nnodes
        bw = self.effective_bandwidth(concurrent_procs)
        return NetworkCost(
            time=steps * (self.spec.latency + chunk / bw),
            bytes_on_wire=int(chunk * steps),
            messages=steps,
            steps=steps,
        )

    def tree_bcast_cost(self, nbytes: int, nnodes: int) -> NetworkCost:
        """Binomial-tree broadcast across nodes, single leader per node.

        ``bytes_on_wire`` totals the whole tree's traffic (a node
        forwards to every subtree it roots), ``messages`` the per-node
        view the ring costs use: one message per round."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nnodes <= 1:
            return ZERO_COST
        rounds = math.ceil(math.log2(nnodes))
        return NetworkCost(
            time=rounds * (self.spec.latency
                           + nbytes / self.spec.lane_bandwidth),
            bytes_on_wire=nbytes * (nnodes - 1),
            messages=nnodes - 1,
            steps=rounds,
        )

    def tree_allreduce_cost(self, nbytes: int, nnodes: int) -> NetworkCost:
        """Reduce+bcast binomial tree, single leader per node (models
        the vendor tree collectives that win on small messages)."""
        bcast = self.tree_bcast_cost(nbytes, nnodes)
        return bcast.scaled(2) if nnodes > 1 else ZERO_COST

    def rabenseifner_allreduce_cost(
        self, nbytes: int, nnodes: int, concurrent_procs: int = 1
    ) -> NetworkCost:
        """Rabenseifner inter-node allreduce: recursive-halving
        reduce-scatter + recursive-doubling allgather.  Same
        ``2(n-1)/n`` bytes as the ring but only ``2 ceil(log2 n)``
        latency steps — the latency-optimal bandwidth-optimal point."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nnodes <= 1:
            return ZERO_COST
        rounds = 2 * math.ceil(math.log2(nnodes))
        exchanged = 2.0 * (nnodes - 1) / nnodes * nbytes
        bw = self.effective_bandwidth(concurrent_procs)
        return NetworkCost(
            time=rounds * self.spec.latency + exchanged / bw,
            bytes_on_wire=int(exchanged),
            messages=rounds,
            steps=rounds,
        )

    # ---- legacy pure wrappers ---------------------------------------------

    def p2p_time(self, nbytes: int, concurrent_procs: int = 1) -> float:
        """Pure time estimate; commit :meth:`p2p_cost` to account it."""
        return self.p2p_cost(nbytes, concurrent_procs).time

    def ring_allreduce_time(
        self, nbytes: int, nnodes: int, concurrent_procs: int = 1
    ) -> float:
        """Pure time estimate of :meth:`ring_allreduce_cost`."""
        return self.ring_allreduce_cost(nbytes, nnodes, concurrent_procs).time

    def tree_bcast_time(self, nbytes: int, nnodes: int) -> float:
        """Pure time estimate of :meth:`tree_bcast_cost`."""
        return self.tree_bcast_cost(nbytes, nnodes).time

    def tree_allreduce_time(self, nbytes: int, nnodes: int) -> float:
        """Pure time estimate of :meth:`tree_allreduce_cost`."""
        return self.tree_allreduce_cost(nbytes, nnodes).time


# ---------------------------------------------------------------------------
# Cluster topology
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeGroup:
    """A homogeneous slice of the cluster: ``nnodes`` nodes of one
    machine preset, each running ``ranks_per_node`` ranks."""

    machine: str
    nnodes: int
    ranks_per_node: int

    def __post_init__(self) -> None:
        if self.nnodes < 1:
            raise ValueError("a group needs at least one node")
        if self.ranks_per_node < 1:
            raise ValueError("a node needs at least one rank")

    @property
    def nranks(self) -> int:
        return self.nnodes * self.ranks_per_node


@dataclass(frozen=True)
class Topology:
    """Cluster shape: node groups joined by one interconnect.

    A single-group topology is the common homogeneous cluster
    (:meth:`uniform`); multiple groups model mixed NodeA/NodeB
    machines sharing a fabric — the hierarchy layer gates the
    inter-node exchange on the slowest group.
    """

    groups: Tuple[NodeGroup, ...]
    network: NetworkSpec = field(default=INFINIBAND_EDR)

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a topology needs at least one node group")

    @classmethod
    def uniform(cls, machine: str, nnodes: int, ranks_per_node: int,
                network: NetworkSpec = INFINIBAND_EDR) -> "Topology":
        return cls(groups=(NodeGroup(machine, nnodes, ranks_per_node),),
                   network=network)

    @property
    def nnodes(self) -> int:
        return sum(g.nnodes for g in self.groups)

    @property
    def nranks(self) -> int:
        return sum(g.nranks for g in self.groups)

    @property
    def homogeneous(self) -> bool:
        return len({(g.machine, g.ranks_per_node) for g in self.groups}) == 1

    def describe(self) -> dict:
        """Stable dict form (cache keys, result documents)."""
        return {
            "groups": [
                {"machine": g.machine, "nnodes": g.nnodes,
                 "ranks_per_node": g.ranks_per_node}
                for g in self.groups
            ],
            "network": self.network.name,
            "nnodes": self.nnodes,
            "nranks": self.nranks,
        }
