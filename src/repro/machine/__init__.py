"""Hardware substrate: machine specifications, cache models, memory system
timing, NUMA topology and the inter-node network model.

The paper's results are explained entirely by memory-system effects —
write-allocate (RFO) traffic, non-temporal store semantics, cache
capacity, NUMA locality and synchronization latency.  This subpackage
models those effects explicitly so that the collective algorithms in
:mod:`repro.collectives` can be timed on machines shaped like the
paper's NodeA / NodeB / ClusterC testbeds.
"""

from repro.machine.spec import (
    CacheSpec,
    MachineSpec,
    SocketSpec,
    NODE_A,
    NODE_B,
    CLUSTER_C,
    available_cache_capacity,
)
from repro.machine.cache import RegionCache, SetAssociativeCache, AccessResult
from repro.machine.memory import MemorySystem, TrafficCounters
from repro.machine.network import (
    Network,
    NetworkCost,
    NetworkSpec,
    NodeGroup,
    Topology,
    INFINIBAND_EDR,
    INFINIBAND_HDR_2RAIL,
    NETWORKS,
)

__all__ = [
    "CacheSpec",
    "MachineSpec",
    "SocketSpec",
    "NODE_A",
    "NODE_B",
    "CLUSTER_C",
    "available_cache_capacity",
    "RegionCache",
    "SetAssociativeCache",
    "AccessResult",
    "MemorySystem",
    "TrafficCounters",
    "Network",
    "NetworkCost",
    "NetworkSpec",
    "NodeGroup",
    "Topology",
    "INFINIBAND_EDR",
    "INFINIBAND_HDR_2RAIL",
    "NETWORKS",
]
