"""Byte-exact interval cache: the reference model for partial overlaps.

:class:`~repro.machine.cache.RegionCache` matches residency by exact
(buffer, offset, length) keys and treats partial overlaps as
evict-then-miss — fast, and accurate for the slice-aligned collectives.
This module provides the byte-exact alternative: residency is tracked
as disjoint dirty/clean **intervals** per buffer, so an access that
overlaps cached data hits on exactly the overlapped bytes and misses on
the rest, regardless of the boundaries previous accesses used.

It exists to *quantify* the region model's approximation (the cache
ablation runs all three models over the same access streams) and to
serve workloads with genuinely unaligned reuse.  It is a few times
slower than the region model and API-compatible with it.
"""

from __future__ import annotations

import bisect

from repro.machine.cache import AccessResult


class _Interval:
    """One resident interval of one buffer."""

    __slots__ = ("buf_id", "start", "end", "dirty", "stamp")

    def __init__(self, buf_id: int, start: int, end: int, dirty: bool,
                 stamp: int):
        self.buf_id = buf_id
        self.start = start
        self.end = end
        self.dirty = dirty
        self.stamp = stamp

    @property
    def size(self) -> int:
        return self.end - self.start


class IntervalCache:
    """LRU cache over byte intervals with exact partial-hit accounting.

    Same access API as :class:`RegionCache`: ``load`` / ``store`` /
    ``store_nt`` returning :class:`AccessResult`, plus ``flush_buffer``
    and ``clear``.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._used = 0
        self._clock = 0
        # per buffer: sorted list of starts + parallel interval list
        self._starts: dict[int, list] = {}
        self._ivals: dict[int, list] = {}

    # ---- bookkeeping -------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _buffer_lists(self, buf_id: int):
        return (
            self._starts.setdefault(buf_id, []),
            self._ivals.setdefault(buf_id, []),
        )

    def _insert_interval(self, iv: _Interval) -> None:
        starts, ivals = self._buffer_lists(iv.buf_id)
        idx = bisect.bisect_left(starts, iv.start)
        starts.insert(idx, iv.start)
        ivals.insert(idx, iv)
        self._used += iv.size

    def _remove_index(self, buf_id: int, idx: int) -> _Interval:
        starts, ivals = self._buffer_lists(buf_id)
        iv = ivals.pop(idx)
        starts.pop(idx)
        self._used -= iv.size
        return iv

    def _overlapping(self, buf_id: int, start: int, end: int):
        """Indices of intervals intersecting [start, end), ascending."""
        starts, ivals = self._buffer_lists(buf_id)
        out = []
        idx = bisect.bisect_right(starts, start) - 1
        if idx >= 0 and ivals[idx].end > start:
            out.append(idx)
        idx += 1
        while idx < len(ivals) and ivals[idx].start < end:
            out.append(idx)
            idx += 1
        return out

    # ---- eviction ---------------------------------------------------------------

    def _evict_bytes(self, need: int) -> int:
        """Evict LRU intervals until ``need`` bytes fit; returns the
        dirty write-back volume."""
        wb = 0
        while self._used + need > self.capacity:
            victim = None
            for buf_id, ivals in self._ivals.items():
                for i, iv in enumerate(ivals):
                    if victim is None or iv.stamp < victim[2].stamp:
                        victim = (buf_id, i, iv)
            if victim is None:
                break
            buf_id, i, iv = victim
            self._remove_index(buf_id, i)
            if iv.dirty:
                wb += iv.size
        return wb

    # ---- the access core -------------------------------------------------------

    def _carve(self, buf_id: int, start: int, end: int,
               writeback_overlaps: bool):
        """Remove [start, end) from residency, splitting boundary
        intervals.  Returns (hit_bytes, dirty_hit_bytes, writeback)."""
        hit = 0
        dirty_hit = 0
        wb = 0
        for idx in reversed(self._overlapping(buf_id, start, end)):
            iv = self._remove_index(buf_id, idx)
            lo, hi = max(iv.start, start), min(iv.end, end)
            hit += hi - lo
            if iv.dirty:
                dirty_hit += hi - lo
            # put back the non-overlapped remainders
            if iv.start < start:
                self._insert_interval(
                    _Interval(buf_id, iv.start, start, iv.dirty, iv.stamp)
                )
            if iv.end > end:
                self._insert_interval(
                    _Interval(buf_id, end, iv.end, iv.dirty, iv.stamp)
                )
        if writeback_overlaps:
            wb += dirty_hit
        return hit, dirty_hit, wb

    def _admit(self, buf_id: int, start: int, end: int, dirty: bool) -> int:
        """Insert [start, end) fresh (callers carved first).  Returns
        write-back bytes from capacity eviction."""
        size = end - start
        if size > self.capacity:
            return 0  # streams through, never resident
        wb = self._evict_bytes(size)
        self._insert_interval(
            _Interval(buf_id, start, end, dirty, self._tick())
        )
        return wb

    # ---- access API ---------------------------------------------------------------

    def load(self, buf_id: int, start: int, length: int) -> AccessResult:
        if length <= 0:
            return AccessResult()
        end = start + length
        hit, dirty_hit, _ = self._carve(buf_id, start, end,
                                        writeback_overlaps=False)
        miss = length - hit
        # re-admit the full range, preserving dirtiness of the hit part
        wb = self._admit(buf_id, start, end, dirty=dirty_hit > 0)
        return AccessResult(hit=hit, miss=miss, writeback=wb)

    def store(self, buf_id: int, start: int, length: int) -> AccessResult:
        if length <= 0:
            return AccessResult()
        end = start + length
        hit, _, _ = self._carve(buf_id, start, end, writeback_overlaps=False)
        miss = length - hit
        wb = self._admit(buf_id, start, end, dirty=True)
        # write-allocate: only the non-resident bytes pay the RFO read
        return AccessResult(hit=hit, miss=miss, rfo=miss, writeback=wb)

    def store_nt(self, buf_id: int, start: int, length: int) -> AccessResult:
        if length <= 0:
            return AccessResult()
        end = start + length
        # NT stores invalidate (no write-back: the store supersedes)
        self._carve(buf_id, start, end, writeback_overlaps=False)
        return AccessResult(miss=length)

    def invalidate(self, key: tuple) -> None:
        buf_id, start, length = key
        self._carve(buf_id, start, start + length, writeback_overlaps=False)

    def __contains__(self, key: tuple) -> bool:
        buf_id, start, length = key
        end = start + length
        covered = 0
        for idx in self._overlapping(buf_id, start, end):
            iv = self._ivals[buf_id][idx]
            covered += min(iv.end, end) - max(iv.start, start)
        return covered == length

    def flush_buffer(self, buf_id: int) -> int:
        ivals = self._ivals.get(buf_id, [])
        wb = sum(iv.size for iv in ivals if iv.dirty)
        self._used -= sum(iv.size for iv in ivals)
        self._ivals[buf_id] = []
        self._starts[buf_id] = []
        return wb

    def clear(self) -> None:
        self._starts.clear()
        self._ivals.clear()
        self._used = 0
