"""Machine specifications for the simulated shared-memory multi-core nodes.

The paper evaluates on three testbeds (Section 5.2.1):

* **NodeA** — 2x 32-core AMD EPYC 7452; per-CPU 256 MB *non-inclusive*
  L3; 512 KB inclusive L2 per core; 16 DDR4-3200 channels; 4x 16 GT/s
  xGMI inter-socket links.
* **NodeB** — 2x 24-core Intel Xeon Platinum 8163; per-CPU 66 MB
  *non-inclusive* L3; 1 MB L2 per core; 12 DDR4-2666 channels; 3x
  10.4 GT/s UPI links.
* **ClusterC** — 2x 12-core Intel Xeon E5-2692 v2; per-CPU 60 MB
  *inclusive* L3.

Bandwidth constants are *effective* (STREAM-achievable) figures tuned so
that the sliced-copy microbenchmark reproduces the shape of the paper's
Table 4 (t-copy ~150 GB/s vs nt-copy ~237 GB/s on NodeA).  Absolute
numbers are not the reproduction target; relative behaviour is.

Sizes are in bytes, bandwidths in bytes/second, latencies in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

GB_S = 1e9  # vendors quote decimal GB/s; we follow suit for bandwidths
US = 1e-6

CACHE_LINE = 64


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache level.

    ``inclusive`` follows the paper's usage: a *non-inclusive* L3 means
    data resident in private L2s is not duplicated in L3, so the
    available on-chip capacity is ``L3 + cores * L2`` (Section 4.2).
    """

    size: int
    line_size: int = CACHE_LINE
    associativity: int = 16
    inclusive: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"cache size must be positive, got {self.size}")
        if self.size % self.line_size:
            raise ValueError("cache size must be a multiple of the line size")

    @property
    def n_lines(self) -> int:
        return self.size // self.line_size

    @property
    def n_sets(self) -> int:
        return max(1, self.n_lines // self.associativity)


@dataclass(frozen=True)
class SocketSpec:
    """One CPU socket: cores, private L2, shared L3 and local DRAM."""

    cores: int
    l2_per_core: CacheSpec
    l3: CacheSpec
    mem_bandwidth: float  # achievable local-DRAM streaming bandwidth (B/s)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("a socket needs at least one core")
        if self.mem_bandwidth <= 0:
            raise ValueError("memory bandwidth must be positive")

    @property
    def effective_cache_capacity(self) -> int:
        """On-chip bytes available to streaming data on this socket."""
        if self.l3.inclusive:
            return self.l3.size
        return self.l3.size + self.cores * self.l2_per_core.size


def socket_of_rank_meta(rank: int, nranks: int | None, *, sockets: int,
                        cores_per_socket: int,
                        binding: str = "compact") -> int:
    """Rank → socket mapping from bare topology constants.

    The single implementation behind
    :meth:`MachineSpec.socket_of_rank`; also callable from consumers
    that only hold the JSON machine-meta projection carried in
    ``repro-ir/1`` documents (the static critical-path pass, the
    compiled-schedule lowering) rather than a full spec object.
    """
    if rank < 0:
        raise ValueError("rank must be non-negative")
    if binding == "scatter":
        return rank % sockets
    if nranks is not None and nranks <= sockets * cores_per_socket:
        per = -(-nranks // sockets)  # ceil: spread over sockets
        return min(rank // per, sockets - 1)
    return (rank // cores_per_socket) % sockets


@dataclass(frozen=True)
class MachineSpec:
    """A shared-memory node: homogeneous sockets plus interconnect.

    ``cache_bandwidth_core`` is the per-core bandwidth for cache-resident
    copies/reductions; ``numa_bandwidth`` is the per-direction
    inter-socket link bandwidth shared by all cross-socket traffic.

    ``sync_latency_intra`` / ``sync_latency_inter`` are the costs of one
    flag-based point-to-point synchronization between two ranks on the
    same / different sockets (the paper synchronizes neighbouring
    reduction steps with atomic flag updates, Section 3.3).
    """

    name: str
    sockets: int
    socket: SocketSpec
    cache_bandwidth_core: float = 35.0 * GB_S
    numa_bandwidth: float = 60.0 * GB_S
    numa_latency_factor: float = 1.35  # remote DRAM access slowdown
    sync_latency_intra: float = 0.60 * US
    sync_latency_inter: float = 1.50 * US
    # glibc-style memmove switches to non-temporal stores above this size.
    memmove_nt_threshold: int = 2 * MB
    # Fixed per-call software overhead of one copy/reduce operation
    # (function call, loop setup, pipeline fill).
    op_overhead: float = 0.25 * US
    # Kernel-assisted (CMA-like) copy: per-page cost and page size.
    kernel_page_size: int = 4 * KB
    kernel_page_overhead: float = 0.065 * US
    kernel_syscall_overhead: float = 1.0 * US
    # XPMEM-style direct access: per-remote-buffer attach/translation
    # cost paid when a rank maps another process's segment.
    xpmem_attach_overhead: float = 1.5 * US
    # Rank-to-core binding policy: "compact" fills a socket before
    # moving on (the artifact's S8 requirement); "scatter" round-robins
    # ranks across sockets, breaking the locality the socket-aware
    # designs assume — kept as an ablation knob.
    binding: str = "compact"

    # ---- topology helpers -------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.sockets * self.socket.cores

    @property
    def mem_bandwidth_node(self) -> float:
        return self.sockets * self.socket.mem_bandwidth

    def socket_of_rank(self, rank: int, nranks: int | None = None) -> int:
        """Map a rank to a socket under the configured binding.

        ``compact`` fills socket 0 first, then socket 1, ... matching
        the paper's requirement that "the process-core binding is in the
        right order" (artifact step S8).  ``scatter`` round-robins
        ranks over sockets (the misconfiguration S8 warns about).
        """
        return socket_of_rank_meta(
            rank, nranks, sockets=self.sockets,
            cores_per_socket=self.socket.cores, binding=self.binding,
        )

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ValueError("need at least one socket")
        if self.binding not in ("compact", "scatter"):
            raise ValueError(f"unknown binding policy {self.binding!r}")

    def ranks_on_socket(self, nranks: int, sock: int) -> list[int]:
        return [r for r in range(nranks) if self.socket_of_rank(r, nranks) == sock]

    def validate_nranks(self, nranks: int) -> None:
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        if nranks > self.total_cores:
            raise ValueError(
                f"{self.name} has {self.total_cores} cores; cannot run "
                f"{nranks} ranks one-per-core"
            )

    def with_(self, **changes) -> "MachineSpec":
        """Return a copy with some fields replaced (for ablations)."""
        return replace(self, **changes)


def available_cache_capacity(machine: MachineSpec, nranks: int) -> int:
    """Available cache capacity ``C`` per Section 4.2 of the paper.

    ``C = c' + p * c''`` when the last-level cache is non-inclusive
    (``c'`` = LLC size of one CPU, ``c''`` = second-last-level cache per
    core), else ``C = c'``.  This is the capacity used by the
    adaptive-copy heuristic (Algorithm 1); note it intentionally follows
    the paper in using a *single* CPU's L3 even on multi-socket nodes.
    """
    machine.validate_nranks(nranks)
    c_prime = machine.socket.l3.size
    if machine.socket.l3.inclusive:
        return c_prime
    return c_prime + nranks * machine.socket.l2_per_core.size


# ---------------------------------------------------------------------------
# Presets mirroring the paper's testbeds.
# ---------------------------------------------------------------------------

NODE_A = MachineSpec(
    name="NodeA",
    sockets=2,
    socket=SocketSpec(
        cores=32,
        l2_per_core=CacheSpec(size=512 * KB, inclusive=True),
        l3=CacheSpec(size=256 * MB, inclusive=False),
        mem_bandwidth=120.0 * GB_S,  # 8 ch DDR4-3200/socket, ~60% efficiency
    ),
    cache_bandwidth_core=40.0 * GB_S,
    numa_bandwidth=70.0 * GB_S,  # 4x 16 GT/s xGMI
    sync_latency_intra=0.60 * US,
    sync_latency_inter=1.50 * US,
)

NODE_B = MachineSpec(
    name="NodeB",
    sockets=2,
    socket=SocketSpec(
        cores=24,
        l2_per_core=CacheSpec(size=1 * MB, inclusive=True),
        l3=CacheSpec(size=66 * MB, inclusive=False),
        mem_bandwidth=95.0 * GB_S,  # 6 ch DDR4-2666/socket
    ),
    cache_bandwidth_core=45.0 * GB_S,
    numa_bandwidth=45.0 * GB_S,  # 3x 10.4 GT/s UPI
    sync_latency_intra=0.55 * US,
    sync_latency_inter=1.40 * US,
)

CLUSTER_C = MachineSpec(
    name="ClusterC",
    sockets=2,
    socket=SocketSpec(
        cores=12,
        l2_per_core=CacheSpec(size=256 * KB, inclusive=True),
        l3=CacheSpec(size=30 * MB, inclusive=True),  # 60 MB across 2 CPUs
        mem_bandwidth=45.0 * GB_S,  # 4 ch DDR3-1866/socket
    ),
    cache_bandwidth_core=25.0 * GB_S,
    numa_bandwidth=25.0 * GB_S,  # 2x QPI
    sync_latency_intra=0.80 * US,
    sync_latency_inter=1.80 * US,
)

#: A 4-socket node in the spirit of the paper's "future architectures
#: with more cores" discussion (Section 3.3) — modelled on a quad-socket
#: Cascade Lake-class box.  Used by the m>2 socket-aware validation and
#: the socket-count ablation.
NODE_D = MachineSpec(
    name="NodeD",
    sockets=4,
    socket=SocketSpec(
        cores=16,
        l2_per_core=CacheSpec(size=1 * MB, inclusive=True),
        l3=CacheSpec(size=22 * MB, inclusive=False),
        mem_bandwidth=85.0 * GB_S,
    ),
    cache_bandwidth_core=45.0 * GB_S,
    numa_bandwidth=35.0 * GB_S,
    sync_latency_intra=0.55 * US,
    sync_latency_inter=1.60 * US,
)

PRESETS: dict[str, MachineSpec] = {
    "NodeA": NODE_A,
    "NodeB": NODE_B,
    "ClusterC": CLUSTER_C,
    "NodeD": NODE_D,
}
