"""Cache models implementing write-allocate (RFO) and non-temporal stores.

Two models with one access API:

* :class:`RegionCache` — region-granular LRU capacity model.  The
  collective algorithms touch memory in whole slices, so tracking
  residency per (buffer, offset, length) region is both fast and
  faithful for this workload.  This is the model used by the timing
  simulation.
* :class:`SetAssociativeCache` — classic line-granular set-associative
  simulator.  Too slow for 256 MB messages, but used by the test suite
  to validate that the region model agrees with a "real" cache on small
  workloads.

Semantics (Section 2.2 of the paper):

* **load** — hit bytes come from cache; miss bytes come from memory and
  are allocated (possibly evicting dirty data, which charges a
  write-back).
* **temporal store** — write-allocate: a store miss raises a Request
  For Ownership that *reads* the line from memory before writing it in
  cache; the line is dirty and will be written back on eviction.
* **non-temporal store** — bytes stream straight to memory with no
  allocation and no RFO; any cached copy is invalidated (dropped
  without write-back, as the NT store supersedes the stale line).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


def streams_through(length: int, capacity: int) -> bool:
    """True when a region of ``length`` bytes cannot be resident in a
    cache of ``capacity`` bytes and therefore streams through it.

    This is *the* size-dependent residency decision of the region
    model (:class:`RegionCache` applies it on every store and insert);
    the compiled evaluator's size-polymorphism guards
    (:func:`repro.models.nt_model.decision_guards`) evaluate the same
    predicate to decide whether two message sizes share a schedule's
    cache-outcome regime."""
    return length > capacity


@dataclass
class AccessResult:
    """Byte-level outcome of one cache access.

    ``hit`` + ``miss`` always equals the requested size.  ``rfo`` is the
    extra memory *read* traffic triggered by store misses under
    write-allocate.  ``writeback`` is dirty data evicted to memory as a
    consequence of this access.
    """

    hit: int = 0
    miss: int = 0
    rfo: int = 0
    writeback: int = 0

    def __add__(self, other: "AccessResult") -> "AccessResult":
        return AccessResult(
            self.hit + other.hit,
            self.miss + other.miss,
            self.rfo + other.rfo,
            self.writeback + other.writeback,
        )

    @property
    def memory_read_bytes(self) -> int:
        return self.miss + self.rfo

    @property
    def memory_write_bytes(self) -> int:
        return self.writeback


class RegionCache:
    """Region-granular LRU model of one socket's cache capacity.

    Keys are ``(buffer_id, start, length)`` tuples.  The collectives
    access memory at consistent slice boundaries, so exact-key matching
    is accurate for them; a partially overlapping access invalidates the
    overlapped residents (write-back if dirty) and is treated as a miss
    for the non-resident bytes.  The line-granular model in
    :class:`SetAssociativeCache` cross-checks this approximation.
    """

    #: granularity of the per-buffer interval index used to find
    #: overlapping residents without scanning every region
    BUCKET = 64 * 1024

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._regions: OrderedDict[tuple, bool] = OrderedDict()  # key -> dirty
        self._sizes: dict[tuple, int] = {}
        self._used = 0
        # Per-buffer index of resident keys, for overlap checks & flushes.
        self._by_buffer: dict[int, set] = {}
        # (buf_id, bucket) -> set of keys intersecting that bucket.
        self._buckets: dict[tuple, set] = {}

    # ---- bookkeeping ------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, key: tuple) -> bool:
        return key in self._regions

    def _bucket_range(self, key: tuple):
        buf_id, start, length = key
        first = start // self.BUCKET
        last = (start + length - 1) // self.BUCKET
        return buf_id, first, last

    def _index_add(self, key: tuple) -> None:
        buf_id, first, last = self._bucket_range(key)
        self._by_buffer.setdefault(buf_id, set()).add(key)
        for b in range(first, last + 1):
            self._buckets.setdefault((buf_id, b), set()).add(key)

    def _index_remove(self, key: tuple) -> None:
        buf_id, first, last = self._bucket_range(key)
        self._by_buffer[buf_id].discard(key)
        for b in range(first, last + 1):
            bucket = self._buckets.get((buf_id, b))
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._buckets[(buf_id, b)]

    def _insert(self, key: tuple, size: int, dirty: bool) -> int:
        """Insert a region, evicting LRU entries.  Returns write-back bytes."""
        wb = 0
        if key in self._regions:
            # refresh
            dirty = dirty or self._regions[key]
            self._regions.move_to_end(key)
            self._regions[key] = dirty
            return 0
        if streams_through(size, self.capacity):
            # A region larger than the whole cache cannot be resident;
            # it streams through.  Model: not inserted, no write-back
            # here (the caller already counted the miss traffic).
            return 0
        while self._used + size > self.capacity and self._regions:
            old_key, old_dirty = self._regions.popitem(last=False)
            old_size = self._sizes.pop(old_key)
            self._index_remove(old_key)
            self._used -= old_size
            if old_dirty:
                wb += old_size
        self._regions[key] = dirty
        self._sizes[key] = size
        self._used += size
        self._index_add(key)
        return wb

    def _drop(self, key: tuple, writeback_if_dirty: bool) -> int:
        dirty = self._regions.pop(key)
        size = self._sizes.pop(key)
        self._index_remove(key)
        self._used -= size
        return size if (dirty and writeback_if_dirty) else 0

    def _resolve_overlaps(self, buf_id: int, start: int, length: int) -> int:
        """Evict residents that partially overlap [start, start+length).

        Exact matches are kept (they are handled by the caller).  Returns
        write-back bytes from evicted dirty overlaps.
        """
        end = start + length
        first = start // self.BUCKET
        last = (end - 1) // self.BUCKET
        doomed = set()
        for b in range(first, last + 1):
            for k in self._buckets.get((buf_id, b), ()):
                if (
                    not (k[1] == start and k[2] == length)
                    and k[1] < end
                    and start < k[1] + k[2]
                ):
                    doomed.add(k)
        wb = 0
        for k in doomed:
            wb += self._drop(k, writeback_if_dirty=True)
        return wb

    # ---- access API --------------------------------------------------------

    def load(self, buf_id: int, start: int, length: int) -> AccessResult:
        """Read ``length`` bytes; misses allocate."""
        if length <= 0:
            return AccessResult()
        key = (buf_id, start, length)
        if key in self._regions:
            # exact residency excludes overlapping residents (inserts
            # resolve overlaps), so the fast path skips the index scan
            self._regions.move_to_end(key)
            return AccessResult(hit=length)
        wb = self._resolve_overlaps(buf_id, start, length)
        wb += self._insert(key, length, dirty=False)
        return AccessResult(miss=length, writeback=wb)

    def store(self, buf_id: int, start: int, length: int) -> AccessResult:
        """Temporal (write-allocate) store: misses pay an RFO read."""
        if length <= 0:
            return AccessResult()
        key = (buf_id, start, length)
        if key in self._regions:
            self._regions.move_to_end(key)
            self._regions[key] = True
            return AccessResult(hit=length)
        wb = self._resolve_overlaps(buf_id, start, length)
        wb += self._insert(key, length, dirty=True)
        if streams_through(length, self.capacity):
            # Streaming store larger than cache: write-allocate still
            # reads every line once and dirty lines stream back out.
            return AccessResult(miss=length, rfo=length, writeback=wb + length)
        return AccessResult(miss=length, rfo=length, writeback=wb)

    def store_nt(self, buf_id: int, start: int, length: int) -> AccessResult:
        """Non-temporal store: no allocation, no RFO; invalidates copies."""
        if length <= 0:
            return AccessResult()
        key = (buf_id, start, length)
        if key in self._regions:
            self._drop(key, writeback_if_dirty=False)
        else:
            self._resolve_overlaps(buf_id, start, length)
        # All bytes go to memory; counted as misses with no RFO.
        return AccessResult(miss=length)

    def invalidate(self, key: tuple) -> None:
        """Drop a region without write-back (coherence invalidation)."""
        if key in self._regions:
            self._drop(key, writeback_if_dirty=False)

    def flush_buffer(self, buf_id: int) -> int:
        """Drop all regions of one buffer, returning write-back bytes."""
        keys = list(self._by_buffer.get(buf_id, ()))
        return sum(self._drop(k, writeback_if_dirty=True) for k in keys)

    def clear(self) -> None:
        self._regions.clear()
        self._sizes.clear()
        self._by_buffer.clear()
        self._buckets.clear()
        self._used = 0


class SetAssociativeCache:
    """Line-granular set-associative cache with LRU replacement.

    Addresses are ``(buffer_id, byte_offset)`` pairs; each buffer lives
    in its own address space, mapped to sets by offset.  Used for
    validating :class:`RegionCache` on small footprints.
    """

    def __init__(self, size: int, line_size: int = 64, associativity: int = 8):
        if size % (line_size * associativity):
            raise ValueError("size must be a multiple of line_size*associativity")
        self.line_size = line_size
        self.associativity = associativity
        self.n_sets = size // (line_size * associativity)
        self.size = size
        # set index -> OrderedDict[(buf_id, line_addr)] -> dirty
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]

    def _set_index(self, buf_id: int, line_addr: int) -> int:
        # Hash the buffer id in so distinct buffers don't all collide at
        # set 0 for offset 0.
        return (line_addr + buf_id * 7919) % self.n_sets

    def _touch_line(self, buf_id: int, line_addr: int, dirty: bool, allocate: bool):
        """Access one line.  Returns (hit, writeback_lines)."""
        idx = self._set_index(buf_id, line_addr)
        s = self._sets[idx]
        key = (buf_id, line_addr)
        if key in s:
            s.move_to_end(key)
            if dirty:
                s[key] = True
            return True, 0
        if not allocate:
            return False, 0
        wb = 0
        if len(s) >= self.associativity:
            _, old_dirty = s.popitem(last=False)
            if old_dirty:
                wb = 1
        s[key] = dirty
        return False, wb

    def _lines(self, start: int, length: int):
        first = start // self.line_size
        last = (start + length - 1) // self.line_size
        return range(first, last + 1)

    def load(self, buf_id: int, start: int, length: int) -> AccessResult:
        if length <= 0:
            return AccessResult()
        res = AccessResult()
        for la in self._lines(start, length):
            hit, wb = self._touch_line(buf_id, la, dirty=False, allocate=True)
            if hit:
                res.hit += self.line_size
            else:
                res.miss += self.line_size
            res.writeback += wb * self.line_size
        return res

    def store(self, buf_id: int, start: int, length: int) -> AccessResult:
        if length <= 0:
            return AccessResult()
        res = AccessResult()
        for la in self._lines(start, length):
            hit, wb = self._touch_line(buf_id, la, dirty=True, allocate=True)
            if hit:
                res.hit += self.line_size
            else:
                res.miss += self.line_size
                res.rfo += self.line_size
            res.writeback += wb * self.line_size
        return res

    def store_nt(self, buf_id: int, start: int, length: int) -> AccessResult:
        if length <= 0:
            return AccessResult()
        res = AccessResult()
        for la in self._lines(start, length):
            idx = self._set_index(buf_id, la)
            s = self._sets[idx]
            key = (buf_id, la)
            if key in s:
                del s[key]  # invalidate without write-back
            res.miss += self.line_size
        return res

    def clear(self) -> None:
        for s in self._sets:
            s.clear()

    @property
    def used_bytes(self) -> int:
        return sum(len(s) for s in self._sets) * self.line_size
