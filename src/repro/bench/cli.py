"""``python -m repro bench`` — the benchmark suite front end.

Examples::

    python -m repro bench all --jobs 8        # full suite, 8 workers
    python -m repro bench fig11_allreduce     # one benchmark, cached
    python -m repro bench all --no-cache      # force re-simulation
    python -m repro bench list                # what's available
    REPRO_QUICK=1 python -m repro bench all --jobs 2 --json   # CI smoke
"""

from __future__ import annotations

import os
import sys
import time


def add_bench_parser(sub) -> None:
    bench = sub.add_parser(
        "bench",
        help="parallel benchmark suite with persistent result cache",
    )
    bench.add_argument(
        "name",
        help="benchmark name, comma-separated names, 'all', or 'list'",
    )
    bench.add_argument(
        "-j", "--jobs", type=int, default=0, metavar="N",
        help="worker processes (0 = one per CPU core, 1 = serial)",
    )
    bench.add_argument(
        "--no-cache", action="store_true",
        help="ignore and don't update the on-disk result cache",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="print the consolidated summary JSON to stdout instead of "
             "the text tables",
    )
    bench.add_argument(
        "--compiled", action="store_true",
        help="replay compiled schedules (vectorized evaluator) instead "
             "of executing the coroutine engine per cell; schedules "
             "are captured once and persist under results/compiled/",
    )
    bench.add_argument(
        "--poly", action="store_true",
        help="size-polymorphic compiled replay: one captured schedule "
             "serves every size in a decision region (other sizes are "
             "model-retimed); requires --compiled",
    )
    bench.add_argument(
        "--certified", action="store_true",
        help="certify each decision region with the symbolic-size "
             "analyzer and replay with engine-exact DAV/footprints "
             "(uncertifiable regions fall back to model retiming and "
             "report their SA-SYM-* codes); requires --poly",
    )
    bench.add_argument(
        "--perturb", type=int, default=0, metavar="N",
        help="replay an N-sample noise ensemble per cell through the "
             "batched evaluator and report p50/p99/p999 tail latency; "
             "requires --compiled",
    )
    bench.add_argument(
        "--perturb-model", default="mixed", metavar="MODEL",
        help="perturbation model: os-noise, straggler, freq-skew, "
             "arrival or mixed (default)",
    )
    bench.add_argument(
        "--perturb-seed", type=int, default=2023, metavar="SEED",
        help="base seed for perturbation ensembles (default 2023)",
    )
    bench.add_argument(
        "--microbench", action="store_true",
        help="also run the capture-cost/batched-replay microbenchmark "
             "(writes BENCH_compiled.json); implied by "
             "'--compiled all'",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smoke-run size grids (same as REPRO_QUICK=1)",
    )


def run_bench_command(args) -> int:
    if args.quick:
        os.environ["REPRO_QUICK"] = "1"
    # import after the env is settled: the size grids read REPRO_QUICK
    from repro.bench.discover import (
        benchmarks_dir,
        default_results_dir,
        load_benchmarks,
    )
    from repro.bench.executor import run_suite
    from repro.bench.jsonio import canonical_dumps

    if (args.poly or args.perturb) and not args.compiled:
        which = "--poly" if args.poly else "--perturb"
        print(f"error: {which} requires --compiled (it operates on "
              "captured schedules)", file=sys.stderr)
        return 2
    if args.certified and not args.poly:
        print("error: --certified requires --poly (it certifies "
              "decision regions)", file=sys.stderr)
        return 2
    if args.perturb < 0:
        print("error: --perturb must be >= 0", file=sys.stderr)
        return 2

    bench_dir = benchmarks_dir()
    available = load_benchmarks(bench_dir)

    if args.name == "list":
        for name, bench in available.items():
            shape = (f"{len(bench.sweeps)} sweep(s)" if bench.sweeps
                     else f"custom ({bench.custom})")
            print(f"{name:<28} {shape}  [{bench.module}]")
        return 0

    if args.name == "all":
        selected = available
    else:
        selected = {}
        for name in args.name.split(","):
            name = name.strip()
            if name not in available:
                print(f"error: unknown benchmark {name!r}; "
                      f"try 'python -m repro bench list'", file=sys.stderr)
                return 2
            selected[name] = available[name]

    perturb = None
    if args.perturb:
        perturb = {"n": args.perturb, "model": args.perturb_model,
                   "seed": args.perturb_seed}
    progress = None if args.json else lambda msg: print(msg)
    t0 = time.time()
    summary, docs, cache = run_suite(
        selected,
        bench_dir=bench_dir,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        compiled=args.compiled,
        poly=args.poly,
        certified=args.certified,
        perturb=perturb,
        progress=progress,
    )
    elapsed = time.time() - t0
    if args.json:
        print(canonical_dumps(summary), end="")
    results_dir = default_results_dir()
    mode = "compiled" if args.compiled else "coroutine"
    micro = None
    if args.microbench or (args.compiled and args.name == "all"):
        from repro.bench.compiled import run_capture_microbench

        micro = run_capture_microbench(
            results_dir,
            progress=None if args.json else progress)
    if args.name == "all":
        block = _record_wall_clock(results_dir, mode, elapsed,
                                   summary.get("source_version", ""),
                                   microbench=micro)
        if block and "speedup" in block:
            print(
                f"[bench] wall clock: coroutine {block['coroutine']}s, "
                f"compiled {block['compiled']}s — "
                f"{block['speedup']}x speedup",
                file=sys.stderr,
            )
    elif micro is not None:
        _record_wall_clock(results_dir, mode, elapsed,
                           summary.get("source_version", ""),
                           microbench=micro, record_elapsed=False)
    if micro is not None:
        print(
            f"[bench] microbench: capture {micro['capture_overhead']:.2f}x "
            f"coroutine; batched B={micro['batch']['n']} "
            f"{micro['batch']['speedup_vs_loop']:.1f}x vs loop "
            f"(bitwise_equal={micro['bitwise_equal']})",
            file=sys.stderr,
        )
    print(
        f"[bench] {len(selected)} benchmark(s) ({mode}) in {elapsed:.1f}s; "
        f"{cache.stats()}; JSON under {results_dir}/BENCH_*.json",
        file=sys.stderr,
    )
    return 0


def _record_wall_clock(results_dir, mode: str, elapsed: float,
                       source: str, *, microbench=None,
                       record_elapsed: bool = True):
    """Append the advisory ``wall_clock`` block to the summary on disk.

    Entries for both engine modes accumulate across runs of one source
    version (the before/after record for the compiled evaluator); a
    source change discards stale timings.  Because ``run_suite``
    rewrites ``BENCH_summary.json`` from scratch on every run, the
    block persists in a ``wall_clock.json`` sidecar and is merged back
    into the summary here.  The capture microbenchmark's headline
    numbers ride along under ``microbench`` (the full document lives
    in ``BENCH_compiled.json``).  This block is the documented
    exception to the summary's determinism guarantee — see
    :mod:`repro.bench.jsonio`.
    """
    import json

    from repro.bench.jsonio import canonical_dumps

    sidecar = results_dir / "wall_clock.json"
    try:
        block = json.loads(sidecar.read_text())
    except (OSError, ValueError):
        block = {}
    if not isinstance(block, dict) or block.get("source") != source:
        block = {"source": source}
    if record_elapsed:
        block[mode] = round(elapsed, 3)
    if block.get("coroutine") and block.get("compiled"):
        block["speedup"] = round(block["coroutine"] / block["compiled"], 2)
    if microbench is not None:
        block["microbench"] = {
            "capture_overhead": round(microbench["capture_overhead"], 3),
            "capture_s": round(microbench["capture_s"], 4),
            "batch_speedup_vs_loop": round(
                microbench["batch"]["speedup_vs_loop"], 2),
            "bitwise_equal": microbench["bitwise_equal"],
        }
    sidecar.write_text(canonical_dumps(block))
    path = results_dir / "BENCH_summary.json"
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return block
    doc["wall_clock"] = block
    path.write_text(canonical_dumps(doc))
    return block
