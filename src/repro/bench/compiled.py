"""The compiled bench cell path: capture → lower → cache → replay.

A sweep cell normally executes the coroutine engine twice (warm-up +
measured iteration).  The compiled path instead:

1. runs the cell **once** with light tracing on (only on schedule-cache
   miss; AccessEvent emission off — the lowering consumes op records
   and sync structure only), lifts the measured iteration into the
   ``repro-ir/1`` DAG and lowers it (:func:`repro.sim.compiled.lower`);
2. stores the lowered schedule in a content-addressed
   :class:`CompiledScheduleCache` under
   ``benchmarks/results/compiled/``, keyed with the same
   ``(machine spec, runner spec, geometry, source_version)`` discipline
   as the result cache — any source edit invalidates every schedule;
3. replays cached schedules with the vectorized evaluator — no
   coroutine execution at all on the re-simulation path.

Replayed results are bitwise-identical to the coroutine cell (same
completion times, same ``repro-obs/1`` counter snapshot), which the
equivalence tests pin across the full collective × p matrix.  Because
cache outcomes in the memory system are access-order and size
dependent, exact schedules are captured per ``(collective, p, size)``
cell — cross-size reuse would silently break exactness.

**Size-polymorphic mode** (``poly=True`` payloads) relaxes that
deliberately: schedules key per *decision region*
(:func:`repro.models.nt_model.decision_guards` — every size-dependent
adaptive decision, evaluated as data).  A cell whose guards match a
cached capture replays it — exactly when the sizes coincide, via
model-level re-timing (:meth:`CompiledSchedule.model_durations` with
scaled footprints) otherwise.  A guard flip keys a different entry,
which *is* the automatic recapture.  One capture serves every size in
its region.

An in-process memo front-ends the on-disk schedule cache so that
perturbation ensembles and ``--no-cache`` re-simulations never
deserialize (or recapture) the same schedule twice in one process.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

from repro.bench.cache import ResultCache, descriptor_key, source_version
from repro.bench.runners import ITERATIONS
from repro.bench.spec import RunnerSpec
from repro.obs.counters import _TRAFFIC_FIELDS
from repro.sim.compiled import (
    COMPILED_SCHEMA,
    CompiledSchedule,
    ScheduleSchemaError,
    lower,
    schedule_from_doc,
    schedule_to_doc,
)

#: result-dict keys that are run artifacts (cache-state dependent), not
#: part of the deterministic cell result; the executor strips them
#: before persisting to the result cache.
TRANSIENT_RESULT_KEYS = ("captured",)


class CompiledScheduleCache(ResultCache):
    """Content-addressed store of lowered schedules.

    Same entry layout and stats as the result cache (``key`` /
    ``descriptor`` / ``result``, atomic writes), different payload:
    ``result`` holds the ``repro-compiled/1`` schedule document.
    Entries live under ``benchmarks/results/compiled/<k[:2]>/``.
    """

    def stats(self) -> str:
        return f"{self.hits}/{self.lookups} schedules from cache"


# ---------------------------------------------------------------------------
# In-process schedule memo
# ---------------------------------------------------------------------------

#: (results_dir or "", schedule key) -> CompiledSchedule, LRU-capped.
_SCHEDULE_MEMO: "OrderedDict[Tuple[str, str], CompiledSchedule]" = \
    OrderedDict()
#: (results_dir or "", certificate key) -> (certificate or None, error
#: codes); a ``None`` certificate with codes is a *negative* entry — a
#: region that failed certification is not re-attempted per cell.
_CERT_MEMO: "OrderedDict[Tuple[str, str], tuple]" = OrderedDict()
_MEMO_CAP = 64


def clear_schedule_memo() -> None:
    """Drop the in-process schedule and certificate memos (test
    isolation hook)."""
    _SCHEDULE_MEMO.clear()
    _CERT_MEMO.clear()


def _memo_get(memo_key: Tuple[str, str]) -> Optional[CompiledSchedule]:
    cs = _SCHEDULE_MEMO.get(memo_key)
    if cs is not None:
        _SCHEDULE_MEMO.move_to_end(memo_key)
    return cs


def _memo_put(memo_key: Tuple[str, str], cs: CompiledSchedule) -> None:
    _SCHEDULE_MEMO[memo_key] = cs
    _SCHEDULE_MEMO.move_to_end(memo_key)
    while len(_SCHEDULE_MEMO) > _MEMO_CAP:
        _SCHEDULE_MEMO.popitem(last=False)


# ---------------------------------------------------------------------------
# Descriptors
# ---------------------------------------------------------------------------


def _cell_policy(runner: dict) -> str:
    """The copy policy a cell's guards are evaluated under: the library
    stack always runs the adaptive switch; algorithm cells pin it."""
    if runner.get("family") == "yhccl":
        return "adaptive"
    return runner.get("policy", "memmove")


def cell_guards(cell: dict) -> dict:
    """Decision guards of one cell payload (see
    :func:`repro.models.nt_model.decision_guards`)."""
    from repro.bench.runners import resolve_imax
    from repro.machine.spec import PRESETS
    from repro.models.nt_model import decision_guards

    machine = PRESETS[cell["machine"]]
    runner = cell["runner"]
    imax = resolve_imax(runner.get("imax"), machine)
    return decision_guards(runner["kind"], cell["nbytes"], cell["p"],
                           machine, imax=imax,
                           policy=_cell_policy(runner))


def schedule_descriptor(cell: dict, *, poly: bool = False,
                        guards: Optional[dict] = None) -> dict:
    """The cache identity of a compiled schedule: full machine spec,
    runner spec, geometry and the repro source version — the result
    cache's key discipline under the compiled schema tag.

    ``poly=True`` swaps the exact-size identity for the *decision
    region* identity: ``nbytes`` is dropped and the cell's evaluated
    guard dict keys the entry instead, so every size whose guards agree
    maps to one schedule.
    """
    from repro.machine.spec import PRESETS

    desc = {
        "schema": COMPILED_SCHEMA,
        "source": source_version(),
        "machine": dataclasses.asdict(PRESETS[cell["machine"]]),
        "p": cell["p"],
        "nbytes": cell["nbytes"],
        "iterations": ITERATIONS,
        "runner": cell["runner"],
    }
    if poly:
        del desc["nbytes"]
        desc["poly"] = True
        desc["guards"] = guards if guards is not None else cell_guards(cell)
    return desc


# ---------------------------------------------------------------------------
# Capture / replay / re-time
# ---------------------------------------------------------------------------


def capture_schedule(spec: RunnerSpec, machine, p: int,
                     nbytes: int) -> CompiledSchedule:
    """Run one cell through the coroutine engine with tracing on and
    lower its measured iteration.

    The traced run's clocks and traffic are identical to the untraced
    bench cell's (tracing only observes), so the captured reference
    times, DAV and per-rank traffic are exactly what the coroutine
    path would report.  Light tracing (``trace_accesses=False``) skips
    the per-range AccessEvent stream — the lowering consumes op
    records and sync structure only — which removes most of the
    capture's tracing overhead.
    """
    from repro.analysis.static.extract import ir_from_trace, machine_meta
    from repro.bench.runners import resolve_imax
    from repro.library.communicator import Communicator
    from repro.models.nt_model import decision_guards

    comm = Communicator(p, machine=machine, functional=False, trace=True,
                        trace_accesses=False)
    cell = spec.resolve()(comm, nbytes)
    res = comm.engine.last_result
    if res is None or res.trace is None:
        raise RuntimeError("cell runner did not execute the engine")
    run_trace = res.trace.slice_last_run(res.first_record, res.first_span)
    ir = ir_from_trace(run_trace, buffers=comm.engine.buffers, meta={
        "label": f"{spec.family}/{spec.kind} p={p} s={nbytes}",
        "collective": spec.kind,
        "nranks": p,
        "s": nbytes,
        "machine": machine_meta(machine),
        "sim_time": res.time,
    })
    cs = lower(ir)
    cs.meta["algorithm"] = cell.algorithm
    cs.meta["dav"] = int(res.traffic.dav) if res.traffic is not None else 0
    cs.meta["times"] = [float(t) for t in res.times]
    cs.meta["traffic"] = [
        {name: int(getattr(tc, name)) for name in _TRAFFIC_FIELDS}
        for tc in (res.per_rank_traffic or ())
    ]
    cs.meta["guards"] = decision_guards(
        spec.kind, nbytes, p, machine,
        imax=resolve_imax(spec.imax, machine),
        policy=_cell_policy(spec.describe()))
    return cs


def replay_cell(cs: CompiledSchedule) -> dict:
    """Evaluate a compiled schedule into the bench cell result form
    (the JSON-safe dict ``exec_payload`` returns): completion time,
    DAV, algorithm and the ``repro-obs/1`` counter snapshot."""
    from repro.obs.counters import Counters

    times = cs.evaluate().rank_times
    counters = Counters.from_machine(times, cs.meta.get("traffic") or None)
    return {
        "time": max(times),
        "dav": int(cs.meta.get("dav", 0)),
        "algorithm": cs.meta.get("algorithm", ""),
        "counters": counters.snapshot(),
    }


def retime_durations(cs: CompiledSchedule, machine,
                     nbytes: int) -> "Tuple[object, float]":
    """Model-level per-op durations for replaying ``cs`` at a
    different size in its decision region.  Returns ``(dur, factor)``
    where ``factor = nbytes / captured_size`` scales every
    byte-proportional quantity."""
    import numpy as np

    captured = int(cs.meta.get("s", 0))
    if captured <= 0:
        raise ValueError("schedule carries no captured size; cannot retime")
    factor = nbytes / captured
    scaled = np.rint(cs.nbytes * factor).astype(np.int64)
    return cs.model_durations(machine, nbytes=scaled), factor


def retime_cell(cs: CompiledSchedule, machine, nbytes: int) -> dict:
    """Model-level re-timing of a captured schedule at a different
    message size in the same decision region.

    Per-op byte footprints are scaled by ``nbytes / captured_size``
    (the guards guarantee the op *structure* is size-invariant inside
    a region; only the bytes each op moves scale), durations come from
    :meth:`CompiledSchedule.model_durations`, and the byte-proportional
    aggregates (DAV, per-level traffic) scale by the same factor.
    This is a model estimate, not the engine-exact stateful charge —
    the result carries ``poly.retimed = True`` to say so.
    """
    from repro.obs.counters import Counters

    dur, factor = retime_durations(cs, machine, nbytes)
    times = [float(t) for t in cs.evaluate(dur=dur).rank_times]
    traffic = [
        {name: int(round(tc[name] * factor)) for name in _TRAFFIC_FIELDS}
        for tc in (cs.meta.get("traffic") or ())
    ]
    counters = Counters.from_machine(times, traffic or None)
    return {
        "time": max(times),
        "dav": int(round(int(cs.meta.get("dav", 0)) * factor)),
        "algorithm": cs.meta.get("algorithm", ""),
        "counters": counters.snapshot(),
    }


# ---------------------------------------------------------------------------
# Region certificates (bench --compiled --poly --certified)
# ---------------------------------------------------------------------------


def certificate_descriptor(payload: dict,
                           guards: Optional[dict] = None) -> dict:
    """Cache identity of a region *certificate*: the poly schedule
    descriptor under the ``repro-symcert/1`` schema tag, so the
    certificate rides the same content-addressed schedule cache as the
    schedules it certifies (distinct key, same invalidation
    discipline)."""
    from repro.analysis.static.symbolic import SYMCERT_SCHEMA

    desc = schedule_descriptor(payload, poly=True, guards=guards)
    desc["schema"] = SYMCERT_SCHEMA
    return desc


def _load_certificate(payload: dict, cs: CompiledSchedule) -> tuple:
    """Memo → disk cache → fresh certification of the cell's decision
    region.  Returns ``(certificate or None, error codes)``; failed
    certifications are cached *negatively* (with their ``SA-SYM-*``
    codes) so a broken region costs one certification attempt per
    source version, not one per swept size."""
    from repro.analysis.static.symbolic import (
        SYMCERT_SCHEMA,
        SymbolicError,
        SymbolicSchedule,
        certify_region,
    )
    from repro.machine.spec import PRESETS

    desc = certificate_descriptor(payload, payload.get("guards"))
    ckey = descriptor_key(desc)
    memo_key = (payload.get("results_dir") or "", ckey)
    hit = _CERT_MEMO.get(memo_key)
    if hit is not None:
        _CERT_MEMO.move_to_end(memo_key)
        return hit
    cache: Optional[CompiledScheduleCache] = None
    results_dir = payload.get("results_dir")
    if results_dir:
        cache = CompiledScheduleCache(Path(results_dir) / "compiled")
        doc = cache.get(ckey)
        if doc is not None:
            entry = None
            if doc.get("ok") is False:
                entry = (None, list(doc.get("errors", ())))
            else:
                try:
                    entry = (SymbolicSchedule.from_doc(doc), [])
                except (SymbolicError, ValueError, KeyError, TypeError):
                    entry = None  # corrupt/stale entry: re-certify
            if entry is not None:
                _memo_put_cert(memo_key, entry)
                return entry
    spec = RunnerSpec.from_dict(payload["runner"])
    base = int(cs.meta.get("s") or payload["nbytes"])
    sym, report = certify_region(spec, PRESETS[payload["machine"]],
                                 payload["p"], base)
    codes = sorted({f.code for f in report.errors})
    entry = (sym, codes)
    if cache is not None:
        doc = sym.to_doc() if sym is not None else {
            "schema": SYMCERT_SCHEMA, "ok": False, "errors": codes,
            "case": report.case,
        }
        cache.put(ckey, desc, doc)
    _memo_put_cert(memo_key, entry)
    return entry


def _memo_put_cert(memo_key: Tuple[str, str], entry: tuple) -> None:
    _CERT_MEMO[memo_key] = entry
    _CERT_MEMO.move_to_end(memo_key)
    while len(_CERT_MEMO) > _MEMO_CAP:
        _CERT_MEMO.popitem(last=False)


def certified_cell(cs: CompiledSchedule, machine, cert,
                   nbytes: int) -> tuple:
    """Engine-exact certified replay of ``cs`` at ``nbytes``.

    The certificate supplies the *exact* per-op byte footprints and the
    exact DAV at the replay size (affine evaluation, not
    ``s_new / s_captured`` scaling).  Durations are still the static
    timing model's (:func:`repro.sim.compiled.symbolic_durations`) —
    certification proves the schedule *shape* and byte accounting, not
    the stateful cache charge.  Cross-checks the certificate against
    the schedule before trusting it: the certificate evaluated at the
    captured size must reproduce the schedule's own footprints and
    engine DAV bitwise.  Raises ``ValueError`` on any mismatch — the
    caller falls back to plain retiming and reports the failure.

    Returns ``(result dict, per-op durations)``.
    """
    import numpy as np

    from repro.obs.counters import Counters

    s0 = int(cs.meta.get("s", 0))
    if s0 <= 0:
        raise ValueError("schedule carries no captured size")
    if not cert.covers(nbytes):
        raise ValueError(
            f"certificate does not cover s={nbytes} (requires s ≡ "
            f"{cert.residue} mod {cert.modulus})")
    if not cert.lo <= nbytes <= cert.hi:
        # affinity is only *proven* between the endpoint-checked
        # anchors — per-op shape can change past them within one guard
        # region (e.g. a copy crossing the hardware non-temporal
        # threshold), so extrapolating would be an estimate again
        raise ValueError(
            f"size {nbytes} is outside the certified span "
            f"[{cert.lo}, {cert.hi}]")
    if cert.compiled_nbytes(s0) != [int(x) for x in cs.nbytes]:
        raise ValueError(
            "certificate footprints at the captured size do not match "
            "the cached schedule")
    dav0 = cert.dav().at(s0)
    if int(cs.meta.get("dav", 0)) not in (0, dav0):
        raise ValueError(
            f"certificate DAV at the captured size ({dav0}) does not "
            f"match the engine capture ({cs.meta.get('dav')})")
    exact = np.asarray(cert.compiled_nbytes(nbytes), dtype=np.int64)
    from repro.sim.compiled import symbolic_durations

    dur = symbolic_durations(cs, machine, exact)
    times = [float(t) for t in cs.evaluate(dur=dur).rank_times]
    factor = nbytes / s0
    traffic = [
        {name: int(round(tc[name] * factor)) for name in _TRAFFIC_FIELDS}
        for tc in (cs.meta.get("traffic") or ())
    ]
    counters = Counters.from_machine(times, traffic or None)
    return {
        "time": max(times),
        "dav": cert.dav().at(nbytes),
        "algorithm": cs.meta.get("algorithm", ""),
        "counters": counters.snapshot(),
    }, dur


def _cert_summary(cert, nbytes: int) -> dict:
    """JSON block describing an applied certificate."""
    return {
        "span": [cert.lo, cert.hi],
        "in_span": bool(cert.lo <= nbytes <= cert.hi),
        "anchors": list(cert.anchors),
        "dav": cert.dav().describe(),
    }


# ---------------------------------------------------------------------------
# Worker entry
# ---------------------------------------------------------------------------


def _load_schedule(payload: dict, key: str) -> Tuple[CompiledSchedule, bool]:
    """Memo → disk cache → capture.  Returns ``(schedule, captured)``
    where ``captured`` says a fresh coroutine capture ran."""
    from repro.machine.spec import PRESETS

    memo_key = (payload.get("results_dir") or "", key)
    cs = _memo_get(memo_key)
    if cs is not None:
        return cs, False
    cache: Optional[CompiledScheduleCache] = None
    results_dir = payload.get("results_dir")
    if results_dir:
        cache = CompiledScheduleCache(Path(results_dir) / "compiled")
        doc = cache.get(key)
        if doc is not None:
            try:
                cs = schedule_from_doc(doc)
            except (ScheduleSchemaError, ValueError, KeyError, TypeError):
                cs = None  # corrupt/stale entry: recapture
            if cs is not None:
                _memo_put(memo_key, cs)
                return cs, False
    spec = RunnerSpec.from_dict(payload["runner"])
    cs = capture_schedule(spec, PRESETS[payload["machine"]],
                          payload["p"], payload["nbytes"])
    if cache is not None:
        cache.put(key, schedule_descriptor(
            payload, poly=bool(payload.get("poly")),
            guards=payload.get("guards")), schedule_to_doc(cs))
    _memo_put(memo_key, cs)
    return cs, True


def exec_compiled_cell(payload: dict) -> dict:
    """Worker entry for a ``compiled: True`` cell payload.

    Looks the lowered schedule up in the in-process memo, then the
    persistent cache (when the payload names a results directory),
    capturing and storing it on miss, then replays it.  The schedule
    cache stays enabled even under ``--no-cache`` — disabling the
    *result* cache is how a ≥10× faster full re-simulation is
    produced, which only works if schedules persist; the memo covers
    the cache-less case within one process.

    ``poly: True`` payloads key the schedule by decision region and
    re-time on size mismatch; ``certified: True`` (with poly) loads or
    builds the region's symbolic certificate
    (:func:`repro.analysis.static.symbolic.certify_region`) and, when
    it verifies against the cached schedule, swaps the scaled DAV and
    footprints for the certificate's *exact* affine evaluations —
    uncertifiable regions fall back to plain retiming with their
    ``SA-SYM-*`` codes in ``poly.cert_errors``, never silently.  A
    ``perturb`` block (``{"n", "model", "seed"}``) replays a seeded
    noise ensemble through the batched evaluator and attaches tail
    statistics.

    ``poly.region`` carries the full content-addressed schedule key —
    table rendering truncates for display, the JSON never does (a
    truncated key can collide across regions).

    Hierarchy-family cells dispatch to
    :func:`repro.bench.hierarchy.exec_hierarchy_compiled` — their
    leaves replay through this module's schedule cache individually,
    and the poly/certified/perturb flags do not apply to them.
    """
    from repro.machine.spec import PRESETS

    if payload["runner"].get("family") == "hierarchy":
        from repro.bench.hierarchy import exec_hierarchy_compiled

        return exec_hierarchy_compiled(payload)

    poly = bool(payload.get("poly"))
    certified = poly and bool(payload.get("certified"))
    guards = cell_guards(payload) if poly else None
    if poly:
        payload = dict(payload, guards=guards)
    key = descriptor_key(
        schedule_descriptor(payload, poly=poly, guards=guards))
    cs, captured = _load_schedule(payload, key)
    machine = PRESETS[payload["machine"]]
    retimed = poly and int(cs.meta.get("s", -1)) != payload["nbytes"]
    dur = None  # base durations the cell replays (None = captured)
    if retimed:
        dur, _ = retime_durations(cs, machine, payload["nbytes"])
        result = retime_cell(cs, machine, payload["nbytes"])
        result["poly"] = {"region": key, "retimed": True}
    else:
        result = replay_cell(cs)
        if poly:
            result["poly"] = {"region": key, "retimed": False}
    if certified:
        cert, codes = _load_certificate(payload, cs)
        if cert is None:
            result["poly"]["certified"] = False
            result["poly"]["cert_errors"] = codes
        else:
            try:
                cres, cdur = certified_cell(cs, machine, cert,
                                            payload["nbytes"])
            except ValueError as exc:
                result["poly"]["certified"] = False
                result["poly"]["cert_errors"] = [str(exc)]
            else:
                if retimed:
                    # swap the scaled estimate for the exact evaluation
                    cres["poly"] = dict(result["poly"])
                    result, dur = cres, cdur
                result["poly"]["certified"] = True
                result["poly"]["cert"] = _cert_summary(
                    cert, payload["nbytes"])
    pb = payload.get("perturb")
    if pb:
        import hashlib

        from repro.sim.perturb import run_ensemble

        # Derive the cell's ensemble seed from the schedule identity
        # *and* the replayed size so every cell in a sweep perturbs a
        # distinct but reproducible stream (two sizes sharing one
        # poly region must not share a stream); the stats are then
        # deterministic bench content.
        cell_id = f"{key}:{payload['nbytes']}".encode()
        seed = (int(pb.get("seed", 0))
                ^ int(hashlib.sha256(cell_id).hexdigest()[:16], 16)) \
            & 0x7FFFFFFFFFFFFFFF
        stats = run_ensemble(cs, int(pb["n"]), seed=seed,
                             model=pb.get("model", "mixed"), dur=dur)
        result["perturb"] = stats.to_dict()
    if captured:
        result["captured"] = True  # transient: stripped before caching
    return result


# ---------------------------------------------------------------------------
# Capture-cost microbenchmark
# ---------------------------------------------------------------------------

MICROBENCH_SCHEMA = "repro-compiled-bench/1"


def run_capture_microbench(results_dir: Optional[Path] = None, *,
                           batch: int = 256, p: int = 8,
                           nbytes: int = 1024 * 1024,
                           progress=None) -> dict:
    """Measure capture overhead and batched-replay throughput on one
    representative cell (socket-MA adaptive allreduce).

    Wall-clock numbers, so the document is **not** deterministic; it is
    written to ``BENCH_compiled.json`` — a sidecar like
    ``wall_clock.json``, exempt from the byte-stability rule — and
    mirrored into ``BENCH_summary.json``'s ``wall_clock`` block by the
    CLI.  ``bitwise_equal`` (batched replay ≡ a loop of single replays)
    and ``ops`` are deterministic and double as a smoke check.
    """
    import json
    from time import perf_counter

    import numpy as np

    from repro.bench.spec import reduce_spec
    from repro.library.communicator import Communicator
    from repro.machine.spec import NODE_A
    from repro.sim.perturb import sample_ensemble

    spec = reduce_spec("socket-ma", "allreduce", "adaptive")
    machine = NODE_A

    def _say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    _say(f"[microbench] coroutine run p={p} s={nbytes} ...")
    t0 = perf_counter()
    comm = Communicator(p, machine=machine, functional=False)
    spec.resolve()(comm, nbytes)
    coroutine_s = perf_counter() - t0

    _say("[microbench] capture + lower ...")
    t0 = perf_counter()
    cs = capture_schedule(spec, machine, p, nbytes)
    capture_s = perf_counter() - t0

    base = cs.evaluate()  # build the level plan outside the timed loop
    reps = 50
    t0 = perf_counter()
    for _ in range(reps):
        cs.evaluate()
    replay_s = (perf_counter() - t0) / reps

    _say(f"[microbench] batched replay B={batch} ...")
    ens = sample_ensemble(cs, batch, seed=2023, model="mixed")
    t0 = perf_counter()
    loop = [cs.evaluate(dur=ens.dur[i]) for i in range(batch)]
    loop_s = perf_counter() - t0
    t0 = perf_counter()
    batched = cs.evaluate_batch(dur=ens.dur)
    batch_s = perf_counter() - t0
    bitwise = all(
        np.array_equal(batched.completion[i], loop[i].completion)
        and list(batched.rank_times[i]) == list(loop[i].rank_times)
        for i in range(batch)
    )

    doc = {
        "schema": MICROBENCH_SCHEMA,
        "cell": {"runner": spec.describe(), "machine": machine.name,
                 "p": p, "nbytes": nbytes},
        "ops": len(cs),
        "time": base.time,
        "coroutine_s": coroutine_s,
        "capture_s": capture_s,
        "capture_overhead": capture_s / coroutine_s if coroutine_s else 0.0,
        "replay_s": replay_s,
        "replays_per_s": 1.0 / replay_s if replay_s else 0.0,
        "batch": {
            "n": batch,
            "wall_s": batch_s,
            "loop_wall_s": loop_s,
            "speedup_vs_loop": loop_s / batch_s if batch_s else 0.0,
        },
        "bitwise_equal": bool(bitwise),
    }
    if results_dir is not None:
        out = Path(results_dir) / "BENCH_compiled.json"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        _say(f"[microbench] wrote {out}")
    return doc
