"""The compiled bench cell path: capture → lower → cache → replay.

A sweep cell normally executes the coroutine engine twice (warm-up +
measured iteration).  The compiled path instead:

1. runs the cell **once** with tracing on (only on schedule-cache
   miss), lifts the measured iteration into the ``repro-ir/1`` DAG and
   lowers it (:func:`repro.sim.compiled.lower`);
2. stores the lowered schedule in a content-addressed
   :class:`CompiledScheduleCache` under
   ``benchmarks/results/compiled/``, keyed with the same
   ``(machine spec, runner spec, geometry, source_version)`` discipline
   as the result cache — any source edit invalidates every schedule;
3. replays cached schedules with the vectorized evaluator — no
   coroutine execution at all on the re-simulation path.

Replayed results are bitwise-identical to the coroutine cell (same
completion times, same ``repro-obs/1`` counter snapshot), which the
equivalence tests pin across the full collective × p matrix.  Because
cache outcomes in the memory system are access-order and size
dependent, schedules are captured per ``(collective, p, size)`` cell —
cross-size reuse would silently break exactness.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional

from repro.bench.cache import ResultCache, descriptor_key, source_version
from repro.bench.runners import ITERATIONS
from repro.bench.spec import RunnerSpec
from repro.obs.counters import _TRAFFIC_FIELDS
from repro.sim.compiled import (
    COMPILED_SCHEMA,
    CompiledSchedule,
    lower,
    schedule_from_doc,
    schedule_to_doc,
)


class CompiledScheduleCache(ResultCache):
    """Content-addressed store of lowered schedules.

    Same entry layout and stats as the result cache (``key`` /
    ``descriptor`` / ``result``, atomic writes), different payload:
    ``result`` holds the ``repro-compiled/1`` schedule document.
    Entries live under ``benchmarks/results/compiled/<k[:2]>/``.
    """

    def stats(self) -> str:
        return f"{self.hits}/{self.lookups} schedules from cache"


def schedule_descriptor(cell: dict) -> dict:
    """The cache identity of a compiled schedule: full machine spec,
    runner spec, geometry and the repro source version — the result
    cache's key discipline under the compiled schema tag."""
    from repro.machine.spec import PRESETS

    return {
        "schema": COMPILED_SCHEMA,
        "source": source_version(),
        "machine": dataclasses.asdict(PRESETS[cell["machine"]]),
        "p": cell["p"],
        "nbytes": cell["nbytes"],
        "iterations": ITERATIONS,
        "runner": cell["runner"],
    }


def capture_schedule(spec: RunnerSpec, machine, p: int,
                     nbytes: int) -> CompiledSchedule:
    """Run one cell through the coroutine engine with tracing on and
    lower its measured iteration.

    The traced run's clocks and traffic are identical to the untraced
    bench cell's (tracing only observes), so the captured reference
    times, DAV and per-rank traffic are exactly what the coroutine
    path would report.
    """
    from repro.analysis.static.extract import ir_from_trace, machine_meta
    from repro.library.communicator import Communicator

    comm = Communicator(p, machine=machine, functional=False, trace=True)
    cell = spec.resolve()(comm, nbytes)
    res = comm.engine.last_result
    if res is None or res.trace is None:
        raise RuntimeError("cell runner did not execute the engine")
    run_trace = res.trace.slice_last_run(res.first_record, res.first_span)
    ir = ir_from_trace(run_trace, buffers=comm.engine.buffers, meta={
        "label": f"{spec.family}/{spec.kind} p={p} s={nbytes}",
        "collective": spec.kind,
        "nranks": p,
        "s": nbytes,
        "machine": machine_meta(machine),
        "sim_time": res.time,
    })
    cs = lower(ir)
    cs.meta["algorithm"] = cell.algorithm
    cs.meta["dav"] = int(res.traffic.dav) if res.traffic is not None else 0
    cs.meta["times"] = [float(t) for t in res.times]
    cs.meta["traffic"] = [
        {name: int(getattr(tc, name)) for name in _TRAFFIC_FIELDS}
        for tc in (res.per_rank_traffic or ())
    ]
    return cs


def replay_cell(cs: CompiledSchedule) -> dict:
    """Evaluate a compiled schedule into the bench cell result form
    (the JSON-safe dict ``exec_payload`` returns): completion time,
    DAV, algorithm and the ``repro-obs/1`` counter snapshot."""
    from repro.obs.counters import Counters

    times = cs.evaluate().rank_times
    counters = Counters.from_machine(times, cs.meta.get("traffic") or None)
    return {
        "time": max(times),
        "dav": int(cs.meta.get("dav", 0)),
        "algorithm": cs.meta.get("algorithm", ""),
        "counters": counters.snapshot(),
    }


def exec_compiled_cell(payload: dict) -> dict:
    """Worker entry for a ``compiled: True`` cell payload.

    Looks the lowered schedule up in the persistent cache (when the
    payload names a results directory), capturing and storing it on
    miss, then replays it.  The schedule cache stays enabled even under
    ``--no-cache`` — disabling the *result* cache is how a ≥10× faster
    full re-simulation is produced, which only works if schedules
    persist.
    """
    from repro.machine.spec import PRESETS

    cache: Optional[CompiledScheduleCache] = None
    results_dir = payload.get("results_dir")
    if results_dir:
        cache = CompiledScheduleCache(Path(results_dir) / "compiled")
    key = descriptor_key(schedule_descriptor(payload))
    cs: Optional[CompiledSchedule] = None
    if cache is not None:
        doc = cache.get(key)
        if doc is not None:
            try:
                cs = schedule_from_doc(doc)
            except (ValueError, KeyError, TypeError):
                cs = None  # corrupt/stale entry: recapture
    if cs is None:
        spec = RunnerSpec.from_dict(payload["runner"])
        cs = capture_schedule(spec, PRESETS[payload["machine"]],
                              payload["p"], payload["nbytes"])
        if cache is not None:
            cache.put(key, schedule_descriptor(payload),
                      schedule_to_doc(cs))
    return replay_cell(cs)
