"""Discovery of benchmark modules and their declarations.

The ``benchmarks/`` directory is not a package (its modules import each
other through a ``sys.path`` entry, as pytest does), so discovery
mirrors that arrangement: locate the directory, put it on ``sys.path``
and import every ``bench_*.py``, collecting each module's ``BENCH``
declaration.

Resolution order for the directory: ``$REPRO_BENCH_DIR``, then the
source checkout the ``repro`` package was imported from, then upward
from the current working directory.
"""

from __future__ import annotations

import importlib
import os
import sys
from pathlib import Path
from typing import Dict, Optional

from repro.bench.spec import Benchmark


def benchmarks_dir() -> Path:
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        path = Path(env)
        if not (path / "harness.py").exists():
            raise FileNotFoundError(
                f"REPRO_BENCH_DIR={env} has no harness.py"
            )
        return path.resolve()
    candidates = [Path(__file__).resolve().parents[3] / "benchmarks"]
    cwd = Path.cwd().resolve()
    candidates.extend(parent / "benchmarks"
                      for parent in (cwd, *cwd.parents))
    for cand in candidates:
        if (cand / "harness.py").exists():
            return cand.resolve()
    raise FileNotFoundError(
        "cannot locate the benchmarks/ directory; set REPRO_BENCH_DIR"
    )


def default_results_dir() -> Path:
    return benchmarks_dir() / "results"


def ensure_importable(bench_dir: Path) -> None:
    entry = str(bench_dir)
    if entry not in sys.path:
        sys.path.insert(0, entry)


def load_benchmarks(
    bench_dir: Optional[Path] = None,
) -> Dict[str, Benchmark]:
    """Import every ``bench_*.py`` and collect ``BENCH`` declarations,
    keyed by benchmark name, in sorted module order."""
    bench_dir = bench_dir or benchmarks_dir()
    ensure_importable(bench_dir)
    out: Dict[str, Benchmark] = {}
    for path in sorted(bench_dir.glob("bench_*.py")):
        module = importlib.import_module(path.stem)
        bench = getattr(module, "BENCH", None)
        if bench is None:
            raise AttributeError(
                f"{path.name} declares no BENCH benchmark spec"
            )
        if bench.name in out:
            raise ValueError(f"duplicate benchmark name {bench.name!r}")
        out[bench.name] = bench.with_module(path.stem)
    return out
