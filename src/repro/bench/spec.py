"""Declarative benchmark specifications.

A benchmark module declares *data*: which machine, how many ranks,
which implementations (by registry name) and which sizes.  Everything
here is an immutable, picklable value — the execution layer turns specs
into cells, hashes them for the persistent cache, and ships them to
worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional, Tuple

from repro.bench.runners import (
    CellResult,
    allgather_cell,
    bcast_cell,
    reduce_cell,
    vendor_cell,
    yhccl_cell,
)

#: runner families a spec may name
FAMILIES = ("reduce", "bcast", "allgather", "yhccl", "vendor", "hierarchy")


@dataclass(frozen=True)
class RunnerSpec:
    """One implementation column of a sweep, as pure data.

    ``family`` selects the driver:

    * ``"reduce"`` / ``"bcast"`` / ``"allgather"`` — drive one algorithm
      (named in ``algorithm``, resolved via the registry; ``params``
      feeds parameterized constructors such as RG's branch/slice).
    * ``"yhccl"`` — the full library stack (switching + adaptive copy).
    * ``"vendor"`` — a vendor model (``vendor`` names it).
    * ``"hierarchy"`` — a composed multi-node hierarchy (``vendor``
      names the implementation; ``params`` holds the cluster config:
      ``nnodes``, ``mode``, ``lanes``, ``network``, ``pipelined``).

    ``kind`` is the collective ("allreduce", "bcast", ...).  ``imax`` of
    ``None`` means the per-platform tuned slice cap.
    """

    family: str
    kind: str
    algorithm: str = ""
    policy: str = "memmove"
    imax: Optional[int] = None
    root: int = 0
    vendor: str = ""
    params: Tuple = ()

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown runner family {self.family!r}; "
                f"choose from {FAMILIES}"
            )

    def describe(self) -> dict:
        """Stable dict form — the cache-key and wire representation."""
        return {
            "family": self.family,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "policy": self.policy,
            "imax": self.imax,
            "root": self.root,
            "vendor": self.vendor,
            "params": [list(kv) for kv in self.params],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunnerSpec":
        d = dict(d)
        d["params"] = tuple(tuple(kv) for kv in d.get("params", ()))
        return cls(**d)

    def with_param(self, **kv) -> "RunnerSpec":
        """A copy with ``params`` entries merged in (sorted-key form is
        preserved, so cache descriptors stay canonical)."""
        merged = dict(self.params)
        merged.update(kv)
        return replace(self, params=tuple(sorted(merged.items())))

    def resolve(self) -> Callable[[object, int], CellResult]:
        """Build the executable cell runner for this spec."""
        if self.family == "yhccl":
            return yhccl_cell(self.kind)
        if self.family == "vendor":
            return vendor_cell(self.vendor, self.kind)
        if self.family == "hierarchy":
            from repro.bench.hierarchy import hierarchy_cell

            return hierarchy_cell(self.vendor, dict(self.params))
        from repro.bench.registry import resolve_algorithm

        alg = resolve_algorithm(self.algorithm, self.kind, self.params)
        if self.family == "reduce":
            return reduce_cell(alg, self.policy, self.imax, self.root)
        if self.family == "bcast":
            return bcast_cell(alg, self.policy, self.imax, self.root)
        return allgather_cell(alg, self.policy, self.imax)


def reduce_spec(algorithm: str, kind: str, policy: str = "memmove", *,
                imax: Optional[int] = None, root: int = 0,
                **params) -> RunnerSpec:
    return RunnerSpec(family="reduce", kind=kind, algorithm=algorithm,
                      policy=policy, imax=imax, root=root,
                      params=tuple(sorted(params.items())))


def bcast_spec(algorithm: str, policy: str = "memmove", *,
               imax: Optional[int] = None, root: int = 0,
               **params) -> RunnerSpec:
    return RunnerSpec(family="bcast", kind="bcast", algorithm=algorithm,
                      policy=policy, imax=imax, root=root,
                      params=tuple(sorted(params.items())))


def allgather_spec(algorithm: str, policy: str = "memmove", *,
                   imax: Optional[int] = None, **params) -> RunnerSpec:
    return RunnerSpec(family="allgather", kind="allgather",
                      algorithm=algorithm, policy=policy, imax=imax,
                      params=tuple(sorted(params.items())))


def yhccl_spec(kind: str) -> RunnerSpec:
    return RunnerSpec(family="yhccl", kind=kind)


def vendor_spec(vendor: str, kind: str) -> RunnerSpec:
    return RunnerSpec(family="vendor", kind=kind, vendor=vendor)


def hierarchy_spec(implementation: str, *, nnodes: int = 0,
                   mode: str = "", lanes: Optional[int] = None,
                   network: str = "", exchange: str = "",
                   pipelined: bool = True) -> RunnerSpec:
    """A composed multi-node hierarchy column.

    ``implementation`` is ``"YHCCL"`` or a vendor name (as accepted by
    :class:`~repro.library.multinode.MultiNodeAllreduce`).  ``nnodes``
    may stay 0 when the sweep's axis is ``"nodes"`` — each cell then
    injects its node count.  ``exchange`` overrides the implementation's
    native inter-node stage (``"ring"`` / ``"tree"`` /
    ``"rabenseifner"``).  Only non-default config values enter
    ``params`` so cache descriptors stay minimal and stable.
    """
    kept: dict = {}
    if nnodes:
        kept["nnodes"] = nnodes
    if mode:
        kept["mode"] = mode
    if lanes is not None:
        kept["lanes"] = lanes
    if network:
        kept["network"] = network
    if exchange:
        kept["exchange"] = exchange
    if not pipelined:
        kept["pipelined"] = False
    return RunnerSpec(family="hierarchy", kind="allreduce",
                      vendor=implementation,
                      params=tuple(sorted(kept.items())))


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: machine × implementations × x-axis.

    ``axis`` is ``"size"`` (x values are message sizes at fixed rank
    count ``p``), ``"ranks"`` (x values are rank counts at fixed
    message size ``fixed_size`` — the scalability figures) or
    ``"nodes"`` (x values are cluster node counts at fixed message
    size and fixed per-node rank count ``p`` — the multi-node
    hierarchy sweeps; each cell injects its node count into the
    runner's ``nnodes`` param).
    """

    name: str
    title: str
    machine: str  # preset name, resolved via repro.machine.spec.PRESETS
    p: int
    sizes: Tuple[int, ...]
    impls: Tuple[Tuple[str, RunnerSpec], ...]
    baseline: str = ""
    axis: str = "size"
    fixed_size: int = 0

    def __post_init__(self) -> None:
        if self.axis not in ("size", "ranks", "nodes"):
            raise ValueError(f"unknown sweep axis {self.axis!r}")
        if self.axis in ("ranks", "nodes") and self.fixed_size <= 0:
            raise ValueError(
                f"axis={self.axis!r} requires a positive fixed_size")

    def cells(self) -> Iterator[dict]:
        """Cell descriptors in deterministic declaration order."""
        for label, spec in self.impls:
            for x in self.sizes:
                p = x if self.axis == "ranks" else self.p
                nbytes = x if self.axis == "size" else self.fixed_size
                runner = (spec.with_param(nnodes=x)
                          if self.axis == "nodes" else spec)
                yield {
                    "impl": label,
                    "x": x,
                    "machine": self.machine,
                    "p": p,
                    "nbytes": nbytes,
                    "runner": runner.describe(),
                }


@dataclass(frozen=True)
class Benchmark:
    """A benchmark module's declaration.

    Either ``sweeps`` (declarative: parallelized and cached per cell)
    or ``custom`` (the name of a module-level zero-argument function:
    executed as a single cached cell; its sanitized return value is the
    JSON payload).  ``module`` is filled in by discovery.
    """

    name: str
    sweeps: Tuple[SweepSpec, ...] = ()
    custom: str = ""
    module: str = ""

    def __post_init__(self) -> None:
        if bool(self.sweeps) == bool(self.custom):
            raise ValueError(
                f"benchmark {self.name!r} must declare exactly one of "
                "sweeps or custom"
            )

    def sweep(self, name: str) -> SweepSpec:
        for s in self.sweeps:
            if s.name == name:
                return s
        raise KeyError(
            f"{self.name} has no sweep {name!r}; "
            f"sweeps: {[s.name for s in self.sweeps]}"
        )

    def with_module(self, module: str) -> "Benchmark":
        return replace(self, module=module)
