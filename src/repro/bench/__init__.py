"""Benchmark execution layer: declarative sweeps, parallel execution,
persistent result cache and canonical JSON serialization.

The ``benchmarks/bench_*`` modules declare *what* to run — a
:class:`~repro.bench.spec.Benchmark` made of
:class:`~repro.bench.spec.SweepSpec` cells (machine × implementation ×
size) or a module-level custom function — and this package decides
*how*: cells fan out across CPU cores with
:class:`concurrent.futures.ProcessPoolExecutor`, results are memoized
in an on-disk cache keyed by a content hash of the cell descriptor and
the ``repro`` source version, and every sweep serializes to the
``repro-bench/1`` JSON schema next to the classic text tables.

Entry points:

* ``python -m repro bench <name>|all [--jobs N] [--no-cache] [--json]``
* :func:`repro.bench.executor.run_sweep_table` — serial, uncached
  execution of one sweep (the pytest benchmark path).

See ``docs/benchmarks.md`` for the schema and the cache-key contract.
"""

from repro.bench.runners import ITERATIONS, CellResult, resolve_imax
from repro.bench.spec import (
    Benchmark,
    RunnerSpec,
    SweepSpec,
    allgather_spec,
    bcast_spec,
    hierarchy_spec,
    reduce_spec,
    vendor_spec,
    yhccl_spec,
)
from repro.bench.table import SweepTable, fmt_size

__all__ = [
    "Benchmark",
    "CellResult",
    "ITERATIONS",
    "RunnerSpec",
    "SweepSpec",
    "SweepTable",
    "allgather_spec",
    "bcast_spec",
    "fmt_size",
    "hierarchy_spec",
    "reduce_spec",
    "resolve_imax",
    "vendor_spec",
    "yhccl_spec",
]
