"""Sweep result tables: text rendering, shape assertions and the
``repro-bench/1`` JSON view.

Moved here from ``benchmarks/harness.py`` so the execution layer and
the per-figure pytest modules share one result container; the harness
re-exports it for the benchmark modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.machine.spec import KB, MB


def fmt_size(nbytes: int) -> str:
    if nbytes >= MB:
        v = nbytes / MB
        return f"{v:g}MB"
    return f"{nbytes / KB:g}KB"


@dataclass
class SweepTable:
    """times[impl][size] in seconds, plus free-form notes.

    ``dav[impl][size]`` (bytes) and ``algorithm[impl][size]`` (the
    algorithm the implementation selected) are filled when the
    execution layer provides them; legacy callers that only ``add``
    seconds still work.
    """

    title: str
    sizes: list
    times: dict = field(default_factory=dict)
    dav: dict = field(default_factory=dict)
    algorithm: dict = field(default_factory=dict)
    #: counters[impl][size] — per-rank ``repro-obs/1`` snapshots, when
    #: the execution layer provides them
    counters: dict = field(default_factory=dict)
    #: perturb[impl][size] — perturbation-ensemble tail statistics
    #: (:meth:`repro.sim.perturb.PerturbStats.to_dict`), compiled
    #: ``--perturb`` sweeps only
    perturb: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)
    baseline: str = ""

    def add(self, impl: str, size: int, seconds: float, *,
            dav: Optional[int] = None,
            algorithm: Optional[str] = None,
            counters: Optional[dict] = None,
            perturb: Optional[dict] = None) -> None:
        self.times.setdefault(impl, {})[size] = seconds
        if dav is not None:
            self.dav.setdefault(impl, {})[size] = dav
        if algorithm is not None:
            self.algorithm.setdefault(impl, {})[size] = algorithm
        if counters is not None:
            self.counters.setdefault(impl, {})[size] = counters
        if perturb is not None:
            self.perturb.setdefault(impl, {})[size] = perturb

    def note(self, text: str) -> None:
        self.notes.append(text)

    def impls(self) -> list:
        return list(self.times)

    def time(self, impl: str, size: int) -> float:
        return self.times[impl][size]

    def relative(self, impl: str, size: int) -> float:
        base = self.baseline or self.impls()[0]
        return self.times[impl][size] / self.times[base][size]

    # ---- formatting --------------------------------------------------------

    def render(self) -> str:
        base = self.baseline or self.impls()[0]
        w = max(18, max(len(i) for i in self.impls()) + 2)
        out = [self.title, "=" * len(self.title), ""]
        header = f"{'Msg Size':>10} " + "".join(
            f"{i:>{w}}" for i in self.impls()
        )
        out.append("absolute simulated time (us):")
        out.append(header)
        for s in self.sizes:
            row = f"{fmt_size(s):>10} "
            for i in self.impls():
                t = self.times[i].get(s)
                row += f"{t * 1e6:>{w}.1f}" if t is not None else " " * w
            out.append(row)
        out.append("")
        out.append(f"relative time overhead (vs {base}):")
        out.append(header)
        for s in self.sizes:
            row = f"{fmt_size(s):>10} "
            for i in self.impls():
                t = self.times[i].get(s)
                tb = self.times[base].get(s)
                row += (
                    f"{t / tb:>{w}.2f}" if t is not None and tb else " " * w
                )
            out.append(row)
        if self.perturb:
            first = next(iter(self.perturb.values()), {})
            stats = next(iter(first.values()), {})
            out.append("")
            out.append(
                "tail latency under perturbation "
                f"(model={stats.get('model', '?')}, "
                f"n={stats.get('n', '?')}; p50/p99/p999 us):")
            out.append(header)
            for s in self.sizes:
                row = f"{fmt_size(s):>10} "
                for i in self.impls():
                    pb = self.perturb.get(i, {}).get(s)
                    if pb is None:
                        row += " " * w
                    else:
                        cell = (f"{pb['p50'] * 1e6:.1f}/"
                                f"{pb['p99'] * 1e6:.1f}/"
                                f"{pb['p999'] * 1e6:.1f}")
                        row += f"{cell:>{w}}"
                out.append(row)
        if self.notes:
            out.append("")
            out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)

    def emit(self, filename: str,
             results_dir: Optional[Path] = None) -> str:
        """Write the rendered table under the benchmark results
        directory (resolved via discovery when not given) and echo it."""
        if results_dir is None:
            from repro.bench.discover import default_results_dir

            results_dir = default_results_dir()
        text = self.render()
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / filename).write_text(text + "\n")
        print("\n" + text + "\n")
        return text

    # ---- JSON view ---------------------------------------------------------

    def to_json(self) -> dict:
        """The deterministic per-sweep payload of the JSON schema.

        Sizes become string keys (JSON objects), and the relative view
        mirrors the text table: ``relative_to_baseline[impl][size] =
        t_impl / t_baseline`` (< 1 means ``impl`` beats the baseline).
        """
        base = self.baseline or (self.impls()[0] if self.times else "")
        impls = {}
        for i in self.impls():
            entry: dict = {
                "times": {str(s): t for s, t in self.times[i].items()}
            }
            if i in self.dav:
                entry["dav"] = {str(s): d for s, d in self.dav[i].items()}
            if i in self.algorithm:
                entry["algorithm"] = {
                    str(s): a for s, a in self.algorithm[i].items()
                }
            if i in self.counters:
                entry["counters"] = {
                    str(s): c for s, c in self.counters[i].items()
                }
            if i in self.perturb:
                entry["perturb"] = {
                    str(s): pb for s, pb in self.perturb[i].items()
                }
            impls[i] = entry
        relative = {}
        for i in self.impls():
            rel = {}
            for s in self.sizes:
                t, tb = self.times[i].get(s), self.times.get(base, {}).get(s)
                if t is not None and tb:
                    rel[str(s)] = t / tb
            relative[i] = rel
        return {
            "title": self.title,
            "baseline": base,
            "sizes": list(self.sizes),
            # canonical JSON sorts object keys, so column order rides in
            # a list — from_json restores the live table's layout
            "impl_order": self.impls(),
            "impls": impls,
            "relative_to_baseline": relative,
            "notes": list(self.notes),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SweepTable":
        """Rebuild a table from its :meth:`to_json` payload.

        The inverse the report assembler needs: ``BENCH_*.json`` sweeps
        render through the same :meth:`render` as live runs, so text
        and JSON results can never drift apart.  Size keys come back as
        ints; ``relative_to_baseline`` is derived, not restored.
        """
        table = cls(
            title=payload.get("title", ""),
            sizes=[int(s) for s in payload.get("sizes", [])],
            baseline=payload.get("baseline", ""),
            notes=list(payload.get("notes", [])),
        )
        entries = payload.get("impls", {})
        order = payload.get("impl_order") or list(entries)
        for impl in order:
            entry = entries.get(impl, {})
            for s, t in entry.get("times", {}).items():
                table.add(
                    impl, int(s), t,
                    dav=entry.get("dav", {}).get(s),
                    algorithm=entry.get("algorithm", {}).get(s),
                    counters=entry.get("counters", {}).get(s),
                    perturb=entry.get("perturb", {}).get(s),
                )
        return table

    # ---- shape assertions ---------------------------------------------------

    def assert_wins(self, winner: str, loser: str, *, at_least: Sequence[int],
                    factor: float = 1.0) -> None:
        """Assert ``winner`` is at least ``factor``x faster at the given
        sizes — the 'who wins' shape contract."""
        for s in at_least:
            tw, tl = self.times[winner][s], self.times[loser][s]
            assert tw * factor <= tl, (
                f"{self.title}: expected {winner} <= {loser}/{factor} at "
                f"{fmt_size(s)}, got {tw * 1e6:.1f}us vs {tl * 1e6:.1f}us"
            )

    def geomean_speedup(self, impl: str, over: str,
                        sizes: Optional[Sequence[int]] = None) -> float:
        sizes = list(sizes or self.sizes)
        prod = 1.0
        for s in sizes:
            prod *= self.times[over][s] / self.times[impl][s]
        return prod ** (1.0 / len(sizes))
