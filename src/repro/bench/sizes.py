"""Message-size grids shared by the benchmark sweeps.

``REPRO_QUICK=1`` trims every grid for smoke runs.  The subsample keeps
the *endpoints* of each sweep: dropping the largest size (256 MB) would
mean quick runs never cross the working-set-vs-cache threshold that
drives the adaptive NT-store model, silently skipping the most
interesting regime.
"""

from __future__ import annotations

import os
from typing import List, Sequence

from repro.machine.spec import KB, MB

QUICK = bool(int(os.environ.get("REPRO_QUICK", "0")))


def quick_subsample(sizes: Sequence[int]) -> List[int]:
    """Every third size, but always retaining the first and last.

    The endpoints anchor the sweep's two regimes (cache-resident and
    memory-streaming); a smoke run must exercise both.
    """
    out = list(sizes[::3])
    if sizes and out[-1] != sizes[-1]:
        out.append(sizes[-1])
    return out


#: the paper's 64 KB – 256 MB sweep (subsampled above 16 MB to keep the
#: op-heavy simulations inside a benchmark-suite time budget)
SIZES_LARGE = [
    64 * KB, 128 * KB, 256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB,
    8 * MB, 16 * MB, 64 * MB, 256 * MB,
]
#: 16 KB – 256 MB (Figure 15)
SIZES_WIDE = [16 * KB, 32 * KB] + SIZES_LARGE
#: 8 KB – 8 MB (Figure 14, all-gather: aggregate is p times larger)
SIZES_ALLGATHER = [
    8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB, 512 * KB,
    1 * MB, 2 * MB, 4 * MB, 8 * MB,
]

if QUICK:  # pragma: no cover - smoke-run convenience
    SIZES_LARGE = quick_subsample(SIZES_LARGE)
    SIZES_WIDE = quick_subsample(SIZES_WIDE)
    SIZES_ALLGATHER = quick_subsample(SIZES_ALLGATHER)
