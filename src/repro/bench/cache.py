"""Persistent on-disk result cache for benchmark cells.

Every cell — one ``(machine, implementation, size)`` point of a
declarative sweep, or one whole custom benchmark function — is keyed by
the SHA-256 of its canonical-JSON descriptor.  The descriptor embeds
the full machine spec, the runner spec (algorithm name, copy policy,
slice cap, ...), the message size and rank count, and the *source
version*: a content hash over every ``repro`` source file.  Any edit to
the simulator, the collectives or the models invalidates every cached
cell; re-runs after unrelated edits (docs, tests, benchmarks' shape
assertions) are served from cache.

Entries live under ``benchmarks/results/cache/<k[:2]>/<k>.json`` so the
cache is inspectable and individually deletable.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

_SOURCE_VERSION: Optional[str] = None


def package_root() -> Path:
    """The ``repro`` package directory — the root all source hashes are
    relative to."""
    import repro

    return Path(repro.__file__).resolve().parent


def iter_source_files():
    """Every ``repro`` package source file, in stable order."""
    pkg = package_root()
    return sorted(
        p for p in pkg.rglob("*.py") if "__pycache__" not in p.parts
    )


def source_version() -> str:
    """Content hash of the ``repro`` package sources (memoized).

    Hash-relative paths are anchored at :func:`package_root`, not at the
    parent of whichever file happens to sort first (``repro/__init__.py``
    today, but any ``repro/aaa/`` subpackage would silently shift every
    relative path and change the hash).
    """
    global _SOURCE_VERSION
    if _SOURCE_VERSION is None:
        h = hashlib.sha256()
        pkg_root = package_root()
        for path in iter_source_files():
            h.update(str(path.relative_to(pkg_root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _SOURCE_VERSION = h.hexdigest()
    return _SOURCE_VERSION


def reset_source_version() -> None:
    """Drop the memoized source hash so the next :func:`source_version`
    call re-reads the tree.  Called from the bench pool initializer (a
    forked worker must not trust a hash memoized before the fork) and
    from test fixtures that monkeypatch the source tree."""
    global _SOURCE_VERSION
    _SOURCE_VERSION = None


def descriptor_key(descriptor: dict) -> str:
    """SHA-256 over the canonical JSON form of a cell descriptor."""
    blob = json.dumps(descriptor, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Content-addressed store of cell results.

    ``enabled=False`` turns every lookup into a miss and every store
    into a no-op (the ``--no-cache`` path), while still counting stats.
    """

    def __init__(self, root: Path, *, enabled: bool = True):
        self.root = Path(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        if self.enabled:
            path = self._path(key)
            try:
                entry = json.loads(path.read_text())
                result = entry["result"]
            except (OSError, ValueError, KeyError, TypeError):
                pass  # absent or corrupt entry: recompute
            else:
                self.hits += 1
                return result
        self.misses += 1
        return None

    def put(self, key: str, descriptor: dict, result: dict) -> None:
        if not self.enabled:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "descriptor": descriptor, "result": result}
        # Unique temp file per writer + atomic rename: concurrent
        # workers (or whole concurrent suites) writing the same key can
        # never interleave partial content — last rename wins whole.
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:8]}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(entry, sort_keys=True, indent=1) + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def stats(self) -> str:
        return f"{self.hits}/{self.lookups} cells from cache"
