"""Cell execution: serial or fanned out over a process pool, through
the persistent result cache.

The unit of work is a *cell*:

* declarative sweeps yield one cell per (implementation, x) point —
  these parallelize across CPU cores and cache individually;
* a custom benchmark (one module-level function) is a single cell —
  it still runs in a worker and caches as a whole.

Workers receive pure-data payloads (no closures cross the process
boundary): the machine preset name, the rank count, the message size
and the :class:`~repro.bench.spec.RunnerSpec` dict — or, for custom
cells, the benchmark module and function names to re-import.
"""

from __future__ import annotations

import dataclasses
import importlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.cache import ResultCache, descriptor_key, source_version
from repro.bench.jsonio import SCHEMA, benchmark_doc, sanitize, summary_doc
from repro.bench.runners import ITERATIONS
from repro.bench.spec import Benchmark, RunnerSpec, SweepSpec
from repro.bench.table import SweepTable


def _quick() -> bool:
    return bool(int(os.environ.get("REPRO_QUICK", "0")))


# ---------------------------------------------------------------------------
# Worker entry points (top-level: picklable by reference)
# ---------------------------------------------------------------------------


def _worker_init(bench_dir: str) -> None:
    """Make the benchmarks directory importable inside workers (needed
    for custom cells under spawn-based start methods; harmless under
    fork), and drop any source-version hash memoized before the fork —
    a worker must key cache entries off the tree it actually sees."""
    import sys

    from repro.bench.cache import reset_source_version

    reset_source_version()
    if bench_dir and bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)


def exec_payload(payload: dict) -> dict:
    """Execute one cell payload; returns a JSON-safe result dict."""
    if payload["type"] == "cell":
        if payload.get("compiled"):
            from repro.bench.compiled import exec_compiled_cell

            return exec_compiled_cell(payload)
        from repro.library.communicator import Communicator
        from repro.machine.spec import PRESETS

        spec = RunnerSpec.from_dict(payload["runner"])
        machine = PRESETS[payload["machine"]]
        comm = Communicator(payload["p"], machine=machine, functional=False)
        res = spec.resolve()(comm, payload["nbytes"])
        return {"time": res.time, "dav": res.dav,
                "algorithm": res.algorithm, "counters": res.counters}
    _worker_init(payload.get("bench_dir", ""))
    module = importlib.import_module(payload["module"])
    fn = getattr(module, payload["attr"])
    return {"payload": sanitize(fn())}


# ---------------------------------------------------------------------------
# Cache descriptors
# ---------------------------------------------------------------------------


def cell_descriptor(cell: dict, *, compiled: bool = False,
                    poly: bool = False, certified: bool = False,
                    perturb: Optional[dict] = None) -> dict:
    """The cache identity of a sweep cell: full machine spec, runner
    spec, geometry and the repro source version.

    Compiled-mode results key separately (``engine: "compiled"`` is
    added *only* then, so every pre-existing coroutine key is
    byte-stable): replayed results are bitwise-equal to coroutine ones
    by construction, but sharing entries would let a cached coroutine
    result mask a compiled-path regression.  Size-polymorphic replay
    keys as ``engine: "compiled-poly"`` — a re-timed result is a model
    estimate and must never be served where an exact one is expected —
    and the certified path as ``engine: "compiled-poly-certified"``
    (its DAV/footprints come from region certificates, a different
    result).  A perturbation config changes the result content (tail
    statistics ride along), so it is part of the identity too.
    """
    from repro.machine.spec import PRESETS

    desc = {
        "schema": SCHEMA,
        "source": source_version(),
        "machine": dataclasses.asdict(PRESETS[cell["machine"]]),
        "p": cell["p"],
        "nbytes": cell["nbytes"],
        "iterations": ITERATIONS,
        "runner": cell["runner"],
    }
    if compiled:
        desc["engine"] = ("compiled-poly-certified" if poly and certified
                          else "compiled-poly" if poly else "compiled")
        if perturb:
            desc["perturb"] = dict(perturb)
    return desc


def custom_descriptor(module_path: Path, attr: str) -> dict:
    """Custom cells hash the defining module's bytes too: the function
    body *is* the sweep definition."""
    import hashlib

    return {
        "schema": SCHEMA,
        "source": source_version(),
        "custom": module_path.stem,
        "attr": attr,
        "module_sha": hashlib.sha256(module_path.read_bytes()).hexdigest(),
        "quick": _quick(),
    }


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class BenchResult:
    """One benchmark's outcome: tables for declarative sweeps, the
    sanitized payload for custom ones, and its JSON document."""

    name: str
    tables: List[SweepTable] = field(default_factory=list)
    custom_payload: Optional[dict] = None
    #: compiled-path captures this run performed (cache/memo misses);
    #: run-dependent, so reported via progress — never serialized
    captures: int = 0

    def doc(self) -> dict:
        return benchmark_doc(
            self.name,
            source_version=source_version(),
            quick=_quick(),
            tables=self.tables if self.tables else None,
            custom_payload=self.custom_payload,
        )


class _Work:
    """One cell flowing through cache-check → execute → collect."""

    __slots__ = ("payload", "key", "descriptor", "result", "future")

    def __init__(self, payload: dict, descriptor: dict):
        self.payload = payload
        self.descriptor = descriptor
        self.key = descriptor_key(descriptor)
        self.result: Optional[dict] = None
        self.future = None


def _drain(work: "list[_Work]", cache: Optional[ResultCache],
           pool: Optional[ProcessPoolExecutor]) -> None:
    """Resolve every work item: cache hit, pool future or inline run."""
    from repro.bench.compiled import TRANSIENT_RESULT_KEYS

    for w in work:
        if cache is not None:
            w.result = cache.get(w.key)
        if w.result is None and pool is not None:
            w.future = pool.submit(exec_payload, w.payload)
    for w in work:
        if w.result is None:
            w.result = w.future.result() if w.future is not None \
                else exec_payload(w.payload)
            if cache is not None:
                # run artifacts (e.g. whether this run captured the
                # schedule) describe the run, not the result: strip
                cache.put(w.key, w.descriptor,
                          {k: v for k, v in w.result.items()
                           if k not in TRANSIENT_RESULT_KEYS})


def _sweep_work(spec: SweepSpec, *, compiled: bool = False,
                poly: bool = False, certified: bool = False,
                perturb: Optional[dict] = None,
                results_dir: Optional[Path] = None) -> "list[_Work]":
    out = []
    for cell in spec.cells():
        payload = {
            "type": "cell",
            "machine": cell["machine"],
            "p": cell["p"],
            "nbytes": cell["nbytes"],
            "runner": cell["runner"],
        }
        if compiled:
            payload["compiled"] = True
            if poly:
                payload["poly"] = True
                if certified:
                    payload["certified"] = True
            if perturb:
                payload["perturb"] = dict(perturb)
            if results_dir is not None:
                payload["results_dir"] = str(results_dir)
        out.append(_Work(payload, cell_descriptor(
            cell, compiled=compiled, poly=poly, certified=certified,
            perturb=perturb)))
    return out


def _sweep_table(spec: SweepSpec, work: "list[_Work]") -> SweepTable:
    table = SweepTable(title=spec.title, sizes=list(spec.sizes),
                       baseline=spec.baseline)
    regions = set()
    retimed = 0
    certified = 0
    uncertified = 0
    for cell, w in zip(spec.cells(), work):
        # .get: cache entries written before the counter schema lack
        # the key (source_version() normally invalidates them, but a
        # hand-copied cache directory must not crash the suite)
        table.add(cell["impl"], cell["x"], w.result["time"],
                  dav=w.result["dav"], algorithm=w.result["algorithm"],
                  counters=w.result.get("counters"),
                  perturb=w.result.get("perturb"))
        poly = w.result.get("poly")
        if poly:
            regions.add(poly["region"])
            retimed += bool(poly.get("retimed"))
            if "certified" in poly:
                certified += bool(poly["certified"])
                uncertified += not poly["certified"]
    if regions:
        note = (f"size-poly: {len(work)} cells from {len(regions)} "
                f"decision regions ({retimed} model-retimed)")
        if certified or uncertified:
            note += (f"; {certified} certified"
                     + (f", {uncertified} NOT certified (see "
                        "poly.cert_errors)" if uncertified else ""))
        table.notes.append(note)
    return table


def run_sweep_table(spec: SweepSpec, *,
                    cache: Optional[ResultCache] = None,
                    pool: Optional[ProcessPoolExecutor] = None,
                    compiled: bool = False,
                    poly: bool = False,
                    certified: bool = False,
                    perturb: Optional[dict] = None,
                    results_dir: Optional[Path] = None) -> SweepTable:
    """Execute one sweep (serial and uncached unless given otherwise).

    This is the pytest benchmark path: the per-figure modules call it
    from their ``run_figure`` helpers and keep their shape assertions.
    ``compiled=True`` replays lowered schedules instead of executing
    the coroutine engine (persisted under ``results_dir`` when given);
    ``poly=True`` shares schedules across sizes per decision region,
    ``certified=True`` additionally proves each region's schedule
    shape with a symbolic certificate and replays with engine-exact
    DAV/footprints, and ``perturb`` (``{"n", "model", "seed"}``)
    attaches tail statistics from a seeded noise ensemble to every
    cell.
    """
    work = _sweep_work(spec, compiled=compiled, poly=poly,
                       certified=certified, perturb=perturb,
                       results_dir=results_dir)
    _drain(work, cache, pool)
    return _sweep_table(spec, work)


def run_benchmark(bench: Benchmark, *,
                  bench_dir: Optional[Path] = None,
                  cache: Optional[ResultCache] = None,
                  pool: Optional[ProcessPoolExecutor] = None,
                  compiled: bool = False,
                  poly: bool = False,
                  certified: bool = False,
                  perturb: Optional[dict] = None,
                  results_dir: Optional[Path] = None) -> BenchResult:
    """Execute one benchmark through the cache/pool machinery.

    ``compiled`` / ``poly`` / ``certified`` / ``perturb`` apply to
    declarative sweep cells only: custom benchmark functions drive the
    engine themselves and always run the coroutine path.
    """
    result = BenchResult(name=bench.name)
    if bench.custom:
        from repro.bench.discover import benchmarks_dir

        bench_dir = bench_dir or benchmarks_dir()
        module_path = bench_dir / f"{bench.module}.py"
        payload = {
            "type": "custom",
            "module": bench.module,
            "attr": bench.custom,
            "bench_dir": str(bench_dir),
        }
        work = [_Work(payload, custom_descriptor(module_path, bench.custom))]
        _drain(work, cache, pool)
        result.custom_payload = work[0].result["payload"]
        return result
    all_work = [_sweep_work(s, compiled=compiled, poly=poly,
                            certified=certified, perturb=perturb,
                            results_dir=results_dir)
                for s in bench.sweeps]
    flat = [w for ws in all_work for w in ws]
    _drain(flat, cache, pool)
    result.captures = sum(1 for w in flat if w.result.get("captured"))
    for spec, work in zip(bench.sweeps, all_work):
        result.tables.append(_sweep_table(spec, work))
    return result


def run_suite(benchmarks: "Dict[str, Benchmark]", *,
              bench_dir: Optional[Path] = None,
              results_dir: Optional[Path] = None,
              jobs: int = 1,
              use_cache: bool = True,
              write_json: bool = True,
              compiled: bool = False,
              poly: bool = False,
              certified: bool = False,
              perturb: Optional[dict] = None,
              progress=None):
    """Run a set of benchmarks; write per-benchmark JSON documents and
    the consolidated ``BENCH_summary.json``.

    Returns ``(summary, docs, cache)``.  ``jobs <= 0`` means one worker
    per CPU core; ``jobs == 1`` runs inline (no pool).  ``compiled``
    switches sweep cells to the compiled-schedule replay path; the
    lowered schedules persist under ``<results_dir>/compiled/`` even
    when the result cache is disabled.  ``poly`` keys schedules by
    decision region (one capture serves every size whose adaptive
    decisions agree); ``certified`` proves each region with a symbolic
    certificate for engine-exact DAV/footprints; ``perturb`` attaches
    seeded tail statistics.
    """
    from repro.bench.discover import benchmarks_dir, default_results_dir
    from repro.bench.jsonio import write_json as _write

    bench_dir = bench_dir or benchmarks_dir()
    results_dir = results_dir or default_results_dir()
    cache = ResultCache(results_dir / "cache", enabled=use_cache)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    pool = None
    if jobs > 1:
        pool = ProcessPoolExecutor(
            max_workers=jobs, initializer=_worker_init,
            initargs=(str(bench_dir),),
        )
    docs = []
    try:
        for name, bench in benchmarks.items():
            if progress is not None:
                progress(f"[bench] {name} ...")
            res = run_benchmark(bench, bench_dir=bench_dir, cache=cache,
                                pool=pool, compiled=compiled, poly=poly,
                                certified=certified, perturb=perturb,
                                results_dir=results_dir)
            doc = res.doc()
            docs.append(doc)
            if write_json:
                _write(doc, results_dir / f"BENCH_{name}.json")
            if progress is not None:
                if compiled and res.captures:
                    progress(f"[bench] {name}: captured {res.captures} "
                             "schedule(s) this run")
                for table in res.tables:
                    progress(table.render())
    finally:
        if pool is not None:
            pool.shutdown()
    summary = summary_doc(docs, source_version=source_version(),
                          quick=_quick())
    if write_json:
        _write(summary, results_dir / "BENCH_summary.json")
    return summary, docs, cache
