"""Per-implementation runner factories for the benchmark sweeps.

A *cell* runner is ``fn(comm, nbytes) -> CellResult`` (simulated time,
DAV and the algorithm that ran); the legacy ``*_runner`` factories wrap
the same logic and return bare seconds, which is what the historical
``benchmarks/runners.py`` interface promised.

The tuning mirrors Section 5.3: MA slice caps of 256 KB (NodeA) /
128 KB (NodeB), DPML's 8 KB reduction block, RG with branch 2 and
128 KB slices; the published baselines run with ``memmove`` copies
(their implementations' store path), the YHCCL designs with the
adaptive copy unless a specific policy is requested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bench.registry import platform_imax
from repro.collectives.common import (
    run_allgather_collective,
    run_bcast_collective,
    run_reduce_collective,
)

#: steady-state measurement: warm-up iteration + measured iteration,
#: mirroring the paper's OSU-style loops
ITERATIONS = 2


@dataclass(frozen=True)
class CellResult:
    """Outcome of one sweep cell: one (impl, size) point."""

    time: float
    dav: int
    algorithm: str
    #: per-rank counter snapshot (``repro-obs/1``); ``None`` only for
    #: results reconstructed from pre-counter cache entries
    counters: Optional[dict] = None


def resolve_imax(imax: Optional[int], machine) -> int:
    """Resolve an explicit or per-platform slice cap.

    Only ``None`` selects the platform default — an explicit ``imax=0``
    (or any non-positive cap) is a configuration error, not a request
    for the default, and is rejected rather than silently replaced.
    """
    if imax is None:
        return platform_imax(machine)
    if not isinstance(imax, int) or isinstance(imax, bool):
        raise ValueError(f"imax must be an int or None, got {imax!r}")
    if imax <= 0:
        raise ValueError(f"imax must be positive, got {imax}")
    return imax


def _cell(res, algorithm: str) -> CellResult:
    from repro.obs.counters import Counters

    return CellResult(
        time=res.time,
        dav=res.traffic.dav if res.traffic is not None else 0,
        algorithm=algorithm,
        counters=Counters.from_run(res).snapshot(),
    )


def reduce_cell(alg, policy: str = "memmove", imax: Optional[int] = None,
                root: int = 0):
    """Directly drive one reduction-family algorithm."""

    def run(comm, nbytes) -> CellResult:
        res = run_reduce_collective(
            alg, comm.engine, nbytes, copy_policy=policy,
            imax=resolve_imax(imax, comm.machine), root=root,
            iterations=ITERATIONS,
        )
        return _cell(res, alg.name)

    return run


def bcast_cell(alg, policy: str = "memmove", imax: Optional[int] = None,
               root: int = 0):
    def run(comm, nbytes) -> CellResult:
        res = run_bcast_collective(
            alg, comm.engine, nbytes, copy_policy=policy,
            imax=resolve_imax(imax, comm.machine), root=root,
            iterations=ITERATIONS,
        )
        return _cell(res, alg.name)

    return run


def allgather_cell(alg, policy: str = "memmove",
                   imax: Optional[int] = None):
    def run(comm, nbytes) -> CellResult:
        res = run_allgather_collective(
            alg, comm.engine, nbytes, copy_policy=policy,
            imax=resolve_imax(imax, comm.machine),
            iterations=ITERATIONS,
        )
        return _cell(res, alg.name)

    return run


def yhccl_cell(kind: str):
    """The full YHCCL stack (switching + socket-aware MA + adaptive copy)."""

    def run(comm, nbytes) -> CellResult:
        from repro.library.yhccl import YHCCL

        res = getattr(YHCCL(comm), kind)(nbytes, iterations=ITERATIONS)
        return CellResult(time=res.time, dav=res.dav,
                          algorithm=res.algorithm, counters=res.counters)

    return run


def vendor_cell(vendor: str, kind: str):
    def run(comm, nbytes) -> CellResult:
        from repro.library.mpi import MPILibrary

        res = getattr(MPILibrary(comm, vendor), kind)(
            nbytes, iterations=ITERATIONS
        )
        return CellResult(time=res.time, dav=res.dav,
                          algorithm=res.algorithm, counters=res.counters)

    return run


# ---------------------------------------------------------------------------
# Legacy seconds-returning factories (the benchmarks/runners.py surface)
# ---------------------------------------------------------------------------


def _seconds(cell_factory):
    def factory(*args, **kw):
        run = cell_factory(*args, **kw)

        def seconds(comm, nbytes) -> float:
            return run(comm, nbytes).time

        return seconds

    return factory


reduce_runner = _seconds(reduce_cell)
bcast_runner = _seconds(bcast_cell)
allgather_runner = _seconds(allgather_cell)
yhccl_runner = _seconds(yhccl_cell)
vendor_runner = _seconds(vendor_cell)
