"""Hierarchy-family bench cells: composed multi-node collectives.

A ``family="hierarchy"`` runner prices a whole cluster collective as a
two-level stack from :mod:`repro.library.hierarchy`: intra-node leaf
phases driven by the simulated engine, an inter-node exchange priced on
the network cost model.  The cell's ``counters`` field carries the full
``repro-hier/1`` per-level breakdown instead of a ``repro-obs/1``
snapshot — per-level times and traffic land in the ``repro-bench/1``
cells, and the per-level ``bytes_on_wire`` / ``messages`` sum exactly
to the document's ``network`` totals.

Two leaf drivers share one composition:

* the **coroutine** path runs each leaf on a fresh
  :class:`~repro.library.communicator.Communicator` at the bench
  iteration discipline — exactly what a ``yhccl``/``vendor`` family
  cell of the same kind and size would execute;
* the **compiled** path (``bench --compiled``) replays each leaf from
  the content-addressed schedule cache via the same sub-cell identity.
  Leaf schedule descriptors carry no node count, so one capture per
  (machine, p, kind, size) serves an entire node-count sweep — that is
  what makes ≥1024-node scans cheap.

Replayed leaf results are bitwise-equal to coroutine ones by the
compiled evaluator's contract, and the network stages are pure float
math shared by both paths, so hierarchy cells keep the suite's
coroutine-vs-compiled byte-identical JSON property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.bench.runners import ITERATIONS, CellResult
from repro.library.hierarchy import Hierarchy, allreduce_stages
from repro.machine.network import INFINIBAND_EDR, NETWORKS, Network

#: leaf collective kinds per hierarchy mode
MODE_KINDS = {
    "partition": ("reduce_scatter", "allgather"),
    "leader": ("reduce", "bcast"),
}


@dataclass(frozen=True)
class HierConfig:
    """Resolved cluster configuration of one hierarchy cell."""

    implementation: str
    nnodes: int
    mode: str
    lanes: Optional[int]
    network: str
    exchange: str
    pipelined: bool
    adaptive: bool

    @property
    def vendor(self) -> str:
        """The node-model vendor backing non-YHCCL leaves."""
        return ("Open MPI" if self.implementation == "OMPI-hcoll"
                else self.implementation)


def resolve_config(implementation: str, params: dict) -> HierConfig:
    """Fill the per-implementation defaults of a hierarchy cell."""
    nnodes = int(params.get("nnodes", 0))
    if nnodes < 1:
        raise ValueError(
            "hierarchy cell needs nnodes >= 1 (set it on the spec or "
            "use a sweep with axis='nodes')")
    mode = params.get("mode") or (
        "partition" if implementation == "YHCCL" else "leader")
    if mode not in MODE_KINDS:
        raise ValueError(f"unknown hierarchy mode {mode!r}")
    network = params.get("network") or INFINIBAND_EDR.name
    if network not in NETWORKS:
        raise ValueError(
            f"unknown network preset {network!r}; "
            f"choose from {sorted(NETWORKS)}")
    exchange = params.get("exchange", "")
    if exchange not in ("", "ring", "tree", "rabenseifner"):
        raise ValueError(f"unknown exchange stage {exchange!r}")
    lanes = params.get("lanes")
    return HierConfig(
        implementation=implementation,
        nnodes=nnodes,
        mode=mode,
        lanes=None if lanes is None else int(lanes),
        network=network,
        exchange=exchange,
        pipelined=bool(params.get("pipelined", True)),
        adaptive=bool(params.get("adaptive",
                                 implementation == "OMPI-hcoll")),
    )


@dataclass(frozen=True)
class _Leaf:
    """Minimal leaf result both drivers produce — identical fields so
    the coroutine and compiled paths compose bitwise-equal documents."""

    time: float
    dav: int
    algorithm: str


LeafOp = Callable[[int], _Leaf]


def _pipeline_chunks(cfg: HierConfig, nbytes: int) -> int:
    from repro.library.multinode import MultiNodeAllreduce

    c = MultiNodeAllreduce.PIPELINE_CHUNKS
    if (cfg.pipelined and cfg.mode == "partition" and cfg.nnodes > 1
            and nbytes >= c * (1 << 20)):
        return c
    return 1


def run_hierarchy(cfg: HierConfig, machine_name: str, p: int, nbytes: int,
                  leaf_ops: "Dict[str, LeafOp]") -> dict:
    """Compose one hierarchy cell result from per-leaf drivers.

    Returns the JSON-safe cell dict (``time`` / ``dav`` / ``algorithm``
    / ``counters``) with the ``repro-hier/1`` document as counters.
    """
    from repro.library.hierarchy import (
        RabenseifnerStage,
        RingStage,
        TreeAllreduceStage,
    )

    net = Network(NETWORKS[cfg.network])
    exchange_stage = None
    if cfg.exchange:
        lanes = cfg.lanes if cfg.lanes is not None else (
            p if cfg.mode == "partition" else 1)
        exchange_stage = {
            "ring": lambda: RingStage(net, cfg.nnodes, lanes=lanes),
            "tree": lambda: TreeAllreduceStage(net, cfg.nnodes),
            "rabenseifner": lambda: RabenseifnerStage(
                net, cfg.nnodes, lanes=lanes),
        }[cfg.exchange]()
    stages = allreduce_stages(
        None,
        net=net,
        nnodes=cfg.nnodes,
        nranks_per_node=p,
        mode=cfg.mode,
        lanes=cfg.lanes,
        network_stage=exchange_stage,
        adaptive=cfg.adaptive,
        leaf_ops=dict(leaf_ops),
    )
    hierarchy = Hierarchy(
        stages,
        name=f"{cfg.implementation}-{cfg.mode}",
        network=net,
        nnodes=cfg.nnodes,
        nranks=cfg.nnodes * p,
    )
    res = hierarchy.run(nbytes, chunks=_pipeline_chunks(cfg, nbytes))
    doc = res.to_doc()
    doc["implementation"] = cfg.implementation
    doc["machine"] = machine_name
    doc["ranks_per_node"] = p
    inter = next((s.algorithm for s in res.stages if s.level == "inter"), "")
    algorithm = f"{cfg.implementation}:{inter}"
    if res.pipelined:
        algorithm += "+pipelined"
    return {
        "time": res.time,
        "dav": res.dav,
        "algorithm": algorithm,
        "counters": doc,
    }


# ---------------------------------------------------------------------------
# Coroutine leaf driver (the default bench path)
# ---------------------------------------------------------------------------


def _coroutine_leaf_ops(cfg: HierConfig, machine,
                        p: int) -> "Dict[str, LeafOp]":
    """Each leaf runs on a fresh communicator at the bench iteration
    discipline — matching what the compiled path captures."""
    from repro.library.communicator import Communicator
    from repro.library.mpi import MPILibrary
    from repro.library.yhccl import YHCCL

    def make(kind: str) -> LeafOp:
        def op(nbytes: int) -> _Leaf:
            comm = Communicator(p, machine=machine, functional=False)
            lib = (YHCCL(comm) if cfg.implementation == "YHCCL"
                   else MPILibrary(comm, cfg.vendor))
            res = getattr(lib, kind)(nbytes, iterations=ITERATIONS)
            return _Leaf(time=res.time, dav=res.dav,
                         algorithm=res.algorithm)

        return op

    return {kind: make(kind) for kind in MODE_KINDS[cfg.mode]}


def hierarchy_cell(implementation: str, params: dict):
    """Cell runner factory for ``RunnerSpec.resolve``; ``comm`` supplies
    the per-node shape (machine preset, ranks per node)."""
    def run(comm, nbytes) -> CellResult:
        cfg = resolve_config(implementation, params)
        ops = _coroutine_leaf_ops(cfg, comm.machine, comm.nranks)
        out = run_hierarchy(cfg, comm.machine.name, comm.nranks,
                            nbytes, ops)
        return CellResult(time=out["time"], dav=out["dav"],
                          algorithm=out["algorithm"],
                          counters=out["counters"])

    return run


# ---------------------------------------------------------------------------
# Compiled leaf driver (bench --compiled)
# ---------------------------------------------------------------------------


def exec_hierarchy_compiled(payload: dict) -> dict:
    """Worker entry for a compiled hierarchy cell.

    Each leaf resolves through the compiled schedule cache under its
    own sub-cell identity — the ``yhccl``/``vendor`` cell that kind and
    size would be — and replays bitwise.  ``poly`` / ``certified`` /
    ``perturb`` flags are ignored for hierarchy cells: the leaves are
    exact replays already and the network stage is closed-form.
    """
    from repro.bench.cache import descriptor_key
    from repro.bench.compiled import _load_schedule, schedule_descriptor
    from repro.bench.spec import RunnerSpec

    runner = payload["runner"]
    cfg = resolve_config(runner["vendor"],
                         dict(tuple(kv) for kv in runner.get("params", ())))
    machine_name = payload["machine"]
    p = payload["p"]
    captured = []

    def make(kind: str) -> LeafOp:
        if cfg.implementation == "YHCCL":
            sub_runner = RunnerSpec(family="yhccl", kind=kind)
        else:
            sub_runner = RunnerSpec(family="vendor", kind=kind,
                                    vendor=cfg.vendor)

        def op(nbytes: int) -> _Leaf:
            from repro.bench.compiled import replay_cell

            sub = {
                "machine": machine_name,
                "p": p,
                "nbytes": nbytes,
                "runner": sub_runner.describe(),
            }
            if payload.get("results_dir"):
                sub["results_dir"] = payload["results_dir"]
            key = descriptor_key(schedule_descriptor(sub))
            cs, fresh = _load_schedule(sub, key)
            if fresh:
                captured.append(kind)
            res = replay_cell(cs)
            return _Leaf(time=res["time"], dav=res["dav"],
                         algorithm=res["algorithm"])

        return op

    ops = {kind: make(kind) for kind in MODE_KINDS[cfg.mode]}
    result = run_hierarchy(cfg, machine_name, p, payload["nbytes"], ops)
    if captured:
        result["captured"] = True  # transient: stripped before caching
    return result
