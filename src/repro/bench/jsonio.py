"""Canonical JSON serialization for benchmark results.

Schema ``repro-bench/1``.  Per-benchmark documents
(``BENCH_<name>.json``) and the consolidated ``BENCH_summary.json`` are
written with sorted keys and fixed indentation so that two runs with
identical results produce byte-identical files — the property the
parallel-vs-serial equality tests pin down.  Nothing time- or
host-dependent (wall clock, cache hit counts, worker counts) goes into
these files *as written by the suite*.

Documented exceptions — all provenance, not results, and excluded from
every determinism guarantee (:func:`summary_doc` output itself stays
byte-stable):

* the CLI front end appends an advisory ``wall_clock`` block to
  ``BENCH_summary.json`` after a run, recording suite wall-clock per
  engine mode (coroutine vs compiled), their ratio, and the capture
  microbenchmark's headline numbers — the before/after evidence for
  the compiled evaluator.  The block is keyed to the source version
  and replaced wholesale when the tree changes; it persists in the
  ``wall_clock.json`` sidecar between runs;
* ``BENCH_compiled.json`` (schema ``repro-compiled-bench/1``,
  :func:`repro.bench.compiled.run_capture_microbench`) is a wall-clock
  sidecar end to end: capture cost vs the coroutine run and batched
  vs looped replay throughput.  Its ``ops``, ``time`` and
  ``bitwise_equal`` fields are deterministic; everything suffixed
  ``_s`` is host wall clock.

Perturbation tail statistics (``--perturb``) are *not* an exception:
ensembles are seeded per cell from the schedule identity, so the
p50/p99/p999 blocks embedded in sweep tables are deterministic bench
content like any other cell value.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Optional

SCHEMA = "repro-bench/1"


def sanitize(obj):
    """Coerce an arbitrary benchmark payload to JSON-safe values.

    Dataclasses become dicts, tuples become lists, non-string mapping
    keys are stringified (tuple keys joined with ``/``), and
    non-finite floats become ``None`` (JSON has no ``Infinity``).
    Unknown objects fall back to ``repr``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: sanitize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if isinstance(k, tuple):
                k = "/".join(str(x) for x in k)
            elif not isinstance(k, str):
                k = str(k)
            out[k] = sanitize(v)
        return out
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) \
            else obj
        return [sanitize(v) for v in items]
    if hasattr(obj, "__dict__"):
        return {str(k): sanitize(v) for k, v in vars(obj).items()}
    return repr(obj)


def canonical_dumps(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, indent=2,
                      allow_nan=False) + "\n"


def benchmark_doc(name: str, *, source_version: str, quick: bool,
                  tables=None, custom_payload=None) -> dict:
    """The per-benchmark JSON document."""
    doc = {
        "schema": SCHEMA,
        "benchmark": name,
        "source_version": source_version,
        "quick": quick,
    }
    if tables is not None:
        doc["sweeps"] = [t.to_json() for t in tables]
    if custom_payload is not None:
        doc["custom"] = sanitize(custom_payload)
    return doc


def summary_doc(docs: "list[dict]", *, source_version: str,
                quick: bool) -> dict:
    """Consolidated trajectory document over one suite run.

    Per benchmark: the per-benchmark file name plus, for declarative
    sweeps, the geometric-mean time ratio of every implementation to
    the sweep baseline (> 1 means the baseline is faster) — the compact
    perf-trajectory signal.
    """
    benchmarks = {}
    for doc in docs:
        entry: dict = {"file": f"BENCH_{doc['benchmark']}.json"}
        if "sweeps" in doc:
            sweeps = {}
            for sweep in doc["sweeps"]:
                geo = {}
                for impl, rel in sweep["relative_to_baseline"].items():
                    vals = [v for v in rel.values() if v > 0]
                    if vals:
                        prod = 1.0
                        for v in vals:
                            prod *= v
                        geo[impl] = prod ** (1.0 / len(vals))
                sweeps[sweep["title"]] = {
                    "baseline": sweep["baseline"],
                    "sizes": len(sweep["sizes"]),
                    "geomean_time_vs_baseline": geo,
                }
            entry["sweeps"] = sweeps
        else:
            entry["custom"] = True
        benchmarks[doc["benchmark"]] = entry
    return {
        "schema": SCHEMA,
        "source_version": source_version,
        "quick": quick,
        "benchmarks": benchmarks,
    }


def write_json(doc: dict, path: Path) -> Optional[Path]:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_dumps(doc))
    return path
