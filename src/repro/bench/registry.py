"""Name-based algorithm resolution for declarative runner specs.

A sweep cell must be pure data (picklable, hashable for the cache key),
so implementations are referenced by registry name — ``"socket-ma"``,
``"ring"``, ... — and resolved to algorithm objects inside the worker
process.  Parameterized designs (the RG reduction tree) resolve through
constructor parameters carried on the spec.
"""

from __future__ import annotations

from typing import Tuple

from repro.machine.spec import KB, MachineSpec


def platform_imax(machine: MachineSpec) -> int:
    """The paper's tuned MA slice caps: 256 KB NodeA, 128 KB NodeB."""
    return {"NodeA": 256 * KB, "NodeB": 128 * KB}.get(machine.name, 128 * KB)


def known_algorithms() -> "list[str]":
    from repro.library.mpi import ALGORITHMS

    return sorted(ALGORITHMS)


def resolve_algorithm(name: str, kind: str, params: Tuple = ()):
    """Resolve ``(name, kind[, params])`` to an algorithm object.

    ``params`` is a tuple of ``(key, value)`` pairs passed to the
    algorithm constructor for parameterized families (currently RG).
    """
    if name == "rg" and params:
        from repro.collectives.rg import RGAllreduce, RGReduce

        cls = {"allreduce": RGAllreduce, "reduce": RGReduce}.get(kind)
        if cls is None:
            raise KeyError(
                f"rg has no {kind!r} variant (allreduce/reduce only)"
            )
        return cls(**dict(params))
    from repro.library.mpi import ALGORITHMS

    try:
        family = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: "
            f"{', '.join(known_algorithms())}"
        ) from None
    try:
        return family[kind]
    except KeyError:
        raise KeyError(
            f"algorithm {name!r} has no {kind!r} variant; it provides: "
            f"{', '.join(sorted(family))}"
        ) from None
