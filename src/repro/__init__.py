"""repro — reproduction of *Optimizing MPI Collectives on Shared Memory
Multi-Cores* (SC '23): the YHCCL collective library on a simulated
multi-core memory hierarchy.

Quickstart::

    from repro import Communicator, YHCCL, NODE_A

    comm = Communicator(nranks=64, machine=NODE_A)
    lib = YHCCL(comm)
    r = lib.allreduce(nbytes=16 << 20)
    print(f"{r.time_us:.0f} us, DAV {r.dav} bytes via {r.algorithm}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from repro.machine import CLUSTER_C, NODE_A, NODE_B, MachineSpec
from repro.library import Communicator, MPILibrary, Profiler, YHCCL

__version__ = "1.0.0"

__all__ = [
    "CLUSTER_C",
    "NODE_A",
    "NODE_B",
    "MachineSpec",
    "Communicator",
    "MPILibrary",
    "Profiler",
    "YHCCL",
    "__version__",
]
