"""Ablation: measured auto-tuning vs the paper's hand tuning.

The Tuner sweeps candidate algorithms and Imax values on the simulated
NodeA and emits a decision table; this bench compares the resulting
configuration against the paper's hand-tuned defaults (switch at
256 KB, Imax 256 KB) across the message-size sweep, and prints the
measured decision table itself.
"""

import pytest

from repro.collectives.switching import YHCCLConfig
from repro.library.communicator import Communicator
from repro.library.tuner import Tuner
from repro.library.yhccl import YHCCL
from repro.machine.spec import KB, MB, NODE_A

from repro.bench import Benchmark

from harness import RESULTS_DIR, fmt_size

BENCH = Benchmark(name="ablation_tuning", custom="run_ablation")

SIZES = [16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB, 64 * MB]


def run_ablation():
    comm = Communicator(64, machine=NODE_A, functional=False)
    table = Tuner(comm).tune("allreduce", sizes=SIZES)
    tuned_cfg = table.to_config()
    paper_cfg = YHCCLConfig(imax=256 * KB)
    out = {"table": table, "paper": {}, "tuned": {}}
    for label, cfg in (("paper", paper_cfg), ("tuned", tuned_cfg)):
        for s in SIZES:
            c = Communicator(64, machine=NODE_A, functional=False)
            out[label][s] = YHCCL(c, config=cfg).allreduce(
                s, iterations=2
            ).time
    return out


def test_ablation_tuning(benchmark):
    res = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = res["table"]
    lines = [table.render(), ""]
    lines.append(
        f"{'size':>8}{'paper config (us)':>20}{'tuned config (us)':>20}"
        f"{'tuned/paper':>13}"
    )
    for s in SIZES:
        p_t, t_t = res["paper"][s], res["tuned"][s]
        lines.append(
            f"{fmt_size(s):>8}{p_t * 1e6:>20.1f}{t_t * 1e6:>20.1f}"
            f"{t_t / p_t:>13.2f}"
        )
    lines += [
        "",
        f"measured small-message switch: {table.switch_size()} bytes "
        f"(paper hand tuning: 262144); measured Imax: "
        f"{table.imax >> 10} KB (paper: 256 KB)",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_tuning.txt").write_text(text + "\n")
    print("\n" + text)
    # the measured Imax must be within 2x of the paper's hand tuning,
    # and the tuned config must never lose badly to the hand tuning
    assert 128 * KB <= table.imax <= 512 * KB
    for s in SIZES:
        assert res["tuned"][s] <= res["paper"][s] * 1.25, fmt_size(s)
