"""Figure 10: rooted reduce algorithm comparison.

Socket-aware MA and MA vs DPML and RG over 64 KB – 256 MB.
Paper shape: MA designs win above 64 KB (NodeA) / 128 KB (NodeB);
artifact headline: 1.50x/2.20x/2.08x/2.37x vs Ring/DPML/RG/Rabenseifner
on 64–256 KB.
"""

import pytest

from repro.collectives.dpml import DPML_REDUCE
from repro.collectives.ma import MA_REDUCE
from repro.collectives.rg import RGReduce
from repro.collectives.socket_aware import SOCKET_MA_REDUCE
from repro.machine.spec import KB, MB

from harness import NODE_CONFIGS, SIZES_LARGE, sweep
from runners import reduce_runner


def run_figure(node: str):
    machine, p = NODE_CONFIGS[node]
    runners = {
        "Socket-aware MA (ours)": reduce_runner(SOCKET_MA_REDUCE, "adaptive"),
        "MA (ours)": reduce_runner(MA_REDUCE, "adaptive"),
        "DPML": reduce_runner(DPML_REDUCE),
        "RG": reduce_runner(RGReduce(branch=2, slice_size=128 * KB)),
    }
    return sweep(
        f"Figure 10{'a' if node == 'NodeA' else 'b'}: reduce comparison "
        f"({node}, p={p})",
        machine, p, SIZES_LARGE, runners,
        baseline="Socket-aware MA (ours)",
    )


@pytest.mark.parametrize("node", ["NodeA", "NodeB"])
def test_fig10(benchmark, node):
    table = benchmark.pedantic(run_figure, args=(node,), rounds=1,
                               iterations=1)
    table.note("paper: MA advantage for messages > 64KB (NodeA) / "
               "128KB (NodeB); RG is pipelined-tree with k=2, 128KB slices")
    large = [s for s in SIZES_LARGE if s >= 1 * MB]
    for base in ("DPML", "RG"):
        gm = table.geomean_speedup("Socket-aware MA (ours)", base, large)
        table.note(f"measured geomean speedup vs {base} (>=1MB): {gm:.2f}x")
    table.emit(f"fig10_reduce_{node}.txt")
    for base in ("DPML", "RG"):
        table.assert_wins("Socket-aware MA (ours)", base, at_least=large)
