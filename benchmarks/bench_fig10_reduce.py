"""Figure 10: rooted reduce algorithm comparison.

Socket-aware MA and MA vs DPML and RG over 64 KB – 256 MB.
Paper shape: MA designs win above 64 KB (NodeA) / 128 KB (NodeB);
artifact headline: 1.50x/2.20x/2.08x/2.37x vs Ring/DPML/RG/Rabenseifner
on 64–256 KB.
"""

import pytest

from repro.bench import Benchmark, SweepSpec, reduce_spec
from repro.bench.executor import run_sweep_table
from repro.machine.spec import KB, MB

from harness import NODE_CONFIGS, SIZES_LARGE


def _sweep(node: str) -> SweepSpec:
    _, p = NODE_CONFIGS[node]
    return SweepSpec(
        name=f"fig10_reduce_{node}",
        title=f"Figure 10{'a' if node == 'NodeA' else 'b'}: reduce "
              f"comparison ({node}, p={p})",
        machine=node,
        p=p,
        sizes=tuple(SIZES_LARGE),
        impls=(
            ("Socket-aware MA (ours)",
             reduce_spec("socket-ma", "reduce", "adaptive")),
            ("MA (ours)", reduce_spec("ma", "reduce", "adaptive")),
            ("DPML", reduce_spec("dpml", "reduce")),
            ("RG", reduce_spec("rg", "reduce", branch=2,
                               slice_size=128 * KB)),
        ),
        baseline="Socket-aware MA (ours)",
    )


BENCH = Benchmark(
    name="fig10_reduce",
    sweeps=tuple(_sweep(node) for node in NODE_CONFIGS),
)


def run_figure(node: str):
    return run_sweep_table(BENCH.sweep(f"fig10_reduce_{node}"))


@pytest.mark.parametrize("node", ["NodeA", "NodeB"])
def test_fig10(benchmark, node):
    table = benchmark.pedantic(run_figure, args=(node,), rounds=1,
                               iterations=1)
    table.note("paper: MA advantage for messages > 64KB (NodeA) / "
               "128KB (NodeB); RG is pipelined-tree with k=2, 128KB slices")
    large = [s for s in SIZES_LARGE if s >= 1 * MB]
    for base in ("DPML", "RG"):
        gm = table.geomean_speedup("Socket-aware MA (ours)", base, large)
        table.note(f"measured geomean speedup vs {base} (>=1MB): {gm:.2f}x")
    table.emit(f"fig10_reduce_{node}.txt")
    for base in ("DPML", "RG"):
        table.assert_wins("Socket-aware MA (ours)", base, at_least=large)
