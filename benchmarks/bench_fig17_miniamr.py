"""Figure 17: MiniAMR total time, 1-64 nodes x 64 processes.

The paper runs MiniAMR with ``--num_refine 40000`` (a ~320 KB allreduce
dominating communication) on 1-64 NodeA nodes and reports total times
of 37.7-480.8 s (Open MPI) vs 22.5-380.6 s (YHCCL): 1.26-1.67x.
"""

import pytest

from repro.apps.miniamr import MiniAMR, MiniAMRConfig
from repro.machine.spec import NODE_A

from repro.bench import Benchmark

from harness import RESULTS_DIR, fresh_comm

BENCH = Benchmark(name="fig17_miniamr", custom="run_figure")

NODES = [1, 2, 4, 8, 16, 32, 64]
PAPER = {
    "Open MPI": dict(zip(NODES, [37.7, 49, 72.9, 116.7, 187.8, 300.5, 480.8])),
    "YHCCL": dict(zip(NODES, [22.5, 39.4, 58.4, 92.4, 129.7, 243.3, 380.6])),
}


def run_figure():
    cfg = MiniAMRConfig(num_refine=40000, num_tsteps=20)
    out = {}
    for impl in ("YHCCL", "Open MPI"):
        out[impl] = {}
        for n in NODES:
            comm = fresh_comm(NODE_A, 64)
            app = MiniAMR(comm, cfg, implementation=impl, nnodes=n)
            out[impl][n] = app.run()
    return out


def test_fig17(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    lines = [
        "Figure 17: MiniAMR total time (seconds), 64 procs/node",
        "======================================================",
        "",
        f"{'nodes':>6}{'Open MPI (sim/paper)':>24}{'YHCCL (sim/paper)':>22}"
        f"{'speedup (sim/paper)':>22}",
    ]
    for n in NODES:
        o = results["Open MPI"][n].total_time
        y = results["YHCCL"][n].total_time
        po, py = PAPER["Open MPI"][n], PAPER["YHCCL"][n]
        lines.append(
            f"{n:>6}{o:>14.1f} /{po:>7.1f}{y:>13.1f} /{py:>6.1f}"
            f"{o / y:>13.2f} /{po / py:>6.2f}"
        )
    lines += [
        "",
        "model note: the single-node speedup (paper band 1.26-1.67x),",
        "the strong growth of totals, and YHCCL's absolute 64-node total",
        "(simulated ~420s vs paper 380.6s) all reproduce; the simulated",
        "baseline gap at scale overshoots the paper's (which narrows to",
        "~1.26x) because our Open MPI intra-node allreduce stays ~2.5x",
        "slower at the weak-scaled message sizes — consistent with the",
        "paper's own Figure 15c microbenchmark, which its Figure 17 app",
        "measurement undercuts (see EXPERIMENTS.md).",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig17_miniamr.txt").write_text(text + "\n")
    print("\n" + text)
    # shape: YHCCL wins at every node count; single-node factor lands in
    # the paper's band
    for n in NODES:
        speedup = (
            results["Open MPI"][n].total_time / results["YHCCL"][n].total_time
        )
        assert 1.2 < speedup < 6.5, (n, speedup)
    one_node = (
        results["Open MPI"][1].total_time / results["YHCCL"][1].total_time
    )
    assert 1.2 < one_node < 1.8
    # totals grow with node count for both
    for impl in ("YHCCL", "Open MPI"):
        ts = [results[impl][n].total_time for n in NODES]
        assert all(a < b for a, b in zip(ts, ts[1:]))
    # ... and the growth is strong (the paper's 64-node total is ~13x
    # its single-node total)
    growth = results["YHCCL"][64].total_time / results["YHCCL"][1].total_time
    assert growth > 5
