"""Figure 18: data-parallel CNN training throughput, 1-256 nodes.

ResNet-50 and VGG-16 on Cluster C (24 processes/node): images/second
for YHCCL (pipelined gradient exchange overlapping back-propagation)
vs Open MPI (blocking per-tensor Horovod path).

Paper shape: both scale near-linearly (log-log parallel lines);
YHCCL's gap is 1.94x (ResNet-50) / 1.80x (VGG-16) at 6144 cores, with
1.62x measured on a single node (artifact).
"""

import pytest

from repro.apps.cnn import CNNTrainer, resnet50, vgg16
from repro.machine.spec import CLUSTER_C

from repro.bench import Benchmark

from harness import RESULTS_DIR, fresh_comm

BENCH = Benchmark(name="fig18_cnn", custom="run_figure")

NODES = [1, 2, 4, 8, 16, 32, 64, 128, 256]


def run_figure():
    out = {}
    for model_fn in (resnet50, vgg16):
        model = model_fn()
        out[model.name] = {}
        for impl in ("YHCCL", "Open MPI"):
            out[model.name][impl] = {}
            for n in NODES:
                comm = fresh_comm(CLUSTER_C, 24)
                tr = CNNTrainer(comm, model, implementation=impl,
                                nnodes=n, batch_per_rank=1)
                out[model.name][impl][n] = tr.iteration()
    return out


def test_fig18(benchmark):
    results = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    lines = [
        "Figure 18: CNN training throughput (img/s), 24 procs/node, "
        "Cluster C",
        "=" * 66,
    ]
    for model in results:
        lines += ["", f"{model}:",
                  f"{'nodes':>6}{'Open MPI':>12}{'YHCCL':>12}{'speedup':>10}"]
        for n in NODES:
            y = results[model]["YHCCL"][n].images_per_second
            o = results[model]["Open MPI"][n].images_per_second
            lines.append(f"{n:>6}{o:>12.1f}{y:>12.1f}{y / o:>10.2f}")
    lines += [
        "",
        "paper: 1.94x (ResNet-50) and 1.80x (VGG-16) at 256 nodes;",
        "artifact: 1.62x single-node (ResNet-50, 24 ranks)",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig18_cnn.txt").write_text(text + "\n")
    print("\n" + text)
    for model in results:
        for n in NODES:
            y = results[model]["YHCCL"][n].images_per_second
            o = results[model]["Open MPI"][n].images_per_second
            assert 1.2 < y / o < 2.6, (model, n, y / o)
        # near-linear scaling for YHCCL (log-log straight line)
        y1 = results[model]["YHCCL"][1].images_per_second
        y256 = results[model]["YHCCL"][256].images_per_second
        assert 128 < y256 / y1 <= 280, model
