"""Figure 3: reduction copy-out overhead vs slice size (NodeA, 64 cores).

Each rank copies a large shared-memory buffer to its private buffer
with ``memmove`` at varying slice sizes.  Two C-library profiles stand
in for the paper's icpc/gcc comparison (both exhibit the same cliff,
at slightly different thresholds).

Paper shape: overhead is flat-high for slices below 2 MB (memmove stays
temporal: RFO + write-back), then collapses once memmove engages NT
stores; paper magnitudes are ~165,000 us dropping to ~45,000 us.
The paper's 256 MB source happens to exactly match NodeA's nominal L3;
its measured 3.7x cliff implies the reads were effectively
cache-resident, so the reproduction sizes the source to the simulated
node's *usable* (de-rated) capacity — the mechanism, a pure store-path
cliff, is identical.
"""

import pytest

from repro.bench import Benchmark
from repro.copyengine.stream import SlicedCopyBenchmark
from repro.machine.spec import GB, KB, MB, NODE_A

from harness import RESULTS_DIR, fmt_size

BENCH = Benchmark(name="fig03_copyout", custom="run_figure")

SLICES = [256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB]
PROFILES = {
    "mpiicpc (icpc-like)": 2 * MB,
    "mpicxx (gcc-like)": int(1.75 * MB),
}


def run_figure():
    bench = SlicedCopyBenchmark(NODE_A, nranks=64, total_bytes=16 * GB)
    rows = {}
    for profile, threshold in PROFILES.items():
        rows[profile] = {
            s: bench.copy_out_overhead(160 * MB, s, nt_threshold=threshold)
            for s in SLICES
        }
    return rows


def test_fig03(benchmark):
    rows = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    lines = [
        "Figure 3: copy-out overhead for reduction (NodeA, 64 cores, "
        "160 MB cache-resident source)",
        "===========================================================",
        "",
        f"{'Slice':>8} " + "".join(f"{p:>24}" for p in rows),
        "",
    ]
    for s in SLICES:
        lines.insert(-1, f"{fmt_size(s):>8} " + "".join(
            f"{rows[p][s].time_us:>22.0f}us" for p in rows
        ))
    lines.append("paper: ~165,000-180,000us below 2MB slices, "
                 "~40,000-50,000us at 2MB+ (both compilers)")
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig03_copyout.txt").write_text(text + "\n")
    print("\n" + text)
    # the cliff: sub-threshold slices are substantially slower
    for profile, threshold in PROFILES.items():
        below = rows[profile][256 * KB].time
        above = rows[profile][4 * MB].time
        assert below > 1.5 * above, profile
        # flat on both sides of the cliff
        assert rows[profile][256 * KB].time == pytest.approx(
            rows[profile][512 * KB].time, rel=0.1
        )
