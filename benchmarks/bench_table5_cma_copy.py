"""Table 5: CMA (DMA) copy vs adaptive-copy, 32 MB per message.

Two patterns on NodeA (64 ranks):
* one-to-all — every rank copies from rank 0's buffer (CMA serializes
  on the source page locks);
* ring — rank i copies from rank (i+1) % p (no contention).

Paper values (seconds): one-to-all 0.061 vs 0.014 (4.35x); ring
0.027 vs 0.017 (1.58x) — CMA loses because ``process_vm_readv`` copies
page-by-page with temporal stores only.
"""

from repro.copyengine.adaptive import AdaptiveCopy
from repro.copyengine.primitives import kernel_copy
from repro.machine.spec import MB, NODE_A
from repro.sim.engine import Engine

from repro.bench import Benchmark

from harness import RESULTS_DIR

BENCH = Benchmark(name="table5_cma_copy", custom="run_table")

S = 32 * MB
P = 64
PAPER = {
    ("one-to-all", "DMA copy"): 0.061,
    ("one-to-all", "adaptive-copy"): 0.014,
    ("ring", "DMA copy"): 0.027,
    ("ring", "adaptive-copy"): 0.017,
}


def _run(pattern: str, method: str) -> float:
    eng = Engine(P, machine=NODE_A, functional=False)
    # sending buffers in shared memory (MPI_Win_allocate_shared),
    # receiving buffers private — the paper's setup
    srcs = [eng.alloc_shared(S, name=f"winsrc[{r}]") for r in range(P)]
    dsts = [eng.alloc(r, S, name=f"dst[{r}]") for r in range(P)]
    ac = AdaptiveCopy(machine=NODE_A, nranks=P, work_set=2 * S * P)

    def program(ctx):
        r = ctx.rank
        src = srcs[0] if pattern == "one-to-all" else srcs[(r + 1) % P]
        chunk = 2 * MB
        for off in range(0, S, chunk):
            dst = dsts[r].view(off, chunk)
            sv = src.view(off, chunk)
            if method == "DMA copy":
                kernel_copy(
                    ctx, dst, sv,
                    contention=P - 1 if pattern == "one-to-all" else 2,
                )
            else:
                ac(ctx, dst, sv, t_flag=True)

    res = eng.run(program)
    return res.time


def run_table():
    return {
        (pattern, method): _run(pattern, method)
        for pattern in ("one-to-all", "ring")
        for method in ("DMA copy", "adaptive-copy")
    }


def test_table5(benchmark):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)
    lines = [
        "Table 5: CMA copy vs adaptive-copy, 32 MB (seconds)",
        "===================================================",
        "",
        f"{'pattern':<14}{'DMA copy (sim/paper)':>24}"
        f"{'adaptive (sim/paper)':>24}{'speedup (sim/paper)':>22}",
    ]
    for pattern in ("one-to-all", "ring"):
        dma = rows[(pattern, "DMA copy")]
        ada = rows[(pattern, "adaptive-copy")]
        pd = PAPER[(pattern, "DMA copy")]
        pa = PAPER[(pattern, "adaptive-copy")]
        lines.append(
            f"{pattern:<14}{dma:>12.3f} /{pd:>9.3f}"
            f"{ada:>13.3f} /{pa:>9.3f}"
            f"{dma / ada:>11.2f} /{pd / pa:>8.2f}"
        )
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table5_cma_copy.txt").write_text(text + "\n")
    print("\n" + text)
    # shape: adaptive wins both patterns; one-to-all contention makes
    # the DMA gap much larger there
    one = rows[("one-to-all", "DMA copy")] / rows[("one-to-all", "adaptive-copy")]
    ring = rows[("ring", "DMA copy")] / rows[("ring", "adaptive-copy")]
    assert one > 2.0
    assert 1.15 < ring < 3.0
    assert one > ring
