"""Ablation: process-core binding (the artifact's step S8).

The artifact instructs "check lscpu, and make sure the process-core
binding is in the right order" — compact binding keeps MA's neighbour
chain intra-socket.  This bench quantifies the damage of scatter
(round-robin) binding: the plain MA chain crosses the socket boundary
at every step; the socket-aware design regroups by *actual* socket and
is largely immune.
"""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE
from repro.collectives.socket_aware import SOCKET_MA_ALLREDUCE
from repro.machine.spec import KB, MB, NODE_A
from repro.sim.engine import Engine

from repro.bench import Benchmark

from harness import RESULTS_DIR, fmt_size

BENCH = Benchmark(name="ablation_binding", custom="run_ablation")

SIZES = [64 * KB, 1 * MB, 16 * MB]
BINDINGS = ["compact", "scatter"]


def run_ablation():
    out = {}
    for binding in BINDINGS:
        machine = NODE_A.with_(binding=binding)
        out[binding] = {}
        for s in SIZES:
            row = {}
            for name, alg in (("MA", MA_ALLREDUCE),
                              ("socket-MA", SOCKET_MA_ALLREDUCE)):
                eng = Engine(64, machine=machine, functional=False)
                row[name] = run_reduce_collective(
                    alg, eng, s, copy_policy="adaptive", imax=256 * KB,
                    iterations=2,
                ).time
            out[binding][s] = row
    return out


def test_ablation_binding(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = [
        "Ablation: process-core binding (NodeA, p=64 allreduce)",
        "=" * 54,
        "",
        f"{'size':>8}{'MA compact':>13}{'MA scatter':>13}"
        f"{'sMA compact':>13}{'sMA scatter':>13}",
    ]
    for s in SIZES:
        lines.append(
            f"{fmt_size(s):>8}"
            f"{rows['compact'][s]['MA'] * 1e6:>11.1f}us"
            f"{rows['scatter'][s]['MA'] * 1e6:>11.1f}us"
            f"{rows['compact'][s]['socket-MA'] * 1e6:>11.1f}us"
            f"{rows['scatter'][s]['socket-MA'] * 1e6:>11.1f}us"
        )
    lines += [
        "",
        "scatter binding turns MA's neighbour flags into cross-socket",
        "synchronizations; the socket-aware design regroups by the real",
        "socket map and stays close to its compact-binding time",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_binding.txt").write_text(text + "\n")
    print("\n" + text)
    # MA must degrade under scatter at the sync-bound size ...
    small = SIZES[0]
    assert rows["scatter"][small]["MA"] > 1.15 * rows["compact"][small]["MA"]
    # ... while socket-aware stays within a modest factor
    assert (rows["scatter"][small]["socket-MA"]
            < 1.5 * rows["compact"][small]["socket-MA"])
