"""Table 1: data access volume of reduce-scatter algorithms.

Prints the paper's closed forms next to the byte counts measured by the
event simulator for every implemented algorithm, at NodeA scale
(p=64, s=1 MB — DAV formulas are exact in s, so one size suffices;
the unit tests additionally verify exactness at other sizes).
"""

from repro.collectives.dpml import DPML_REDUCE_SCATTER
from repro.collectives.ma import MA_REDUCE_SCATTER
from repro.collectives.rabenseifner import RABENSEIFNER_REDUCE_SCATTER
from repro.collectives.ring import RING_REDUCE_SCATTER
from repro.collectives.socket_aware import SOCKET_MA_REDUCE_SCATTER
from repro.collectives.common import run_reduce_collective
from repro.library.communicator import Communicator
from repro.machine.spec import MB, NODE_A
from repro.models.dav import dav_reduce_scatter

from repro.bench import Benchmark

from harness import RESULTS_DIR

BENCH = Benchmark(name="table1_dav_reduce_scatter", custom="run_table")

S = 1 * MB
P = 64
ROWS = [
    ("Ring [45]", "ring", RING_REDUCE_SCATTER, "5*s*(p-1)"),
    ("Rabenseifner [50]", "rabenseifner", RABENSEIFNER_REDUCE_SCATTER,
     "5*s*p*(1/2+...+1/p)"),
    ("DPML [13]", "dpml", DPML_REDUCE_SCATTER, "s*(5p-1)"),
    ("YHCCL MA (proposed)", "ma", MA_REDUCE_SCATTER, "s*(3p-1)"),
    ("YHCCL socket-aware MA", "socket-ma", SOCKET_MA_REDUCE_SCATTER,
     "s*(3p+2m-3)"),
]


def run_table():
    out = []
    for label, key, alg, formula in ROWS:
        comm = Communicator(P, machine=NODE_A, functional=False)
        res = run_reduce_collective(alg, comm.engine, S, imax=256 * 1024)
        paper = dav_reduce_scatter(key, S, P, m=2, paper=True)
        impl = dav_reduce_scatter(key, S, P, m=2, paper=False)
        out.append((label, formula, paper, impl, res.dav))
    return out


def test_table1(benchmark):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)
    lines = [
        f"Table 1: DAV of reduce-scatter algorithms (p={P}, s={S >> 20} MB)",
        "=" * 62,
        "",
        f"{'algorithm':<24}{'paper formula':<22}{'paper/s':>9}"
        f"{'impl/s':>9}{'simulated/s':>13}",
    ]
    for label, formula, paper, impl, sim in rows:
        lines.append(
            f"{label:<24}{formula:<22}{paper / S:>9.2f}{impl / S:>9.2f}"
            f"{sim / S:>13.2f}"
        )
    lines += [
        "",
        "note: 'impl' re-derives the paper's Section 3 accounting for "
        "what the implementation moves; simulated counts match it "
        "byte-exactly (documented O(s) gaps vs printed table rows in "
        "models/dav.py).",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table1_dav_reduce_scatter.txt").write_text(text + "\n")
    print("\n" + text)
    for label, formula, paper, impl, sim in rows:
        assert sim == impl, label
        assert abs(paper - impl) <= 4 * S, label
