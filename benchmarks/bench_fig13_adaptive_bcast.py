"""Figure 13: adaptive NT stores in the pipelined broadcast.

YHCCL (adaptive) vs t-copy / nt-copy / memmove with Imax = 1 MB.
Paper shape: nt-copy useless on small messages, t-copy harmful on
large; YHCCL matches the winner everywhere; ~29% peak gain vs memmove
(artifact, 4 MB on NodeA).
"""

import pytest

from repro.bench import Benchmark, SweepSpec, bcast_spec
from repro.bench.executor import run_sweep_table
from repro.machine.spec import KB, MB
from repro.models.nt_model import nt_switch_message_size

from harness import NODE_CONFIGS, SIZES_LARGE

IMAX = 1 * MB
SIZES = [16 * KB, 32 * KB] + SIZES_LARGE


def _sweep(node: str) -> SweepSpec:
    _, p = NODE_CONFIGS[node]
    return SweepSpec(
        name=f"fig13_adaptive_bcast_{node}",
        title=f"Figure 13{'a' if node == 'NodeA' else 'b'}: adaptive "
              f"broadcast ({node}, p={p}, Imax=1MB)",
        machine=node,
        p=p,
        sizes=tuple(SIZES),
        impls=tuple(
            (label, bcast_spec("pipelined", policy, imax=IMAX))
            for label, policy in (
                ("YHCCL", "adaptive"), ("t-copy", "t"),
                ("nt-copy", "nt"), ("Memmove", "memmove"),
            )
        ),
        baseline="YHCCL",
    )


BENCH = Benchmark(
    name="fig13_adaptive_bcast",
    sweeps=tuple(_sweep(node) for node in NODE_CONFIGS),
)


def run_figure(node: str):
    return run_sweep_table(BENCH.sweep(f"fig13_adaptive_bcast_{node}"))


@pytest.mark.parametrize("node", ["NodeA", "NodeB"])
def test_fig13(benchmark, node):
    machine, p = NODE_CONFIGS[node]
    table = benchmark.pedantic(run_figure, args=(node,), rounds=1,
                               iterations=1)
    switch = nt_switch_message_size("bcast", machine, p, imax=IMAX)
    table.note(f"predicted NT switch point: {switch / MB:.1f} MB")
    table.emit(f"fig13_adaptive_bcast_{node}.txt")
    large = [s for s in SIZES if s > 2 * switch]
    small = [s for s in SIZES if s < switch]
    table.assert_wins("YHCCL", "t-copy", at_least=large)
    table.assert_wins("YHCCL", "Memmove", at_least=large)
    for s in small:
        # no loss where NT would hurt
        assert table.time("YHCCL", s) <= table.time("nt-copy", s) * 1.001
