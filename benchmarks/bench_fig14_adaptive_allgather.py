"""Figure 14: adaptive NT stores in the pipelined all-gather.

8 KB – 8 MB per-rank contributions (aggregate is p times larger), so
the p^2-sized receive working set pushes the NT switch to tiny message
sizes.  Paper shape: YHCCL >= max(t-copy, nt-copy) everywhere, clear
win over memmove on large messages.
"""

import pytest

from repro.bench import Benchmark, SweepSpec, allgather_spec
from repro.bench.executor import run_sweep_table
from repro.machine.spec import KB, MB
from repro.models.nt_model import nt_switch_message_size

from harness import NODE_CONFIGS, SIZES_ALLGATHER, fmt_size

IMAX = 1 * MB


def _sweep(node: str) -> SweepSpec:
    _, p = NODE_CONFIGS[node]
    return SweepSpec(
        name=f"fig14_adaptive_allgather_{node}",
        title=f"Figure 14{'a' if node == 'NodeA' else 'b'}: adaptive "
              f"all-gather ({node}, p={p}, Imax=1MB)",
        machine=node,
        p=p,
        sizes=tuple(SIZES_ALLGATHER),
        impls=tuple(
            (label, allgather_spec("pipelined", policy, imax=IMAX))
            for label, policy in (
                ("YHCCL", "adaptive"), ("t-copy", "t"),
                ("nt-copy", "nt"), ("Memmove", "memmove"),
            )
        ),
        baseline="YHCCL",
    )


BENCH = Benchmark(
    name="fig14_adaptive_allgather",
    sweeps=tuple(_sweep(node) for node in NODE_CONFIGS),
)


def run_figure(node: str):
    return run_sweep_table(BENCH.sweep(f"fig14_adaptive_allgather_{node}"))


@pytest.mark.parametrize("node", ["NodeA", "NodeB"])
def test_fig14(benchmark, node):
    machine, p = NODE_CONFIGS[node]
    table = benchmark.pedantic(run_figure, args=(node,), rounds=1,
                               iterations=1)
    switch = nt_switch_message_size("allgather", machine, p, imax=IMAX)
    table.note(f"predicted NT switch point: {switch / KB:.0f} KB per rank")
    table.emit(f"fig14_adaptive_allgather_{node}.txt")
    large = [s for s in SIZES_ALLGATHER if s >= 1 * MB]
    table.assert_wins("YHCCL", "t-copy", at_least=large)
    table.assert_wins("YHCCL", "Memmove", at_least=large)
    # the Section 4.2 capacity model uses a single socket's C; sizes
    # whose working set lands between C and the node's total cache are
    # a documented gray zone where the heuristic may flip early
    from repro.models.nt_model import work_set_size
    from repro.machine.spec import available_cache_capacity

    c = available_cache_capacity(machine, p)
    for s in SIZES_ALLGATHER:
        w = work_set_size("allgather", s, p, imax=IMAX)
        if c < w < machine.sockets * 1.2 * c:
            continue  # heuristic gray zone
        best = min(table.time(i, s) for i in ("t-copy", "nt-copy"))
        assert table.time("YHCCL", s) <= best * 1.05, fmt_size(s)
