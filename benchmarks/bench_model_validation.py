"""Model validation: the algebraic timing model vs the event simulator.

`repro.models.timing.predict_time` estimates completion time from the
DAV closed forms, a store-path traffic multiplier and a sync-step
count — no event simulation, no cache state.  This bench quantifies how
far that first-order estimate lands from the simulator across
algorithms and sizes: a coarse-model sanity report in the spirit of the
paper's own analytical tables.
"""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE
from repro.collectives.ring import RING_ALLREDUCE
from repro.collectives.socket_aware import SOCKET_MA_ALLREDUCE
from repro.machine.spec import KB, MB, NODE_A
from repro.models.timing import predict_time
from repro.sim.engine import Engine

from repro.bench import Benchmark

from harness import RESULTS_DIR, fmt_size

BENCH = Benchmark(name="model_validation", custom="run_validation")

SIZES = [256 * KB, 2 * MB, 16 * MB, 64 * MB]
CASES = [
    ("ma", MA_ALLREDUCE, True),
    ("socket-ma", SOCKET_MA_ALLREDUCE, True),
    ("ring", RING_ALLREDUCE, False),
]


def run_validation():
    out = {}
    for name, alg, nt in CASES:
        out[name] = {}
        for s in SIZES:
            eng = Engine(64, machine=NODE_A, functional=False)
            sim = run_reduce_collective(
                alg, eng, s,
                copy_policy="adaptive" if nt else "memmove",
                imax=256 * KB, iterations=2,
            ).time
            model = predict_time("allreduce", name, s, 64, NODE_A,
                                 imax=256 * KB, nt_stores=nt)
            out[name][s] = (sim, model)
    return out


def test_model_validation(benchmark):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    lines = [
        "Model validation: algebraic estimate vs event simulator "
        "(NodeA allreduce, p=64)",
        "=" * 72,
        "",
        f"{'algorithm':<12}{'size':>8}{'simulated':>13}{'model':>13}"
        f"{'model/sim':>11}",
    ]
    for name, _, _ in CASES:
        for s in SIZES:
            sim, model = rows[name][s]
            lines.append(
                f"{name:<12}{fmt_size(s):>8}{sim * 1e6:>11.1f}us"
                f"{model * 1e6:>11.1f}us{model / sim:>11.2f}"
            )
    lines += [
        "",
        "the first-order model carries the DAV ordering but no cache",
        "state; agreement within ~4x on bandwidth-bound sizes is its",
        "design target (see repro/models/timing.py)",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "model_validation.txt").write_text(text + "\n")
    print("\n" + text)
    for name, _, _ in CASES:
        for s in SIZES:
            sim, model = rows[name][s]
            ratio = model / sim
            assert 0.2 < ratio < 5.0, (name, fmt_size(s), ratio)
    # the model must preserve the headline ordering at large sizes
    s = 64 * MB
    assert rows["ma"][s][1] < rows["ring"][s][1]
