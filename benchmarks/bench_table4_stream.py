"""Table 4: sliced-copy memory bandwidth on NodeA (16 GB array).

memmove / t-copy / nt-copy at 512 KB, 1 MB and 2 MB slices.
Paper values (MB/s): memmove 147361/149686/232061, t-copy
151731/152559/158386, nt-copy 236571/239518/237663 — the shape is
nt ~1.5x t, with memmove jumping to the NT path at the 2 MB slice.
"""

from repro.bench import Benchmark
from repro.copyengine.stream import SlicedCopyBenchmark
from repro.machine.spec import GB, KB, MB, NODE_A

from harness import RESULTS_DIR, fmt_size

BENCH = Benchmark(name="table4_stream", custom="run_table")

SLICES = [512 * KB, 1 * MB, 2 * MB]
PAPER = {
    "memmove": {512 * KB: 147361.4, 1 * MB: 149686.3, 2 * MB: 232060.8},
    "t-copy": {512 * KB: 151731.1, 1 * MB: 152558.9, 2 * MB: 158386.0},
    "nt-copy": {512 * KB: 236571.3, 1 * MB: 239518.3, 2 * MB: 237662.7},
}
POLICY = {"memmove": "memmove", "t-copy": "t", "nt-copy": "nt"}


def run_table():
    bench = SlicedCopyBenchmark(NODE_A, nranks=64, total_bytes=16 * GB)
    return {
        name: {s: bench.run_policy(kind, s) for s in SLICES}
        for name, kind in POLICY.items()
    }


def test_table4(benchmark):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)
    lines = [
        "Table 4: sliced-copy bandwidth, 16 GB array on NodeA (MB/s)",
        "===========================================================",
        "",
        f"{'slice':>8}" + "".join(
            f"{name + ' (sim/paper)':>28}" for name in rows
        ),
    ]
    for s in SLICES:
        row = f"{fmt_size(s):>8}"
        for name in rows:
            sim = rows[name][s].bandwidth / 1e6
            row += f"{sim:>15.0f} /{PAPER[name][s]:>10.0f}"
        lines.append(row)
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table4_stream.txt").write_text(text + "\n")
    print("\n" + text)
    # shape: nt ~1.5x t at every slice; memmove switches at 2MB
    for s in SLICES:
        ratio = rows["nt-copy"][s].bandwidth / rows["t-copy"][s].bandwidth
        assert 1.3 < ratio < 1.7
    assert rows["memmove"][512 * KB].bandwidth < rows["nt-copy"][512 * KB].bandwidth * 0.75
    assert rows["memmove"][2 * MB].bandwidth > rows["t-copy"][2 * MB].bandwidth * 1.3
