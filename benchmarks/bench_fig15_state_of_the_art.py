"""Figure 15: YHCCL vs state-of-the-art MPI implementations (NodeA, p=64).

Five collectives against the vendor models (Intel MPI, MVAPICH2, MPICH,
Open MPI/CMA, Hashmi's XPMEM) plus the per-collective research baselines
(DPML for reduce-scatter/all-reduce, RG for reduce).

Paper shapes:
* average speedups over the baselines: reduce-scatter 1.9-5.0x,
  reduce 2.0-6.4x, all-reduce 1.4-5.2x, bcast 1.4-4.5x, all-gather
  1.2-2.2x over various message sizes;
* XPMEM's direct-access bcast/all-gather overtake YHCCL once the
  per-chunk size ``s/p`` crosses memmove's 2 MB NT threshold
  (128 MB messages on p=64).
"""

import pytest

from repro.bench import (
    Benchmark,
    SweepSpec,
    reduce_spec,
    vendor_spec,
    yhccl_spec,
)
from repro.bench.executor import run_sweep_table
from repro.machine.spec import KB, MB

from harness import NODE_CONFIGS, SIZES_WIDE, SIZES_ALLGATHER

VENDORS = ["Intel MPI", "MVAPICH2", "MPICH", "Open MPI", "XPMEM"]
KINDS = ["reduce_scatter", "reduce", "allreduce", "bcast", "allgather"]


def _impls(kind: str) -> tuple:
    impls = [("YHCCL", yhccl_spec(kind))]
    if kind in ("reduce_scatter", "allreduce"):
        impls.append(("DPML", reduce_spec("dpml", kind)))
    if kind in ("reduce", "allreduce"):
        impls.append(
            ("RG", reduce_spec("rg", kind, branch=2, slice_size=128 * KB))
        )
    impls.extend((v, vendor_spec(v, kind)) for v in VENDORS)
    return tuple(impls)


def _sweep(kind: str) -> SweepSpec:
    _, p = NODE_CONFIGS["NodeA"]
    sizes = SIZES_ALLGATHER if kind == "allgather" else SIZES_WIDE
    return SweepSpec(
        name=f"fig15_{kind}",
        title=f"Figure 15 ({kind}): YHCCL vs state-of-the-art "
              f"(NodeA, p={p})",
        machine="NodeA",
        p=p,
        sizes=tuple(sizes),
        impls=_impls(kind),
        baseline="YHCCL",
    )


BENCH = Benchmark(
    name="fig15_state_of_the_art",
    sweeps=tuple(_sweep(kind) for kind in KINDS),
)


def run_subfigure(kind: str):
    return run_sweep_table(BENCH.sweep(f"fig15_{kind}"))


@pytest.mark.parametrize("kind", KINDS)
def test_fig15(benchmark, kind):
    table = benchmark.pedantic(run_subfigure, args=(kind,), rounds=1,
                               iterations=1)
    sizes = table.sizes
    large = [s for s in sizes if s >= 8 * MB]
    others = [i for i in table.impls() if i != "YHCCL"]
    for other in others:
        gm = table.geomean_speedup("YHCCL", other, large)
        table.note(f"geomean speedup vs {other} (>=8MB): {gm:.2f}x")
    if kind in ("bcast", "allgather") and 256 * MB in sizes:
        xp256 = table.time("XPMEM", 256 * MB)
        y256 = table.time("YHCCL", 256 * MB)
        table.note(
            f"XPMEM at 256MB: {xp256 * 1e6:.0f}us vs YHCCL "
            f"{y256 * 1e6:.0f}us — the paper's >=128MB crossover"
            if xp256 < y256 else
            f"XPMEM at 256MB did not overtake ({xp256 * 1e6:.0f}us vs "
            f"{y256 * 1e6:.0f}us)"
        )
    table.emit(f"fig15_{kind}.txt")
    # who-wins contract: YHCCL leads every vendor at large messages
    # (except XPMEM's documented bcast/allgather takeover past 128MB)
    for other in others:
        check = large
        if other == "XPMEM" and kind in ("bcast", "allgather"):
            check = [s for s in large if s < 128 * MB]
        table.assert_wins("YHCCL", other, at_least=check)
