"""Ablation: region-LRU cache model vs line-granular set-associative.

The timing layer uses a region-granular LRU (fast); a classic
set-associative line simulator validates it.  This bench streams the
MA all-reduce access pattern through both and reports the traffic
disagreement — the region model's approximation error.
"""

import pytest

from repro.machine.cache import AccessResult, RegionCache, SetAssociativeCache
from repro.machine.interval_cache import IntervalCache

from repro.bench import Benchmark

from harness import RESULTS_DIR

BENCH = Benchmark(name="ablation_cache_model", custom="run_ablation")

KB = 1024


def _drive(model, pattern):
    total = AccessResult()
    for kind, buf, off, n in pattern:
        total += getattr(model, kind)(buf, off, n)
    return total


def _ma_like_pattern(p=8, i_size=2 * KB, rounds=16):
    """The windowed MA pipeline's access stream, at cache-line scale."""
    pattern = []
    shm = 1000
    for t in range(rounds):
        for i in range(p):
            slot = i * i_size
            # copy-in: load send slice, store slot
            pattern.append(("load", 1 + i, t * i_size, i_size))
            pattern.append(("store", shm, slot, i_size))
            for j in range(1, p):
                pattern.append(("load", 1 + ((i + j) % p), t * i_size, i_size))
                pattern.append(("load", shm, slot, i_size))
                pattern.append(("store", shm, slot, i_size))
            # copy-out, non-temporal
            pattern.append(("load", shm, slot, i_size))
            pattern.append(("store_nt", 100 + i, t * i_size, i_size))
    return pattern


def run_ablation():
    cap = 64 * KB
    pattern = _ma_like_pattern()
    region = _drive(RegionCache(cap), pattern)
    interval = _drive(IntervalCache(cap), pattern)
    lines = _drive(
        SetAssociativeCache(size=cap, line_size=64, associativity=16), pattern
    )
    return region, interval, lines


def test_ablation_cache_model(benchmark):
    region, interval, lines = benchmark.pedantic(run_ablation, rounds=1,
                                                 iterations=1)
    rows = [
        ("hit bytes", region.hit, interval.hit, lines.hit),
        ("miss bytes", region.miss, interval.miss, lines.miss),
        ("RFO bytes", region.rfo, interval.rfo, lines.rfo),
        ("write-back bytes", region.writeback, interval.writeback,
         lines.writeback),
    ]
    out = [
        "Ablation: region-LRU vs interval-exact vs set-associative",
        "==========================================================",
        "",
        f"{'metric':<18}{'region-LRU':>12}{'interval':>12}"
        f"{'set-assoc':>12}",
    ]
    for name, a, b, c in rows:
        out.append(f"{name:<18}{a:>12}{b:>12}{c:>12}")
    text = "\n".join(out)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_cache_model.txt").write_text(text + "\n")
    print("\n" + text)
    # all three agree on the first-order traffic (within 20%)
    for model in (region, interval):
        assert model.miss == pytest.approx(lines.miss, rel=0.2)
        assert model.rfo == pytest.approx(lines.rfo, rel=0.2)
        assert model.hit == pytest.approx(lines.hit, rel=0.2)
