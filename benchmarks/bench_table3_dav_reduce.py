"""Table 3: data access volume of rooted reduce algorithms.

Paper closed forms vs simulator-measured byte counts (p=64).
"""

from repro.collectives.dpml import DPML_REDUCE
from repro.collectives.ma import MA_REDUCE
from repro.collectives.rg import RGReduce
from repro.collectives.socket_aware import SOCKET_MA_REDUCE
from repro.collectives.common import run_reduce_collective
from repro.library.communicator import Communicator
from repro.machine.spec import KB, MB, NODE_A
from repro.models.dav import dav_reduce

from repro.bench import Benchmark

from harness import RESULTS_DIR

BENCH = Benchmark(name="table3_dav_reduce", custom="run_table")

S = 1 * MB
P = 64
K = 2
ROWS = [
    ("DPML [13]", "dpml", DPML_REDUCE, "s*(5p+1)"),
    ("RG [34] (k=2)", "rg", RGReduce(branch=K, slice_size=128 * KB),
     "s*p*(5k/(k+1)+...)"),
    ("YHCCL MA", "ma", MA_REDUCE, "s*(3p+1)"),
    ("YHCCL socket-aware MA", "socket-ma", SOCKET_MA_REDUCE,
     "s*(3p+2m-1)"),
]


def run_table():
    out = []
    for label, key, alg, formula in ROWS:
        comm = Communicator(P, machine=NODE_A, functional=False)
        res = run_reduce_collective(alg, comm.engine, S, imax=256 * KB)
        paper = dav_reduce(key, S, P, m=2, k=K, paper=True)
        impl = dav_reduce(key, S, P, m=2, k=K, paper=False)
        out.append((label, formula, paper, impl, res.dav))
    return out


def test_table3(benchmark):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)
    lines = [
        f"Table 3: DAV of reduce algorithms (p={P}, s={S >> 20} MB)",
        "=" * 56,
        "",
        f"{'algorithm':<24}{'paper formula':<22}{'paper/s':>9}"
        f"{'impl/s':>9}{'simulated/s':>13}",
    ]
    for label, formula, paper, impl, sim in rows:
        lines.append(
            f"{label:<24}{formula:<22}{paper / S:>9.2f}{impl / S:>9.2f}"
            f"{sim / S:>13.2f}"
        )
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table3_dav_reduce.txt").write_text(text + "\n")
    print("\n" + text)
    for label, formula, paper, impl, sim in rows:
        assert sim == impl, label
        assert abs(paper - impl) <= 4 * S, label
    # YHCCL MA smallest when m << p and p >= 4
    ma = next(r for r in rows if r[0] == "YHCCL MA")[4]
    assert all(ma <= r[4] for r in rows)
