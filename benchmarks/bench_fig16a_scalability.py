"""Figure 16a: single-node all-reduce scalability (NodeA, p = 2..64).

Message size fixed at 64 MB (the paper plots a large message; its
maximum speedups: 2.5x DPML, 2.6x RG, 2.8x Intel MPI, 2.8x MVAPICH2,
10.1x MPICH, 4.5x Open MPI, 1.5x XPMEM).  Key mechanisms: YHCCL
overtakes everything from ~8 ranks; XPMEM (DAV ``5s(p-1)`` vs MA's
``s(5p-1)``) is relatively stronger at *small* p where the 4s gap
matters — the paper observes it winning at p=2 and 4.
"""

from repro.bench import Benchmark, SweepSpec, vendor_spec, yhccl_spec
from repro.bench.executor import run_sweep_table
from repro.machine.spec import MB

S = 64 * MB
RANKS = (2, 4, 8, 16, 32, 64)
IMPLS = ["YHCCL", "Intel MPI", "MVAPICH2", "MPICH", "Open MPI", "XPMEM"]

BENCH = Benchmark(
    name="fig16a_scalability",
    sweeps=(
        SweepSpec(
            name="fig16a_scalability",
            title=f"Figure 16a: single-node all-reduce scalability "
                  f"(NodeA, s={S >> 20}MB)",
            machine="NodeA",
            p=0,  # varies: the x-axis is the rank count
            sizes=RANKS,
            impls=tuple(
                (impl,
                 yhccl_spec("allreduce") if impl == "YHCCL"
                 else vendor_spec(impl, "allreduce"))
                for impl in IMPLS
            ),
            baseline="YHCCL",
            axis="ranks",
            fixed_size=S,
        ),
    ),
)


def run_figure():
    return run_sweep_table(BENCH.sweep("fig16a_scalability"))


def test_fig16a(benchmark):
    table = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    # note: "sizes" column is the rank count here
    table.note("x-axis is the rank count p (not message size)")
    for impl in IMPLS[1:]:
        sp = table.time(impl, 64) / table.time("YHCCL", 64)
        table.note(f"speedup vs {impl} at p=64: {sp:.2f}x "
                   f"(paper max: DPML 2.5, RG 2.6, Intel 2.8, MVAPICH2 "
                   f"2.8, MPICH 10.1, OMPI 4.5, XPMEM 1.5)")
    table.emit("fig16a_scalability.txt")
    # YHCCL leads everyone at p >= 8 ...
    for impl in IMPLS[1:]:
        for p in (16, 32, 64):
            assert table.time("YHCCL", p) < table.time(impl, p), (impl, p)
    # ... but XPMEM's lower DAV wins at p = 2 (the paper's observation)
    assert table.time("XPMEM", 2) < table.time("YHCCL", 2)
