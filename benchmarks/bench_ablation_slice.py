"""Ablation: the MA slice-size cap (Imax).

Section 5.1 tunes ``Imax`` per platform (256 KB NodeA / 128 KB NodeB) so
the ``p * I`` shared window stays cache-resident while per-slice
overheads stay amortized.  Sweeping Imax exposes both failure modes:
tiny slices drown in sync/op overhead, huge slices blow the window out
of cache (and at the extreme degenerate to a single non-pipelined
round).
"""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE
from repro.machine.spec import KB, MB, NODE_A
from repro.sim.engine import Engine

from repro.bench import Benchmark

from harness import RESULTS_DIR, fmt_size

BENCH = Benchmark(name="ablation_slice", custom="run_ablation")

IMAXES = [4 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB]
S = 256 * MB


def run_ablation():
    out = {}
    for imax in IMAXES:
        eng = Engine(64, machine=NODE_A, functional=False)
        out[imax] = run_reduce_collective(
            MA_ALLREDUCE, eng, S, copy_policy="adaptive", imax=imax,
            iterations=2,
        ).time
    return out


def test_ablation_slice(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    best = min(rows.values())
    lines = [
        f"Ablation: MA slice cap Imax (NodeA, p=64, s={S >> 20}MB allreduce)",
        "=" * 64,
        "",
        f"{'Imax':>8}{'time (us)':>14}{'vs best':>10}",
    ]
    for imax in IMAXES:
        lines.append(
            f"{fmt_size(imax):>8}{rows[imax] * 1e6:>14.1f}"
            f"{rows[imax] / best:>10.2f}"
        )
    lines.append("")
    lines.append("paper tuning: Imax = 256KB on NodeA")
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_slice.txt").write_text(text + "\n")
    print("\n" + text)
    # the paper's choice must be near-optimal, and both extremes worse
    assert rows[256 * KB] <= best * 1.05
    assert rows[4 * KB] > rows[256 * KB]
    assert rows[4 * MB] > rows[256 * KB] * 1.1
