"""Figure 11: all-reduce algorithm comparison.

Socket-aware MA and MA vs DPML, RG, Ring, Rabenseifner.
Paper shape: MA designs significantly ahead on large messages; RG and
Rabenseifner (logarithmic steps) lead below ~128 KB.
"""

import pytest

from repro.bench import Benchmark, SweepSpec, reduce_spec
from repro.bench.executor import run_sweep_table
from repro.machine.spec import KB, MB

from harness import NODE_CONFIGS, SIZES_LARGE


def _sweep(node: str) -> SweepSpec:
    _, p = NODE_CONFIGS[node]
    return SweepSpec(
        name=f"fig11_allreduce_{node}",
        title=f"Figure 11{'a' if node == 'NodeA' else 'b'}: all-reduce "
              f"comparison ({node}, p={p})",
        machine=node,
        p=p,
        sizes=tuple(SIZES_LARGE),
        impls=(
            ("Socket-aware MA (ours)",
             reduce_spec("socket-ma", "allreduce", "adaptive")),
            ("MA (ours)", reduce_spec("ma", "allreduce", "adaptive")),
            ("DPML", reduce_spec("dpml", "allreduce")),
            ("RG", reduce_spec("rg", "allreduce", branch=2,
                               slice_size=128 * KB)),
            ("Ring", reduce_spec("ring", "allreduce")),
            ("Rabenseifner", reduce_spec("rabenseifner", "allreduce")),
        ),
        baseline="Socket-aware MA (ours)",
    )


BENCH = Benchmark(
    name="fig11_allreduce",
    sweeps=tuple(_sweep(node) for node in NODE_CONFIGS),
)


def run_figure(node: str):
    return run_sweep_table(BENCH.sweep(f"fig11_allreduce_{node}"))


@pytest.mark.parametrize("node", ["NodeA", "NodeB"])
def test_fig11(benchmark, node):
    table = benchmark.pedantic(run_figure, args=(node,), rounds=1,
                               iterations=1)
    table.note("paper NodeA absolute at 16MB: socket-MA 16.5ms; "
               "at 64KB: 112us")
    large = [s for s in SIZES_LARGE if s >= 2 * MB]
    gm = table.geomean_speedup("Socket-aware MA (ours)", "DPML", large)
    table.note(f"measured geomean speedup vs DPML (>=2MB): {gm:.2f}x")
    table.note(
        "model note: the simulated Ring/RG retain mid-size working sets "
        "in the idealized region cache, so the MA crossover vs Ring "
        "lands at ~8MB here (the deployed rings the paper measures pay "
        "pt2pt overheads our idealized ring does not; see EXPERIMENTS.md)"
    )
    table.emit(f"fig11_allreduce_{node}.txt")
    huge = [s for s in SIZES_LARGE if s >= 8 * MB]
    for base in ("DPML", "Rabenseifner"):
        table.assert_wins("Socket-aware MA (ours)", base, at_least=large)
    for base in ("Ring", "RG"):
        table.assert_wins("Socket-aware MA (ours)", base, at_least=huge)
