"""Figure 11: all-reduce algorithm comparison.

Socket-aware MA and MA vs DPML, RG, Ring, Rabenseifner.
Paper shape: MA designs significantly ahead on large messages; RG and
Rabenseifner (logarithmic steps) lead below ~128 KB.
"""

import pytest

from repro.collectives.dpml import DPML_ALLREDUCE
from repro.collectives.ma import MA_ALLREDUCE
from repro.collectives.rabenseifner import RABENSEIFNER_ALLREDUCE
from repro.collectives.rg import RGAllreduce
from repro.collectives.ring import RING_ALLREDUCE
from repro.collectives.socket_aware import SOCKET_MA_ALLREDUCE
from repro.machine.spec import KB, MB

from harness import NODE_CONFIGS, SIZES_LARGE, sweep
from runners import reduce_runner


def run_figure(node: str):
    machine, p = NODE_CONFIGS[node]
    runners = {
        "Socket-aware MA (ours)": reduce_runner(SOCKET_MA_ALLREDUCE,
                                                "adaptive"),
        "MA (ours)": reduce_runner(MA_ALLREDUCE, "adaptive"),
        "DPML": reduce_runner(DPML_ALLREDUCE),
        "RG": reduce_runner(RGAllreduce(branch=2, slice_size=128 * KB)),
        "Ring": reduce_runner(RING_ALLREDUCE),
        "Rabenseifner": reduce_runner(RABENSEIFNER_ALLREDUCE),
    }
    return sweep(
        f"Figure 11{'a' if node == 'NodeA' else 'b'}: all-reduce "
        f"comparison ({node}, p={p})",
        machine, p, SIZES_LARGE, runners,
        baseline="Socket-aware MA (ours)",
    )


@pytest.mark.parametrize("node", ["NodeA", "NodeB"])
def test_fig11(benchmark, node):
    table = benchmark.pedantic(run_figure, args=(node,), rounds=1,
                               iterations=1)
    table.note("paper NodeA absolute at 16MB: socket-MA 16.5ms; "
               "at 64KB: 112us")
    large = [s for s in SIZES_LARGE if s >= 2 * MB]
    gm = table.geomean_speedup("Socket-aware MA (ours)", "DPML", large)
    table.note(f"measured geomean speedup vs DPML (>=2MB): {gm:.2f}x")
    table.note(
        "model note: the simulated Ring/RG retain mid-size working sets "
        "in the idealized region cache, so the MA crossover vs Ring "
        "lands at ~8MB here (the deployed rings the paper measures pay "
        "pt2pt overheads our idealized ring does not; see EXPERIMENTS.md)"
    )
    table.emit(f"fig11_allreduce_{node}.txt")
    huge = [s for s in SIZES_LARGE if s >= 8 * MB]
    for base in ("DPML", "Rabenseifner"):
        table.assert_wins("Socket-aware MA (ours)", base, at_least=large)
    for base in ("Ring", "RG"):
        table.assert_wins("Socket-aware MA (ours)", base, at_least=huge)
