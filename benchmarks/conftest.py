"""Benchmark suite configuration.

Each benchmark reproduces one table or figure from the paper; run with

    pytest benchmarks/ --benchmark-only

Tables are printed and written to ``benchmarks/results/``.
"""

import sys
from pathlib import Path

# make `harness` importable when pytest's rootdir differs
sys.path.insert(0, str(Path(__file__).parent))
