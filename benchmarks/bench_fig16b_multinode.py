"""Figure 16b: multi-node all-reduce, 1024 processes (16 NodeA nodes).

YHCCL's hierarchical design (intra-node MA reduce-scatter, multi-lane
inter-node ring, intra-node all-gather) vs leader-based vendor
hierarchies.  Paper shape: 1.4-8.8x speedup on large messages; on small
messages the tree-based MVAPICH2 / OMPI-hcoll win (log-depth network
phase vs the ring's 2(N-1) steps).
"""

import pytest

from repro.library.multinode import MultiNodeAllreduce
from repro.machine.spec import KB, MB, NODE_A

from repro.bench import Benchmark

from harness import RESULTS_DIR, SIZES_WIDE, SweepTable, fresh_comm

BENCH = Benchmark(name="fig16b_multinode", custom="run_figure")

NNODES = 16
IMPLS = ["YHCCL", "Intel MPI", "MVAPICH2", "MPICH", "OMPI-hcoll"]
SIZES = SIZES_WIDE


def run_figure():
    table = SweepTable(
        title=f"Figure 16b: multi-node all-reduce "
        f"({NNODES} NodeA nodes, 1024 processes)",
        sizes=SIZES,
        baseline="YHCCL",
    )
    for impl in IMPLS:
        for s in SIZES:
            comm = fresh_comm(NODE_A, 64)
            mn = MultiNodeAllreduce(comm, NNODES, implementation=impl)
            table.add(impl, s, mn.allreduce(s).time)
    return table


def test_fig16b(benchmark):
    table = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    large = [s for s in SIZES if s >= 8 * MB]
    for impl in IMPLS[1:]:
        gm = table.geomean_speedup("YHCCL", impl, large)
        table.note(f"geomean speedup vs {impl} (>=8MB): {gm:.2f}x "
                   "(paper: 1.4-8.8x on large messages)")
    table.emit("fig16b_multinode.txt")
    for impl in IMPLS[1:]:
        table.assert_wins("YHCCL", impl, at_least=large)
    # trees win on small messages across many nodes
    assert table.time("OMPI-hcoll", 16 * KB) < table.time("YHCCL", 16 * KB)
