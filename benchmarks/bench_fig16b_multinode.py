"""Figure 16b: multi-node all-reduce, 1024 processes (16 NodeA nodes).

YHCCL's hierarchical design (intra-node MA reduce-scatter, multi-lane
inter-node ring, intra-node all-gather) vs leader-based vendor
hierarchies.  Paper shape: 1.4-8.8x speedup on large messages; on small
messages the tree-based MVAPICH2 / OMPI-hcoll win (log-depth network
phase vs the ring's 2(N-1) steps).

Declarative hierarchy-family sweep: every implementation is a composed
two-level hierarchy from :mod:`repro.library.hierarchy`; each cell's
``counters`` carries the ``repro-hier/1`` per-level breakdown, and the
cells parallelize, cache and replay under ``bench --compiled`` like any
other sweep (one leaf capture per size serves every node count).

Deltas vs the pre-hierarchy custom figure (see ``docs/multinode.md``):
bench cells run leaves at the suite's warm-up+measure discipline, the
allgather partition is ceil-divided, the hcoll tree-vs-ring probe no
longer double-counts traffic, and the pipelined path pays per-chunk
ring latency.
"""

from repro.bench import Benchmark, SweepSpec, hierarchy_spec
from repro.bench.executor import run_sweep_table
from repro.bench.sizes import SIZES_WIDE
from repro.machine.spec import KB, MB

NNODES = 16
IMPLS = ["YHCCL", "Intel MPI", "MVAPICH2", "MPICH", "OMPI-hcoll"]
SIZES = tuple(SIZES_WIDE)

BENCH = Benchmark(
    name="fig16b_multinode",
    sweeps=(
        SweepSpec(
            name="fig16b_multinode",
            title=f"Figure 16b: multi-node all-reduce "
                  f"({NNODES} NodeA nodes, 1024 processes)",
            machine="NodeA",
            p=64,
            sizes=SIZES,
            impls=tuple(
                (impl, hierarchy_spec(impl, nnodes=NNODES))
                for impl in IMPLS
            ),
            baseline="YHCCL",
        ),
    ),
)


def run_figure():
    return run_sweep_table(BENCH.sweep("fig16b_multinode"))


def test_fig16b(benchmark):
    table = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    large = [s for s in SIZES if s >= 8 * MB]
    for impl in IMPLS[1:]:
        gm = table.geomean_speedup("YHCCL", impl, large)
        table.note(f"geomean speedup vs {impl} (>=8MB): {gm:.2f}x "
                   "(paper: 1.4-8.8x on large messages)")
    table.emit("fig16b_multinode.txt")
    for impl in IMPLS[1:]:
        table.assert_wins("YHCCL", impl, at_least=large)
    # trees win on small messages across many nodes
    assert table.time("OMPI-hcoll", 16 * KB) < table.time("YHCCL", 16 * KB)
    # every cell carries the per-level breakdown, and the per-level
    # traffic counters roll up exactly to the document's network totals
    for impl in IMPLS:
        for s in SIZES:
            doc = table.counters[impl][s]
            assert doc["schema"] == "repro-hier/1", (impl, s)
            assert doc["network"]["bytes_sent"] == sum(
                lv["bytes_on_wire"] for lv in doc["levels"]), (impl, s)
            assert doc["network"]["messages"] == sum(
                lv["messages"] for lv in doc["levels"]), (impl, s)
