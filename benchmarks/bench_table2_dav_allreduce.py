"""Table 2: data access volume of all-reduce algorithms.

Paper closed forms vs simulator-measured byte counts (p=64).
"""

from repro.collectives.dpml import DPML_ALLREDUCE
from repro.collectives.ma import MA_ALLREDUCE
from repro.collectives.rabenseifner import RABENSEIFNER_ALLREDUCE
from repro.collectives.rg import RGAllreduce
from repro.collectives.ring import RING_ALLREDUCE
from repro.collectives.socket_aware import SOCKET_MA_ALLREDUCE
from repro.collectives.common import run_reduce_collective
from repro.library.communicator import Communicator
from repro.machine.spec import KB, MB, NODE_A
from repro.models.dav import dav_allreduce

from repro.bench import Benchmark

from harness import RESULTS_DIR

BENCH = Benchmark(name="table2_dav_allreduce", custom="run_table")

S = 1 * MB
P = 64
K = 2
ROWS = [
    ("Ring [45]", "ring", RING_ALLREDUCE, "7*s*(p-1)", {}),
    ("Rabenseifner [50]", "rabenseifner", RABENSEIFNER_ALLREDUCE,
     "7*s*p*(1/2+...+1/p)", {}),
    ("DPML [13]", "dpml", DPML_ALLREDUCE, "s*(7p-1)", {}),
    ("RG [34] (k=2)", "rg", RGAllreduce(branch=K, slice_size=128 * KB),
     "s*p*(5k/(k+1)+...+2)", {}),
    ("YHCCL MA", "ma", MA_ALLREDUCE, "s*(5p-1)", {}),
    ("YHCCL socket-aware MA", "socket-ma", SOCKET_MA_ALLREDUCE,
     "s*(5p+2m-3)", {}),
]


def run_table():
    out = []
    for label, key, alg, formula, kw in ROWS:
        comm = Communicator(P, machine=NODE_A, functional=False)
        res = run_reduce_collective(alg, comm.engine, S, imax=256 * KB, **kw)
        paper = dav_allreduce(key, S, P, m=2, k=K, paper=True)
        impl = dav_allreduce(key, S, P, m=2, k=K, paper=False)
        out.append((label, formula, paper, impl, res.dav))
    return out


def test_table2(benchmark):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)
    lines = [
        f"Table 2: DAV of all-reduce algorithms (p={P}, s={S >> 20} MB)",
        "=" * 60,
        "",
        f"{'algorithm':<24}{'paper formula':<22}{'paper/s':>9}"
        f"{'impl/s':>9}{'simulated/s':>13}",
    ]
    for label, formula, paper, impl, sim in rows:
        lines.append(
            f"{label:<24}{formula:<22}{paper / S:>9.2f}{impl / S:>9.2f}"
            f"{sim / S:>13.2f}"
        )
    lines.append("")
    lines.append("note: YHCCL MA has the smallest DAV for p >= 4 (Sec. 3.4)")
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table2_dav_allreduce.txt").write_text(text + "\n")
    print("\n" + text)
    for label, formula, paper, impl, sim in rows:
        assert sim == impl, label
        assert abs(paper - impl) <= 4 * S, label
    ma = next(r for r in rows if r[0] == "YHCCL MA")
    for label, formula, paper, impl, sim in rows:
        if "YHCCL" not in label:
            assert ma[4] < sim, f"MA must have smallest DAV (vs {label})"
