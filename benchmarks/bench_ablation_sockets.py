"""Ablation: socket count (m) in the socket-aware design.

DAV grows as ``s(5p + 2m - 3)`` while the level-1 sync chains shrink to
``p/m - 1`` — the paper's "future architectures with more cores"
discussion (Section 3.3).  Sweeping the same 64 ranks as 2 sockets
(NodeA) vs 4 sockets (NodeD) shows the trade directly, against the
plain MA pipeline on each machine.
"""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.ma import MA_ALLREDUCE
from repro.collectives.socket_aware import SOCKET_MA_ALLREDUCE
from repro.machine.spec import KB, MB, NODE_A, NODE_D
from repro.sim.engine import Engine

from repro.bench import Benchmark

from harness import RESULTS_DIR, fmt_size

BENCH = Benchmark(name="ablation_sockets", custom="run_ablation")

SIZES = [64 * KB, 1 * MB, 16 * MB]
MACHINES = [("NodeA (m=2)", NODE_A), ("NodeD (m=4)", NODE_D)]


def run_ablation():
    out = {}
    for label, machine in MACHINES:
        out[label] = {}
        for s in SIZES:
            row = {}
            for name, alg in (("socket-MA", SOCKET_MA_ALLREDUCE),
                              ("MA", MA_ALLREDUCE)):
                eng = Engine(64, machine=machine, functional=False)
                res = run_reduce_collective(
                    alg, eng, s, copy_policy="adaptive", imax=256 * KB,
                    iterations=2,
                )
                row[name] = (res.time, res.dav)
            out[label][s] = row
    return out


def test_ablation_sockets(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = [
        "Ablation: socket count in the socket-aware all-reduce (p=64)",
        "=" * 60,
        "",
        f"{'machine':<14}{'size':>8}{'socket-MA':>12}{'MA':>12}"
        f"{'sMA DAV/s':>11}{'MA DAV/s':>10}",
    ]
    for label, _ in MACHINES:
        for s in SIZES:
            sa_t, sa_d = rows[label][s]["socket-MA"]
            ma_t, ma_d = rows[label][s]["MA"]
            lines.append(
                f"{label:<14}{fmt_size(s):>8}{sa_t * 1e6:>10.1f}us"
                f"{ma_t * 1e6:>10.1f}us{sa_d / s:>11.1f}{ma_d / s:>10.1f}"
            )
    lines += [
        "",
        "DAV: socket-MA = s(5p+2m-3) -> 321s at m=2, 325s at m=4;",
        "MA = s(5p-1) = 319s on both — the m-dependent overhead is tiny,",
        "while level-1 chains shrink from 31 to 15 syncs per rank.",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_sockets.txt").write_text(text + "\n")
    print("\n" + text)
    for (label, machine) in MACHINES:
        m = machine.sockets
        for s in SIZES:
            assert rows[label][s]["socket-MA"][1] == s * (5 * 64 + 2 * m - 3)
            assert rows[label][s]["MA"][1] == s * (5 * 64 - 1)
