"""Figure 12: adaptive NT stores in the socket-aware MA all-reduce.

YHCCL (adaptive-copy) vs forced t-copy, forced nt-copy, and memmove,
on the socket-aware MA all-reduce.  Paper shape:

* t-copy wins (or ties) below the cache-overflow point;
* nt-copy wins above it;
* YHCCL tracks the winner on both sides — the switch engages at the
  Section 5.4 prediction (2176 KB NodeA, 1152 KB NodeB);
* memmove lags on large messages (it thresholds on slice size only and
  the MA slices are 256/128 KB — never NT).
"""

import pytest

from repro.bench import Benchmark, SweepSpec, reduce_spec
from repro.bench.registry import platform_imax
from repro.bench.executor import run_sweep_table
from repro.machine.spec import KB, MB
from repro.models.nt_model import nt_switch_message_size

from harness import NODE_CONFIGS, SIZES_LARGE


def _sweep(node: str) -> SweepSpec:
    machine, p = NODE_CONFIGS[node]
    imax = platform_imax(machine)
    return SweepSpec(
        name=f"fig12_adaptive_allreduce_{node}",
        title=f"Figure 12{'a' if node == 'NodeA' else 'b'}: adaptive "
              f"all-reduce ({node}, p={p}, Imax={imax // KB}KB)",
        machine=node,
        p=p,
        sizes=tuple(SIZES_LARGE),
        impls=tuple(
            (label, reduce_spec("socket-ma", "allreduce", policy, imax=imax))
            for label, policy in (
                ("YHCCL", "adaptive"), ("t-copy", "t"),
                ("nt-copy", "nt"), ("Memmove", "memmove"),
            )
        ),
        baseline="YHCCL",
    )


BENCH = Benchmark(
    name="fig12_adaptive_allreduce",
    sweeps=tuple(_sweep(node) for node in NODE_CONFIGS),
)


def run_figure(node: str):
    return run_sweep_table(BENCH.sweep(f"fig12_adaptive_allreduce_{node}"))


@pytest.mark.parametrize("node", ["NodeA", "NodeB"])
def test_fig12(benchmark, node):
    machine, p = NODE_CONFIGS[node]
    imax = platform_imax(machine)
    switch = nt_switch_message_size("allreduce", machine, p, imax=imax)
    table = benchmark.pedantic(run_figure, args=(node,), rounds=1,
                               iterations=1)
    table.note(f"predicted NT switch point: {switch / KB:.0f} KB "
               f"(paper: {'2176' if node == 'NodeA' else '1152'} KB)")
    # Section 5.4's DAB discussion: DAV/time at 256 MB, memmove vs YHCCL
    if 256 * MB in SIZES_LARGE:
        dav = (5 * p + 2 * machine.sockets - 3) * 256 * MB
        dab_mm = dav / table.time("Memmove", 256 * MB) / 1e9
        dab_y = dav / table.time("YHCCL", 256 * MB) / 1e9
        paper_mm, paper_y = (314.7, 416.2) if node == "NodeA" else (281.8, 374.7)
        table.note(
            f"DAB at 256MB: memmove {dab_mm:.1f} GB/s vs YHCCL "
            f"{dab_y:.1f} GB/s (paper: {paper_mm} vs {paper_y})"
        )
    table.emit(f"fig12_adaptive_allreduce_{node}.txt")
    small = [s for s in SIZES_LARGE if s < switch]
    large = [s for s in SIZES_LARGE if s > 2 * switch]
    # below the switch YHCCL == t-copy exactly (same decisions made)
    for s in small:
        assert table.time("YHCCL", s) == pytest.approx(
            table.time("t-copy", s), rel=1e-6
        )
    # above the switch YHCCL beats t-copy/memmove: NT copy-outs avoid
    # the RFO while the copy-ins stay temporal; pure nt-copy trails by
    # losing the copy-in reuse (within a small tolerance near the switch)
    table.assert_wins("YHCCL", "t-copy", at_least=large)
    table.assert_wins("YHCCL", "Memmove", at_least=large)
    for s in large:
        assert table.time("YHCCL", s) <= table.time("nt-copy", s) * 1.02
