"""Figure 12: adaptive NT stores in the socket-aware MA all-reduce.

YHCCL (adaptive-copy) vs forced t-copy, forced nt-copy, and memmove,
on the socket-aware MA all-reduce.  Paper shape:

* t-copy wins (or ties) below the cache-overflow point;
* nt-copy wins above it;
* YHCCL tracks the winner on both sides — the switch engages at the
  Section 5.4 prediction (2176 KB NodeA, 1152 KB NodeB);
* memmove lags on large messages (it thresholds on slice size only and
  the MA slices are 256/128 KB — never NT).
"""

import pytest

from repro.collectives.socket_aware import SOCKET_MA_ALLREDUCE
from repro.machine.spec import KB, MB
from repro.models.nt_model import nt_switch_message_size

from harness import NODE_CONFIGS, SIZES_LARGE, sweep
from runners import platform_imax, reduce_runner


def run_figure(node: str):
    machine, p = NODE_CONFIGS[node]
    imax = platform_imax(machine)
    runners = {
        "YHCCL": reduce_runner(SOCKET_MA_ALLREDUCE, "adaptive", imax=imax),
        "t-copy": reduce_runner(SOCKET_MA_ALLREDUCE, "t", imax=imax),
        "nt-copy": reduce_runner(SOCKET_MA_ALLREDUCE, "nt", imax=imax),
        "Memmove": reduce_runner(SOCKET_MA_ALLREDUCE, "memmove", imax=imax),
    }
    return sweep(
        f"Figure 12{'a' if node == 'NodeA' else 'b'}: adaptive all-reduce "
        f"({node}, p={p}, Imax={imax // KB}KB)",
        machine, p, SIZES_LARGE, runners, baseline="YHCCL",
    )


@pytest.mark.parametrize("node", ["NodeA", "NodeB"])
def test_fig12(benchmark, node):
    machine, p = NODE_CONFIGS[node]
    imax = platform_imax(machine)
    switch = nt_switch_message_size("allreduce", machine, p, imax=imax)
    table = benchmark.pedantic(run_figure, args=(node,), rounds=1,
                               iterations=1)
    table.note(f"predicted NT switch point: {switch / KB:.0f} KB "
               f"(paper: {'2176' if node == 'NodeA' else '1152'} KB)")
    # Section 5.4's DAB discussion: DAV/time at 256 MB, memmove vs YHCCL
    if 256 * MB in SIZES_LARGE:
        dav = (5 * p + 2 * machine.sockets - 3) * 256 * MB
        dab_mm = dav / table.time("Memmove", 256 * MB) / 1e9
        dab_y = dav / table.time("YHCCL", 256 * MB) / 1e9
        paper_mm, paper_y = (314.7, 416.2) if node == "NodeA" else (281.8, 374.7)
        table.note(
            f"DAB at 256MB: memmove {dab_mm:.1f} GB/s vs YHCCL "
            f"{dab_y:.1f} GB/s (paper: {paper_mm} vs {paper_y})"
        )
    table.emit(f"fig12_adaptive_allreduce_{node}.txt")
    small = [s for s in SIZES_LARGE if s < switch]
    large = [s for s in SIZES_LARGE if s > 2 * switch]
    # below the switch YHCCL == t-copy exactly (same decisions made)
    for s in small:
        assert table.time("YHCCL", s) == pytest.approx(
            table.time("t-copy", s), rel=1e-6
        )
    # above the switch YHCCL beats t-copy/memmove: NT copy-outs avoid
    # the RFO while the copy-ins stay temporal; pure nt-copy trails by
    # losing the copy-in reuse (within a small tolerance near the switch)
    table.assert_wins("YHCCL", "t-copy", at_least=large)
    table.assert_wins("YHCCL", "Memmove", at_least=large)
    for s in large:
        assert table.time("YHCCL", s) <= table.time("nt-copy", s) * 1.02
