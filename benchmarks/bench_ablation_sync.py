"""Ablation: synchronization-cost sensitivity — why YHCCL switches to
the two-level parallel reduction on small messages (Section 5.1).

The MA pipeline pays a chain of ``p - 1`` flag synchronizations per
round; the DPML-style two-level reduction pays a constant few barriers.
Sweeping the flag latency shows the switching rationale directly: MA
wins when flags are cheap, the two-level design overtakes as they get
expensive — the crossover is the reason the library routes small
messages (sync-bound) to DPML2 and large ones (bandwidth-bound) to MA.
"""

import pytest

from repro.collectives.common import run_reduce_collective
from repro.collectives.dpml import DPML2_ALLREDUCE
from repro.collectives.ma import MA_ALLREDUCE
from repro.machine.spec import KB, NODE_A, US
from repro.sim.engine import Engine

from repro.bench import Benchmark

from harness import RESULTS_DIR

BENCH = Benchmark(name="ablation_sync", custom="run_ablation")

LATENCIES_US = [0.2, 0.6, 1.5, 4.0]
S = 64 * KB  # sync-bound message size


def run_ablation():
    out = {}
    for lat in LATENCIES_US:
        machine = NODE_A.with_(
            sync_latency_intra=lat * US, sync_latency_inter=2.5 * lat * US
        )
        row = {}
        for name, alg in (("MA", MA_ALLREDUCE),
                          ("two-level DPML", DPML2_ALLREDUCE)):
            eng = Engine(64, machine=machine, functional=False)
            row[name] = run_reduce_collective(
                alg, eng, S, copy_policy="adaptive", imax=256 * KB,
                iterations=2,
            ).time
        out[lat] = row
    return out


def test_ablation_sync(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = [
        "Ablation: sync-cost sensitivity (NodeA, p=64, s=64KB allreduce)",
        "=" * 63,
        "",
        f"{'flag latency':>14}{'MA (us)':>12}{'2-level DPML (us)':>19}"
        f"{'MA/DPML2':>10}",
    ]
    for lat in LATENCIES_US:
        ma = rows[lat]["MA"] * 1e6
        d2 = rows[lat]["two-level DPML"] * 1e6
        lines.append(f"{lat:>12.1f}us{ma:>12.1f}{d2:>19.1f}{ma / d2:>10.2f}")
    lines += [
        "",
        "the MA chain degrades faster than the barrier-based design as",
        "flags get costlier — the Section 5.1 small-message switch",
    ]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_sync.txt").write_text(text + "\n")
    print("\n" + text)
    ratios = [
        rows[lat]["MA"] / rows[lat]["two-level DPML"] for lat in LATENCIES_US
    ]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))  # monotone
    assert ratios[0] < 1.0 < ratios[-1]  # a genuine crossover
