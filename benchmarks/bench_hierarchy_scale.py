"""Cluster-scale hierarchical all-reduce: sweeping the *node count*.

Figure 17-style scalability of the composed two-level hierarchies at a
fixed large message (64 MB), out to thousands of nodes and >100k ranks:

* NodeA sweep — 64 ranks/node to 2048 nodes (131072 ranks) on EDR,
  comparing YHCCL's multi-lane ring against a pluggable Rabenseifner
  exchange and the leader-based vendor hierarchies;
* NodeB sweep — 48 ranks/node to 4096 nodes (196608 ranks) on a
  dual-rail HDR fabric (the multi-rail NIC model).

The intra-node leaf work is independent of the node count, so under
``bench --compiled`` one leaf capture per (machine, kind, size) serves
the entire node sweep — the inter-node stage is closed-form — which is
what makes these grids cheap enough for CI.  Each cell's ``counters``
field carries the ``repro-hier/1`` per-level breakdown.
"""

from repro.bench import Benchmark, SweepSpec, hierarchy_spec
from repro.bench.executor import run_sweep_table
from repro.bench.sizes import QUICK, quick_subsample
from repro.machine.spec import MB

S = 64 * MB
NODES_A = (16, 64, 256, 1024, 2048)
NODES_B = (16, 64, 256, 1024, 4096)
if QUICK:  # keep the endpoints: the >=1024-node regime must survive
    NODES_A = tuple(quick_subsample(NODES_A))
    NODES_B = tuple(quick_subsample(NODES_B))

IMPLS_A = [
    ("YHCCL", hierarchy_spec("YHCCL")),
    ("YHCCL-rabenseifner", hierarchy_spec("YHCCL", exchange="rabenseifner")),
    ("Intel MPI", hierarchy_spec("Intel MPI")),
    ("OMPI-hcoll", hierarchy_spec("OMPI-hcoll")),
]
IMPLS_B = [
    ("YHCCL", hierarchy_spec("YHCCL", network="InfiniBand-HDR-2rail")),
    ("OMPI-hcoll", hierarchy_spec("OMPI-hcoll",
                                  network="InfiniBand-HDR-2rail")),
]

BENCH = Benchmark(
    name="hierarchy_scale",
    sweeps=(
        SweepSpec(
            name="hierarchy_scale_nodea",
            title=f"Hierarchy scaling: NodeA x 64 ranks, s={S >> 20}MB "
                  f"(EDR, up to {max(NODES_A)} nodes / "
                  f"{max(NODES_A) * 64} ranks)",
            machine="NodeA",
            p=64,
            sizes=NODES_A,
            impls=tuple(IMPLS_A),
            baseline="YHCCL",
            axis="nodes",
            fixed_size=S,
        ),
        SweepSpec(
            name="hierarchy_scale_nodeb",
            title=f"Hierarchy scaling: NodeB x 48 ranks, s={S >> 20}MB "
                  f"(HDR 2-rail, up to {max(NODES_B)} nodes / "
                  f"{max(NODES_B) * 48} ranks)",
            machine="NodeB",
            p=48,
            sizes=NODES_B,
            impls=tuple(IMPLS_B),
            baseline="YHCCL",
            axis="nodes",
            fixed_size=S,
        ),
    ),
)


def run_figure():
    return [run_sweep_table(s) for s in BENCH.sweeps]


def test_hierarchy_scale(benchmark):
    tables = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    nodea, nodeb = tables
    nodea.note("x-axis is the cluster node count (64 ranks per node)")
    nodeb.note("x-axis is the cluster node count (48 ranks per node)")
    for table, nodes in ((nodea, NODES_A), (nodeb, NODES_B)):
        # the multi-lane hierarchies beat the leader-based vendor
        # hierarchies at a bandwidth-bound message on every cluster size
        for impl in table.impls():
            if impl.startswith("YHCCL"):
                continue
            for n in nodes:
                assert table.time("YHCCL", n) < table.time(impl, n), \
                    (impl, n)
        # per-level traffic rolls up to the totals at every scale
        for impl in table.impls():
            for n in nodes:
                doc = table.counters[impl][n]
                assert doc["schema"] == "repro-hier/1"
                assert doc["nnodes"] == n
                assert doc["network"]["bytes_sent"] == sum(
                    lv["bytes_on_wire"] for lv in doc["levels"])
                assert doc["network"]["messages"] == sum(
                    lv["messages"] for lv in doc["levels"])
    # >=100k-rank cells exist in both sweeps
    assert max(NODES_A) * 64 >= 100_000
    assert max(NODES_B) * 48 >= 100_000
    # Rabenseifner's log-round exchange gains on the ring as the node
    # count grows (latency terms: 2 ceil(log2 N) vs 2(N-1))
    big, small = max(NODES_A), min(NODES_A)
    gain_small = (nodea.time("YHCCL", small)
                  / nodea.time("YHCCL-rabenseifner", small))
    gain_big = (nodea.time("YHCCL", big)
                / nodea.time("YHCCL-rabenseifner", big))
    assert gain_big > gain_small
    nodea.emit("hierarchy_scale_nodea.txt")
    nodeb.emit("hierarchy_scale_nodeb.txt")
