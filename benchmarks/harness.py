"""Benchmark harness: sweep runners and table formatting shared by the
per-figure/per-table benchmark modules.

Every benchmark regenerates one table or figure of the paper as a text
table: absolute simulated times per message size per implementation,
plus the relative-overhead view the figures plot.  Tables are printed
and saved under ``benchmarks/results/``.

Environment:

* ``REPRO_QUICK=1`` — trim the size sweeps (for smoke runs).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.library.communicator import Communicator
from repro.machine.spec import KB, MB, NODE_A, NODE_B

RESULTS_DIR = Path(__file__).parent / "results"

QUICK = bool(int(os.environ.get("REPRO_QUICK", "0")))

#: the paper's 64 KB – 256 MB sweep (subsampled above 16 MB to keep the
#: op-heavy simulations inside a benchmark-suite time budget)
SIZES_LARGE = [
    64 * KB, 128 * KB, 256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB,
    8 * MB, 16 * MB, 64 * MB, 256 * MB,
]
#: 16 KB – 256 MB (Figure 15)
SIZES_WIDE = [16 * KB, 32 * KB] + SIZES_LARGE
#: 8 KB – 8 MB (Figure 14, all-gather: aggregate is p times larger)
SIZES_ALLGATHER = [
    8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB, 512 * KB,
    1 * MB, 2 * MB, 4 * MB, 8 * MB,
]

if QUICK:  # pragma: no cover - smoke-run convenience
    SIZES_LARGE = SIZES_LARGE[::3]
    SIZES_WIDE = SIZES_WIDE[::3]
    SIZES_ALLGATHER = SIZES_ALLGATHER[::3]


def fmt_size(nbytes: int) -> str:
    if nbytes >= MB:
        v = nbytes / MB
        return f"{v:g}MB"
    return f"{nbytes / KB:g}KB"


@dataclass
class SweepTable:
    """times[impl][size] in seconds, plus free-form notes."""

    title: str
    sizes: list
    times: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)
    baseline: str = ""

    def add(self, impl: str, size: int, seconds: float) -> None:
        self.times.setdefault(impl, {})[size] = seconds

    def note(self, text: str) -> None:
        self.notes.append(text)

    def impls(self) -> list:
        return list(self.times)

    def time(self, impl: str, size: int) -> float:
        return self.times[impl][size]

    def relative(self, impl: str, size: int) -> float:
        base = self.baseline or self.impls()[0]
        return self.times[impl][size] / self.times[base][size]

    # ---- formatting --------------------------------------------------------

    def render(self) -> str:
        base = self.baseline or self.impls()[0]
        w = max(18, max(len(i) for i in self.impls()) + 2)
        out = [self.title, "=" * len(self.title), ""]
        header = f"{'Msg Size':>10} " + "".join(
            f"{i:>{w}}" for i in self.impls()
        )
        out.append("absolute simulated time (us):")
        out.append(header)
        for s in self.sizes:
            row = f"{fmt_size(s):>10} "
            for i in self.impls():
                t = self.times[i].get(s)
                row += f"{t * 1e6:>{w}.1f}" if t is not None else " " * w
            out.append(row)
        out.append("")
        out.append(f"relative time overhead (vs {base}):")
        out.append(header)
        for s in self.sizes:
            row = f"{fmt_size(s):>10} "
            for i in self.impls():
                t = self.times[i].get(s)
                tb = self.times[base].get(s)
                row += (
                    f"{t / tb:>{w}.2f}" if t is not None and tb else " " * w
                )
            out.append(row)
        if self.notes:
            out.append("")
            out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)

    def emit(self, filename: str) -> str:
        text = self.render()
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / filename).write_text(text + "\n")
        print("\n" + text + "\n")
        return text

    # ---- shape assertions ---------------------------------------------------

    def assert_wins(self, winner: str, loser: str, *, at_least: Sequence[int],
                    factor: float = 1.0) -> None:
        """Assert ``winner`` is at least ``factor``x faster at the given
        sizes — the 'who wins' shape contract."""
        for s in at_least:
            tw, tl = self.times[winner][s], self.times[loser][s]
            assert tw * factor <= tl, (
                f"{self.title}: expected {winner} <= {loser}/{factor} at "
                f"{fmt_size(s)}, got {tw * 1e6:.1f}us vs {tl * 1e6:.1f}us"
            )

    def geomean_speedup(self, impl: str, over: str,
                        sizes: Optional[Sequence[int]] = None) -> float:
        sizes = list(sizes or self.sizes)
        prod = 1.0
        for s in sizes:
            prod *= self.times[over][s] / self.times[impl][s]
        return prod ** (1.0 / len(sizes))


def fresh_comm(machine, p: int) -> Communicator:
    return Communicator(p, machine=machine, functional=False)


def sweep(title: str, machine, p: int, sizes: Sequence[int],
          runners: dict, baseline: str = "") -> SweepTable:
    """Run ``runners[impl](comm, size) -> seconds`` over the size grid.

    A fresh communicator (cold caches) is used per (impl, size) point,
    mirroring the paper's benchmark methodology of touching buffers
    between iterations so no stale cache state helps anyone.
    """
    table = SweepTable(title=title, sizes=list(sizes), baseline=baseline)
    for impl, run in runners.items():
        for s in sizes:
            comm = fresh_comm(machine, p)
            table.add(impl, s, run(comm, s))
    return table


NODE_CONFIGS = {
    "NodeA": (NODE_A, 64),
    "NodeB": (NODE_B, 48),
}
