"""Benchmark harness: shared plumbing for the per-figure/per-table
benchmark modules.

The heavy lifting — sweep tables, size grids, declarative sweep specs,
parallel execution and the persistent result cache — lives in
:mod:`repro.bench`; this module re-exports the pieces the benchmark
modules use and keeps the repo-local bits (the results directory and
the per-node rank counts).

Every benchmark regenerates one table or figure of the paper as a text
table, printed and saved under ``benchmarks/results/``; ``python -m
repro bench`` additionally serializes each sweep to ``BENCH_*.json``.

Environment:

* ``REPRO_QUICK=1`` — trim the size sweeps (for smoke runs); the first
  and last size of each sweep are always retained so quick runs still
  cross the working-set-vs-cache threshold.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.bench.sizes import (  # noqa: F401  (re-exported surface)
    QUICK,
    SIZES_ALLGATHER,
    SIZES_LARGE,
    SIZES_WIDE,
    quick_subsample,
)
from repro.bench.table import SweepTable, fmt_size  # noqa: F401
from repro.library.communicator import Communicator
from repro.machine.spec import NODE_A, NODE_B

RESULTS_DIR = Path(__file__).parent / "results"


def fresh_comm(machine, p: int) -> Communicator:
    return Communicator(p, machine=machine, functional=False)


def sweep(title: str, machine, p: int, sizes: Sequence[int],
          runners: dict, baseline: str = "") -> SweepTable:
    """Run ``runners[impl](comm, size) -> seconds`` over the size grid.

    A fresh communicator (cold caches) is used per (impl, size) point,
    mirroring the paper's benchmark methodology of touching buffers
    between iterations so no stale cache state helps anyone.

    Legacy path for callable runners; declarative modules build a
    :class:`repro.bench.SweepSpec` and call
    :func:`repro.bench.executor.run_sweep_table` instead.
    """
    table = SweepTable(title=title, sizes=list(sizes), baseline=baseline)
    for impl, run in runners.items():
        for s in sizes:
            comm = fresh_comm(machine, p)
            table.add(impl, s, run(comm, s))
    return table


NODE_CONFIGS = {
    "NodeA": (NODE_A, 64),
    "NodeB": (NODE_B, 48),
}
