"""Per-implementation runner factories for the benchmark sweeps.

A runner is ``fn(comm, nbytes) -> seconds`` (simulated completion time).
The tuning mirrors Section 5.3: MA slice caps of 256 KB (NodeA) /
128 KB (NodeB), DPML's 8 KB reduction block, RG with branch 2 and
128 KB slices; the published baselines run with ``memmove`` copies
(their implementations' store path), the YHCCL designs with the
adaptive copy unless a specific policy is requested.
"""

from __future__ import annotations

from repro.collectives.common import (
    run_allgather_collective,
    run_bcast_collective,
    run_reduce_collective,
)
from repro.library.mpi import MPILibrary
from repro.library.yhccl import YHCCL
from repro.machine.spec import KB


def platform_imax(machine) -> int:
    return {"NodeA": 256 * KB, "NodeB": 128 * KB}.get(machine.name, 128 * KB)


#: steady-state measurement: warm-up iteration + measured iteration,
#: mirroring the paper's OSU-style loops
ITERATIONS = 2


def reduce_runner(alg, policy: str = "memmove", imax=None, root: int = 0):
    """Directly drive one reduction-family algorithm."""

    def run(comm, nbytes):
        cap = imax or platform_imax(comm.machine)
        res = run_reduce_collective(
            alg, comm.engine, nbytes, copy_policy=policy, imax=cap,
            root=root, iterations=ITERATIONS,
        )
        return res.time

    return run


def bcast_runner(alg, policy: str = "memmove", imax=None, root: int = 0):
    def run(comm, nbytes):
        res = run_bcast_collective(
            alg, comm.engine, nbytes, copy_policy=policy,
            imax=imax or platform_imax(comm.machine), root=root,
            iterations=ITERATIONS,
        )
        return res.time

    return run


def allgather_runner(alg, policy: str = "memmove", imax=None):
    def run(comm, nbytes):
        res = run_allgather_collective(
            alg, comm.engine, nbytes, copy_policy=policy,
            imax=imax or platform_imax(comm.machine),
            iterations=ITERATIONS,
        )
        return res.time

    return run


def yhccl_runner(kind: str):
    """The full YHCCL stack (switching + socket-aware MA + adaptive copy)."""

    def run(comm, nbytes):
        lib = YHCCL(comm)
        return getattr(lib, kind)(nbytes, iterations=ITERATIONS).time

    return run


def vendor_runner(vendor: str, kind: str):
    def run(comm, nbytes):
        lib = MPILibrary(comm, vendor)
        return getattr(lib, kind)(nbytes, iterations=ITERATIONS).time

    return run
