"""Per-implementation runner factories — compatibility surface.

The factories now live in :mod:`repro.bench.runners` (where the
declarative sweep specs resolve to the same code paths); this module
re-exports them for the benchmark modules and any out-of-tree users.

A runner is ``fn(comm, nbytes) -> seconds`` (simulated completion
time).  Note the slice-cap contract: ``imax=None`` selects the
platform's tuned cap (256 KB NodeA / 128 KB NodeB), while an explicit
non-positive ``imax`` raises ``ValueError`` instead of being silently
replaced by the default.
"""

from __future__ import annotations

from repro.bench.registry import platform_imax  # noqa: F401
from repro.bench.runners import (  # noqa: F401
    ITERATIONS,
    allgather_runner,
    bcast_runner,
    reduce_runner,
    vendor_runner,
    yhccl_runner,
)
