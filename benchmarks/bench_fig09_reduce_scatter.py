"""Figure 9: reduce-scatter algorithm comparison.

Socket-aware MA and MA vs DPML, Ring and Rabenseifner over
64 KB – 256 MB on NodeA (p=64) and NodeB (p=48).

Paper shape: the MA designs win for messages larger than ~64 KB, with
average speedups of ~4.2x/3.8x/3.6x over DPML/Ring/Rabenseifner on
NodeA (2.2x/1.8x/2.5x on NodeB); Rabenseifner's logarithmic step count
gives it the edge on small messages.
"""

import pytest

from repro.collectives.dpml import DPML_REDUCE_SCATTER
from repro.collectives.ma import MA_REDUCE_SCATTER
from repro.collectives.rabenseifner import RABENSEIFNER_REDUCE_SCATTER
from repro.collectives.ring import RING_REDUCE_SCATTER
from repro.collectives.socket_aware import SOCKET_MA_REDUCE_SCATTER
from repro.machine.spec import MB

from harness import NODE_CONFIGS, SIZES_LARGE, sweep
from runners import reduce_runner


def run_figure(node: str):
    machine, p = NODE_CONFIGS[node]
    runners = {
        "Socket-aware MA (ours)": reduce_runner(
            SOCKET_MA_REDUCE_SCATTER, "adaptive"
        ),
        "MA (ours)": reduce_runner(MA_REDUCE_SCATTER, "adaptive"),
        "DPML": reduce_runner(DPML_REDUCE_SCATTER),
        "Ring": reduce_runner(RING_REDUCE_SCATTER),
        "Rabenseifner": reduce_runner(RABENSEIFNER_REDUCE_SCATTER),
    }
    return sweep(
        f"Figure 9{'a' if node == 'NodeA' else 'b'}: reduce-scatter "
        f"comparison ({node}, p={p})",
        machine, p, SIZES_LARGE, runners,
        baseline="Socket-aware MA (ours)",
    )


@pytest.mark.parametrize("node", ["NodeA", "NodeB"])
def test_fig09(benchmark, node):
    table = benchmark.pedantic(run_figure, args=(node,), rounds=1,
                               iterations=1)
    table.note(
        "paper: MA designs win above ~64KB; avg speedups NodeA "
        "4.18/3.8/3.6x vs DPML/Ring/Rabenseifner, NodeB 2.21/1.8/2.47x"
    )
    large = [s for s in SIZES_LARGE if s >= 1 * MB]
    for base in ("DPML", "Ring", "Rabenseifner"):
        gm = table.geomean_speedup("Socket-aware MA (ours)", base, large)
        table.note(f"measured geomean speedup vs {base} (>=1MB): {gm:.2f}x")
    table.emit(f"fig09_reduce_scatter_{node}.txt")
    for base in ("DPML", "Ring", "Rabenseifner"):
        table.assert_wins("Socket-aware MA (ours)", base, at_least=large)
