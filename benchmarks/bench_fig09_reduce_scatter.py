"""Figure 9: reduce-scatter algorithm comparison.

Socket-aware MA and MA vs DPML, Ring and Rabenseifner over
64 KB – 256 MB on NodeA (p=64) and NodeB (p=48).

Paper shape: the MA designs win for messages larger than ~64 KB, with
average speedups of ~4.2x/3.8x/3.6x over DPML/Ring/Rabenseifner on
NodeA (2.2x/1.8x/2.5x on NodeB); Rabenseifner's logarithmic step count
gives it the edge on small messages.
"""

import pytest

from repro.bench import Benchmark, SweepSpec, reduce_spec
from repro.bench.executor import run_sweep_table
from repro.machine.spec import MB

from harness import NODE_CONFIGS, SIZES_LARGE


def _sweep(node: str) -> SweepSpec:
    _, p = NODE_CONFIGS[node]
    return SweepSpec(
        name=f"fig09_reduce_scatter_{node}",
        title=f"Figure 9{'a' if node == 'NodeA' else 'b'}: reduce-scatter "
              f"comparison ({node}, p={p})",
        machine=node,
        p=p,
        sizes=tuple(SIZES_LARGE),
        impls=(
            ("Socket-aware MA (ours)",
             reduce_spec("socket-ma", "reduce_scatter", "adaptive")),
            ("MA (ours)", reduce_spec("ma", "reduce_scatter", "adaptive")),
            ("DPML", reduce_spec("dpml", "reduce_scatter")),
            ("Ring", reduce_spec("ring", "reduce_scatter")),
            ("Rabenseifner", reduce_spec("rabenseifner", "reduce_scatter")),
        ),
        baseline="Socket-aware MA (ours)",
    )


BENCH = Benchmark(
    name="fig09_reduce_scatter",
    sweeps=tuple(_sweep(node) for node in NODE_CONFIGS),
)


def run_figure(node: str):
    return run_sweep_table(BENCH.sweep(f"fig09_reduce_scatter_{node}"))


@pytest.mark.parametrize("node", ["NodeA", "NodeB"])
def test_fig09(benchmark, node):
    table = benchmark.pedantic(run_figure, args=(node,), rounds=1,
                               iterations=1)
    table.note(
        "paper: MA designs win above ~64KB; avg speedups NodeA "
        "4.18/3.8/3.6x vs DPML/Ring/Rabenseifner, NodeB 2.21/1.8/2.47x"
    )
    large = [s for s in SIZES_LARGE if s >= 1 * MB]
    for base in ("DPML", "Ring", "Rabenseifner"):
        gm = table.geomean_speedup("Socket-aware MA (ours)", base, large)
        table.note(f"measured geomean speedup vs {base} (>=1MB): {gm:.2f}x")
    table.emit(f"fig09_reduce_scatter_{node}.txt")
    for base in ("DPML", "Ring", "Rabenseifner"):
        table.assert_wins("Socket-aware MA (ours)", base, at_least=large)
