"""Network model tests: multi-lane saturation and collective costs."""

import math

import pytest

from repro.machine.network import INFINIBAND_EDR, Network, NetworkSpec


class TestNetworkSpec:
    def test_lane_cannot_exceed_link(self):
        with pytest.raises(ValueError):
            NetworkSpec("bad", latency=1e-6, link_bandwidth=1e9,
                        lane_bandwidth=2e9)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkSpec("bad", latency=1e-6, link_bandwidth=0,
                        lane_bandwidth=0)


class TestEffectiveBandwidth:
    def test_single_lane(self):
        net = Network(INFINIBAND_EDR)
        assert net.effective_bandwidth(1) == INFINIBAND_EDR.lane_bandwidth

    def test_multi_lane_saturates_link(self):
        net = Network(INFINIBAND_EDR)
        k = math.ceil(
            INFINIBAND_EDR.link_bandwidth / INFINIBAND_EDR.lane_bandwidth
        )
        assert net.effective_bandwidth(k) == INFINIBAND_EDR.link_bandwidth
        assert net.effective_bandwidth(64) == INFINIBAND_EDR.link_bandwidth

    def test_rejects_zero_senders(self):
        net = Network()
        with pytest.raises(ValueError):
            net.effective_bandwidth(0)


class TestP2P:
    def test_latency_floor(self):
        net = Network()
        assert net.p2p_time(0) == INFINIBAND_EDR.latency

    def test_bandwidth_term(self):
        net = Network()
        t = net.p2p_time(1 << 20)
        expect = INFINIBAND_EDR.latency + (1 << 20) / INFINIBAND_EDR.lane_bandwidth
        assert t == pytest.approx(expect)

    def test_accounting(self):
        net = Network()
        net.p2p_time(1000)
        net.p2p_time(2000)
        assert net.bytes_sent == 3000 and net.messages == 2

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Network().p2p_time(-1)


class TestRingAllreduce:
    def test_single_node_free(self):
        assert Network().ring_allreduce_time(1 << 20, 1) == 0.0

    def test_multi_lane_faster(self):
        net = Network()
        slow = net.ring_allreduce_time(64 << 20, 8, concurrent_procs=1)
        fast = net.ring_allreduce_time(64 << 20, 8, concurrent_procs=64)
        assert fast < slow / 2

    def test_scales_with_nodes_latency(self):
        net = Network()
        t4 = net.ring_allreduce_time(1024, 4)
        t16 = net.ring_allreduce_time(1024, 16)
        assert t16 > t4  # more latency steps


class TestTreeCollectives:
    def test_tree_bcast_log_rounds(self):
        net = Network()
        t2 = net.tree_bcast_time(1024, 2)
        t16 = net.tree_bcast_time(1024, 16)
        assert t16 == pytest.approx(4 * t2)

    def test_tree_allreduce_is_double_bcast(self):
        net = Network()
        assert net.tree_allreduce_time(4096, 8) == pytest.approx(
            2 * net.tree_bcast_time(4096, 8)
        )

    def test_tree_beats_ring_small_messages_many_nodes(self):
        net = Network()
        s = 16 * 1024
        assert net.tree_allreduce_time(s, 64) < net.ring_allreduce_time(s, 64)

    def test_ring_beats_tree_large_messages(self):
        net = Network()
        s = 256 << 20
        assert (
            net.ring_allreduce_time(s, 16, concurrent_procs=64)
            < net.tree_allreduce_time(s, 16)
        )
