"""Network model tests: multi-lane saturation, collective costs and the
estimate/commit counter discipline."""

import math

import pytest

from repro.machine.network import (
    INFINIBAND_EDR,
    INFINIBAND_HDR_2RAIL,
    NETWORKS,
    Network,
    NetworkSpec,
    NodeGroup,
    Topology,
)


class TestNetworkSpec:
    def test_lane_cannot_exceed_link(self):
        with pytest.raises(ValueError):
            NetworkSpec("bad", latency=1e-6, link_bandwidth=1e9,
                        lane_bandwidth=2e9)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkSpec("bad", latency=1e-6, link_bandwidth=0,
                        lane_bandwidth=0)

    def test_rejects_zero_rails(self):
        with pytest.raises(ValueError):
            NetworkSpec("bad", latency=1e-6, link_bandwidth=1e9,
                        lane_bandwidth=1e9, rails=0)

    def test_presets_registered_by_name(self):
        assert NETWORKS[INFINIBAND_EDR.name] is INFINIBAND_EDR
        assert NETWORKS[INFINIBAND_HDR_2RAIL.name] is INFINIBAND_HDR_2RAIL


class TestEffectiveBandwidth:
    def test_single_lane(self):
        net = Network(INFINIBAND_EDR)
        assert net.effective_bandwidth(1) == INFINIBAND_EDR.lane_bandwidth

    def test_multi_lane_saturates_link(self):
        net = Network(INFINIBAND_EDR)
        k = math.ceil(
            INFINIBAND_EDR.link_bandwidth / INFINIBAND_EDR.lane_bandwidth
        )
        assert net.effective_bandwidth(k) == INFINIBAND_EDR.link_bandwidth
        assert net.effective_bandwidth(64) == INFINIBAND_EDR.link_bandwidth

    def test_rejects_zero_senders(self):
        net = Network()
        with pytest.raises(ValueError):
            net.effective_bandwidth(0)

    def test_multi_rail_raises_the_saturation_ceiling(self):
        net = Network(INFINIBAND_HDR_2RAIL)
        spec = INFINIBAND_HDR_2RAIL
        # one rail saturates at link_bandwidth, both rails at double it
        k_one = math.ceil(spec.link_bandwidth / spec.lane_bandwidth)
        assert net.effective_bandwidth(k_one) == spec.link_bandwidth
        assert net.effective_bandwidth(64) == 2 * spec.link_bandwidth
        assert spec.node_bandwidth == 2 * spec.link_bandwidth


class TestP2P:
    def test_latency_floor(self):
        net = Network()
        assert net.p2p_time(0) == INFINIBAND_EDR.latency

    def test_bandwidth_term(self):
        net = Network()
        t = net.p2p_time(1 << 20)
        expect = INFINIBAND_EDR.latency + (1 << 20) / INFINIBAND_EDR.lane_bandwidth
        assert t == pytest.approx(expect)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Network().p2p_time(-1)


class TestEstimateCommit:
    """Cost queries are pure; only commits reach the counters."""

    def test_time_queries_are_side_effect_free(self):
        net = Network()
        net.p2p_time(1000)
        net.ring_allreduce_time(1 << 20, 8)
        net.tree_allreduce_time(1 << 20, 8)
        net.rabenseifner_allreduce_cost(1 << 20, 8)
        assert net.bytes_sent == 0 and net.messages == 0

    def test_commit_accumulates_only_chosen_costs(self):
        net = Network()
        tree = net.tree_allreduce_cost(1 << 20, 8)
        ring = net.ring_allreduce_cost(1 << 20, 8)
        net.commit(ring)  # tree was only an estimate
        assert net.bytes_sent == ring.bytes_on_wire
        assert net.messages == ring.messages
        assert tree.bytes_on_wire > 0  # priced, not recorded

    def test_reset_gives_per_call_accounting(self):
        net = Network()
        net.commit(net.p2p_cost(1000))
        net.commit(net.p2p_cost(2000))
        assert net.bytes_sent == 3000 and net.messages == 2
        net.reset()
        assert net.bytes_sent == 0 and net.messages == 0
        net.commit(net.p2p_cost(500))
        assert net.bytes_sent == 500 and net.messages == 1

    def test_cost_scaled_multiplies_every_term(self):
        net = Network()
        per = net.ring_allreduce_cost(1 << 20, 4)
        total = per.scaled(4)
        assert total.time == per.time * 4
        assert total.bytes_on_wire == per.bytes_on_wire * 4
        assert total.messages == per.messages * 4
        assert total.steps == per.steps * 4
        with pytest.raises(ValueError):
            per.scaled(0)

    def test_zero_byte_costs(self):
        net = Network()
        p2p = net.p2p_cost(0)
        assert p2p.time == INFINIBAND_EDR.latency
        assert p2p.bytes_on_wire == 0 and p2p.messages == 1
        ring = net.ring_allreduce_cost(0, 8)
        assert ring.bytes_on_wire == 0 and ring.messages == 2 * 7
        assert ring.time == pytest.approx(14 * INFINIBAND_EDR.latency)

    def test_single_node_zero_cost_paths(self):
        net = Network()
        for cost in (net.ring_allreduce_cost(1 << 20, 1),
                     net.tree_bcast_cost(1 << 20, 1),
                     net.tree_allreduce_cost(1 << 20, 1),
                     net.rabenseifner_allreduce_cost(1 << 20, 1)):
            assert cost.time == 0.0
            assert cost.bytes_on_wire == 0 and cost.messages == 0
        assert net.bytes_sent == 0 and net.messages == 0


class TestRingAllreduce:
    def test_single_node_free(self):
        assert Network().ring_allreduce_time(1 << 20, 1) == 0.0

    def test_multi_lane_faster(self):
        net = Network()
        slow = net.ring_allreduce_time(64 << 20, 8, concurrent_procs=1)
        fast = net.ring_allreduce_time(64 << 20, 8, concurrent_procs=64)
        assert fast < slow / 2

    def test_scales_with_nodes_latency(self):
        net = Network()
        t4 = net.ring_allreduce_time(1024, 4)
        t16 = net.ring_allreduce_time(1024, 16)
        assert t16 > t4  # more latency steps


class TestTreeCollectives:
    def test_tree_bcast_log_rounds(self):
        net = Network()
        t2 = net.tree_bcast_time(1024, 2)
        t16 = net.tree_bcast_time(1024, 16)
        assert t16 == pytest.approx(4 * t2)

    def test_tree_bcast_non_power_of_two_rounds_and_bytes(self):
        net = Network()
        for nnodes in (3, 5, 9, 100):
            cost = net.tree_bcast_cost(4096, nnodes)
            assert cost.steps == math.ceil(math.log2(nnodes))
            assert cost.bytes_on_wire == 4096 * (nnodes - 1)
            assert cost.messages == nnodes - 1
            assert cost.time == pytest.approx(cost.steps * (
                INFINIBAND_EDR.latency
                + 4096 / INFINIBAND_EDR.lane_bandwidth))

    def test_tree_allreduce_is_double_bcast(self):
        net = Network()
        assert net.tree_allreduce_time(4096, 8) == pytest.approx(
            2 * net.tree_bcast_time(4096, 8)
        )

    def test_tree_beats_ring_small_messages_many_nodes(self):
        net = Network()
        s = 16 * 1024
        assert net.tree_allreduce_time(s, 64) < net.ring_allreduce_time(s, 64)

    def test_ring_beats_tree_large_messages(self):
        net = Network()
        s = 256 << 20
        assert (
            net.ring_allreduce_time(s, 16, concurrent_procs=64)
            < net.tree_allreduce_time(s, 16)
        )


class TestRabenseifner:
    def test_same_bytes_as_ring_fewer_latency_terms(self):
        net = Network()
        s, n = 64 << 20, 64
        rab = net.rabenseifner_allreduce_cost(s, n)
        ring = net.ring_allreduce_cost(s, n)
        # both move ~2(n-1)/n * s per node; rab in 2 log2 n rounds
        assert rab.bytes_on_wire == pytest.approx(ring.bytes_on_wire, rel=1e-6)
        assert rab.steps == 2 * math.ceil(math.log2(n))
        assert rab.steps < ring.steps

    def test_beats_ring_on_latency_bound_exchanges(self):
        net = Network()
        assert (net.rabenseifner_allreduce_cost(16 * 1024, 1024).time
                < net.ring_allreduce_cost(16 * 1024, 1024).time)


class TestTopology:
    def test_uniform(self):
        topo = Topology.uniform("NodeA", 16, 64)
        assert topo.nnodes == 16 and topo.nranks == 1024
        assert topo.homogeneous
        doc = topo.describe()
        assert doc["network"] == INFINIBAND_EDR.name
        assert doc["nranks"] == 1024

    def test_mixed_groups(self):
        topo = Topology(groups=(NodeGroup("NodeA", 8, 64),
                                NodeGroup("NodeB", 8, 48)),
                        network=INFINIBAND_HDR_2RAIL)
        assert topo.nnodes == 16
        assert topo.nranks == 8 * 64 + 8 * 48
        assert not topo.homogeneous
        assert topo.describe()["network"] == INFINIBAND_HDR_2RAIL.name

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(groups=())
        with pytest.raises(ValueError):
            NodeGroup("NodeA", 0, 64)
        with pytest.raises(ValueError):
            NodeGroup("NodeA", 4, 0)
