"""Machine specification tests: presets, topology, cache capacity."""

import pytest

from repro.machine.spec import (
    CLUSTER_C,
    NODE_A,
    NODE_B,
    CacheSpec,
    SocketSpec,
    available_cache_capacity,
    GB_S,
    KB,
    MB,
)


class TestCacheSpec:
    def test_line_count(self):
        c = CacheSpec(size=1 * MB, line_size=64)
        assert c.n_lines == 16384

    def test_sets(self):
        c = CacheSpec(size=1 * MB, line_size=64, associativity=16)
        assert c.n_sets == 1024

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            CacheSpec(size=0)

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            CacheSpec(size=100, line_size=64)


class TestSocketSpec:
    def test_effective_capacity_inclusive(self):
        s = CLUSTER_C.socket
        assert s.l3.inclusive
        assert s.effective_cache_capacity == s.l3.size

    def test_effective_capacity_non_inclusive(self):
        s = NODE_A.socket
        assert not s.l3.inclusive
        assert s.effective_cache_capacity == s.l3.size + 32 * 512 * KB

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            SocketSpec(cores=0, l2_per_core=CacheSpec(size=64 * KB),
                       l3=CacheSpec(size=1 * MB), mem_bandwidth=GB_S)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            SocketSpec(cores=2, l2_per_core=CacheSpec(size=64 * KB),
                       l3=CacheSpec(size=1 * MB), mem_bandwidth=0.0)


class TestPresets:
    @pytest.mark.parametrize("machine,cores", [
        (NODE_A, 64), (NODE_B, 48), (CLUSTER_C, 24),
    ])
    def test_total_cores(self, machine, cores):
        assert machine.total_cores == cores

    def test_node_a_matches_paper(self):
        # 2x 32-core EPYC 7452, 256 MB non-inclusive L3, 512 KB L2
        assert NODE_A.sockets == 2
        assert NODE_A.socket.l3.size == 256 * MB
        assert not NODE_A.socket.l3.inclusive
        assert NODE_A.socket.l2_per_core.size == 512 * KB

    def test_node_b_matches_paper(self):
        assert NODE_B.socket.cores == 24
        assert NODE_B.socket.l3.size == 66 * MB
        assert NODE_B.socket.l2_per_core.size == 1 * MB

    def test_cluster_c_inclusive_l3(self):
        assert CLUSTER_C.socket.l3.inclusive


class TestTopology:
    def test_compact_binding_fills_sockets_in_order(self):
        # 64 ranks on NodeA: first 32 on socket 0
        assert NODE_A.socket_of_rank(0, 64) == 0
        assert NODE_A.socket_of_rank(31, 64) == 0
        assert NODE_A.socket_of_rank(32, 64) == 1
        assert NODE_A.socket_of_rank(63, 64) == 1

    def test_partial_occupancy_spreads(self):
        # 8 ranks on NodeA spread 4+4 (ceil split)
        socks = [NODE_A.socket_of_rank(r, 8) for r in range(8)]
        assert socks == [0] * 4 + [1] * 4

    def test_ranks_on_socket_partitions_all(self):
        for p in (7, 48):
            all_ranks = sorted(
                sum((NODE_B.ranks_on_socket(p, s) for s in range(2)), [])
            )
            assert all_ranks == list(range(p))

    def test_validate_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            NODE_A.validate_nranks(65)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            NODE_A.socket_of_rank(-1, 4)


class TestAvailableCacheCapacity:
    def test_node_a_paper_value(self):
        # Section 5.4: C = 294912 KB on NodeA with p=64
        assert available_cache_capacity(NODE_A, 64) == 294912 * KB

    def test_node_b_paper_value(self):
        # Section 5.4: C = 116736 KB on NodeB with p=48
        assert available_cache_capacity(NODE_B, 48) == 116736 * KB

    def test_inclusive_llc_is_just_l3(self):
        assert available_cache_capacity(CLUSTER_C, 24) == CLUSTER_C.socket.l3.size

    def test_with_override(self):
        m = NODE_A.with_(sync_latency_intra=1e-6)
        assert m.sync_latency_intra == 1e-6
        assert m.socket is NODE_A.socket


class TestBindingPolicies:
    def test_scatter_round_robins(self):
        m = NODE_A.with_(binding="scatter")
        assert [m.socket_of_rank(r, 8) for r in range(8)] == [0, 1] * 4

    def test_compact_fills_in_order(self):
        assert [NODE_A.socket_of_rank(r, 8) for r in range(8)] == \
            [0] * 4 + [1] * 4

    def test_unknown_binding_rejected(self):
        with pytest.raises(ValueError, match="binding"):
            NODE_A.with_(binding="random")

    def test_scatter_keeps_socket_populations_balanced(self):
        m = NODE_A.with_(binding="scatter")
        for p in (7, 48, 64):
            counts = [len(m.ranks_on_socket(p, s)) for s in range(2)]
            assert abs(counts[0] - counts[1]) <= 1

    def test_node_d_preset(self):
        from repro.machine.spec import NODE_D

        assert NODE_D.sockets == 4
        assert NODE_D.total_cores == 64
        assert not NODE_D.socket.l3.inclusive
