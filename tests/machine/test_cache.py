"""Cache model tests: RFO/write-back semantics, NT stores, LRU capacity,
and agreement between the region model and the set-associative model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cache import AccessResult, RegionCache, SetAssociativeCache

KB = 1024


class TestAccessResult:
    def test_addition(self):
        a = AccessResult(hit=1, miss=2, rfo=3, writeback=4)
        b = AccessResult(hit=10, miss=20, rfo=30, writeback=40)
        c = a + b
        assert (c.hit, c.miss, c.rfo, c.writeback) == (11, 22, 33, 44)

    def test_memory_traffic_views(self):
        r = AccessResult(miss=100, rfo=50, writeback=25)
        assert r.memory_read_bytes == 150
        assert r.memory_write_bytes == 25


class TestRegionCacheBasics:
    def test_cold_load_misses_then_hits(self):
        c = RegionCache(64 * KB)
        r1 = c.load(1, 0, KB)
        assert r1.miss == KB and r1.hit == 0
        r2 = c.load(1, 0, KB)
        assert r2.hit == KB and r2.miss == 0

    def test_store_miss_pays_rfo(self):
        c = RegionCache(64 * KB)
        r = c.store(1, 0, KB)
        assert r.rfo == KB and r.miss == KB

    def test_store_hit_no_rfo(self):
        c = RegionCache(64 * KB)
        c.load(1, 0, KB)
        r = c.store(1, 0, KB)
        assert r.hit == KB and r.rfo == 0

    def test_nt_store_never_allocates(self):
        c = RegionCache(64 * KB)
        r = c.store_nt(1, 0, KB)
        assert r.rfo == 0 and r.miss == KB
        assert c.used_bytes == 0

    def test_nt_store_invalidates_without_writeback(self):
        c = RegionCache(64 * KB)
        c.store(1, 0, KB)  # dirty resident
        r = c.store_nt(1, 0, KB)
        assert r.writeback == 0
        # the region is gone: next load misses
        assert c.load(1, 0, KB).miss == KB

    def test_dirty_eviction_writes_back(self):
        c = RegionCache(2 * KB)
        c.store(1, 0, KB)  # dirty
        c.store(1, KB, KB)  # dirty, cache now full
        r = c.load(2, 0, KB)  # evicts LRU dirty region
        assert r.writeback == KB

    def test_clean_eviction_no_writeback(self):
        c = RegionCache(2 * KB)
        c.load(1, 0, KB)
        c.load(1, KB, KB)
        r = c.load(2, 0, KB)
        assert r.writeback == 0

    def test_lru_order(self):
        c = RegionCache(2 * KB)
        c.load(1, 0, KB)
        c.load(1, KB, KB)
        c.load(1, 0, KB)  # refresh region 0
        c.load(2, 0, KB)  # should evict region at offset KB
        assert c.load(1, 0, KB).hit == KB

    def test_oversized_region_streams_through(self):
        c = RegionCache(KB)
        r = c.load(1, 0, 4 * KB)
        assert r.miss == 4 * KB
        assert c.used_bytes == 0

    def test_oversized_store_full_traffic(self):
        c = RegionCache(KB)
        r = c.store(1, 0, 4 * KB)
        # write-allocate streaming: RFO in, dirty back out
        assert r.rfo == 4 * KB and r.writeback == 4 * KB

    def test_zero_length_access_free(self):
        c = RegionCache(KB)
        r = c.load(1, 0, 0)
        assert r.hit == r.miss == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RegionCache(0)


class TestRegionCacheOverlap:
    def test_partial_overlap_evicts_resident(self):
        c = RegionCache(64 * KB)
        c.store(1, 0, 2 * KB)  # dirty [0, 2K)
        r = c.load(1, KB, 2 * KB)  # overlapping [1K, 3K)
        assert r.writeback == 2 * KB  # the dirty overlap drained
        assert r.miss == 2 * KB

    def test_exact_match_not_evicted(self):
        c = RegionCache(64 * KB)
        c.load(1, 0, KB)
        r = c.load(1, 0, KB)
        assert r.hit == KB and r.writeback == 0

    def test_disjoint_regions_coexist(self):
        c = RegionCache(64 * KB)
        c.load(1, 0, KB)
        c.load(1, 4 * KB, KB)
        assert c.load(1, 0, KB).hit == KB
        assert c.load(1, 4 * KB, KB).hit == KB

    def test_flush_buffer_writes_back_dirty(self):
        c = RegionCache(64 * KB)
        c.store(1, 0, KB)
        c.load(1, 2 * KB, KB)
        assert c.flush_buffer(1) == KB
        assert c.used_bytes == 0

    def test_invalidate_is_silent(self):
        c = RegionCache(64 * KB)
        c.store(1, 0, KB)
        c.invalidate((1, 0, KB))
        assert c.used_bytes == 0


class TestSetAssociativeCache:
    def test_basic_hit_miss(self):
        c = SetAssociativeCache(size=8 * KB, line_size=64, associativity=2)
        r = c.load(1, 0, 128)
        assert r.miss == 128
        assert c.load(1, 0, 128).hit == 128

    def test_store_rfo(self):
        c = SetAssociativeCache(size=8 * KB, line_size=64, associativity=2)
        r = c.store(1, 0, 64)
        assert r.rfo == 64

    def test_conflict_eviction_writes_back_dirty(self):
        c = SetAssociativeCache(size=2 * 64 * 2, line_size=64, associativity=2)
        # 2 sets x 2 ways; three lines mapping to the same set
        c.store(1, 0, 64)
        c.store(1, 2 * 64, 64)  # same set (stride = n_sets * line)
        r = c.store(1, 4 * 64, 64)
        assert r.writeback == 64

    def test_nt_store_invalidates(self):
        c = SetAssociativeCache(size=8 * KB, line_size=64, associativity=2)
        c.store(1, 0, 64)
        c.store_nt(1, 0, 64)
        assert c.load(1, 0, 64).miss == 64

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size=1000, line_size=64, associativity=4)

    def test_partial_line_access_rounds_to_lines(self):
        c = SetAssociativeCache(size=8 * KB, line_size=64, associativity=2)
        r = c.load(1, 10, 10)  # within one line
        assert r.miss == 64


class TestModelAgreement:
    """The fast region model and the line-granular model must agree on
    streaming workloads (the collectives' access pattern)."""

    def _both(self):
        return RegionCache(8 * KB), SetAssociativeCache(
            size=8 * KB, line_size=64, associativity=128 // 8
        )

    def test_streaming_copy_traffic_agrees(self):
        region, lines = self._both()
        total_r = AccessResult()
        total_l = AccessResult()
        # stream 64 KB through an 8 KB cache in 1 KB slices
        for i in range(64):
            off = i * KB
            total_r += region.load(1, off, KB)
            total_r += region.store(2, off, KB)
            total_l += lines.load(1, off, KB)
            total_l += lines.store(2, off, KB)
        assert total_r.miss == total_l.miss
        assert total_r.rfo == total_l.rfo
        # write-backs may differ at the tail (residency), bounded by 2x cache
        assert abs(total_r.writeback - total_l.writeback) <= 2 * 8 * KB

    def test_resident_reuse_agrees(self):
        region, lines = self._both()
        for model in (region, lines):
            model.load(1, 0, 4 * KB)
            r = model.load(1, 0, 4 * KB)
            assert r.hit == 4 * KB

    @given(st.lists(
        st.tuples(
            st.sampled_from(["load", "store", "store_nt"]),
            st.integers(0, 7),   # slice index
        ),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=60, deadline=None)
    def test_property_conservation(self, ops):
        """hit + miss == requested bytes on every access, both models."""
        region = RegionCache(4 * KB)
        lines = SetAssociativeCache(size=4 * KB, line_size=64,
                                    associativity=8)
        for kind, idx in ops:
            for model in (region, lines):
                res = getattr(model, kind)(1, idx * KB, KB)
                assert res.hit + res.miss == KB
                assert res.hit >= 0 and res.miss >= 0
                assert res.rfo >= 0 and res.writeback >= 0
                if kind == "load":
                    assert res.rfo == 0
                if kind == "store_nt":
                    assert res.rfo == 0 and res.hit == 0
