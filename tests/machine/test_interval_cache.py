"""Byte-exact interval cache tests, including three-way model agreement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.cache import AccessResult, RegionCache, SetAssociativeCache
from repro.machine.interval_cache import IntervalCache

KB = 1024


class TestBasics:
    def test_cold_then_hot(self):
        c = IntervalCache(64 * KB)
        assert c.load(1, 0, KB).miss == KB
        assert c.load(1, 0, KB).hit == KB

    def test_partial_hit_is_byte_exact(self):
        c = IntervalCache(64 * KB)
        c.load(1, 0, 2 * KB)
        r = c.load(1, KB, 2 * KB)  # [1K,3K): 1K cached, 1K not
        assert r.hit == KB and r.miss == KB

    def test_store_rfo_only_for_missing_bytes(self):
        c = IntervalCache(64 * KB)
        c.load(1, 0, KB)
        r = c.store(1, 0, 2 * KB)
        assert r.hit == KB and r.rfo == KB

    def test_nt_store_invalidates_exact_range(self):
        c = IntervalCache(64 * KB)
        c.store(1, 0, 4 * KB)
        c.store_nt(1, KB, KB)
        r = c.load(1, 0, 4 * KB)
        assert r.hit == 3 * KB and r.miss == KB

    def test_dirty_eviction_writes_back(self):
        c = IntervalCache(2 * KB)
        c.store(1, 0, KB)
        c.store(1, KB, KB)
        r = c.load(2, 0, KB)
        assert r.writeback == KB

    def test_lru_by_interval(self):
        c = IntervalCache(2 * KB)
        c.load(1, 0, KB)
        c.load(1, KB, KB)
        c.load(1, 0, KB)  # refresh the first
        c.load(2, 0, KB)  # evicts [1K,2K)
        assert (1, 0, KB) in c
        assert (1, KB, KB) not in c

    def test_oversized_streams_through(self):
        c = IntervalCache(KB)
        r = c.load(1, 0, 4 * KB)
        assert r.miss == 4 * KB
        assert c.used_bytes == 0

    def test_contains_requires_full_coverage(self):
        c = IntervalCache(64 * KB)
        c.load(1, 0, KB)
        assert (1, 0, KB) in c
        assert (1, 0, 2 * KB) not in c

    def test_flush_buffer(self):
        c = IntervalCache(64 * KB)
        c.store(1, 0, KB)
        c.load(2, 0, KB)
        assert c.flush_buffer(1) == KB
        assert (2, 0, KB) in c

    def test_merging_adjacent_accesses_conserves_bytes(self):
        c = IntervalCache(64 * KB)
        c.load(1, 0, KB)
        c.load(1, KB, KB)
        assert c.used_bytes == 2 * KB
        r = c.load(1, 0, 2 * KB)
        assert r.hit == 2 * KB
        assert c.used_bytes == 2 * KB

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            IntervalCache(0)


class TestThreeWayAgreement:
    """Region-LRU vs interval-exact vs set-associative on the same
    streams: traffic must agree where boundaries are consistent, and the
    interval model must sit between the others on overlap-heavy runs."""

    def _stream(self, model, ops):
        total = AccessResult()
        for kind, buf, off, n in ops:
            total += getattr(model, kind)(buf, off, n)
        return total

    def test_aligned_stream_all_models_agree(self):
        ops = []
        for rep in range(2):
            for i in range(32):
                ops.append(("load", 1, i * KB, KB))
                ops.append(("store", 2, i * KB, KB))
        cap = 16 * KB
        res = {
            "region": self._stream(RegionCache(cap), ops),
            "interval": self._stream(IntervalCache(cap), ops),
            "lines": self._stream(
                SetAssociativeCache(size=cap, line_size=64,
                                    associativity=cap // 64), ops),
        }
        base = res["interval"]
        for name, r in res.items():
            assert r.miss == base.miss, name
            assert r.rfo == base.rfo, name

    @given(st.lists(
        st.tuples(
            st.sampled_from(["load", "store", "store_nt"]),
            st.integers(1, 2),
            st.integers(0, 60),   # offset in 256B units
            st.integers(1, 16),   # length in 256B units
        ),
        min_size=1, max_size=80,
    ))
    @settings(max_examples=60, deadline=None)
    def test_property_interval_conservation(self, ops):
        """hit+miss == requested; residency never exceeds capacity."""
        c = IntervalCache(8 * KB)
        for kind, buf, off_u, len_u in ops:
            res = getattr(c, kind)(buf, off_u * 256, len_u * 256)
            assert res.hit + res.miss == len_u * 256
            assert res.hit >= 0 and res.rfo >= 0 and res.writeback >= 0
            assert c.used_bytes <= 8 * KB

    @given(st.lists(
        st.tuples(
            st.sampled_from(["load", "store"]),
            st.integers(0, 120),
            st.integers(1, 16),
        ),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=40, deadline=None)
    def test_property_interval_tracks_lines_in_aggregate(self, ops):
        """Line-aligned streams: the interval model's aggregate traffic
        tracks the line simulator's.  Per-access equality is not
        attainable — the interval LRU stamps whole merged ranges while
        the line LRU ages lines individually — but totals must agree
        within the capacity (the maximum divergence one eviction-order
        difference can cause is bounded by what fits in the cache).
        """
        cap = 4 * KB
        ic = IntervalCache(cap)
        sc = SetAssociativeCache(size=cap, line_size=64,
                                 associativity=cap // 64)
        tot_i = AccessResult()
        tot_l = AccessResult()
        for kind, off_u, len_u in ops:
            tot_i += getattr(ic, kind)(1, off_u * 64, len_u * 64)
            tot_l += getattr(sc, kind)(1, off_u * 64, len_u * 64)
        assert tot_i.hit + tot_i.miss == tot_l.hit + tot_l.miss
        assert abs(tot_i.miss - tot_l.miss) <= 2 * cap
        assert abs(tot_i.rfo - tot_l.rfo) <= 2 * cap


class TestIntervalBackedMemorySystem:
    """The interval cache as a drop-in MemorySystem backend."""

    def test_collective_runs_and_dav_unchanged(self):
        from repro.collectives.common import run_reduce_collective
        from repro.collectives.ma import MA_ALLREDUCE
        from repro.models.dav import implementation_dav
        from repro.sim.engine import Engine
        from tests.conftest import TINY

        s = 32 * KB
        times = {}
        for model in ("region", "interval"):
            eng = Engine(8, machine=TINY, functional=True,
                         cache_model=model)
            res = run_reduce_collective(MA_ALLREDUCE, eng, s, imax=2 * KB)
            assert res.dav == implementation_dav("allreduce", "ma", s, 8)
            times[model] = res.time
        # timing agrees closely on a slice-aligned workload
        assert times["interval"] == pytest.approx(times["region"], rel=0.2)

    def test_unknown_model_rejected(self):
        from repro.machine.memory import MemorySystem
        from tests.conftest import TINY

        with pytest.raises(ValueError, match="cache model"):
            MemorySystem(TINY, 4, cache_model="oracle")
