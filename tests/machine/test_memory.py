"""Memory-system tests: traffic accounting, NUMA homing, contention and
the t-copy/nt-copy traffic ratios that drive the whole paper."""

import pytest

from repro.machine.memory import MemorySystem, TrafficCounters
from repro.sim.buffers import Buffer, SharedBuffer

from tests.conftest import TINY

KB = 1024
MB = 1024 * KB


def make_ms(nranks=8):
    return MemorySystem(TINY, nranks)


def private(nbytes, rank, ms):
    return Buffer(nbytes, owner=rank, home_socket=ms.socket_of_rank(rank))


class TestTrafficCounters:
    def test_dav_is_loads_plus_stores(self):
        t = TrafficCounters(logical_load=10, logical_store=5)
        assert t.dav == 15

    def test_addition(self):
        a = TrafficCounters(logical_load=1, mem_read_bytes=2)
        b = TrafficCounters(logical_load=10, mem_read_bytes=20)
        c = a + b
        assert c.logical_load == 11 and c.mem_read_bytes == 22


class TestLogicalAccounting:
    def test_load_counts_logical(self):
        ms = make_ms()
        buf = private(KB, 0, ms)
        ms.load(0, buf, 0, KB)
        assert ms.counters.logical_load == KB
        assert ms.per_rank[0].logical_load == KB

    def test_store_counts_logical(self):
        ms = make_ms()
        buf = private(KB, 0, ms)
        ms.store(0, buf, 0, KB, nt=True)
        assert ms.counters.logical_store == KB

    def test_zero_size_free(self):
        ms = make_ms()
        buf = private(KB, 0, ms)
        assert ms.load(0, buf, 0, 0) == 0.0
        assert ms.counters.dav == 0


class TestStreamingTrafficRatios:
    """Past-cache streaming: t-copy moves 3 bytes per byte copied
    (load + RFO + write-back), nt-copy moves 2 (Section 4.1)."""

    def _stream(self, nt: bool) -> TrafficCounters:
        ms = make_ms(nranks=1)
        total = 16 * MB  # far beyond the 1.25 MB socket cache
        src = private(total, 0, ms)
        dst = private(total, 0, ms)
        for off in range(0, total, 64 * KB):
            ms.load(0, src, off, 64 * KB)
            ms.store(0, dst, off, 64 * KB, nt=nt)
        return ms.counters

    def test_t_copy_traffic_is_3x(self):
        c = self._stream(nt=False)
        copied = c.logical_store
        assert abs(c.memory_traffic - 3 * copied) / copied < 0.1

    def test_nt_copy_traffic_is_2x(self):
        c = self._stream(nt=True)
        copied = c.logical_store
        assert abs(c.memory_traffic - 2 * copied) / copied < 0.05

    def test_nt_copy_faster_than_t_copy(self):
        ms = make_ms(nranks=1)
        total = 16 * MB
        src = private(total, 0, ms)
        d1 = private(total, 0, ms)
        d2 = private(total, 0, ms)
        t_t = sum(
            ms.load(0, src, off, 64 * KB) + ms.store(0, d1, off, 64 * KB)
            for off in range(0, total, 64 * KB)
        )
        ms.reset_caches()
        t_nt = sum(
            ms.load(0, src, off, 64 * KB)
            + ms.store(0, d2, off, 64 * KB, nt=True)
            for off in range(0, total, 64 * KB)
        )
        assert t_nt < t_t
        # ratio should be near 2/3 (2n vs 3n memory traffic)
        assert 0.5 < t_nt / t_t < 0.85


class TestCacheResidentAccess:
    def test_small_working_set_hits(self):
        ms = make_ms(nranks=1)
        buf = private(64 * KB, 0, ms)
        ms.load(0, buf, 0, 64 * KB)
        ms.reset_counters()
        ms.load(0, buf, 0, 64 * KB)
        assert ms.counters.cache_hit_bytes == 64 * KB
        assert ms.counters.mem_read_bytes == 0

    def test_cached_temporal_store_cheap(self):
        ms = make_ms(nranks=1)
        buf = private(64 * KB, 0, ms)
        ms.store(0, buf, 0, 64 * KB)
        ms.reset_counters()
        t = ms.store(0, buf, 0, 64 * KB)
        assert ms.counters.rfo_bytes == 0
        assert t < 64 * KB / 1e9  # cache-speed


class TestNUMA:
    def test_private_buffer_remote_load_counts_numa(self):
        ms = make_ms(nranks=8)  # ranks 0-3 socket 0, 4-7 socket 1
        buf = private(2 * MB, 0, ms)  # homed socket 0, too big to cache
        ms.load(4, buf, 0, 2 * MB)
        assert ms.counters.numa_bytes > 0

    def test_local_load_no_numa(self):
        ms = make_ms(nranks=8)
        buf = private(2 * MB, 0, ms)
        ms.load(0, buf, 0, 2 * MB)
        assert ms.counters.numa_bytes == 0

    def test_remote_slower_than_local(self):
        ms = make_ms(nranks=8)
        b0 = private(2 * MB, 0, ms)
        t_local = ms.load(0, b0, 0, 2 * MB)
        ms.reset_caches()
        t_remote = ms.load(4, b0, 0, 2 * MB)
        assert t_remote > t_local

    def test_first_touch_homes_shared_region(self):
        ms = make_ms(nranks=8)
        shm = SharedBuffer(2 * MB)
        ms.store(5, shm, 0, 2 * MB, nt=True)  # first touch by socket 1
        ms.reset_caches()
        # socket-1 reader is local, socket-0 reader is remote
        t1 = ms.load(5, shm, 0, 2 * MB)
        ms.reset_caches()
        t0 = ms.load(1, shm, 0, 2 * MB)
        assert t0 > t1
        assert ms.counters.numa_bytes > 0

    def test_cache_to_cache_service(self):
        ms = make_ms(nranks=8)
        shm = SharedBuffer(64 * KB)
        ms.store(0, shm, 0, 64 * KB)  # resident in socket 0 cache
        ms.reset_counters()
        ms.load(4, shm, 0, 64 * KB)  # socket 1 pulls it c2c
        assert ms.counters.c2c_bytes == 64 * KB
        assert ms.counters.mem_read_bytes == 0


class TestContention:
    def test_active_ranks_share_bandwidth(self):
        ms = make_ms(nranks=8)
        buf = private(4 * MB, 0, ms)
        ms.set_active_ranks([0])
        t_alone = ms.load(0, buf, 0, 4 * MB)
        ms.reset_caches()
        ms.set_active_ranks(range(8))
        t_shared = ms.load(0, buf, 0, 4 * MB)
        assert t_shared > 2.0 * t_alone  # 4 sharers on socket 0

    def test_concurrency_override(self):
        ms = make_ms(nranks=8)
        buf = private(4 * MB, 0, ms)
        ms.set_active_ranks(range(8))
        t_shared = ms.load(0, buf, 0, 4 * MB)
        ms.reset_caches()
        t_solo = ms.load(0, buf, 0, 4 * MB, concurrency=1)
        assert t_solo < t_shared

    def test_concurrency_clamped_to_active(self):
        ms = make_ms(nranks=8)
        buf = private(4 * MB, 0, ms)
        ms.set_active_ranks([0, 1])
        t_big = ms.load(0, buf, 0, 4 * MB, concurrency=100)
        ms.reset_caches()
        t_active = ms.load(0, buf, 0, 4 * MB)
        assert t_big == pytest.approx(t_active)


class TestInvalidation:
    def test_store_invalidates_remote_copies(self):
        ms = make_ms(nranks=8)
        shm = SharedBuffer(64 * KB)
        ms.load(0, shm, 0, 64 * KB)  # socket 0 caches it
        ms.load(4, shm, 0, 64 * KB)  # socket 1 caches it (c2c)
        ms.store(4, shm, 0, 64 * KB)  # socket 1 takes ownership
        ms.reset_counters()
        ms.load(0, shm, 0, 64 * KB)  # socket 0's copy was invalidated
        assert ms.counters.cache_hit_bytes == 0


class TestRemoteStores:
    def test_remote_homed_temporal_store_pays_remote_rfo(self):
        ms = make_ms(nranks=8)
        buf = private(2 * MB, 0, ms)  # homed socket 0
        t_local = ms.store(0, buf, 0, 2 * MB)
        ms.reset_caches()
        t_remote = ms.store(4, buf, 0, 2 * MB)  # socket 1 writes
        assert t_remote > t_local
        assert ms.counters.numa_bytes > 0

    def test_remote_nt_store_crosses_link(self):
        ms = make_ms(nranks=8)
        buf = private(1 * MB, 0, ms)
        ms.store(4, buf, 0, 1 * MB, nt=True)
        assert ms.counters.numa_bytes == 1 * MB
