"""Benchmark discovery: directory resolution and BENCH collection."""

import textwrap

import pytest

from repro.bench.discover import benchmarks_dir, load_benchmarks


class TestBenchmarksDir:
    def test_env_override(self, custom_bench_dir, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(custom_bench_dir))
        assert benchmarks_dir() == custom_bench_dir.resolve()

    def test_env_override_must_hold_harness(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        with pytest.raises(FileNotFoundError, match="harness.py"):
            benchmarks_dir()

    def test_finds_checkout_benchmarks(self):
        found = benchmarks_dir()
        assert (found / "harness.py").exists()
        assert list(found.glob("bench_*.py"))


class TestLoadBenchmarks:
    def test_collects_bench_declarations(self, custom_bench_dir):
        found = load_benchmarks(custom_bench_dir)
        assert set(found) == {"tiny_custom"}
        assert found["tiny_custom"].module == "bench_tiny_custom"

    def test_module_without_bench_rejected(self, custom_bench_dir):
        (custom_bench_dir / "bench_rogue.py").write_text("X = 1\n")
        with pytest.raises(AttributeError, match="bench_rogue"):
            load_benchmarks(custom_bench_dir)

    def test_duplicate_names_rejected(self, custom_bench_dir):
        (custom_bench_dir / "bench_twin.py").write_text(textwrap.dedent(
            """\
            from repro.bench import Benchmark

            BENCH = Benchmark(name="tiny_custom", custom="run_table")


            def run_table():
                return {}
            """
        ))
        with pytest.raises(ValueError, match="duplicate"):
            load_benchmarks(custom_bench_dir)

    def test_real_suite_loads_completely(self):
        found = load_benchmarks(benchmarks_dir())
        # every checked-in module declares a well-formed BENCH
        assert len(found) == len(list(benchmarks_dir().glob("bench_*.py")))
        # the figure sweeps and the custom tables are both represented
        assert found["fig11_allreduce"].sweeps
        assert found["fig15_state_of_the_art"].sweep("fig15_reduce")
        assert found["table4_stream"].custom == "run_table"
        assert found["fig16a_scalability"].sweeps[0].axis == "ranks"
