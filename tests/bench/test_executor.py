"""Execution layer: parallel == serial, suite JSON output, custom cells."""

import json

from repro.bench.cache import ResultCache
from repro.bench.executor import (
    exec_payload,
    run_benchmark,
    run_suite,
    run_sweep_table,
)


class TestRunSweepTable:
    def test_populates_times_dav_and_algorithms(self, tiny_sweep):
        table = run_sweep_table(tiny_sweep)
        for impl in ("MA", "Ring"):
            for size in tiny_sweep.sizes:
                assert table.time(impl, size) > 0
                assert table.dav[impl][size] > 0
        assert table.algorithm["MA"][64 * 1024] == "ma-allreduce"

    def test_cells_execute_via_payload_roundtrip(self, tiny_sweep):
        # the exact dict a worker process would receive
        cell = next(tiny_sweep.cells())
        payload = {"type": "cell", "machine": cell["machine"],
                   "p": cell["p"], "nbytes": cell["nbytes"],
                   "runner": cell["runner"]}
        result = exec_payload(payload)
        assert set(result) == {"time", "dav", "algorithm", "counters"}
        assert result["time"] > 0
        assert result["counters"]["schema"] == "repro-obs/1"
        assert result["counters"]["nranks"] == cell["p"]


class TestParallelEqualsSerial:
    def test_byte_identical_json(self, tmp_path, tiny_bench):
        dirs = {}
        for jobs in (1, 2):
            results = tmp_path / f"jobs{jobs}"
            run_suite({tiny_bench.name: tiny_bench}, results_dir=results,
                      jobs=jobs, use_cache=False)
            dirs[jobs] = results
        for name in ("BENCH_tiny_allreduce.json", "BENCH_summary.json"):
            serial = (dirs[1] / name).read_bytes()
            parallel = (dirs[2] / name).read_bytes()
            assert serial == parallel, name


class TestRunSuite:
    def test_writes_documents_and_caches(self, tmp_path, tiny_bench):
        results = tmp_path / "results"
        summary, docs, cache = run_suite(
            {tiny_bench.name: tiny_bench}, results_dir=results, jobs=1,
        )
        assert cache.hits == 0 and cache.misses == 4
        doc = json.loads((results / "BENCH_tiny_allreduce.json").read_text())
        assert doc["schema"] == "repro-bench/1"
        assert doc["benchmark"] == "tiny_allreduce"
        assert len(doc["sweeps"]) == 1
        summary2, _, cache2 = run_suite(
            {tiny_bench.name: tiny_bench}, results_dir=results, jobs=1,
        )
        assert cache2.hits == 4 and cache2.misses == 0
        assert summary2 == summary

    def test_summary_reports_geomean_vs_baseline(self, tmp_path, tiny_bench):
        summary, _, _ = run_suite(
            {tiny_bench.name: tiny_bench}, results_dir=tmp_path, jobs=1,
            use_cache=False,
        )
        entry = summary["benchmarks"]["tiny_allreduce"]
        sweep = entry["sweeps"]["tiny all-reduce (NodeA, p=8)"]
        assert sweep["baseline"] == "MA"
        assert sweep["sizes"] == 2
        assert sweep["geomean_time_vs_baseline"]["MA"] == 1.0
        assert sweep["geomean_time_vs_baseline"]["Ring"] > 0


class TestCustomBenchmark:
    def test_runs_and_sanitizes(self, custom_bench_dir):
        from repro.bench.discover import load_benchmarks

        bench = load_benchmarks(custom_bench_dir)["tiny_custom"]
        assert bench.module == "bench_tiny_custom"
        res = run_benchmark(bench, bench_dir=custom_bench_dir)
        # tuple keys are flattened to "a/b" strings by sanitize()
        assert res.custom_payload == {"rows": {"64/ma": 1.5},
                                      "note": "fixture"}

    def test_custom_cell_caches_on_module_content(self, custom_bench_dir,
                                                  tmp_path):
        from repro.bench.discover import load_benchmarks

        bench = load_benchmarks(custom_bench_dir)["tiny_custom"]
        cache = ResultCache(tmp_path / "cache")
        run_benchmark(bench, bench_dir=custom_bench_dir, cache=cache)
        run_benchmark(bench, bench_dir=custom_bench_dir, cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        # editing the module invalidates its cell
        path = custom_bench_dir / "bench_tiny_custom.py"
        path.write_text(path.read_text() + "\n# edited\n")
        run_benchmark(bench, bench_dir=custom_bench_dir, cache=cache)
        assert cache.misses == 2
