"""Persistent result cache: keying, hit/miss accounting, invalidation."""

import json

import pytest

from repro.bench.cache import (
    ResultCache,
    descriptor_key,
    iter_source_files,
    package_root,
    reset_source_version,
    source_version,
)
from repro.bench.executor import run_sweep_table


class TestDescriptorKey:
    def test_deterministic(self):
        d = {"a": 1, "b": [1, 2], "c": {"x": None}}
        assert descriptor_key(d) == descriptor_key(dict(d))

    def test_key_order_irrelevant(self):
        assert descriptor_key({"a": 1, "b": 2}) == \
            descriptor_key({"b": 2, "a": 1})

    def test_distinct_descriptors_distinct_keys(self):
        base = {"source": "v1", "nbytes": 65536}
        assert descriptor_key(base) != descriptor_key({**base, "nbytes": 1})

    def test_source_version_changes_the_key(self):
        # the invalidation contract: any repro source edit changes the
        # embedded source hash, which changes every cell key
        base = {"source": "a" * 64, "nbytes": 65536}
        edited = {**base, "source": "b" * 64}
        assert descriptor_key(base) != descriptor_key(edited)


class TestSourceVersion:
    def test_hex_and_memoized(self):
        v = source_version()
        assert len(v) == 64 and int(v, 16) >= 0
        assert source_version() == v

    def test_source_files_exclude_pycache(self):
        files = iter_source_files()
        assert files, "repro package sources not found"
        assert all("__pycache__" not in p.parts for p in files)
        assert all(p.suffix == ".py" for p in files)

    def test_hash_anchored_at_package_root(self, tmp_path, monkeypatch):
        # regression: the hash once anchored relative paths at the
        # *parent of the first-sorting file* — adding a subpackage that
        # sorts before __init__.py shifted every relative path and
        # changed the hash of otherwise-untouched files.  Paths must be
        # relative to the package root, no matter what sorts first.
        import hashlib

        pkg = tmp_path / "repro"
        (pkg / "zzz").mkdir(parents=True)
        (pkg / "__init__.py").write_text("# init\n")
        (pkg / "zzz" / "mod.py").write_text("# leaf\n")
        monkeypatch.setattr("repro.bench.cache.package_root", lambda: pkg)
        reset_source_version()
        try:
            expected = hashlib.sha256()
            for rel in ["__init__.py", "zzz/mod.py"]:
                expected.update(rel.encode() + b"\0")
                expected.update((pkg / rel).read_bytes() + b"\0")
            assert source_version() == expected.hexdigest()
            # a subpackage sorting before __init__.py must not shift
            # the relative paths of existing files
            (pkg / "aaa").mkdir()
            (pkg / "aaa" / "early.py").write_text("# early\n")
            reset_source_version()
            changed = hashlib.sha256()
            for rel in ["__init__.py", "aaa/early.py", "zzz/mod.py"]:
                changed.update(rel.encode() + b"\0")
                changed.update((pkg / rel).read_bytes() + b"\0")
            assert source_version() == changed.hexdigest()
        finally:
            reset_source_version()

    def test_reset_drops_the_memo(self, monkeypatch):
        real = source_version()
        monkeypatch.setattr("repro.bench.cache._SOURCE_VERSION", "f" * 64)
        assert source_version() == "f" * 64
        reset_source_version()
        try:
            assert source_version() == real
        finally:
            reset_source_version()

    def test_package_root_is_the_repro_package(self):
        root = package_root()
        assert root.name == "repro"
        assert (root / "__init__.py").exists()


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        desc = {"source": "v", "cell": 1}
        key = descriptor_key(desc)
        assert cache.get(key) is None
        cache.put(key, desc, {"time": 1.0})
        assert cache.get(key) == {"time": 1.0}
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.stats() == "1/2 cells from cache"

    def test_entry_is_inspectable_json(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        desc = {"source": "v", "cell": 2}
        key = descriptor_key(desc)
        cache.put(key, desc, {"time": 2.0})
        entry = json.loads((tmp_path / "cache" / key[:2]
                            / f"{key}.json").read_text())
        assert entry == {"key": key, "descriptor": desc,
                         "result": {"time": 2.0}}

    def test_disabled_cache_never_hits_or_writes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", enabled=False)
        desc = {"cell": 3}
        key = descriptor_key(desc)
        cache.put(key, desc, {"time": 3.0})
        assert cache.get(key) is None
        assert not (tmp_path / "cache").exists()
        assert cache.hits == 0 and cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        desc = {"cell": 4}
        key = descriptor_key(desc)
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert cache.get(key) is None
        # a put repairs it
        cache.put(key, desc, {"time": 4.0})
        assert cache.get(key) == {"time": 4.0}


class TestSweepThroughCache:
    def test_second_run_fully_cached(self, tmp_path, tiny_sweep):
        cache = ResultCache(tmp_path / "cache")
        t1 = run_sweep_table(tiny_sweep, cache=cache)
        assert cache.hits == 0 and cache.misses == 4
        t2 = run_sweep_table(tiny_sweep, cache=cache)
        assert cache.hits == 4
        assert t2.to_json() == t1.to_json()

    def test_source_version_change_invalidates(self, tmp_path, tiny_sweep,
                                               monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        run_sweep_table(tiny_sweep, cache=cache)
        misses_before = cache.misses
        # simulate an edit to the repro sources: every cell must re-run
        monkeypatch.setattr("repro.bench.executor.source_version",
                            lambda: "0" * 64)
        run_sweep_table(tiny_sweep, cache=cache)
        assert cache.misses == misses_before + 4

    def test_results_survive_via_cache_without_simulation(self, tmp_path,
                                                          tiny_sweep,
                                                          monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        expected = run_sweep_table(tiny_sweep, cache=cache)
        # if every cell is served from cache, nothing executes
        monkeypatch.setattr(
            "repro.bench.executor.exec_payload",
            lambda payload: pytest.fail("cache bypassed"),
        )
        table = run_sweep_table(tiny_sweep, cache=cache)
        assert table.to_json() == expected.to_json()
