"""Fixtures for the benchmark execution layer tests.

The tiny sweep runs real simulations (NodeA, p=8, two small sizes) so
the parallel/serial and cache tests exercise the actual worker path
while staying inside a per-test second or two.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.bench import Benchmark, SweepSpec, reduce_spec
from repro.machine.spec import KB

TINY_SWEEP = SweepSpec(
    name="tiny_allreduce",
    title="tiny all-reduce (NodeA, p=8)",
    machine="NodeA",
    p=8,
    sizes=(64 * KB, 128 * KB),
    impls=(
        ("MA", reduce_spec("ma", "allreduce")),
        ("Ring", reduce_spec("ring", "allreduce")),
    ),
    baseline="MA",
)

TINY_BENCH = Benchmark(name="tiny_allreduce", sweeps=(TINY_SWEEP,))


@pytest.fixture
def tiny_sweep() -> SweepSpec:
    return TINY_SWEEP


@pytest.fixture
def tiny_bench() -> Benchmark:
    return TINY_BENCH


@pytest.fixture
def custom_bench_dir(tmp_path, monkeypatch):
    """A throwaway benchmarks directory with one custom benchmark."""
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    (bench_dir / "harness.py").write_text("")
    (bench_dir / "bench_tiny_custom.py").write_text(textwrap.dedent(
        """\
        from repro.bench import Benchmark

        BENCH = Benchmark(name="tiny_custom", custom="run_table")


        def run_table():
            return {"rows": {(64, "ma"): 1.5}, "note": "fixture"}
        """
    ))
    monkeypatch.syspath_prepend(str(bench_dir))
    return bench_dir
