"""The ``python -m repro bench`` front end."""

from repro.__main__ import main


class TestBenchCLI:
    def test_list_exits_clean(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig11_allreduce" in out
        assert "table4_stream" in out
        assert "custom (run_table)" in out

    def test_unknown_name_is_an_error(self, capsys):
        assert main(["bench", "no_such_benchmark"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_comma_separated_selection_validated(self, capsys):
        assert main(["bench", "fig11_allreduce,bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_poly_requires_compiled(self, capsys):
        assert main(["bench", "fig11_allreduce", "--poly"]) == 2
        assert "--compiled" in capsys.readouterr().err

    def test_perturb_requires_compiled(self, capsys):
        assert main(["bench", "fig11_allreduce", "--perturb", "8"]) == 2
        assert "--compiled" in capsys.readouterr().err

    def test_negative_perturb_rejected(self, capsys):
        assert main(["bench", "fig11_allreduce", "--compiled",
                     "--perturb", "-1"]) == 2
        assert ">= 0" in capsys.readouterr().err
