"""Canonical JSON: sanitization, determinism, real-benchmark round-trips."""

import dataclasses
import json

from repro.bench.executor import run_suite
from repro.bench.jsonio import canonical_dumps, sanitize


class TestSanitize:
    def test_scalars_pass_through(self):
        assert sanitize(None) is None
        assert sanitize(True) is True
        assert sanitize(42) == 42
        assert sanitize(1.5) == 1.5
        assert sanitize("x") == "x"

    def test_nonfinite_floats_become_null(self):
        assert sanitize(float("inf")) is None
        assert sanitize(float("nan")) is None

    def test_tuple_keys_join_with_slash(self):
        assert sanitize({(64, "ma"): 1}) == {"64/ma": 1}

    def test_nonstring_keys_stringified(self):
        assert sanitize({65536: "s"}) == {"65536": "s"}

    def test_dataclasses_become_dicts(self):
        @dataclasses.dataclass
        class Point:
            x: int
            y: float

        assert sanitize(Point(1, float("inf"))) == {"x": 1, "y": None}

    def test_sets_sorted_tuples_listified(self):
        assert sanitize({"s": {2, 1}, "t": (1, 2)}) == \
            {"s": [1, 2], "t": [1, 2]}

    def test_result_always_json_dumpable(self):
        class Odd:
            pass

        doc = sanitize({"o": Odd(), "f": float("-inf")})
        json.dumps(doc, allow_nan=False)


class TestCanonicalDumps:
    def test_sorted_keys_trailing_newline(self):
        text = canonical_dumps({"b": 1, "a": 2})
        assert text.index('"a"') < text.index('"b"')
        assert text.endswith("}\n")

    def test_roundtrip_is_fixed_point(self):
        doc = {"z": [1, 2], "a": {"nested": True}}
        text = canonical_dumps(doc)
        assert canonical_dumps(json.loads(text)) == text


class TestRealBenchmarkRoundTrip:
    """Schema round-trip for one real figure and one real table module."""

    def test_figure_and_table_documents(self, tmp_path):
        from repro.bench.discover import benchmarks_dir, load_benchmarks

        available = load_benchmarks(benchmarks_dir())
        selected = {
            name: available[name]
            for name in ("fig03_copyout", "table1_dav_reduce_scatter")
        }
        summary, docs, _ = run_suite(selected, results_dir=tmp_path,
                                     jobs=1, use_cache=False)
        for name in selected:
            path = tmp_path / f"BENCH_{name}.json"
            text = path.read_text()
            doc = json.loads(text)
            # round-trip: parsing and re-dumping reproduces the bytes
            assert canonical_dumps(doc) == text
            assert doc["schema"] == "repro-bench/1"
            assert doc["benchmark"] == name
            assert doc["custom"], name
        fig = json.loads((tmp_path / "BENCH_fig03_copyout.json").read_text())
        # two compiler profiles, five slice sizes each
        assert len(fig["custom"]) == 2
        assert all(len(rows) == 5 for rows in fig["custom"].values())
        summary_text = (tmp_path / "BENCH_summary.json").read_text()
        assert canonical_dumps(json.loads(summary_text)) == summary_text
        assert set(summary["benchmarks"]) == set(selected)
        assert all(entry["custom"] is True
                   for entry in summary["benchmarks"].values())
