"""Declarative specs, registry resolution and the slice-cap/size fixes."""

import pytest

from repro.bench import (
    Benchmark,
    RunnerSpec,
    SweepSpec,
    allgather_spec,
    bcast_spec,
    reduce_spec,
    resolve_imax,
    vendor_spec,
    yhccl_spec,
)
from repro.bench.registry import platform_imax, resolve_algorithm
from repro.bench.sizes import quick_subsample
from repro.machine.spec import KB, MB, NODE_A, NODE_B


class TestRunnerSpec:
    @pytest.mark.parametrize("spec", [
        reduce_spec("ma", "allreduce"),
        reduce_spec("rg", "reduce", branch=2, slice_size=128 * KB),
        bcast_spec("pipelined", "adaptive", imax=1 * MB),
        allgather_spec("pipelined", "nt"),
        yhccl_spec("reduce_scatter"),
        vendor_spec("Intel MPI", "bcast"),
    ])
    def test_describe_roundtrip(self, spec):
        assert RunnerSpec.from_dict(spec.describe()) == spec

    def test_describe_is_pure_data(self):
        import json

        spec = reduce_spec("rg", "allreduce", branch=2)
        json.dumps(spec.describe())

    def test_params_order_canonical(self):
        a = reduce_spec("rg", "reduce", branch=2, slice_size=1)
        b = reduce_spec("rg", "reduce", slice_size=1, branch=2)
        assert a == b

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown runner family"):
            RunnerSpec(family="alltoall", kind="alltoall")


class TestRegistry:
    def test_resolves_known_algorithm(self):
        alg = resolve_algorithm("ma", "allreduce")
        assert alg.name == "ma-allreduce"

    def test_rg_params_build_constructor(self):
        alg = resolve_algorithm(
            "rg", "reduce", (("branch", 2), ("slice_size", 128 * KB)))
        assert "rg" in alg.name

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="ring"):
            resolve_algorithm("quantum", "allreduce")

    def test_unknown_kind_lists_variants(self):
        with pytest.raises(KeyError, match="variant"):
            resolve_algorithm("ring", "alltoall")


class TestResolveImax:
    """An explicit imax of 0 is an error, not the platform default."""

    def test_none_selects_platform_default(self):
        assert resolve_imax(None, NODE_A) == platform_imax(NODE_A)
        assert resolve_imax(None, NODE_B) == 128 * KB

    def test_explicit_value_passes_through(self):
        assert resolve_imax(64 * KB, NODE_A) == 64 * KB

    @pytest.mark.parametrize("bad", [0, -1, -64 * 1024])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError, match="positive"):
            resolve_imax(bad, NODE_A)

    @pytest.mark.parametrize("bad", [True, 1.5, "256K"])
    def test_non_int_rejected(self, bad):
        with pytest.raises(ValueError, match="int or None"):
            resolve_imax(bad, NODE_A)


class TestQuickSubsample:
    """Smoke grids must keep both sweep endpoints."""

    def test_keeps_first_and_last(self):
        sizes = list(range(0, 11))
        assert quick_subsample(sizes) == [0, 3, 6, 9, 10]

    def test_no_duplicate_when_last_already_kept(self):
        assert quick_subsample([1, 2, 3, 4]) == [1, 4]
        assert quick_subsample([1, 2, 3, 4, 5, 6, 7]) == [1, 4, 7]

    def test_largest_size_always_survives(self):
        from repro.bench import sizes as sz

        for grid in ([64 * KB, 1 * MB, 4 * MB, 16 * MB, 64 * MB, 256 * MB],
                     [8 * KB] * 5 + [8 * MB]):
            assert quick_subsample(grid)[-1] == grid[-1]
        # the module-level grids end at the paper's largest sizes
        assert max(sz.SIZES_LARGE) == 256 * MB
        assert max(sz.SIZES_WIDE) == 256 * MB
        assert max(sz.SIZES_ALLGATHER) == 8 * MB

    def test_degenerate_grids(self):
        assert quick_subsample([]) == []
        assert quick_subsample([7]) == [7]


class TestSweepSpec:
    def test_size_axis_cells(self, tiny_sweep):
        cells = list(tiny_sweep.cells())
        assert len(cells) == 4
        assert [c["impl"] for c in cells] == ["MA", "MA", "Ring", "Ring"]
        assert all(c["p"] == 8 for c in cells)
        assert cells[0]["nbytes"] == cells[0]["x"] == 64 * KB

    def test_ranks_axis_cells(self):
        spec = SweepSpec(
            name="scal", title="scal", machine="NodeA", p=0,
            sizes=(2, 4, 8), impls=(("Y", yhccl_spec("allreduce")),),
            axis="ranks", fixed_size=64 * MB,
        )
        cells = list(spec.cells())
        assert [c["p"] for c in cells] == [2, 4, 8]
        assert all(c["nbytes"] == 64 * MB for c in cells)
        assert [c["x"] for c in cells] == [2, 4, 8]

    def test_ranks_axis_requires_fixed_size(self):
        with pytest.raises(ValueError, match="fixed_size"):
            SweepSpec(name="s", title="s", machine="NodeA", p=0,
                      sizes=(2,), impls=(), axis="ranks")

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="axis"):
            SweepSpec(name="s", title="s", machine="NodeA", p=8,
                      sizes=(1,), impls=(), axis="cores")


class TestBenchmark:
    def test_requires_exactly_one_shape(self):
        with pytest.raises(ValueError, match="exactly one"):
            Benchmark(name="none")
        with pytest.raises(ValueError, match="exactly one"):
            Benchmark(name="both", custom="run",
                      sweeps=(SweepSpec(name="s", title="s", machine="NodeA",
                                        p=8, sizes=(1,), impls=()),))

    def test_sweep_lookup(self, tiny_bench):
        assert tiny_bench.sweep("tiny_allreduce").p == 8
        with pytest.raises(KeyError, match="tiny_allreduce"):
            tiny_bench.sweep("missing")
