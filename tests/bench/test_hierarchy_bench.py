"""Hierarchy-family bench cells: spec round-trips, node-axis sweeps,
config resolution, and coroutine/compiled equivalence."""

import pytest

from repro.bench.compiled import clear_schedule_memo, exec_compiled_cell
from repro.bench.hierarchy import resolve_config
from repro.bench.spec import RunnerSpec, SweepSpec, hierarchy_spec
from repro.library.communicator import Communicator
from repro.machine.spec import KB, MB, PRESETS


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_schedule_memo()
    yield
    clear_schedule_memo()


class TestHierarchySpec:
    def test_minimal_params(self):
        spec = hierarchy_spec("YHCCL")
        assert spec.family == "hierarchy"
        assert spec.kind == "allreduce"
        assert spec.vendor == "YHCCL"
        assert spec.params == ()  # defaults stay out of the cache key

    def test_non_defaults_kept_sorted(self):
        spec = hierarchy_spec("OMPI-hcoll", nnodes=16, exchange="tree",
                              network="InfiniBand-HDR-2rail",
                              pipelined=False)
        assert spec.params == (
            ("exchange", "tree"),
            ("network", "InfiniBand-HDR-2rail"),
            ("nnodes", 16),
            ("pipelined", False),
        )

    def test_pipelined_false_survives(self):
        # regression: a generic truthiness filter dropped False
        assert ("pipelined", False) in hierarchy_spec(
            "YHCCL", pipelined=False).params

    def test_describe_round_trip(self):
        spec = hierarchy_spec("YHCCL", nnodes=8, lanes=4)
        assert RunnerSpec.from_dict(spec.describe()) == spec

    def test_with_param_merges_and_stays_sorted(self):
        spec = hierarchy_spec("YHCCL", mode="partition")
        bumped = spec.with_param(nnodes=64)
        assert bumped.params == (("mode", "partition"), ("nnodes", 64))
        assert bumped.with_param(nnodes=128).params == (
            ("mode", "partition"), ("nnodes", 128))


class TestNodesAxis:
    def mk_sweep(self, **over):
        kw = dict(
            name="s", title="t", machine="NodeA", p=8,
            sizes=(4, 8),
            impls=(("YHCCL", hierarchy_spec("YHCCL")),),
            axis="nodes", fixed_size=1 * MB,
        )
        kw.update(over)
        return SweepSpec(**kw)

    def test_cells_inject_node_count(self):
        cells = list(self.mk_sweep().cells())
        assert [c["x"] for c in cells] == [4, 8]
        assert all(c["nbytes"] == 1 * MB and c["p"] == 8 for c in cells)
        assert [dict(c["runner"]["params"])["nnodes"] for c in cells] \
            == [4, 8]

    def test_requires_fixed_size(self):
        with pytest.raises(ValueError):
            self.mk_sweep(fixed_size=0)


class TestResolveConfig:
    def test_defaults_per_implementation(self):
        y = resolve_config("YHCCL", {"nnodes": 4})
        assert y.mode == "partition" and not y.adaptive
        h = resolve_config("OMPI-hcoll", {"nnodes": 4})
        assert h.mode == "leader" and h.adaptive
        assert h.vendor == "Open MPI"

    def test_rejects_missing_nnodes(self):
        with pytest.raises(ValueError, match="nnodes"):
            resolve_config("YHCCL", {})

    def test_rejects_unknown_mode_network_exchange(self):
        with pytest.raises(ValueError, match="mode"):
            resolve_config("YHCCL", {"nnodes": 4, "mode": "flat"})
        with pytest.raises(ValueError, match="network"):
            resolve_config("YHCCL", {"nnodes": 4, "network": "token-ring"})
        with pytest.raises(ValueError, match="exchange"):
            resolve_config("YHCCL", {"nnodes": 4, "exchange": "gossip"})


def _cell(**over):
    cell = {
        "machine": "NodeA",
        "p": 4,
        "nbytes": 64 * KB,
        "runner": hierarchy_spec("YHCCL", nnodes=4).describe(),
    }
    cell.update(over)
    return cell


def _run_coroutine(cell):
    spec = RunnerSpec.from_dict(cell["runner"])
    comm = Communicator(cell["p"], machine=PRESETS[cell["machine"]],
                        functional=False)
    return spec.resolve()(comm, cell["nbytes"])


class TestCompiledEquivalence:
    def test_compiled_matches_coroutine_bitwise(self, tmp_path):
        cell = _cell()
        ref = _run_coroutine(cell)
        out = exec_compiled_cell(
            dict(cell, type="cell", compiled=True,
                 results_dir=str(tmp_path)))
        assert out.pop("captured") is True
        assert out["time"] == ref.time
        assert out["dav"] == ref.dav
        assert out["algorithm"] == ref.algorithm
        assert out["counters"] == ref.counters

    def test_leaf_captures_shared_across_node_counts(self, tmp_path):
        """Leaf schedule descriptors carry no node count, so a node
        sweep captures each leaf once — the property that makes the
        >=1024-node scans cheap."""
        first = exec_compiled_cell(
            dict(_cell(), type="cell", compiled=True,
                 results_dir=str(tmp_path)))
        assert first.pop("captured") is True
        bigger = _cell(runner=hierarchy_spec("YHCCL", nnodes=64).describe())
        clear_schedule_memo()  # force the disk path, like a new worker
        second = exec_compiled_cell(
            dict(bigger, type="cell", compiled=True,
                 results_dir=str(tmp_path)))
        assert "captured" not in second  # pure replay at 64 nodes
        assert second["counters"]["nnodes"] == 64
        assert second["time"] > first["time"]  # more inter-node latency

    def test_document_contents(self, tmp_path):
        out = exec_compiled_cell(
            dict(_cell(), type="cell", compiled=True,
                 results_dir=str(tmp_path)))
        doc = out["counters"]
        assert doc["schema"] == "repro-hier/1"
        assert doc["implementation"] == "YHCCL"
        assert doc["machine"] == "NodeA"
        assert doc["ranks_per_node"] == 4
        levels = [lv["level"] for lv in doc["levels"]]
        assert levels == ["intra", "inter", "intra"]
        assert doc["network"]["bytes_sent"] == sum(
            lv["bytes_on_wire"] for lv in doc["levels"])
        assert doc["network"]["messages"] == sum(
            lv["messages"] for lv in doc["levels"])
