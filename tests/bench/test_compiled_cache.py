"""Compiled-schedule cache: keying discipline, hit/miss flow through
``exec_compiled_cell``, corrupt-entry recovery, and the executor-level
equivalence of compiled sweeps."""

import json

import pytest

from repro.bench.cache import descriptor_key
from repro.bench.compiled import (
    CompiledScheduleCache,
    capture_schedule,
    exec_compiled_cell,
    schedule_descriptor,
)
from repro.bench.executor import cell_descriptor, run_sweep_table
from repro.bench.spec import reduce_spec


def _cell(**over):
    cell = {
        "machine": "NodeA",
        "p": 4,
        "nbytes": 65536,
        "runner": reduce_spec("socket-ma", "allreduce",
                              "adaptive").describe(),
    }
    cell.update(over)
    return cell


def _payload(results_dir=None, **over):
    payload = dict(_cell(**over), type="cell", compiled=True)
    if results_dir is not None:
        payload["results_dir"] = str(results_dir)
    return payload


class TestScheduleDescriptor:
    def test_schema_tag(self):
        assert schedule_descriptor(_cell())["schema"] == "repro-compiled/1"

    @pytest.mark.parametrize("over", [
        {"p": 8},
        {"nbytes": 4096},
        {"machine": "NodeB"},
        {"runner": reduce_spec("ring", "allreduce").describe()},
    ])
    def test_geometry_changes_the_key(self, over):
        base = descriptor_key(schedule_descriptor(_cell()))
        assert descriptor_key(schedule_descriptor(_cell(**over))) != base

    def test_source_version_changes_the_key(self, monkeypatch):
        base = descriptor_key(schedule_descriptor(_cell()))
        monkeypatch.setattr("repro.bench.compiled.source_version",
                            lambda: "0" * 64)
        assert descriptor_key(schedule_descriptor(_cell())) != base

    def test_distinct_from_result_cache_key(self):
        # schedules and results must never collide in a shared store
        cell = _cell()
        assert descriptor_key(schedule_descriptor(cell)) != \
            descriptor_key(cell_descriptor(cell, compiled=True))

    def test_compiled_results_key_separately_from_coroutine(self):
        cell = _cell()
        assert descriptor_key(cell_descriptor(cell)) != \
            descriptor_key(cell_descriptor(cell, compiled=True))


class TestExecCompiledCell:
    def test_capture_once_then_replay_from_cache(self, tmp_path,
                                                 monkeypatch):
        captures = []
        real = capture_schedule

        def counting(*a, **kw):
            captures.append(a)
            return real(*a, **kw)

        monkeypatch.setattr("repro.bench.compiled.capture_schedule",
                            counting)
        first = exec_compiled_cell(_payload(tmp_path))
        assert len(captures) == 1
        second = exec_compiled_cell(_payload(tmp_path))
        assert len(captures) == 1, "second call must be pure replay"
        assert second == first

    def test_no_results_dir_still_works(self):
        out = exec_compiled_cell(_payload())
        assert out["time"] > 0 and out["counters"] is not None

    def test_corrupt_entry_recaptured(self, tmp_path):
        exec_compiled_cell(_payload(tmp_path))
        key = descriptor_key(schedule_descriptor(_cell()))
        path = tmp_path / "compiled" / key[:2] / f"{key}.json"
        assert path.exists()
        entry = json.loads(path.read_text())
        entry["result"]["schema"] = "repro-compiled/0"  # stale schema
        path.write_text(json.dumps(entry))
        out = exec_compiled_cell(_payload(tmp_path))
        assert out["time"] > 0
        # the recapture repaired the entry on disk
        repaired = json.loads(path.read_text())
        assert repaired["result"]["schema"] == "repro-compiled/1"

    def test_matches_coroutine_cell(self, tmp_path):
        from repro.bench.executor import exec_payload

        ref = exec_payload(dict(_cell(), type="cell"))
        out = exec_compiled_cell(_payload(tmp_path))
        assert out == ref


class TestCompiledSweep:
    def test_table_identical_to_coroutine(self, tmp_path, tiny_sweep):
        ref = run_sweep_table(tiny_sweep)
        out = run_sweep_table(tiny_sweep, compiled=True,
                              results_dir=tmp_path)
        assert out.to_json() == ref.to_json()

    def test_schedules_persist_without_result_cache(self, tmp_path,
                                                    tiny_sweep):
        # --no-cache disables the *result* cache only: schedules still
        # persist, which is what makes re-simulation pure replay
        run_sweep_table(tiny_sweep, cache=None, compiled=True,
                        results_dir=tmp_path)
        stored = list((tmp_path / "compiled").rglob("*.json"))
        assert len(stored) == 4  # one schedule per sweep cell

    def test_schedule_cache_stats(self, tmp_path):
        cache = CompiledScheduleCache(tmp_path / "compiled")
        assert cache.stats() == "0/0 schedules from cache"
